"""Tests for the ASCII plotting helpers."""

import pytest

from repro.utils.ascii_plot import bar_chart, line_plot


class TestLinePlot:
    def test_basic_render(self):
        out = line_plot({"a": [1, 2, 3, 4]}, title="T")
        assert out.splitlines()[0] == "T"
        assert "*" in out
        assert "legend: *=a" in out

    def test_two_series_two_markers(self):
        out = line_plot({"up": [0, 1, 2], "down": [2, 1, 0]})
        assert "*" in out and "o" in out
        assert "*=up" in out and "o=down" in out

    def test_y_extremes_labelled(self):
        out = line_plot({"a": [5.0, 10.0]})
        assert "10" in out and "5" in out

    def test_x_axis_labels(self):
        out = line_plot({"a": [1, 2]}, x=[100, 400])
        assert "100" in out and "400" in out

    def test_constant_series_ok(self):
        out = line_plot({"a": [3.0, 3.0, 3.0]})
        assert "*" in out

    def test_monotone_series_spans_height(self):
        out = line_plot({"a": list(range(10))}, height=8)
        rows = [ln for ln in out.splitlines() if "|" in ln]
        assert "*" in rows[0] and "*" in rows[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"a": [1]})
        with pytest.raises(ValueError):
            line_plot({"a": [1, 2], "b": [1, 2, 3]})
        with pytest.raises(ValueError):
            line_plot({"a": [1, 2]}, x=[1, 2, 3])
        with pytest.raises(ValueError):
            line_plot({"a": [1, 2]}, width=2)


class TestBarChart:
    def test_basic(self):
        out = bar_chart({"x": 10.0, "y": 5.0}, unit="s")
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") > lines[1].count("#")
        assert "10.00s" in lines[0]

    def test_zero_value_has_no_bar(self):
        out = bar_chart({"z": 0.0, "v": 2.0})
        z_line = [ln for ln in out.splitlines() if ln.startswith("z")][0]
        assert "#" not in z_line

    def test_title(self):
        assert bar_chart({"a": 1.0}, title="T").splitlines()[0] == "T"

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})
