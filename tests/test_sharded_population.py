"""Process-sharded population stepping: the multi-core plane must never
change the science.

Contracts, all at CLI or public-API level:

* ``--shards K`` is bit-identical, member by member, to ``--shards 1``
  (which is byte-for-byte the single-process lockstep) and, through the
  existing population contract, to the sequential solo runs;
* a checkpoint taken under ``--shards K`` resumes bit-identically at any
  other shard count;
* SIGTERM mid-round checkpoints at a clean step boundary and leaves no
  ``/dev/shm`` segment behind;
* a SIGKILLed worker surfaces as :class:`ShardCrash`, never a hang, and
  still leaves ``/dev/shm`` clean.
"""

from __future__ import annotations

import os
import shutil
import signal

import pytest

from repro.cli import main
from repro.core.persistence import (
    load_checkpoint,
    load_population_checkpoint,
)
from repro.core.population import population_seed_plan
from repro.core.result import sessions_equal
from repro.parallel import ShardCrash, ShardedPopulation, active_segments
from repro.parallel.sharding import ShardedPopulation as _SP

N = 4
SEED = 42
STEPS = 3


@pytest.fixture(scope="module")
def model(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("model") / "m.npz")
    assert main(
        ["train", "--workload", "WC", "--iterations", "80",
         "--model", path]
    ) == 0
    return path


def _tune(model, ckpt, *, shards, steps=STEPS, extra=()):
    return main(
        ["tune", "--workload", "WC", "--model", model,
         "--population", str(N), "--seed", str(SEED),
         "--steps", str(steps), "--fault-profile", "hostile",
         "--checkpoint", ckpt, "--shards", str(shards), *extra]
    )


@pytest.fixture(scope="module")
def unsharded_ckpt(model, tmp_path_factory):
    ckpt = str(tmp_path_factory.mktemp("seq") / "pop.ckpt")
    assert _tune(model, ckpt, shards=1) == 0
    return ckpt


@pytest.fixture(scope="module")
def sharded_ckpt(model, tmp_path_factory):
    ckpt = str(tmp_path_factory.mktemp("shard") / "pop.ckpt")
    assert _tune(model, ckpt, shards=2) == 0
    assert active_segments() == [], "sharded run leaked /dev/shm segments"
    return ckpt


@pytest.mark.determinism
def test_sharded_matches_unsharded(sharded_ckpt, unsharded_ckpt):
    sharded = load_population_checkpoint(sharded_ckpt)
    unsharded = load_population_checkpoint(unsharded_ckpt)
    assert sharded.next_steps == unsharded.next_steps == [STEPS] * N
    for i, (a, b) in enumerate(zip(sharded.sessions, unsharded.sessions)):
        assert sessions_equal(a, b), f"member {i} diverged under --shards 2"


@pytest.mark.determinism
def test_uneven_shards_match(model, tmp_path, unsharded_ckpt):
    """3 shards over 4 members (sizes 2/1/1) — the remainder path."""
    ckpt = str(tmp_path / "pop3.ckpt")
    assert _tune(model, ckpt, shards=3) == 0
    sharded = load_population_checkpoint(ckpt)
    unsharded = load_population_checkpoint(unsharded_ckpt)
    for a, b in zip(sharded.sessions, unsharded.sessions):
        assert sessions_equal(a, b)
    assert active_segments() == []


@pytest.mark.determinism
def test_sharded_member_matches_solo_cli(model, tmp_path, sharded_ckpt):
    """Chain to the sequential contract: sharded member 0 == the solo
    run with member 0's derived seed."""
    seed = population_seed_plan(SEED, N)[0]
    solo_ckpt = str(tmp_path / "solo.ckpt")
    assert main(
        ["tune", "--workload", "WC", "--model", model,
         "--seed", str(seed), "--steps", str(STEPS),
         "--fault-profile", "hostile", "--checkpoint", solo_ckpt]
    ) == 0
    solo = load_checkpoint(solo_ckpt)
    sharded = load_population_checkpoint(sharded_ckpt)
    assert sessions_equal(sharded.sessions[0], solo.session)


@pytest.mark.determinism
def test_sigterm_then_resume_at_any_shard_count(
    model, tmp_path, monkeypatch, capsys
):
    """SIGTERM between rounds freezes a clean boundary; the checkpoint
    resumes bit-identically whether finished sharded or unsharded."""
    full_ckpt = str(tmp_path / "full.ckpt")
    assert _tune(model, full_ckpt, shards=1, steps=4) == 0
    full = load_population_checkpoint(full_ckpt)

    calls = {"n": 0}
    original = _SP._emit_round

    def dying_emit(self, step, replies, round_wall):
        calls["n"] += 1
        if calls["n"] == 2:  # both lockstep rounds 1 and 2 are complete
            os.kill(os.getpid(), signal.SIGTERM)
        return original(self, step, replies, round_wall)

    monkeypatch.setattr(_SP, "_emit_round", dying_emit)
    ckpt = str(tmp_path / "killed.ckpt")
    rc = _tune(model, ckpt, shards=2, steps=4)
    monkeypatch.setattr(_SP, "_emit_round", original)
    assert rc == 130
    assert "checkpointed" in capsys.readouterr().out
    assert active_segments() == [], "interrupted run leaked /dev/shm"
    killed = load_population_checkpoint(ckpt)
    assert killed.next_steps == [2] * N

    ckpt_seq = str(tmp_path / "killed-seq.ckpt")
    shutil.copy(ckpt, ckpt_seq)

    # finish sharded
    assert main(
        ["tune", "--resume", ckpt, "--steps", "4", "--shards", "2"]
    ) == 0
    resumed = load_population_checkpoint(ckpt)
    assert resumed.next_steps == [4] * N
    for a, b in zip(resumed.sessions, full.sessions):
        assert sessions_equal(a, b)

    # finish the same snapshot unsharded
    assert main(["tune", "--resume", ckpt_seq, "--steps", "4"]) == 0
    resumed_seq = load_population_checkpoint(ckpt_seq)
    for a, b in zip(resumed_seq.sessions, full.sessions):
        assert sessions_equal(a, b)
    assert active_segments() == []


def _members(n):
    from repro.core.deepcat import DeepCAT
    from repro.factory import make_env

    tuners, envs = [], []
    for s in range(n):
        env = make_env("TS", "D2", seed=1000 + s)
        tuners.append(DeepCAT.from_env(env, seed=s, buffer_capacity=512))
        envs.append(env)
    return tuners, envs


def test_worker_sigkill_raises_shard_crash(monkeypatch):
    """A SIGKILLed worker must surface as ShardCrash on the next round,
    and the teardown still unlinks every segment."""
    calls = {"n": 0}
    original = _SP._emit_round

    def killing_emit(self, step, replies, round_wall):
        calls["n"] += 1
        if calls["n"] == 1:
            self._shards[0].process.kill()
            self._shards[0].process.join(timeout=10.0)
        return original(self, step, replies, round_wall)

    monkeypatch.setattr(_SP, "_emit_round", killing_emit)
    tuners, envs = _members(2)
    population = ShardedPopulation(
        tuners, envs, shards=2, fine_tune_updates=1
    )
    with pytest.raises(ShardCrash, match="shard 0"):
        population.tune(steps=STEPS)
    assert active_segments() == [], "crashed run leaked /dev/shm"


def test_population_reuse_rejected():
    tuners, envs = _members(2)
    population = ShardedPopulation(
        tuners, envs, shards=2, fine_tune_updates=1
    )
    population.tune(steps=1)
    with pytest.raises(RuntimeError, match="already ran"):
        population.tune(steps=1)


def test_cli_rejects_bad_shards(model, capsys):
    assert main(
        ["tune", "--workload", "WC", "--model", model,
         "--population", str(N), "--shards", "0"]
    ) == 2
    assert "--shards" in capsys.readouterr().err


def test_heartbeat_reports_round_time(model, tmp_path):
    """Sharded runs stamp the slowest shard's round time so staleness
    detection keys off rounds, not the N-times-faster step burst."""
    from repro.telemetry.heartbeat import default_stale_after, read_heartbeat

    hb = str(tmp_path / "hb.json")
    ckpt = str(tmp_path / "hb.ckpt")
    assert _tune(model, ckpt, shards=2, extra=("--heartbeat", hb)) == 0
    doc = read_heartbeat(hb)
    assert doc.get("round_s") is not None
    assert doc["round_s"] > 0.0
    assert default_stale_after(doc) >= max(3.0 * doc["round_s"], 10.0)
