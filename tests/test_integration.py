"""End-to-end integration tests: the full DeepCAT pipeline on the
simulated cluster, plus cross-tuner sanity properties.

These run with reduced budgets; the benchmark suite exercises the
paper-scale versions.
"""

import numpy as np
import pytest

from repro import DeepCAT, make_env
from repro.agents.base import AgentHyperParams
from repro.baselines import CDBTune, OtterTune
from repro.cluster.hardware import CLUSTER_B

HP = AgentHyperParams(batch_size=32, warmup_steps=32, hidden=(32, 32))


@pytest.fixture(scope="module")
def trained_deepcat():
    env = make_env("TS", "D1", seed=11)
    tuner = DeepCAT.from_env(env, seed=11, hp=HP)
    tuner.train_offline(env, iterations=500)
    return tuner


class TestDeepCATEndToEnd:
    def test_offline_training_learns(self, trained_deepcat):
        log = trained_deepcat.offline_log
        early = np.mean(log.rewards[:100])
        late = np.mean(log.rewards[-100:])
        assert late > early  # the policy improved during training

    def test_rdper_pools_populated(self, trained_deepcat):
        buf = trained_deepcat.buffer
        assert buf.high_size > 0 and buf.low_size > 0

    def test_online_beats_default_substantially(self, trained_deepcat):
        env = make_env("TS", "D1", seed=77)
        s = trained_deepcat.tune_online(env, steps=5)
        assert s.speedup_over_default > 1.5

    def test_online_cost_below_five_defaults(self, trained_deepcat):
        env = make_env("TS", "D1", seed=78)
        s = trained_deepcat.tune_online(env, steps=5)
        # tuned steps are far cheaper than evaluating the default 5 times
        assert s.evaluation_seconds < 5 * s.default_duration_s

    def test_recommendation_time_negligible(self, trained_deepcat):
        env = make_env("TS", "D1", seed=79)
        s = trained_deepcat.tune_online(env, steps=5)
        assert s.recommendation_seconds < 0.05 * s.evaluation_seconds

    def test_transfers_to_other_workload(self, trained_deepcat):
        env = make_env("PR", "D1", seed=80)
        s = trained_deepcat.tune_online(env, steps=5)
        assert s.speedup_over_default > 1.0  # still beats default

    def test_transfers_to_cluster_b(self, trained_deepcat):
        env = make_env("TS", "D1", seed=81, cluster=CLUSTER_B)
        s = trained_deepcat.tune_online(env, steps=5)
        assert s.speedup_over_default > 1.0


class TestCrossTunerSanity:
    def test_all_three_produce_comparable_sessions(self):
        env = make_env("WC", "D1", seed=3)
        dc = DeepCAT.from_env(env, seed=3, hp=HP)
        dc.train_offline(env, 300)
        env2 = make_env("WC", "D1", seed=4)
        cb = CDBTune.from_env(env2, seed=3, hp=HP)
        cb.train_offline(env2, 300)
        env3 = make_env("WC", "D1", seed=5)
        ot = OtterTune.from_env(env3, seed=3)
        ot.collect_offline(env3, "WC-D1", 120)

        sessions = [
            t.tune_online(make_env("WC", "D1", seed=50), steps=5)
            for t in (dc, cb, ot)
        ]
        names = {s.tuner for s in sessions}
        assert names == {"DeepCAT", "CDBTune", "OtterTune"}
        for s in sessions:
            assert s.n_steps == 5
            assert s.best_duration_s < s.default_duration_s

    def test_ottertune_recommendation_time_dominates_drl(self):
        env = make_env("WC", "D1", seed=6)
        ot = OtterTune.from_env(env, seed=6)
        ot.collect_offline(env, "WC-D1", 150)
        s_ot = ot.tune_online(make_env("WC", "D1", seed=60), steps=3)

        env2 = make_env("WC", "D1", seed=7)
        dc = DeepCAT.from_env(env2, seed=7, hp=HP)
        dc.train_offline(env2, 200)
        s_dc = dc.tune_online(make_env("WC", "D1", seed=61), steps=3)

        assert s_ot.recommendation_seconds > 5 * s_dc.recommendation_seconds
