"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(("a", "bb"), [("1", "2"), ("33", "4")])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, 2 rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_title(self):
        out = format_table(("x",), [("1",)], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table(("v",), [(3.14159,)])
        assert "3.14" in out and "3.14159" not in out

    def test_column_alignment(self):
        out = format_table(("col",), [("a",), ("bbbb",)])
        lines = out.splitlines()
        assert len(lines[0]) == len(lines[2]) == len(lines[3])

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_empty_rows_ok(self):
        out = format_table(("a",), [])
        assert "a" in out

    def test_int_cells(self):
        out = format_table(("n",), [(42,)])
        assert "42" in out
