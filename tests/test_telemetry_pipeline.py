"""End-to-end telemetry: instrumented DeepCAT sessions and the CLI."""

import json

import pytest

from repro.agents.base import AgentHyperParams
from repro.cli import main
from repro.core.deepcat import DeepCAT
from repro.factory import make_env
from repro.telemetry import RunContext, load_trace

FAST_HP = AgentHyperParams(batch_size=16, warmup_steps=8, hidden=(16, 16))


@pytest.fixture(scope="module")
def instrumented_session():
    """One short fully-instrumented offline+online DeepCAT run."""
    ctx = RunContext.recording(kind="smoke", seed=0)
    env = make_env("TS", "D1", seed=0)
    tuner = DeepCAT.from_env(env, seed=0, hp=FAST_HP)
    tuner.train_offline(env, 40, telemetry=ctx)
    tuner.tune_online(make_env("TS", "D1", seed=1000), steps=2,
                      telemetry=ctx)
    ctx.finish()
    return ctx


class TestDeepCATSmoke:
    def test_expected_metric_names_present(self, instrumented_session):
        names = set(instrumented_session.metrics.names())
        # Twin-Q counters, RDPER gauges, plus the per-layer signals.
        assert {
            "twinq.invocations_total",
            "twinq.iterations_total",
            "replay.rdper_high_size",
            "replay.rdper_low_size",
            "replay.rdper_realized_beta",
            "offline.steps_total",
            "online.steps_total",
            "agent.updates_total",
            "agent.critic_loss",
            "sim.evaluations_total",
            "sim.stage_seconds",
        } <= names

    def test_counters_consistent_with_run(self, instrumented_session):
        reg = instrumented_session.metrics
        assert reg.counter("offline.steps_total").value == 40
        online = reg.counter(
            "online.steps_total", labels={"tuner": "DeepCAT"}
        )
        assert online.value == 2
        # Twin-Q screens every online recommendation.
        assert reg.counter("twinq.invocations_total").value >= 2
        # 40 pushes with batch_size 16 => gradient updates happened.
        updates = reg.counter(
            "agent.updates_total", labels={"agent": "td3"}
        )
        assert updates.value > 0

    def test_rdper_gauges_reflect_pools(self, instrumented_session):
        reg = instrumented_session.metrics
        high = reg.gauge("replay.rdper_high_size").value
        low = reg.gauge("replay.rdper_low_size").value
        assert high + low > 0
        beta = reg.histogram("replay.rdper_realized_beta")
        assert beta.count > 0
        assert 0.0 <= beta.quantile(0.5) <= 1.0

    def test_trace_tree_well_formed(self, instrumented_session):
        roots = load_trace(
            instrumented_session.tracer.to_jsonl().splitlines()
        )
        names = [r["name"] for r in roots]
        assert "offline.train" in names
        assert "online.tune" in names

        train = next(r for r in roots if r["name"] == "offline.train")
        step_names = {c["name"] for c in train["children"]}
        assert step_names == {"offline.step"}
        leaf_names = {
            g["name"] for c in train["children"] for g in c["children"]
        }
        assert "offline.evaluate" in leaf_names
        assert "offline.update" in leaf_names

        tune = next(r for r in roots if r["name"] == "online.tune")
        online_leafs = {
            g["name"] for c in tune["children"] for g in c["children"]
        }
        assert {"online.recommend", "online.evaluate"} <= online_leafs
        # Every child's duration fits inside its parent (within jitter).
        for root in roots:
            child_total = sum(c["duration_s"] for c in root["children"])
            assert child_total <= root["duration_s"] * 1.05 + 1e-6

    def test_manifest_records_provenance(self, instrumented_session):
        m = instrumented_session.manifest
        assert m.seed == 0
        assert m.hyper_parameters["batch_size"] == 16
        assert m.hyper_parameters["use_twin_q"] is True
        assert m.cluster  # cluster spec captured
        stages = [s["stage"] for s in m.stages]
        assert "offline-train" in stages and "online-tune" in stages
        assert "online.tune" in m.wall_clock

    def test_prometheus_export_of_session(self, instrumented_session):
        text = instrumented_session.metrics.to_prometheus_text()
        assert "twinq_" not in text  # names keep their dots
        assert "offline.steps_total 40" in text
        assert 'online.steps_total{tuner="DeepCAT"} 2' in text


class TestTelemetryCLI:
    def _train(self, tmp_path, *extra):
        model = str(tmp_path / "m.npz")
        rc = main([
            "train", "--workload", "TS", "--iterations", "40",
            "--model", model, *extra,
        ])
        assert rc == 0
        return model

    def test_train_writes_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        prom = tmp_path / "run.prom"
        manifest = tmp_path / "run.manifest.json"
        self._train(
            tmp_path,
            "--trace", str(trace), "--metrics-out", str(prom),
            "--manifest", str(manifest),
        )
        out = capsys.readouterr().out
        assert out.count("telemetry: wrote") == 4  # + chrome sibling
        assert "offline.steps_total 40" in prom.read_text()
        assert load_trace(trace)[0]["name"] == "offline.train"
        data = json.loads(manifest.read_text())
        assert data["kind"] == "offline-train"
        assert data["workload"] == "TS"

    def test_tune_then_summary_and_dump(self, tmp_path, capsys):
        model = self._train(tmp_path)
        trace = tmp_path / "tune.jsonl"
        manifest = tmp_path / "tune.manifest.json"
        rc = main([
            "tune", "--workload", "TS", "--model", model, "--steps", "2",
            "--trace", str(trace), "--manifest", str(manifest),
        ])
        assert rc == 0
        capsys.readouterr()

        assert main(["telemetry", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "online.tune" in out
        assert "online.recommend" in out
        assert "ms" in out

        assert main(["telemetry", "summary", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "online-tune" in out
        assert "seed" in out

        assert main(["telemetry", "dump", str(trace)]) == 0
        dumped = json.loads(capsys.readouterr().out)
        assert dumped[0]["name"] == "online.tune"

    def test_summary_of_metrics_files(self, tmp_path, capsys):
        prom = tmp_path / "run.prom"
        mjson = tmp_path / "run.json"
        self._train(
            tmp_path, "--metrics-out", str(prom),
        )
        self._train(
            tmp_path, "--metrics-out", str(mjson),
        )
        capsys.readouterr()
        assert main(["telemetry", "summary", str(prom)]) == 0
        assert "offline.steps_total" in capsys.readouterr().out
        assert main(["telemetry", "summary", str(mjson)]) == 0
        assert "offline.steps_total" in capsys.readouterr().out

    def test_events_flag_writes_jsonl(self, tmp_path):
        events = tmp_path / "events.jsonl"
        self._train(tmp_path, "--events", str(events))
        records = [
            json.loads(line) for line in events.read_text().splitlines()
        ]
        kinds = {r["kind"] for r in records}
        assert "offline-step" in kinds
        assert "sim-stage" in kinds

    def test_missing_artifact_errors(self, tmp_path, capsys):
        rc = main(["telemetry", "summary", str(tmp_path / "nope.jsonl")])
        assert rc != 0

    def test_telemetry_off_leaves_no_files(self, tmp_path):
        self._train(tmp_path)
        leftovers = [
            p.name for p in tmp_path.iterdir() if p.suffix != ".npz"
        ]
        assert leftovers == []
