"""Determinism regression suite (``pytest -m determinism``).

The engine's contract is that ``jobs`` and the cache change wall-clock
only, never science.  These tests run the same tiny session grid through
the inline path, a 4-worker process pool, and a cache round-trip, and
require the :class:`~repro.core.result.OnlineSession` science to match
exactly — no tolerances.

``recommendation_s`` is the one intentionally nondeterministic field
(measured wall-clock of the recommender, see docs/experiments.md); it is
excluded from cross-run comparison but included in the cache round-trip,
where the bytes on disk are the single source.
"""

import math

import pytest

from repro.experiments.common import ExperimentScale, clear_model_cache
from repro.experiments.engine import (
    ExperimentEngine,
    ResultCache,
    session_task,
)

pytestmark = pytest.mark.determinism

TINY = ExperimentScale(
    name="tiny-determinism", offline_iterations=60, ottertune_samples=30,
    seeds=(0, 1), online_steps=3,
)


def _grid_tasks():
    """A small but heterogeneous grid: 2 tuners x 2 seeds."""
    return [
        session_task(workload="WC", dataset="D1", tuner=tuner, seed=seed,
                     scale=TINY)
        for tuner in ("DeepCAT", "CDBTune")
        for seed in TINY.seeds
    ]


def _science(session):
    """Every deterministic field of an OnlineSession."""
    return {
        "tuner": session.tuner,
        "workload": session.workload,
        "dataset": session.dataset,
        "default_duration_s": session.default_duration_s,
        "steps": [
            {
                "step": s.step,
                "duration_s": s.duration_s,
                "reward": s.reward,
                "success": s.success,
                "config": s.config,
                "action": s.action.tolist(),
                "twinq_iterations": s.twinq_iterations,
                "twinq_accepted": s.twinq_accepted,
                "original_q": s.original_q,
                "final_q": s.final_q,
            }
            for s in session.steps
        ],
    }


@pytest.fixture(autouse=True)
def _fresh_model_cache():
    clear_model_cache()
    yield
    clear_model_cache()


def test_jobs_4_matches_jobs_1():
    """The acceptance criterion: sharding never changes results."""
    inline = ExperimentEngine(jobs=1).run(_grid_tasks())
    clear_model_cache()
    parallel = ExperimentEngine(jobs=4).run(_grid_tasks())
    assert [_science(s) for s in inline] == [_science(s) for s in parallel]


def test_repeated_inline_runs_identical():
    a = ExperimentEngine(jobs=1).run(_grid_tasks())
    clear_model_cache()
    b = ExperimentEngine(jobs=1).run(_grid_tasks())
    assert [_science(s) for s in a] == [_science(s) for s in b]


def test_cache_round_trip_value_identical(tmp_path):
    """What goes into the cache comes back out, recommendation_s and all."""
    tasks = _grid_tasks()
    eng = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
    first = eng.run(tasks)
    assert eng.stats.executed == len(tasks)

    reloaded_eng = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
    reloaded = reloaded_eng.run(tasks)
    assert reloaded_eng.stats.cache_hits == len(tasks)
    assert reloaded_eng.stats.executed == 0

    for a, b in zip(first, reloaded):
        assert _science(a) == _science(b)
        # the cached copy preserves even the wall-clock field exactly
        for sa, sb in zip(a.steps, b.steps):
            assert math.isclose(sa.recommendation_s, sb.recommendation_s,
                                rel_tol=0.0, abs_tol=0.0)


def test_cached_and_computed_mix_preserves_order(tmp_path):
    """A warm cache plus new cells: submission order still holds."""
    tasks = _grid_tasks()
    warm = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
    warm.run(tasks[:2])

    eng = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
    out = eng.run(tasks)
    assert eng.stats.cache_hits == 2
    assert eng.stats.executed == len(tasks) - 2
    clear_model_cache()
    fresh = ExperimentEngine(jobs=1).run(tasks)
    assert [_science(s) for s in out] == [_science(s) for s in fresh]
