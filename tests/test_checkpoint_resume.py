"""Crash-recoverable session checkpoints: kill, resume, bit-identical.

The heavyweight equality test is marked ``determinism`` — it is the
robustness counterpart of the engine's sharding invariants: interrupting
a session must never change the science.
"""

import pickle

import pytest

from repro.agents.base import AgentHyperParams
from repro.cli import main
from repro.core.deepcat import DeepCAT
from repro.core.persistence import (
    CheckpointManager,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.resilience import ResiliencePolicy
from repro.core.result import sessions_equal
from repro.factory import make_env

FAST_HP = AgentHyperParams(batch_size=16, warmup_steps=8, hidden=(16, 16))


class _DyingStep:
    """Picklable ``env.step`` stand-in: raises ``KeyboardInterrupt`` once
    ``die_at`` evaluations have completed (a mid-session kill)."""

    def __init__(self, env, die_at):
        self.env = env
        self.die_at = die_at
        self.calls = 0

    def __call__(self, action):
        if self.calls == self.die_at:
            raise KeyboardInterrupt
        self.calls += 1
        return type(self.env).step(self.env, action)


def _trained(seed=7):
    env = make_env("WC", "D1", seed=3)
    tuner = DeepCAT.from_env(env, seed=seed, hp=FAST_HP)
    tuner.train_offline(env, 40)
    return tuner


@pytest.mark.determinism
class TestResumeEquality:
    """Kill at step k, resume, and demand field-exact equality with the
    uninterrupted run (wall-clock ``recommendation_s`` excluded)."""

    STEPS = 6
    KILL_AT = 3

    def _uninterrupted(self):
        tuner = _trained()
        env = make_env("WC", "D1", seed=11, fault_profile="hostile")
        return tuner.tune_online(
            env, steps=self.STEPS, resilience=ResiliencePolicy.default(seed=5)
        )

    def _killed_and_resumed(self, tmp_path):
        ckpt = tmp_path / "session.ckpt"
        tuner = _trained()
        env = make_env("WC", "D1", seed=11, fault_profile="hostile")
        res = ResiliencePolicy.default(seed=5)
        manager = CheckpointManager(ckpt, tuner, env, resilience=res)
        # the "kill": run only the first KILL_AT steps, checkpointing
        tuner.tune_online(
            env, steps=self.KILL_AT, resilience=res, checkpoint=manager
        )
        # a different process: everything restored from the snapshot
        restored = load_checkpoint(ckpt)
        assert restored.next_step == self.KILL_AT
        return restored.tuner.tune_online(
            restored.env,
            steps=self.STEPS,
            resilience=restored.resilience,
            session=restored.session,
            start_step=restored.next_step,
        )

    def test_resume_is_bit_identical(self, tmp_path):
        full = self._uninterrupted()
        resumed = self._killed_and_resumed(tmp_path)
        assert len(resumed.steps) == self.STEPS
        assert sessions_equal(full, resumed)

    def test_sessions_equal_detects_divergence(self):
        a = self._uninterrupted()
        tuner = _trained()
        env = make_env("WC", "D1", seed=12, fault_profile="hostile")
        b = tuner.tune_online(
            env, steps=self.STEPS, resilience=ResiliencePolicy.default(seed=5)
        )
        assert not sessions_equal(a, b)


class TestCheckpointMechanics:
    def _ready(self, tmp_path, steps=2):
        tuner = _trained()
        env = make_env("WC", "D1", seed=11, fault_profile="flaky")
        res = ResiliencePolicy.default(seed=5)
        ckpt = tmp_path / "s.ckpt"
        session = tuner.tune_online(
            env, steps=steps, resilience=res,
            checkpoint=CheckpointManager(ckpt, tuner, env, resilience=res),
        )
        return tuner, env, res, ckpt, session

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        _, _, _, ckpt, _ = self._ready(tmp_path)
        assert ckpt.exists()
        assert not ckpt.with_name(ckpt.name + ".tmp").exists()

    def test_roundtrip_restores_counters(self, tmp_path):
        tuner, env, res, ckpt, session = self._ready(tmp_path, steps=3)
        restored = load_checkpoint(ckpt)
        assert restored.next_step == len(restored.session.steps) == 3
        assert sessions_equal(restored.session, session)
        assert restored.resilience.guard.consecutive_failures == (
            res.guard.consecutive_failures
        )
        assert restored.resilience.guard.sigma_scale == res.guard.sigma_scale
        assert restored.resilience.watchdog.aborts == res.watchdog.aborts

    def test_manager_cadence(self, tmp_path):
        tuner = _trained()
        env = make_env("WC", "D1", seed=11)
        manager = CheckpointManager(tmp_path / "s.ckpt", tuner, env, every=2)
        tuner.tune_online(env, steps=5, checkpoint=manager)
        # steps 2 and 4 hit the cadence; 1, 3 and 5 do not
        assert manager.saves == 2
        assert load_checkpoint(manager.path).next_step == 4

    def test_manager_rejects_bad_cadence(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path / "s.ckpt", None, None, every=0)

    def test_keyboard_interrupt_writes_final_snapshot(self, tmp_path):
        tuner = _trained()
        env = make_env("WC", "D1", seed=11)
        ckpt = tmp_path / "s.ckpt"
        manager = CheckpointManager(
            ckpt, tuner, env, every=100
        )  # cadence never fires — only the interrupt handler saves
        env.step = _DyingStep(env, die_at=2)
        with pytest.raises(KeyboardInterrupt):
            tuner.tune_online(env, steps=5, checkpoint=manager)
        restored = load_checkpoint(ckpt)
        assert restored.next_step == len(restored.session.steps) == 2

    def test_resume_validates_start_step(self, tmp_path):
        tuner, env, res, ckpt, _ = self._ready(tmp_path, steps=2)
        restored = load_checkpoint(ckpt)
        with pytest.raises(ValueError):
            restored.tuner.tune_online(
                restored.env, steps=5, session=restored.session,
                start_step=restored.next_step + 1,
            )

    def test_version_mismatch_raises(self, tmp_path):
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(pickle.dumps({"checkpoint_version": 999}))
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(bad)

    def test_save_checkpoint_with_live_telemetry(self, tmp_path):
        """Live telemetry holds locks; the saver must detach it, pickle,
        and put it back."""
        from repro.telemetry.context import RunContext
        from repro.telemetry.metrics import MetricsRegistry
        from repro.telemetry.tracing import Tracer

        tuner = _trained()
        env = make_env("WC", "D1", seed=11)
        ctx = RunContext(tracer=Tracer(), metrics=MetricsRegistry())
        session = tuner.tune_online(env, steps=1, telemetry=ctx)
        before = env.runner.simulator.telemetry
        save_checkpoint(
            tmp_path / "s.ckpt", tuner=tuner, env=env,
            session=session, next_step=1,
        )
        # telemetry reattached after the detached pickle
        assert env.runner.simulator.telemetry is before


class TestCLIResume:
    def test_tune_checkpoint_then_resume(self, tmp_path, capsys):
        model = str(tmp_path / "m.npz")
        ckpt = str(tmp_path / "s.ckpt")
        assert main(
            ["train", "--workload", "WC", "--iterations", "80",
             "--model", model]
        ) == 0
        assert main(
            ["tune", "--workload", "WC", "--model", model, "--steps", "2",
             "--fault-profile", "hostile", "--checkpoint", ckpt]
        ) == 0
        assert main(["tune", "--resume", ckpt, "--steps", "4"]) == 0
        out = capsys.readouterr().out
        assert "resuming" in out
        restored = load_checkpoint(ckpt)
        assert restored.next_step == 4

    def test_resume_of_finished_session_is_noop(self, tmp_path, capsys):
        model = str(tmp_path / "m.npz")
        ckpt = str(tmp_path / "s.ckpt")
        main(["train", "--workload", "WC", "--iterations", "80",
              "--model", model])
        main(["tune", "--workload", "WC", "--model", model, "--steps", "2",
              "--checkpoint", ckpt])
        assert main(["tune", "--resume", ckpt, "--steps", "2"]) == 0
        assert "nothing to do" in capsys.readouterr().out

    def test_tune_requires_model_or_resume(self, capsys):
        assert main(["tune", "--workload", "WC"]) == 2
