"""Population equivalence suite: lockstep == sequential, bit for bit.

The population stack has three layers, each pinned here against its
scalar counterpart:

* :class:`repro.nn.population.StackedSequential` /
  :class:`repro.agents.population.PopulationTD3View` — the batched
  tensor math must match the per-agent forward passes exactly;
* :class:`repro.envs.population.VectorTuningEnv` — the shared
  simulator pass must consume every environment's RNG streams in the
  scalar order (hypothesis sweep over N, actions, and fault presets);
* :class:`repro.core.population.PopulationTuner` — full sessions
  (Twin-Q screening, resilience, fine-tune updates, checkpoints) must
  satisfy :func:`repro.core.result.sessions_equal` against N sequential
  :meth:`OnlineTuner.tune` runs.

A population that is fast but not bit-identical is a different
algorithm; these tests gate the feature.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.agents.population import PopulationTD3View
from repro.agents.td3 import TD3Agent
from repro.core.deepcat import DeepCAT
from repro.core.population import (
    PopulationTuner,
    population_seed_plan,
)
from repro.core.resilience import ResiliencePolicy
from repro.core.result import sessions_equal
from repro.envs.population import VectorTuningEnv
from repro.factory import make_env
from repro.nn.population import StackedSequential
from repro.replay.base import Transition

FAULT_PRESETS = (None, "flaky", "degraded", "hostile")


# ----------------------------------------------------------- helpers


def _member_envs(n, *, workload="TS", dataset="D2", fault_profile=None):
    return [
        make_env(
            workload, dataset, seed=1000 + s, fault_profile=fault_profile
        )
        for s in range(n)
    ]


def _prefill(tuner, env, n=20, seed=0):
    """Push ``n`` synthetic transitions so fine-tune updates engage."""
    rng = np.random.default_rng(seed ^ 0xABCDEF)
    dim, act = env.state.shape[0], env.space.dim
    for _ in range(n):
        tuner.buffer.push(
            Transition(
                state=rng.uniform(size=dim),
                action=rng.uniform(size=act),
                reward=float(rng.uniform(-1.0, 1.0)),
                next_state=rng.uniform(size=dim),
            )
        )


def _deepcats(n, envs, *, prefill=0, **kwargs):
    kwargs.setdefault("buffer_capacity", 512)
    tuners = []
    for s, env in enumerate(envs):
        tuner = DeepCAT.from_env(env, seed=s, **kwargs)
        if prefill:
            _prefill(tuner, env, n=prefill, seed=s)
        tuners.append(tuner)
    return tuners


def _assert_outcomes_equal(a, b):
    np.testing.assert_array_equal(a.state, b.state)
    np.testing.assert_array_equal(a.action, b.action)
    assert a.reward == b.reward
    np.testing.assert_array_equal(a.next_state, b.next_state)
    assert a.duration_s == b.duration_s
    assert a.success == b.success
    assert a.config == b.config
    assert a.faults == b.faults


# ------------------------------------------------- nn / agent layers


@pytest.mark.determinism
def test_stacked_sequential_matches_per_net_forward():
    rng = np.random.default_rng(0)
    agents = [TD3Agent(9, 32, np.random.default_rng(100 + i))
              for i in range(6)]
    stacked = StackedSequential([a.actor for a in agents])
    x = rng.uniform(-1.0, 1.0, (6, 17, 9))
    out = stacked.forward(x)
    for i, agent in enumerate(agents):
        np.testing.assert_array_equal(out[i], agent.actor.forward(x[i]))


@pytest.mark.determinism
def test_stacked_views_track_scalar_updates():
    """Per-agent fine-tune updates must write through to the stacked
    storage — a batched forward after a scalar update sees new weights."""
    agents = [TD3Agent(9, 32, np.random.default_rng(i)) for i in range(3)]
    stacked = StackedSequential([a.actor for a in agents])
    x = np.random.default_rng(1).uniform(size=(3, 4, 9))
    before = stacked.forward(x).copy()
    # Mutate agent 1's first layer in place, as Adam does.
    agents[1].actor.layers[0].weight.data -= 0.05
    after = stacked.forward(x)
    np.testing.assert_array_equal(after[0], before[0])
    np.testing.assert_array_equal(after[2], before[2])
    assert not np.array_equal(after[1], before[1])
    np.testing.assert_array_equal(after[1], agents[1].actor.forward(x[1]))


@pytest.mark.determinism
def test_population_view_matches_scalar_queries():
    n = 5
    agents = [TD3Agent(9, 32, np.random.default_rng(10 + i))
              for i in range(n)]
    view = PopulationTD3View(agents)
    rng = np.random.default_rng(2)
    states = rng.uniform(size=(n, 9))
    actions = rng.uniform(size=(n, 32))
    cands = rng.uniform(size=(n, 64, 32))

    acts = view.act(states)
    minqs = view.min_q(states, actions)
    rows = view.twin_q_rows(states, cands).copy()
    for i, agent in enumerate(agents):
        np.testing.assert_array_equal(
            acts[i], agent.act(states[i], explore=False)
        )
        assert minqs[i] == agent.min_q(states[i], actions[i])
        np.testing.assert_array_equal(
            rows[i], agent.twin_q_batch(states[i], cands[i])
        )


def test_population_view_rejects_shared_or_mismatched_agents():
    a = TD3Agent(9, 32, np.random.default_rng(0))
    with pytest.raises(ValueError, match="distinct"):
        PopulationTD3View([a, a])
    b = TD3Agent(7, 32, np.random.default_rng(1))
    with pytest.raises(ValueError, match="dimensions"):
        PopulationTD3View([a, b])
    with pytest.raises(ValueError, match="at least one"):
        PopulationTD3View([])


# ------------------------------------------------- environment layer


@pytest.mark.determinism
@given(
    n=st.integers(min_value=1, max_value=16),
    profile=st.sampled_from(FAULT_PRESETS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_vector_env_step_matches_sequential(n, profile, seed):
    """One shared population pass == N scalar env.step calls, field for
    field, across every fault preset and random knob configurations."""
    envs_a = _member_envs(n, fault_profile=profile)
    envs_b = _member_envs(n, fault_profile=profile)
    venv = VectorTuningEnv(envs_a)
    rng = np.random.default_rng(seed)
    for _ in range(2):
        actions = np.stack(
            [env.space.sample_vector(rng) for env in envs_b]
        )
        batch = venv.step(actions)
        scalar = [env.step(actions[i]) for i, env in enumerate(envs_b)]
        for a, b in zip(batch, scalar):
            _assert_outcomes_equal(a, b)
    for ea, eb in zip(envs_a, envs_b):
        assert ea.total_evaluation_seconds == eb.total_evaluation_seconds
        np.testing.assert_array_equal(ea.observation, eb.observation)


@pytest.mark.determinism
def test_vector_env_partial_indices_step_only_selected_members():
    envs_a = _member_envs(4)
    envs_b = _member_envs(4)
    venv = VectorTuningEnv(envs_a)
    rng = np.random.default_rng(3)
    actions = np.stack([env.space.sample_vector(rng) for env in envs_a])
    idle_evals = envs_a[2].runner.simulator.evaluation_count
    out = venv.step(actions[[1, 3]], indices=[1, 3])
    assert len(out) == 2
    _assert_outcomes_equal(out[0], envs_b[1].step(actions[1]))
    _assert_outcomes_equal(out[1], envs_b[3].step(actions[3]))
    # Unselected members' streams must be untouched.
    np.testing.assert_array_equal(envs_a[0].observation,
                                  envs_b[0].observation)
    assert envs_a[2].runner.simulator.evaluation_count == idle_evals


def test_vector_env_rejects_duplicate_envs():
    env = make_env("WC", "D1", seed=1)
    with pytest.raises(ValueError, match="distinct"):
        VectorTuningEnv([env, env])


# -------------------------------------------------- seed plan


def test_population_seed_plan_is_spawn_derived_and_stable():
    plan = population_seed_plan(42, 8)
    assert len(plan) == 8
    assert len(set(plan)) == 8
    assert plan == population_seed_plan(42, 8)
    # Prefix stability: growing the population keeps existing members.
    assert population_seed_plan(42, 4) == plan[:4]
    expected = [
        int(c.generate_state(1, dtype=np.uint32)[0])
        for c in np.random.SeedSequence(42).spawn(8)
    ]
    assert plan == expected
    with pytest.raises(ValueError):
        population_seed_plan(42, 0)


# -------------------------------------------------- full tuner layer


def _sequential_sessions(n, *, fault_profile=None, resilience=False,
                         prefill=0, steps=4, fine_tune_updates=0,
                         **deepcat_kwargs):
    envs = _member_envs(n, fault_profile=fault_profile)
    tuners = _deepcats(n, envs, prefill=prefill, **deepcat_kwargs)
    sessions = []
    for s, (tuner, env) in enumerate(zip(tuners, envs)):
        res = (
            ResiliencePolicy.default(seed=s) if resilience else None
        )
        sessions.append(
            tuner.tune_online(
                env, steps=steps, fine_tune_updates=fine_tune_updates,
                resilience=res,
            )
        )
    return sessions


def _population_sessions(n, *, fault_profile=None, resilience=False,
                         prefill=0, steps=4, fine_tune_updates=0,
                         **deepcat_kwargs):
    envs = _member_envs(n, fault_profile=fault_profile)
    tuners = _deepcats(n, envs, prefill=prefill, **deepcat_kwargs)
    resiliences = (
        [ResiliencePolicy.default(seed=s) for s in range(n)]
        if resilience
        else None
    )
    population = PopulationTuner.from_deepcat(
        tuners, envs, fine_tune_updates=fine_tune_updates,
        resiliences=resiliences,
    )
    return population.tune(steps=steps)


@pytest.mark.determinism
@pytest.mark.parametrize("profile", FAULT_PRESETS,
                         ids=lambda p: p or "clean")
def test_population_tune_matches_sequential(profile):
    """The tentpole contract: a population of 3 == 3 sequential
    ``tune_online`` runs under every fault preset.

    Faulted presets run with the default resilience policy, as every
    production entry point does (NaN observations must be sanitized
    before they reach the actor).
    """
    resilience = profile is not None
    seq = _sequential_sessions(3, fault_profile=profile,
                               resilience=resilience)
    pop = _population_sessions(3, fault_profile=profile,
                               resilience=resilience)
    for a, b in zip(pop, seq):
        assert sessions_equal(a, b)


@pytest.mark.determinism
def test_population_tune_matches_sequential_with_resilience():
    """Retries, watchdog aborts, state repairs, and guard fallbacks must
    interleave RNG identically under the hostile preset."""
    seq = _sequential_sessions(3, fault_profile="hostile",
                               resilience=True, steps=5)
    pop = _population_sessions(3, fault_profile="hostile",
                               resilience=True, steps=5)
    for a, b in zip(pop, seq):
        assert sessions_equal(a, b)
    assert any(s.attempts > 1 or s.aborted
               for session in seq for s in session.steps), (
        "hostile preset produced no resilience interventions; the test "
        "no longer exercises the retry path"
    )


@pytest.mark.determinism
def test_population_tune_matches_sequential_with_fine_tune():
    """Warm buffers engage per-member agent updates between steps; the
    updated weights must flow through the stacked views."""
    from repro.agents.base import AgentHyperParams

    kwargs = dict(hp=AgentHyperParams(batch_size=16), prefill=20,
                  fine_tune_updates=2)
    seq = _sequential_sessions(3, **kwargs)
    pop = _population_sessions(3, **kwargs)
    for a, b in zip(pop, seq):
        assert sessions_equal(a, b)


@pytest.mark.determinism
def test_population_tune_matches_sequential_no_twinq():
    seq = _sequential_sessions(2, use_twin_q=False)
    pop = _population_sessions(2, use_twin_q=False)
    for a, b in zip(pop, seq):
        assert sessions_equal(a, b)


@pytest.mark.determinism
@given(n=st.integers(min_value=1, max_value=6))
@settings(max_examples=6, deadline=None)
def test_population_size_sweep_matches_sequential(n):
    """Bit-identity cannot depend on population size."""
    seq = _sequential_sessions(n, steps=2)
    pop = _population_sessions(n, steps=2)
    for a, b in zip(pop, seq):
        assert sessions_equal(a, b)


@pytest.mark.determinism
def test_population_member_i_equals_solo_run():
    """Member i's session must not depend on who else is in the
    population — the independence half of the contract."""
    envs = _member_envs(3)
    tuners = _deepcats(3, envs)
    pop = PopulationTuner.from_deepcat(tuners, envs).tune(steps=3)

    env_solo = _member_envs(3)[1]
    tuner_solo = _deepcats(3, _member_envs(3))[1]
    solo = tuner_solo.tune_online(env_solo, steps=3,
                                  fine_tune_updates=2)
    # from_deepcat defaults mirror tune_online's defaults.
    assert sessions_equal(pop[1], solo)


def test_population_tuner_validates_members():
    envs = _member_envs(2)
    tuners = _deepcats(2, envs)
    with pytest.raises(ValueError, match="one environment per tuner"):
        PopulationTuner.from_deepcat(tuners, envs[:1])
    with pytest.raises(ValueError, match="at least one"):
        PopulationTuner([])
    population = PopulationTuner.from_deepcat(tuners, envs)
    with pytest.raises(ValueError, match="steps must be positive"):
        population.tune(steps=0)


def test_population_twinq_diagnostics_recorded():
    sessions = _population_sessions(2, steps=3)
    for session in sessions:
        for s in session.steps:
            assert s.twinq_iterations is not None
            assert s.twinq_accepted is not None
            assert s.original_q is not None
            assert s.final_q is not None
