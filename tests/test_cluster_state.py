"""Tests for the uptime-style load-average state tracker."""

import numpy as np
import pytest

from repro.cluster.hardware import CLUSTER_A
from repro.cluster.state import ClusterStateTracker


class TestClusterStateTracker:
    def make(self):
        return ClusterStateTracker(CLUSTER_A, np.random.default_rng(0))

    def test_dim(self):
        assert self.make().dim == 9  # 3 nodes x (load1, load5, load15)

    def test_reset_gives_idle_state(self):
        s = self.make().reset()
        assert s.shape == (9,)
        assert np.all(s >= 0) and np.all(s < 0.2)  # idle loads are small

    def test_observe_reflects_demand(self):
        t = self.make()
        t.reset()
        busy = t.observe(np.full(3, 14.0))  # near-saturated 16-core nodes
        assert busy[:3].mean() > 0.7

    def test_load5_lags_load1(self):
        t = self.make()
        t.reset()
        s = t.observe(np.full(3, 12.0))
        load1, load5 = s[:3], s[3:6]
        assert np.all(load5 < load1)  # decaying average lags a step change

    def test_load15_lags_load5(self):
        t = self.make()
        t.reset()
        s = t.observe(np.full(3, 12.0))
        assert np.all(s[6:9] < s[3:6])

    def test_history_decays_back(self):
        t = self.make()
        t.reset()
        t.observe(np.full(3, 15.0))
        for _ in range(20):
            s = t.observe(np.full(3, 0.5))
        assert np.all(s < 0.2)

    def test_wrong_shape_rejected(self):
        t = self.make()
        with pytest.raises(ValueError):
            t.observe(np.zeros(2))

    def test_state_clipped(self):
        t = self.make()
        s = t.observe(np.full(3, 1000.0))
        assert np.all(s <= 4.0)

    def test_deterministic_given_seed(self):
        a = ClusterStateTracker(CLUSTER_A, np.random.default_rng(5))
        b = ClusterStateTracker(CLUSTER_A, np.random.default_rng(5))
        a.reset(), b.reset()
        np.testing.assert_array_equal(
            a.observe(np.full(3, 4.0)), b.observe(np.full(3, 4.0))
        )
