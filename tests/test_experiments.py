"""Tests for the experiment harness (tiny budgets — shape, not science)."""

import numpy as np
import pytest

from repro.experiments.common import (
    SCALES,
    ExperimentScale,
    clear_model_cache,
    fork_tuner,
    get_scale,
    train_cdbtune,
    train_deepcat,
    train_ottertune,
)
from repro.experiments import (
    fig2_cdf,
    fig3_twinq_trend,
    fig5_twinq_ablation,
    fig11_beta,
    fig12_qth,
    tables,
)
from repro.experiments.sessions import ALL_PAIRS, QUICK_PAIRS

TINY = ExperimentScale(
    name="tiny", offline_iterations=120, ottertune_samples=40, seeds=(0,),
    online_steps=3,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_model_cache()
    yield
    clear_model_cache()


class TestScales:
    def test_presets_exist(self):
        assert {"quick", "standard", "full"} <= set(SCALES)

    def test_get_scale_by_name_and_instance(self):
        assert get_scale("quick").name == "quick"
        assert get_scale(TINY) is TINY
        with pytest.raises(KeyError):
            get_scale("nope")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ExperimentScale("x", 0, 10, (0,))
        with pytest.raises(ValueError):
            ExperimentScale("x", 10, 10, ())


class TestModelCache:
    def test_deepcat_cached(self):
        a = train_deepcat("TS", "D1", 0, TINY)
        b = train_deepcat("TS", "D1", 0, TINY)
        assert a is b

    def test_distinct_keys_distinct_models(self):
        a = train_deepcat("TS", "D1", 0, TINY)
        b = train_deepcat("TS", "D1", 1, TINY)
        c = train_deepcat("TS", "D1", 0, TINY, use_rdper=False)
        assert a is not b and a is not c

    def test_fork_is_independent(self):
        a = train_deepcat("TS", "D1", 0, TINY)
        f = fork_tuner(a)
        f.agent.actor.parameters()[0].data += 1.0
        assert not np.allclose(
            f.agent.actor.parameters()[0].data,
            a.agent.actor.parameters()[0].data,
        )

    def test_cdbtune_and_ottertune_cached(self):
        assert train_cdbtune("TS", "D1", 0, TINY) is train_cdbtune(
            "TS", "D1", 0, TINY
        )
        assert train_ottertune("TS", "D1", 0, TINY) is train_ottertune(
            "TS", "D1", 0, TINY
        )

    def test_clear(self):
        a = train_deepcat("TS", "D1", 0, TINY)
        clear_model_cache()
        assert train_deepcat("TS", "D1", 0, TINY) is not a


class TestTables:
    def test_table1_contents(self):
        out = tables.table1()
        assert "TeraSort" in out and "Million Points" in out

    def test_table2_counts(self):
        out = tables.table2()
        assert "20*" in out and "7" in out and "5" in out


class TestFig2:
    def test_cdf_properties(self):
        r = fig2_cdf.run(n_samples=60, seed=0)
        assert r.relative_perf.min() == pytest.approx(1.0)
        assert r.cumulative_prob[-1] == pytest.approx(1.0)
        assert r.prob_within(1.0) >= 1 / 60
        # monotone CDF queries
        assert r.prob_within(1.2) <= r.prob_within(2.0)

    def test_sparsity_shape_like_paper(self):
        r = fig2_cdf.run(n_samples=200, seed=0)
        # easy to beat default, hard to approach the optimum
        assert r.prob_within(1.2) < 0.15
        assert r.prob_within(3.0) > 0.4

    def test_format(self):
        out = fig2_cdf.format_result(fig2_cdf.run(n_samples=40, seed=1))
        assert "Figure 2" in out

    def test_invalid(self):
        with pytest.raises(ValueError):
            fig2_cdf.run(n_samples=0)


class TestFig3:
    def test_series_aligned(self):
        r = fig3_twinq_trend.run(TINY)
        assert len(r.min_q) == len(r.reward) == TINY.offline_iterations
        assert np.isfinite(r.correlation)

    def test_format(self):
        out = fig3_twinq_trend.format_result(fig3_twinq_trend.run(TINY))
        assert "Figure 3" in out


class TestFig5:
    def test_shapes_and_totals(self):
        r = fig5_twinq_ablation.run(TINY)
        assert len(r.steps_with) == TINY.online_steps
        assert r.total_with == pytest.approx(sum(r.steps_with))
        assert r.total_without == pytest.approx(sum(r.steps_without))
        assert "Figure 5" in fig5_twinq_ablation.format_result(r)


class TestFig11And12:
    def test_beta_sweep_runs(self):
        r = fig11_beta.run(TINY, betas=(0.2, 0.6))
        assert len(r.best) == 2
        assert r.best_beta() in (0.2, 0.6)
        assert "Figure 11" in fig11_beta.format_result(r)

    def test_qth_sweep_runs(self):
        r = fig12_qth.run(TINY, thresholds=(0.1, 0.3))
        assert len(r.total_cost) == 2
        assert r.cheapest_threshold() in (0.1, 0.3)
        assert "Figure 12" in fig12_qth.format_result(r)


class TestPairs:
    def test_all_pairs_cover_table1(self):
        assert len(ALL_PAIRS) == 12
        assert len(QUICK_PAIRS) == 4
        assert set(w for w, _ in ALL_PAIRS) == {"WC", "TS", "PR", "KM"}
