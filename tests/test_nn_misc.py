"""Tests for repro.nn losses, target updates and noise processes."""

import numpy as np
import pytest

from repro.nn.losses import mse_loss
from repro.nn.network import MLP
from repro.nn.noise import GaussianNoise, OrnsteinUhlenbeckNoise
from repro.nn.target import hard_update, soft_update


class TestMseLoss:
    def test_zero_at_match(self):
        x = np.ones((3, 1))
        loss, grad = mse_loss(x, x)
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_value(self):
        loss, _ = mse_loss(np.array([[2.0]]), np.array([[0.0]]))
        assert loss == pytest.approx(4.0)

    def test_gradient_scaling_by_batch(self):
        pred = np.array([[1.0], [1.0]])
        target = np.zeros_like(pred)
        _, grad = mse_loss(pred, target)
        np.testing.assert_allclose(grad, [[1.0], [1.0]])  # 2*(1)/2

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.zeros((2, 1)), np.zeros((3, 1)))


class TestTargetUpdates:
    def test_hard_update_copies(self, rng):
        a = MLP(2, 2, hidden=(3,), rng=rng)
        b = MLP(2, 2, hidden=(3,), rng=np.random.default_rng(1))
        hard_update(b, a)
        x = np.ones((1, 2))
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_soft_update_moves_fractionally(self, rng):
        a = MLP(2, 2, hidden=(3,), rng=rng)
        b = MLP(2, 2, hidden=(3,), rng=np.random.default_rng(1))
        before = b.parameters()[0].data.copy()
        target_val = a.parameters()[0].data
        soft_update(b, a, tau=0.25)
        after = b.parameters()[0].data
        np.testing.assert_allclose(after, 0.75 * before + 0.25 * target_val)

    def test_soft_update_tau_one_equals_hard(self, rng):
        a = MLP(2, 2, hidden=(3,), rng=rng)
        b = MLP(2, 2, hidden=(3,), rng=np.random.default_rng(1))
        soft_update(b, a, tau=1.0)
        x = np.ones((1, 2))
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_invalid_tau(self, rng):
        a = MLP(2, 2, rng=rng)
        with pytest.raises(ValueError):
            soft_update(a, a, tau=0.0)

    def test_repeated_soft_updates_converge(self, rng):
        a = MLP(2, 2, hidden=(3,), rng=rng)
        b = MLP(2, 2, hidden=(3,), rng=np.random.default_rng(1))
        for _ in range(600):
            soft_update(b, a, tau=0.05)
        x = np.ones((1, 2))
        np.testing.assert_allclose(a.forward(x), b.forward(x), atol=1e-8)


class TestGaussianNoise:
    def test_shape(self, rng):
        n = GaussianNoise(5, sigma=0.2, rng=rng)
        assert n.sample().shape == (5,)

    def test_decay_to_floor(self, rng):
        n = GaussianNoise(2, sigma=1.0, rng=rng, sigma_min=0.1, decay=0.5)
        for _ in range(20):
            n.sample()
        assert n.sigma == pytest.approx(0.1)

    def test_no_decay_by_default(self, rng):
        n = GaussianNoise(2, sigma=0.3, rng=rng)
        n.sample()
        assert n.sigma == 0.3

    def test_reset(self, rng):
        n = GaussianNoise(2, sigma=1.0, rng=rng, decay=0.5)
        n.sample()
        n.reset(0.7)
        assert n.sigma == 0.7

    def test_statistics(self):
        n = GaussianNoise(10000, sigma=0.5, rng=np.random.default_rng(0))
        s = n.sample()
        assert abs(s.mean()) < 0.02
        assert s.std() == pytest.approx(0.5, rel=0.05)

    def test_invalid(self, rng):
        with pytest.raises(ValueError):
            GaussianNoise(2, sigma=-1.0, rng=rng)
        with pytest.raises(ValueError):
            GaussianNoise(2, sigma=1.0, rng=rng, decay=0.0)


class TestOUNoise:
    def test_temporal_correlation(self):
        n = OrnsteinUhlenbeckNoise(1, rng=np.random.default_rng(0), sigma=0.2)
        xs = np.array([n.sample()[0] for _ in range(2000)])
        lag1 = np.corrcoef(xs[:-1], xs[1:])[0, 1]
        assert lag1 > 0.5  # strongly autocorrelated

    def test_reset(self, rng):
        n = OrnsteinUhlenbeckNoise(3, rng=rng, mu=0.0)
        n.sample()
        n.reset()
        np.testing.assert_array_equal(n._state, 0.0)

    def test_mean_reversion(self):
        n = OrnsteinUhlenbeckNoise(
            1, rng=np.random.default_rng(1), mu=0.0, theta=0.5, sigma=0.0
        )
        n._state[...] = 10.0
        for _ in range(50):
            last = n.sample()
        assert abs(last[0]) < 0.1

    def test_invalid(self, rng):
        with pytest.raises(ValueError):
            OrnsteinUhlenbeckNoise(2, rng=rng, sigma=-1.0)
