"""Tests for reduced configuration spaces and the white-box extension."""

import numpy as np
import pytest

from repro.config.reduced import ReducedConfigurationSpace
from repro.core.deepcat import DeepCAT
from repro.agents.base import AgentHyperParams
from repro.cluster.hardware import CLUSTER_A
from repro.envs.tuning_env import TuningEnv
from repro.extensions.whitebox import build_whitebox_plan
from repro.sim.engine import SparkSimulator
from repro.workloads.registry import get_workload

FREE = ["spark.executor.cores", "spark.executor.memory", "spark.serializer"]


@pytest.fixture
def reduced(space):
    return ReducedConfigurationSpace(space, FREE)


class TestReducedConfigurationSpace:
    def test_dim_is_free_count(self, reduced):
        assert reduced.dim == 3
        assert set(reduced.names) == set(FREE)

    def test_decode_is_complete(self, reduced, space, rng):
        config = reduced.decode(reduced.sample_vector(rng))
        assert set(config) == set(space.names)  # full pipeline config

    def test_pinned_values_are_defaults_by_default(self, reduced, space):
        config = reduced.decode(np.full(3, 0.5))
        assert config["dfs.replication"] == space["dfs.replication"].default

    def test_explicit_pins(self, space):
        r = ReducedConfigurationSpace(
            space, FREE, pinned_values={"dfs.replication": 1}
        )
        config = r.decode(np.full(3, 0.5))
        assert config["dfs.replication"] == 1

    def test_pins_are_clipped(self, space):
        r = ReducedConfigurationSpace(
            space, FREE, pinned_values={"dfs.replication": 99}
        )
        assert r.pinned["dfs.replication"] == 3

    def test_encode_accepts_full_config(self, reduced, space):
        full = space.defaults()
        vec = reduced.encode(full)
        assert vec.shape == (3,)

    def test_encode_rejects_missing_free(self, reduced):
        with pytest.raises(KeyError):
            reduced.encode({"spark.executor.cores": 2})

    def test_roundtrip_free_part(self, reduced, rng):
        vec = reduced.sample_vector(rng)
        config = reduced.decode(vec)
        vec2 = reduced.encode(config)
        assert reduced.decode(vec2) == config

    def test_defaults_complete(self, reduced, space):
        assert set(reduced.defaults()) == set(space.names)

    def test_clip_config(self, reduced, space):
        cfg = reduced.defaults()
        cfg["spark.executor.cores"] = 999
        out = reduced.clip_config(cfg)
        assert out["spark.executor.cores"] == 8

    def test_cannot_pin_free_param(self, space):
        with pytest.raises(ValueError):
            ReducedConfigurationSpace(
                space, FREE, pinned_values={"spark.serializer": "kryo"}
            )

    def test_unknown_names_rejected(self, space):
        with pytest.raises(KeyError):
            ReducedConfigurationSpace(space, ["nope"])
        with pytest.raises(ValueError):
            ReducedConfigurationSpace(space, [])

    def test_works_as_env_space(self, reduced):
        env = TuningEnv(
            workload=get_workload("TS"),
            dataset="D1",
            cluster=CLUSTER_A,
            space=reduced,
            rng=np.random.default_rng(0),
            expected_speedup=1.5,
        )
        assert env.action_dim == 3
        out = env.step(np.full(3, 0.5))
        assert out.success in (True, False)
        assert set(out.config) == set(reduced.full_space.names)


class TestWhiteBoxPlan:
    @pytest.fixture
    def sim(self):
        return SparkSimulator(
            get_workload("TS"), "D1", CLUSTER_A,
            np.random.default_rng(0), noise_sigma=0.0,
        )

    def test_plan_shape(self, sim, space):
        plan = build_whitebox_plan(sim, space, top_k=10, n_points=5)
        assert len(plan.free_knobs) == 10
        assert len(plan.pinned_knobs) == space.dim - 10
        assert plan.probe_evaluations == 2 * space.dim * 5 + 3
        assert len(plan.sensitivities) == space.dim

    def test_free_knobs_are_most_sensitive(self, sim, space):
        plan = build_whitebox_plan(sim, space, top_k=8, n_points=5)
        spreads = {r.name: r.spread_s for r in plan.sensitivities}
        worst_free = min(spreads[n] for n in plan.free_knobs)
        best_pinned = max(spreads[n] for n in plan.pinned_knobs)
        assert worst_free >= best_pinned

    def test_pinned_base_not_worse_than_default(self, sim, space):
        plan = build_whitebox_plan(sim, space, top_k=10, n_points=7)
        # the pin-strategy guard keeps the reduced base competitive with
        # the framework default (straggler noise allowed)
        default = sim.evaluate(space.defaults())
        improved = sim.evaluate(plan.reduced_space.defaults())
        assert improved.success
        assert improved.duration_s < default.duration_s * 1.15

    def test_reduced_deepcat_trains(self, sim, space):
        plan = build_whitebox_plan(sim, space, top_k=6, n_points=5)
        env = TuningEnv(
            workload=get_workload("TS"), dataset="D1", cluster=CLUSTER_A,
            space=plan.reduced_space, rng=np.random.default_rng(1),
            expected_speedup=1.5,
        )
        tuner = DeepCAT.from_env(
            env, seed=0,
            hp=AgentHyperParams(batch_size=16, warmup_steps=8,
                                hidden=(16, 16)),
        )
        log = tuner.train_offline(env, 80)
        assert log.iterations == 80
        s = tuner.tune_online(env, steps=3)
        assert s.n_steps == 3

    def test_validation(self, sim, space):
        with pytest.raises(ValueError):
            build_whitebox_plan(sim, space, top_k=0)
        with pytest.raises(ValueError):
            build_whitebox_plan(sim, space, top_k=space.dim)
