"""Tests for the report generator's plumbing (no science-scale runs)."""

import pytest

from repro.experiments.report import _block, build_report


class TestReportHelpers:
    def test_block_wraps_in_fences(self):
        out = _block("hello")
        assert out.startswith("```\n")
        assert out.endswith("```\n")
        assert "hello" in out

    def test_build_report_rejects_unknown_scale(self):
        with pytest.raises(KeyError):
            build_report("warp-speed")


class TestReportCli:
    def test_module_main_writes_file(self, tmp_path, monkeypatch):
        # patch build_report so the CLI path is tested without a full run
        import repro.experiments.report as report_mod

        seen = {}

        def stub(scale, *, engine=None, **kwargs):
            seen["engine"] = engine
            return f"# stub ({scale})\n"

        monkeypatch.setattr(report_mod, "build_report", stub)
        out = tmp_path / "E.md"
        monkeypatch.setattr(
            "sys.argv",
            ["report", "--scale", "quick", "--output", str(out),
             "--cache-dir", str(tmp_path / "cache"), "--jobs", "2"],
        )
        report_mod.main()
        assert out.read_text().startswith("# stub (quick)")
        # main() built an engine from the CLI flags and passed it through
        assert seen["engine"] is not None
        assert seen["engine"].jobs == 2
        assert seen["engine"].cache is not None

    def test_module_main_no_cache_flag(self, tmp_path, monkeypatch):
        import repro.experiments.report as report_mod

        seen = {}

        def stub(scale, *, engine=None, **kwargs):
            seen["engine"] = engine
            return "# stub\n"

        monkeypatch.setattr(report_mod, "build_report", stub)
        out = tmp_path / "E.md"
        monkeypatch.setattr(
            "sys.argv",
            ["report", "--output", str(out), "--no-cache"],
        )
        report_mod.main()
        assert seen["engine"].cache is None
