"""Tests for the report generator's plumbing (no science-scale runs)."""

import pytest

from repro.experiments.report import _block, build_report


class TestReportHelpers:
    def test_block_wraps_in_fences(self):
        out = _block("hello")
        assert out.startswith("```\n")
        assert out.endswith("```\n")
        assert "hello" in out

    def test_build_report_rejects_unknown_scale(self):
        with pytest.raises(KeyError):
            build_report("warp-speed")


class TestReportCli:
    def test_module_main_writes_file(self, tmp_path, monkeypatch):
        # patch build_report so the CLI path is tested without a full run
        import repro.experiments.report as report_mod

        monkeypatch.setattr(
            report_mod, "build_report", lambda scale: f"# stub ({scale})\n"
        )
        out = tmp_path / "E.md"
        monkeypatch.setattr(
            "sys.argv",
            ["report", "--scale", "quick", "--output", str(out)],
        )
        report_mod.main()
        assert out.read_text().startswith("# stub (quick)")
