"""Property and edge-case tests for the resilience layer.

RetryPolicy schedules are property-tested with hypothesis (monotone
backoff, bounded jitter, seed-deterministic); the deterministic failure
semantics in :mod:`repro.sim.faults` get explicit boundary coverage.
"""

import numpy as np
import pytest

from repro.core.resilience import (
    EvaluationWatchdog,
    ResiliencePolicy,
    RetryPolicy,
    SafetyGuard,
    sanitize_state,
)
from repro.sim.faults import (
    TASK_MAX_FAILURES,
    oom_attempt_charge,
    vmem_kill_penalty,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=8),
    base_delay_s=st.floats(min_value=0.0, max_value=30.0,
                           allow_nan=False, allow_infinity=False),
    multiplier=st.floats(min_value=1.0, max_value=4.0,
                         allow_nan=False, allow_infinity=False),
    max_delay_s=st.floats(min_value=30.0, max_value=300.0,
                          allow_nan=False, allow_infinity=False),
    jitter=st.floats(min_value=0.0, max_value=0.5,
                     allow_nan=False, allow_infinity=False),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)


class TestRetryPolicyProperties:
    @given(policy=policies)
    @settings(max_examples=60, deadline=None)
    def test_nominal_delay_monotone_and_capped(self, policy):
        delays = [policy.nominal_delay(i) for i in range(8)]
        for earlier, later in zip(delays, delays[1:]):
            assert later >= earlier
        assert all(d <= policy.max_delay_s for d in delays)
        assert delays[0] == min(policy.base_delay_s, policy.max_delay_s)

    @given(policy=policies)
    @settings(max_examples=60, deadline=None)
    def test_jitter_bounded_around_nominal(self, policy):
        schedule = policy.schedule()
        assert len(schedule) == policy.max_attempts - 1
        for i, delay in enumerate(schedule):
            nominal = policy.nominal_delay(i)
            assert (1.0 - policy.jitter) * nominal <= delay
            assert delay <= (1.0 + policy.jitter) * nominal

    @given(policy=policies)
    @settings(max_examples=60, deadline=None)
    def test_same_seed_same_schedule(self, policy):
        assert policy.schedule() == policy.schedule()
        assert policy.schedule() == RetryPolicy(
            max_attempts=policy.max_attempts,
            base_delay_s=policy.base_delay_s,
            multiplier=policy.multiplier,
            max_delay_s=policy.max_delay_s,
            jitter=policy.jitter,
            seed=policy.seed,
        ).schedule()

    @given(seed_a=st.integers(0, 1000), seed_b=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_seed_is_the_only_jitter_source(self, seed_a, seed_b):
        a = RetryPolicy(max_attempts=5, jitter=0.4, seed=seed_a).schedule()
        b = RetryPolicy(max_attempts=5, jitter=0.4, seed=seed_b).schedule()
        if seed_a == seed_b:
            assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=10.0, max_delay_s=5.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy().nominal_delay(-1)

    def test_single_attempt_has_empty_schedule(self):
        assert RetryPolicy(max_attempts=1).schedule() == ()


class TestSimFaultBoundaries:
    def test_oom_charge_zero_stage(self):
        assert oom_attempt_charge(0.0) == 0.0

    def test_oom_charge_scales_with_attempts(self):
        assert oom_attempt_charge(10.0) == TASK_MAX_FAILURES * 0.5 * 10.0

    def test_oom_charge_rejects_negative(self):
        with pytest.raises(ValueError):
            oom_attempt_charge(-0.1)

    def test_vmem_penalty_at_threshold_is_clean(self):
        threshold = 1.9 + 0.3 * (1.0 - 1.0)
        assert vmem_kill_penalty(threshold, 1.0).penalty_factor == 1.0
        assert vmem_kill_penalty(threshold + 1.0, 1.0).penalty_factor == 1.0

    def test_vmem_penalty_just_below_threshold(self):
        threshold = 1.9 + 0.3 * (1.0 - 1.0)
        verdict = vmem_kill_penalty(threshold - 1e-6, 1.0)
        assert verdict.penalty_factor > 1.0
        # and bounded: deficit < 1 => factor < 1.8
        assert verdict.penalty_factor < 1.8

    def test_vmem_threshold_moves_with_deserialization(self):
        # fatter object graphs (java serializer) raise the safe ratio
        ratio = 2.0
        lean = vmem_kill_penalty(ratio, 1.0).penalty_factor
        fat = vmem_kill_penalty(ratio, 2.0).penalty_factor
        assert lean == 1.0 and fat > 1.0

    def test_vmem_rejects_nonpositive_ratio(self):
        with pytest.raises(ValueError):
            vmem_kill_penalty(0.0, 1.0)
        with pytest.raises(ValueError):
            vmem_kill_penalty(-1.0, 1.0)


class TestEvaluationWatchdog:
    def test_within_budget_charges_true_duration(self):
        wd = EvaluationWatchdog(k=4.0)
        verdict = wd.inspect(duration_s=30.0, default_duration_s=10.0)
        assert not verdict.aborted and verdict.charged_s == 30.0
        assert wd.aborts == 0

    def test_at_budget_boundary_not_aborted(self):
        wd = EvaluationWatchdog(k=4.0)
        verdict = wd.inspect(duration_s=40.0, default_duration_s=10.0)
        assert not verdict.aborted and verdict.charged_s == 40.0

    def test_over_budget_charges_the_cap(self):
        wd = EvaluationWatchdog(k=4.0)
        verdict = wd.inspect(duration_s=400.0, default_duration_s=10.0)
        assert verdict.aborted and verdict.charged_s == 40.0
        assert wd.aborts == 1

    def test_k_must_exceed_one(self):
        with pytest.raises(ValueError):
            EvaluationWatchdog(k=1.0)
        with pytest.raises(ValueError):
            EvaluationWatchdog(k=0.5)


class TestSafetyGuard:
    def test_fallback_needs_streak_and_a_known_good(self):
        guard = SafetyGuard(max_consecutive_failures=2)
        action = np.full(4, 0.5)
        guard.record(False, -1.0, action)
        guard.record(False, -1.0, action)
        # streak reached but no successful action recorded yet
        assert not guard.should_fallback
        with pytest.raises(RuntimeError):
            guard.trigger_fallback()
        guard.record(True, 0.8, action)
        assert guard.consecutive_failures == 0
        guard.record(False, -1.0, action)
        guard.record(False, -1.0, action)
        assert guard.should_fallback

    def test_trigger_returns_best_copy_and_decays_sigma(self):
        guard = SafetyGuard(max_consecutive_failures=1, sigma_decay=0.5)
        best = np.array([0.1, 0.9])
        guard.record(True, 1.0, best)
        guard.record(True, 0.2, np.array([0.5, 0.5]))  # worse, not kept
        guard.record(False, -1.0, best)
        fallback = guard.trigger_fallback()
        np.testing.assert_array_equal(fallback, best)
        assert fallback is not guard.best_action
        assert guard.fallbacks == 1 and guard.consecutive_failures == 0
        assert guard.sigma_scale == 0.5

    def test_effective_sigma_identity_then_floored(self):
        guard = SafetyGuard(
            max_consecutive_failures=1, sigma_decay=0.1, sigma_min=0.02
        )
        assert guard.effective_sigma(0.2) == 0.2
        guard.record(True, 1.0, np.zeros(2))
        guard.record(False, -1.0, np.zeros(2))
        guard.trigger_fallback()
        assert guard.effective_sigma(0.2) == pytest.approx(0.02)
        guard.record(False, -1.0, np.zeros(2))
        guard.trigger_fallback()
        assert guard.effective_sigma(0.2) == 0.02  # floored

    def test_validation(self):
        with pytest.raises(ValueError):
            SafetyGuard(max_consecutive_failures=0)
        with pytest.raises(ValueError):
            SafetyGuard(sigma_decay=0.0)
        with pytest.raises(ValueError):
            SafetyGuard(sigma_min=-0.1)


class TestResiliencePolicy:
    def test_default_bundle(self):
        policy = ResiliencePolicy.default(seed=7)
        assert policy.retry.seed == 7
        assert policy.max_attempts == policy.retry.max_attempts

    def test_disabled_retry_means_single_attempt(self):
        assert ResiliencePolicy(retry=None).max_attempts == 1


class TestSanitizeState:
    def test_clean_state_untouched_no_copy(self):
        state = np.ones(5)
        clean, n = sanitize_state(state)
        assert clean is state and n == 0

    def test_nonfinite_replaced(self):
        state = np.array([1.0, np.nan, np.inf, -np.inf, 2.0])
        clean, n = sanitize_state(state, fill=0.5)
        assert n == 3
        np.testing.assert_array_equal(clean, [1.0, 0.5, 0.5, 0.5, 2.0])
        # input untouched
        assert np.isnan(state[1])
