"""Tests for RDPER — the paper's reward-driven replay (§3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.replay.base import Transition
from repro.replay.rdper import RewardDrivenReplayBuffer


def make_transition(reward):
    return Transition(
        state=np.zeros(3),
        action=np.zeros(2),
        reward=float(reward),
        next_state=np.zeros(3),
    )


def make_buffer(r_th=0.3, beta=0.6, capacity=100):
    return RewardDrivenReplayBuffer(
        capacity, 3, 2, np.random.default_rng(0),
        reward_threshold=r_th, beta=beta,
    )


class TestRouting:
    def test_threshold_routes_pools(self):
        buf = make_buffer(r_th=0.3)
        buf.push(make_transition(0.5))
        buf.push(make_transition(0.3))  # equal goes high (paper: >=)
        buf.push(make_transition(0.1))
        buf.push(make_transition(-1.0))
        assert buf.high_size == 2
        assert buf.low_size == 2
        assert len(buf) == 4

    def test_capacity_split(self):
        buf = make_buffer(capacity=100)
        assert buf.capacity == 100
        assert buf._high.capacity == 25
        assert buf._low.capacity == 75


class TestSampling:
    def test_beta_ratio_enforced(self):
        buf = make_buffer(beta=0.5)
        for _ in range(20):
            buf.push(make_transition(1.0))  # high pool
        for _ in range(20):
            buf.push(make_transition(-1.0))  # low pool
        batch = buf.sample(10)
        n_high = int(np.sum(batch.rewards.ravel() > 0))
        assert n_high == 5

    def test_beta_06_like_paper(self):
        buf = make_buffer(beta=0.6)
        for _ in range(30):
            buf.push(make_transition(1.0))
            buf.push(make_transition(-1.0))
        batch = buf.sample(10)
        assert int(np.sum(batch.rewards.ravel() > 0)) == 6

    def test_empty_high_pool_falls_back(self):
        buf = make_buffer()
        for _ in range(10):
            buf.push(make_transition(-1.0))
        batch = buf.sample(6)
        assert len(batch) == 6
        assert np.all(batch.rewards < 0)

    def test_empty_low_pool_falls_back(self):
        buf = make_buffer()
        for _ in range(10):
            buf.push(make_transition(1.0))
        batch = buf.sample(6)
        assert len(batch) == 6
        assert np.all(batch.rewards > 0)

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            make_buffer().sample(1)

    def test_high_rewards_persist_longer_than_shared_ring(self):
        # The dedicated high pool keeps rare good transitions alive even
        # after the low pool has churned many times.
        buf = make_buffer(capacity=40)  # high cap 10, low cap 30
        buf.push(make_transition(0.9))
        for _ in range(200):
            buf.push(make_transition(-0.5))
        assert buf.high_size == 1
        batch = buf.sample(10)
        assert np.any(np.isclose(batch.rewards.ravel(), 0.9))

    @given(
        st.lists(st.floats(-2.0, 1.0), min_size=8, max_size=60),
        st.integers(2, 16),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_size_always_honoured(self, rewards, m):
        buf = make_buffer()
        for r in rewards:
            buf.push(make_transition(r))
        assert len(buf.sample(m)) == m


class TestValidation:
    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            make_buffer(beta=1.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RewardDrivenReplayBuffer(1, 3, 2, np.random.default_rng(0))

    def test_can_sample(self):
        buf = make_buffer()
        assert not buf.can_sample(1)
        buf.push(make_transition(0.0))
        assert buf.can_sample(1)
