"""Tests for disk, network and HDFS models."""

import pytest

from repro.cluster.disk import disk_seconds, effective_disk_mbps
from repro.cluster.hardware import CLUSTER_A
from repro.cluster.hdfs import HdfsModel
from repro.cluster.network import broadcast_seconds, shuffle_network_seconds

NODE = CLUSTER_A.node


class TestDisk:
    def test_single_stream_sequential(self):
        assert effective_disk_mbps(NODE, 1, 64.0) == pytest.approx(
            NODE.disk_seq_mbps
        )

    def test_concurrency_degrades(self):
        r1 = effective_disk_mbps(NODE, 1, 64.0)
        r8 = effective_disk_mbps(NODE, 8, 64.0)
        assert r8 < r1

    def test_floor_at_random_rate(self):
        r = effective_disk_mbps(NODE, 500, 16.0)
        assert r == pytest.approx(NODE.disk_rand_mbps)

    def test_big_buffers_recover_throughput(self):
        small = effective_disk_mbps(NODE, 10, 16.0)
        large = effective_disk_mbps(NODE, 10, 512.0)
        assert large > small

    def test_disk_seconds(self):
        t = disk_seconds(NODE.disk_seq_mbps, NODE, 1, 64.0)
        assert t == pytest.approx(1.0)
        assert disk_seconds(0.0, NODE, 1, 64.0) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            effective_disk_mbps(NODE, 0, 64.0)
        with pytest.raises(ValueError):
            effective_disk_mbps(NODE, 1, 0.0)
        with pytest.raises(ValueError):
            disk_seconds(-1.0, NODE, 1, 64.0)


class TestNetwork:
    def test_zero_bytes_zero_time(self):
        assert shuffle_network_seconds(0.0, CLUSTER_A, 48.0) == 0.0

    def test_scales_with_bytes(self):
        t1 = shuffle_network_seconds(1000.0, CLUSTER_A, 48.0)
        t2 = shuffle_network_seconds(2000.0, CLUSTER_A, 48.0)
        assert t2 > t1

    def test_small_in_flight_slower(self):
        slow = shuffle_network_seconds(3000.0, CLUSTER_A, 8.0)
        fast = shuffle_network_seconds(3000.0, CLUSTER_A, 96.0)
        assert slow > fast

    def test_cross_traffic_fraction(self):
        # cluster of 1 node shuffles nothing across the wire
        single = CLUSTER_A.__class__(
            name="one", n_nodes=1, node=NODE, network_mbps=117.0
        )
        assert shuffle_network_seconds(1000.0, single, 48.0) == 0.0

    def test_broadcast(self):
        t = broadcast_seconds(10.0, CLUSTER_A, 4.0)
        assert t > 0
        assert broadcast_seconds(0.0, CLUSTER_A, 4.0) == 0.0

    def test_broadcast_block_latency(self):
        many_blocks = broadcast_seconds(64.0, CLUSTER_A, 1.0)
        few_blocks = broadcast_seconds(64.0, CLUSTER_A, 16.0)
        assert many_blocks > few_blocks

    def test_invalid(self):
        with pytest.raises(ValueError):
            shuffle_network_seconds(-1.0, CLUSTER_A, 48.0)
        with pytest.raises(ValueError):
            shuffle_network_seconds(1.0, CLUSTER_A, 0.0)
        with pytest.raises(ValueError):
            broadcast_seconds(1.0, CLUSTER_A, 0.0)


def hdfs_config(**overrides):
    base = {
        "dfs.blocksize": 128,
        "dfs.replication": 3,
        "dfs.namenode.handler.count": 10,
        "dfs.datanode.handler.count": 10,
        "io.file.buffer.size": 64,
    }
    base.update(overrides)
    return base


class TestHdfs:
    def test_input_splits(self):
        h = HdfsModel(hdfs_config(), CLUSTER_A)
        assert h.input_splits(1280.0) == 10
        assert h.input_splits(1281.0) == 11
        assert h.input_splits(1.0) == 1

    def test_blocksize_drives_splits(self):
        small = HdfsModel(hdfs_config(**{"dfs.blocksize": 32}), CLUSTER_A)
        large = HdfsModel(hdfs_config(**{"dfs.blocksize": 512}), CLUSTER_A)
        assert small.input_splits(4096.0) > large.input_splits(4096.0)

    def test_read_scales_with_bytes(self):
        h = HdfsModel(hdfs_config(), CLUSTER_A)
        assert h.read_seconds(2000.0, 2) > h.read_seconds(1000.0, 2)
        assert h.read_seconds(0.0, 2) == 0.0

    def test_replication_amplifies_writes(self):
        h3 = HdfsModel(hdfs_config(), CLUSTER_A)
        h1 = HdfsModel(hdfs_config(**{"dfs.replication": 1}), CLUSTER_A)
        assert h3.write_seconds(1000.0, 2) > h1.write_seconds(1000.0, 2)

    def test_handler_contention(self):
        starved = HdfsModel(hdfs_config(), CLUSTER_A)
        tuned = HdfsModel(
            hdfs_config(
                **{
                    "dfs.namenode.handler.count": 200,
                    "dfs.datanode.handler.count": 100,
                }
            ),
            CLUSTER_A,
        )
        # With many concurrent clients, more handlers must not be slower.
        assert tuned.read_seconds(4096.0, 16) <= starved.read_seconds(
            4096.0, 16
        )

    def test_negative_bytes_rejected(self):
        h = HdfsModel(hdfs_config(), CLUSTER_A)
        with pytest.raises(ValueError):
            h.read_seconds(-1.0, 1)
        with pytest.raises(ValueError):
            h.write_seconds(-1.0, 1)
