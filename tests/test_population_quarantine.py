"""Population-member quarantine: a diverged (non-finite) member is
isolated from the lockstep and finished sequentially, while the healthy
members stay bit-identical to a clean population run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.population import PopulationTD3View
from repro.agents.td3 import TD3Agent
from repro.core.deepcat import DeepCAT
from repro.core.population import PopulationTuner
from repro.core.result import sessions_equal
from repro.factory import make_env
from repro.nn.population import StackedSequential
from repro.telemetry import RunContext

N = 3
STEPS = 3


def _envs(n=N):
    return [make_env("TS", "D2", seed=1000 + s) for s in range(n)]


def _population(n=N, telemetry=None):
    envs = _envs(n)
    tuners = [
        DeepCAT.from_env(env, seed=s, buffer_capacity=512)
        for s, env in enumerate(envs)
    ]
    return PopulationTuner.from_deepcat(tuners, envs, telemetry=telemetry)


def _poison(pop, member):
    """Drive one member's actor non-finite, as a diverged update would."""
    ops = pop.view.actor._ops
    ops[0].w[member, 0, 0] = np.nan


class TestMembersFinite:
    def test_stacked_sequential_mask(self):
        agents = [TD3Agent(9, 32, np.random.default_rng(i)) for i in range(4)]
        stacked = StackedSequential([a.actor for a in agents])
        assert stacked.members_finite().tolist() == [True] * 4
        linears = [op for op in stacked._ops if hasattr(op, "w")]
        linears[1].w[2, 0, 0] = np.inf
        assert stacked.members_finite().tolist() == [True, True, False, True]

    def test_view_mask_covers_actor_and_critics(self):
        agents = [TD3Agent(9, 32, np.random.default_rng(i)) for i in range(3)]
        view = PopulationTD3View(agents)
        assert view.members_finite().tolist() == [True] * 3
        view.critic1._ops[0].b[1, 0] = np.nan
        assert view.members_finite().tolist() == [True, False, True]

    def test_bias_nonfinite_detected(self):
        agents = [TD3Agent(9, 32, np.random.default_rng(i)) for i in range(2)]
        stacked = StackedSequential([a.actor for a in agents])
        stacked._ops[0].b[0, 0] = -np.inf
        assert stacked.members_finite().tolist() == [False, True]


class TestQuarantine:
    @pytest.mark.determinism
    def test_healthy_members_unaffected_by_quarantine(self):
        clean = _population()
        clean_sessions = clean.tune(steps=STEPS)

        poisoned = _population()
        _poison(poisoned, member=1)
        sessions = poisoned.tune(steps=STEPS)

        assert [m.quarantined for m in poisoned.members] == [
            False, True, False,
        ]
        # The sick member is out of the lockstep; the healthy members'
        # sessions are exactly what the clean population produced.
        assert sessions_equal(sessions[0], clean_sessions[0])
        assert sessions_equal(sessions[2], clean_sessions[2])

    def test_screen_is_pure_observation_when_all_finite(self):
        a = _population().tune(steps=STEPS)
        b = _population().tune(steps=STEPS)
        for x, y in zip(a, b):
            assert sessions_equal(x, y)

    def test_quarantine_failure_is_contained(self):
        # The sequential finish of a NaN-poisoned member raises inside
        # the tuner (non-finite action/config); tune() must survive and
        # still return every member's session.
        pop = _population()
        _poison(pop, member=0)
        sessions = pop.tune(steps=STEPS)
        assert len(sessions) == N
        assert pop.members[0].quarantined is True
        # Healthy members completed their full step budget.
        assert len(sessions[1].steps) == STEPS
        assert len(sessions[2].steps) == STEPS

    def test_quarantine_emits_telemetry(self):
        ctx = RunContext.recording()
        pop = _population(telemetry=ctx)
        _poison(pop, member=1)
        pop.tune(steps=STEPS)
        counter = ctx.metrics.counter(
            "population.quarantined_total", labels={"tuner": "DeepCAT"}
        )
        assert counter.value == 1.0
