"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_generator, spawn_generators


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert as_generator(1).random() != as_generator(2).random()

    def test_passthrough_generator(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 4)) == 4

    def test_children_independent(self):
        g1, g2 = spawn_generators(0, 2)
        assert g1.random() != g2.random()

    def test_deterministic_across_calls(self):
        a = [g.random() for g in spawn_generators(3, 3)]
        b = [g.random() for g in spawn_generators(3, 3)]
        assert a == b

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_zero_ok(self):
        assert spawn_generators(0, 0) == []


class TestRngFactory:
    def test_same_name_same_stream(self):
        f = RngFactory(42)
        a = RngFactory(42).get("sim").random(3)
        b = f.get("sim").random(3)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        f = RngFactory(42)
        assert f.get("a").random() != f.get("b").random()

    def test_different_seeds_differ(self):
        assert RngFactory(1).get("x").random() != RngFactory(2).get("x").random()

    def test_order_independence(self):
        f1 = RngFactory(9)
        _ = f1.get("first")
        late = f1.get("second").random()
        f2 = RngFactory(9)
        early = f2.get("second").random()
        assert late == early

    def test_get_many(self):
        d = RngFactory(0).get_many(["a", "b"])
        assert set(d) == {"a", "b"}

    def test_child_namespace(self):
        f = RngFactory(5)
        c1 = f.child("sub")
        c2 = RngFactory(5).child("sub")
        assert c1.get("x").random() == c2.get("x").random()

    def test_seed_property(self):
        assert RngFactory(17).seed == 17
