"""Tests for the time-varying environment."""

import pytest

from repro.agents.base import AgentHyperParams
from repro.cluster.hardware import CLUSTER_A
from repro.core.deepcat import DeepCAT
from repro.envs.dynamic import DynamicTuningEnv, Phase


@pytest.fixture
def dyn(space):
    return DynamicTuningEnv(
        phases=[Phase("TS", "D1", 3), Phase("PR", "D1", 3)],
        cluster=CLUSTER_A,
        space=space,
        seed=0,
    )


class TestPhase:
    def test_positive_steps(self):
        with pytest.raises(ValueError):
            Phase("TS", "D1", 0)


class TestDynamicTuningEnv:
    def test_needs_phases(self, space):
        with pytest.raises(ValueError):
            DynamicTuningEnv([], CLUSTER_A, space)

    def test_interface_parity(self, dyn, space):
        assert dyn.state_dim == 9
        assert dyn.action_dim == space.dim
        assert dyn.state.shape == (9,)
        assert dyn.default_duration > 0

    def test_phase_switch_after_budget(self, dyn, space):
        a = space.default_vector()
        for _ in range(3):
            dyn.step(a)
        assert dyn.current_phase.workload == "TS"
        dyn.step(a)  # 4th step crosses into PR
        assert dyn.current_phase.workload == "PR"
        assert dyn.switch_log == [(0, 0), (3, 1)]

    def test_reward_tracks_active_phase(self, dyn, space):
        """The same action earns phase-relative rewards."""
        a = space.default_vector()
        r_ts = dyn.step(a).reward
        for _ in range(2):
            dyn.step(a)
        r_pr = dyn.step(a).reward
        # both phases: default config scores roughly (1 - speedup_target)
        assert r_ts < 0 and r_pr < 0

    def test_exhaustion(self, dyn, space):
        a = space.default_vector()
        for _ in range(6):
            dyn.step(a)
        assert dyn.exhausted
        with pytest.raises(RuntimeError):
            dyn.step(a)

    def test_accounting(self, dyn, space):
        a = space.default_vector()
        dyn.step(a)
        dyn.step(a)
        assert dyn.steps_taken == 2
        assert dyn.total_evaluation_seconds > 0

    def test_deepcat_trains_across_drift(self, space):
        dyn = DynamicTuningEnv(
            phases=[Phase("TS", "D1", 60), Phase("WC", "D1", 60)],
            cluster=CLUSTER_A,
            space=space,
            seed=3,
        )
        tuner = DeepCAT(
            dyn.state_dim, dyn.action_dim, seed=3,
            hp=AgentHyperParams(batch_size=16, warmup_steps=8,
                                hidden=(16, 16)),
        )
        log = tuner.train_offline(dyn, iterations=120)
        assert log.iterations == 120
        assert dyn.exhausted
