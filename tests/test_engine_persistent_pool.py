"""Persistent engine worker pool: one pool serves every run() call,
discarded only when a worker crash or deadline reap breaks it.

The per-round rebuild the pool replaced was pure overhead — workers are
stateless (tasks are pure functions of their spec), so the only reason
to discard one is that it may hold a corpse after a crash.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.experiments.engine import (
    ExperimentEngine,
    TaskSpec,
    random_cdf_task,
)
from repro.faults import WorkerChaos


def _cdf(seed, n=3):
    return random_cdf_task(
        workload="WC", dataset="D1", n_samples=n, seed=seed
    )


def test_pool_is_reused_across_rounds_and_runs():
    eng = ExperimentEngine(jobs=2)
    eng.run([_cdf(seed=s) for s in range(3)])
    pool = eng._pool_holder.get("pool")
    assert pool is not None
    eng.run([_cdf(seed=s) for s in (7, 8)])
    assert eng._pool_holder.get("pool") is pool
    assert eng.stats.pool_rebuilds == 0
    eng.close()


def test_inline_engine_never_spawns_a_pool():
    eng = ExperimentEngine(jobs=1)
    eng.run([TaskSpec("random-cdf", {
        "workload": "WC", "dataset": "D1", "n_samples": 3, "seed": 0,
    })])
    assert eng._pool_holder.get("pool") is None


@pytest.mark.faults
def test_chaos_break_discards_and_rebuilds():
    tasks = [_cdf(seed=s) for s in range(4)]
    clean = ExperimentEngine(jobs=1).run(tasks)
    eng = ExperimentEngine(
        jobs=2, chaos=WorkerChaos(seed=7, kill_rate=1.0), task_retries=2
    )
    survived = eng.run(tasks)
    assert eng.stats.pool_rebuilds >= 1
    for a, b in zip(clean, survived):
        np.testing.assert_array_equal(a["durations"], b["durations"])
        assert a["n_failed"] == b["n_failed"]
    # The post-crash pool is healthy and persists into the next run.
    pool = eng._pool_holder.get("pool")
    assert pool is not None
    eng.close()


def test_close_is_idempotent_and_context_managed():
    with ExperimentEngine(jobs=2) as eng:
        eng.run([_cdf(seed=s) for s in (0, 1)])
        assert eng._pool_holder.get("pool") is not None
    assert eng._pool_holder.get("pool") is None
    eng.close()
    eng.close()


def test_finalizer_shuts_pool_when_engine_is_collected():
    eng = ExperimentEngine(jobs=2)
    eng.run([_cdf(seed=s) for s in (0, 1)])
    holder = eng._pool_holder
    assert holder.get("pool") is not None
    del eng
    gc.collect()
    assert holder.get("pool") is None
