"""Tests for the Twin-Q Optimizer (Algorithm 1)."""

import numpy as np
import pytest

from repro.agents.base import AgentHyperParams
from repro.agents.td3 import TD3Agent
from repro.core.twinq import twin_q_optimize

STATE_DIM, ACTION_DIM = 4, 3


class StubAgent:
    """Critic stub: Q = 1 - 2*||a - center||, maximal at `center`."""

    def __init__(self, center):
        self.center = np.asarray(center, dtype=float)

    def min_q(self, state, action):
        return 1.0 - 2.0 * float(np.linalg.norm(action - self.center))


class TestTwinQOptimize:
    def test_good_action_accepted_unchanged(self):
        agent = StubAgent([0.5, 0.5, 0.5])
        a = np.array([0.5, 0.5, 0.5])
        out = twin_q_optimize(
            agent, np.zeros(STATE_DIM), a, q_threshold=0.5,
            rng=np.random.default_rng(0),
        )
        assert out.accepted
        assert out.iterations == 0
        np.testing.assert_array_equal(out.action, a)
        assert out.original_q == out.q_value

    def test_suboptimal_action_improved(self):
        agent = StubAgent([0.5, 0.5, 0.5])
        bad = np.array([0.95, 0.05, 0.95])
        out = twin_q_optimize(
            agent, np.zeros(STATE_DIM), bad, q_threshold=0.3,
            noise_sigma=0.15, rng=np.random.default_rng(0),
            max_iterations=200,
        )
        assert out.accepted
        assert out.iterations > 0
        assert out.q_value >= 0.3 > out.original_q

    def test_unreachable_threshold_falls_back_to_original(self):
        agent = StubAgent([0.5, 0.5, 0.5])
        bad = np.array([1.0, 0.0, 1.0])
        out = twin_q_optimize(
            agent, np.zeros(STATE_DIM), bad, q_threshold=99.0,
            rng=np.random.default_rng(0), max_iterations=30,
        )
        assert not out.accepted
        # all three escalation rounds were scored
        assert out.iterations == 3 * 30
        # argmax-of-noisy-Q fallback is max-biased: the original action
        # is returned instead
        np.testing.assert_array_equal(out.action, bad)
        assert out.q_value == out.original_q

    def test_actions_stay_in_cube(self):
        agent = StubAgent([2.0, 2.0, 2.0])  # optimum outside the cube
        out = twin_q_optimize(
            agent, np.zeros(STATE_DIM), np.array([0.9, 0.9, 0.9]),
            q_threshold=10.0, noise_sigma=0.5,
            rng=np.random.default_rng(0), max_iterations=50,
        )
        assert np.all((out.action >= 0) & (out.action <= 1))

    def test_with_real_td3(self):
        agent = TD3Agent(
            STATE_DIM, ACTION_DIM, np.random.default_rng(0),
            AgentHyperParams(hidden=(8, 8), warmup_steps=0),
        )
        out = twin_q_optimize(
            agent, np.zeros(STATE_DIM), np.full(ACTION_DIM, 0.5),
            q_threshold=1e9, rng=np.random.default_rng(1), max_iterations=5,
        )
        assert not out.accepted
        assert out.iterations == 3 * 5

    def test_invalid_args(self):
        agent = StubAgent([0.5, 0.5, 0.5])
        with pytest.raises(ValueError):
            twin_q_optimize(
                agent, np.zeros(4), np.zeros(3), q_threshold=0.3,
                noise_sigma=0.0,
            )
        with pytest.raises(ValueError):
            twin_q_optimize(
                agent, np.zeros(4), np.zeros(3), q_threshold=0.3,
                max_iterations=0,
            )

    def test_no_environment_interaction(self):
        """Algorithm 1's point: optimization costs zero evaluations."""
        calls = []

        class CountingAgent(StubAgent):
            def min_q(self, state, action):
                calls.append(1)
                return super().min_q(state, action)

        agent = CountingAgent([0.5, 0.5, 0.5])
        twin_q_optimize(
            agent, np.zeros(4), np.array([1.0, 0.0, 1.0]), q_threshold=0.5,
            rng=np.random.default_rng(0), max_iterations=20,
        )
        # only critic queries, bounded by the three escalation rounds
        assert len(calls) <= 3 * 20 + 1
