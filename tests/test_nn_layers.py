"""Tests for repro.nn.layers — including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU, Sigmoid, Tanh, make_activation


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at x."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = f()
        x[idx] = orig - eps
        lo = f()
        x[idx] = orig
        g[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return g


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 3, rng)
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_forward_matches_matmul(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        np.testing.assert_allclose(
            layer.forward(x), x @ layer.weight.data + layer.bias.data
        )

    def test_weight_gradient_numerical(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(5, 3))

        def loss():
            return float(np.sum(layer.forward(x, cache=False) ** 2))

        layer.weight.zero_grad()
        layer.bias.zero_grad()
        out = layer.forward(x)
        layer.backward(2.0 * out)
        num_w = numerical_grad(loss, layer.weight.data)
        num_b = numerical_grad(loss, layer.bias.data)
        np.testing.assert_allclose(layer.weight.grad, num_w, rtol=1e-5, atol=1e-7)
        np.testing.assert_allclose(layer.bias.grad, num_b, rtol=1e-5, atol=1e-7)

    def test_input_gradient_numerical(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float(np.sum(layer.forward(x, cache=False) ** 2))

        out = layer.forward(x)
        grad_in = layer.backward(2.0 * out)
        num = numerical_grad(loss, x)
        np.testing.assert_allclose(grad_in, num, rtol=1e-5, atol=1e-7)

    def test_grad_accumulates(self, rng):
        layer = Linear(2, 2, rng)
        x = np.ones((1, 2))
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        g1 = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(np.ones_like(out))
        np.testing.assert_allclose(layer.weight.grad, 2 * g1)

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Linear(2, 2, rng).backward(np.ones((1, 2)))

    def test_invalid_dims(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 2, rng)

    def test_final_init_limit(self, rng):
        layer = Linear(10, 10, rng, final_init_limit=1e-3)
        assert np.abs(layer.weight.data).max() <= 1e-3

    def test_unknown_init_raises(self, rng):
        with pytest.raises(ValueError):
            Linear(2, 2, rng, init="bogus")


@pytest.mark.parametrize("cls", [ReLU, Tanh, Sigmoid])
class TestActivations:
    def test_gradient_numerical(self, cls, rng):
        layer = cls()
        x = rng.normal(size=(4, 3)) + 0.1  # avoid ReLU kink at exactly 0

        def loss():
            return float(np.sum(layer.forward(x, cache=False) ** 2))

        out = layer.forward(x)
        grad_in = layer.backward(2.0 * out)
        num = numerical_grad(loss, x)
        np.testing.assert_allclose(grad_in, num, rtol=1e-4, atol=1e-6)

    def test_backward_before_forward_raises(self, cls, rng):
        with pytest.raises(RuntimeError):
            cls().backward(np.ones((1, 2)))

    def test_no_parameters(self, cls, rng):
        assert cls().parameters() == []


class TestActivationSpecifics:
    def test_relu_clamps(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_tanh_range(self, rng):
        out = Tanh().forward(rng.normal(size=(10, 3)) * 10)
        assert np.all(np.abs(out) <= 1.0)

    def test_sigmoid_range_and_stability(self):
        out = Sigmoid().forward(np.array([[-1000.0, 0.0, 1000.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.5, 1.0]], atol=1e-12)
        assert np.all(np.isfinite(out))

    def test_make_activation(self):
        assert isinstance(make_activation("relu"), ReLU)
        assert isinstance(make_activation("tanh"), Tanh)
        assert isinstance(make_activation("sigmoid"), Sigmoid)

    def test_make_activation_unknown(self):
        with pytest.raises(ValueError):
            make_activation("gelu")
