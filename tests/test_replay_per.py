"""Tests for the TD-error prioritized replay buffer."""

import numpy as np
import pytest

from repro.replay.base import Transition
from repro.replay.per import PrioritizedReplayBuffer


def make_transition(i):
    return Transition(
        state=np.full(3, float(i)),
        action=np.full(2, float(i)),
        reward=float(i),
        next_state=np.full(3, float(i + 1)),
    )


def make_buffer(**kw):
    return PrioritizedReplayBuffer(64, 3, 2, np.random.default_rng(0), **kw)


class TestPrioritizedReplayBuffer:
    def test_new_transitions_get_max_priority(self):
        buf = make_buffer()
        buf.push(make_transition(0))
        buf.update_priorities(np.array([0]), np.array([9.0]))
        buf.push(make_transition(1))
        # the second push must inherit the current max so it gets sampled
        assert buf._tree[1] == buf._tree.max_priority()

    def test_sample_shapes_and_weights(self):
        buf = make_buffer()
        for i in range(20):
            buf.push(make_transition(i))
        batch = buf.sample(8)
        assert batch.states.shape == (8, 3)
        assert batch.weights.shape == (8, 1)
        assert batch.indices.shape == (8,)
        assert np.all(batch.weights > 0) and np.all(batch.weights <= 1.0)

    def test_high_priority_sampled_more(self):
        buf = make_buffer(alpha=1.0)
        for i in range(10):
            buf.push(make_transition(i))
        # give transition 3 overwhelming priority
        prios = np.full(10, 0.01)
        prios[3] = 100.0
        buf.update_priorities(np.arange(10), prios)
        counts = np.zeros(10)
        for _ in range(300):
            for idx in buf.sample(4).indices:
                counts[idx] += 1
        assert counts[3] > counts.sum() * 0.5

    def test_beta_anneals(self):
        buf = make_buffer(beta_is=0.4, beta_is_increment=0.1)
        for i in range(5):
            buf.push(make_transition(i))
        for _ in range(10):
            buf.sample(2)
        assert buf.beta_is == 1.0

    def test_update_priorities_validates(self):
        buf = make_buffer()
        buf.push(make_transition(0))
        with pytest.raises(ValueError):
            buf.update_priorities(np.array([0, 1]), np.array([1.0]))

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            make_buffer().sample(1)

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            make_buffer(alpha=1.5)
        with pytest.raises(ValueError):
            make_buffer(beta_is=-0.1)
        with pytest.raises(ValueError):
            make_buffer(epsilon=0.0)

    def test_epsilon_keeps_zero_error_sampleable(self):
        buf = make_buffer()
        for i in range(4):
            buf.push(make_transition(i))
        buf.update_priorities(np.arange(4), np.zeros(4))
        assert buf._tree.total > 0.0
        batch = buf.sample(2)
        assert len(batch) == 2
