"""Tests for the offline trainer, online tuner and DeepCAT orchestrator."""

import numpy as np
import pytest

from repro.agents.base import AgentHyperParams
from repro.core.deepcat import DeepCAT
from repro.core.offline import OfflineTrainer
from repro.core.online import OnlineTuner
from repro.factory import make_env
from repro.replay.rdper import RewardDrivenReplayBuffer
from repro.replay.uniform import UniformReplayBuffer

FAST_HP = AgentHyperParams(batch_size=16, warmup_steps=8, hidden=(16, 16))


def fast_deepcat(env, seed=0, **kw):
    return DeepCAT.from_env(env, seed=seed, hp=FAST_HP, **kw)


class TestOfflineTrainer:
    def test_log_lengths(self):
        env = make_env("TS", "D1", seed=0)
        tuner = fast_deepcat(env)
        log = tuner.train_offline(env, iterations=30)
        assert log.iterations == 30
        assert len(log.min_q) == 30
        assert len(log.durations) == 30

    def test_best_tracked(self):
        env = make_env("TS", "D1", seed=0)
        tuner = fast_deepcat(env)
        log = tuner.train_offline(env, iterations=30)
        # the best is a real successful duration, never the YARN fast-fail
        assert 0 < log.best_duration_s < float("inf")
        assert log.best_duration_s in log.durations
        assert log.best_action is not None

    def test_buffer_fills(self):
        env = make_env("TS", "D1", seed=0)
        tuner = fast_deepcat(env)
        tuner.train_offline(env, iterations=25)
        assert len(tuner.buffer) == 25

    def test_updates_happen_after_warmup(self):
        env = make_env("TS", "D1", seed=0)
        tuner = fast_deepcat(env)
        log = tuner.train_offline(env, iterations=30)
        assert len(log.critic_losses) > 0

    def test_callback_invoked(self):
        env = make_env("TS", "D1", seed=0)
        tuner = fast_deepcat(env)
        seen = []
        tuner.train_offline(
            env, iterations=5, callback=lambda i, log: seen.append(i)
        )
        assert seen == [0, 1, 2, 3, 4]

    def test_invalid_iterations(self):
        env = make_env("TS", "D1", seed=0)
        with pytest.raises(ValueError):
            fast_deepcat(env).train_offline(env, iterations=0)

    def test_updates_per_step_validation(self):
        env = make_env("TS", "D1", seed=0)
        tuner = fast_deepcat(env)
        with pytest.raises(ValueError):
            OfflineTrainer(tuner.agent, tuner.buffer, updates_per_step=-1)


class TestOnlineTuner:
    def make_trained(self, seed=0, **kw):
        env = make_env("TS", "D1", seed=seed)
        tuner = fast_deepcat(env, seed=seed, **kw)
        tuner.train_offline(env, iterations=120)
        return tuner

    def test_session_shape(self):
        tuner = self.make_trained()
        env = make_env("TS", "D1", seed=99)
        s = tuner.tune_online(env, steps=5)
        assert s.n_steps == 5
        assert s.tuner == "DeepCAT"
        assert s.workload == "TS" and s.dataset == "D1"
        assert s.default_duration_s > 0

    def test_twinq_diagnostics_recorded(self):
        tuner = self.make_trained()
        s = tuner.tune_online(make_env("TS", "D1", seed=99), steps=3)
        for step in s.steps:
            assert step.twinq_iterations is not None
            assert step.final_q is not None

    def test_no_twinq_diagnostics_when_disabled(self):
        tuner = self.make_trained(use_twin_q=False)
        s = tuner.tune_online(make_env("TS", "D1", seed=99), steps=2)
        assert s.tuner == "DeepCAT-noTwinQ"
        assert all(st.twinq_iterations is None for st in s.steps)

    def test_time_budget_stops_early(self):
        tuner = self.make_trained()
        env = make_env("TS", "D1", seed=99)
        s = tuner.tune_online(env, steps=50, time_budget_s=100.0)
        assert s.n_steps < 50
        # stopped at the first step crossing the budget
        assert s.accumulated_cost()[-2] < 100.0 if s.n_steps > 1 else True

    def test_recommendation_time_recorded(self):
        tuner = self.make_trained()
        s = tuner.tune_online(make_env("TS", "D1", seed=99), steps=2)
        assert all(st.recommendation_s >= 0 for st in s.steps)
        assert s.recommendation_seconds < 5.0  # DRL recs are sub-second

    def test_invalid_steps(self):
        tuner = self.make_trained()
        with pytest.raises(ValueError):
            tuner.tune_online(make_env("TS", "D1", seed=9), steps=0)

    def test_fine_tune_updates_validation(self):
        tuner = self.make_trained()
        with pytest.raises(ValueError):
            OnlineTuner(
                tuner.agent, tuner.buffer, "x", fine_tune_updates=-1
            )


class TestDeepCATConstruction:
    def test_rdper_by_default(self):
        env = make_env("TS", "D1", seed=0)
        assert isinstance(fast_deepcat(env).buffer, RewardDrivenReplayBuffer)

    def test_uniform_ablation(self):
        env = make_env("TS", "D1", seed=0)
        tuner = fast_deepcat(env, use_rdper=False)
        assert isinstance(tuner.buffer, UniformReplayBuffer)

    def test_paper_hyperparameters(self):
        env = make_env("TS", "D1", seed=0)
        t = DeepCAT.from_env(env, seed=0)
        assert t.beta == 0.6  # Figure 11
        # calibrated on this implementation's Q scale via the Figure 12
        # sweep (the paper picks 0.3 on its own scale by the same rule)
        assert t.q_threshold == 0.4

    def test_from_env_dimensions(self):
        env = make_env("TS", "D1", seed=0)
        t = fast_deepcat(env)
        assert t.agent.state_dim == env.state_dim
        assert t.agent.action_dim == env.action_dim

    def test_deterministic_given_seed(self):
        env1 = make_env("TS", "D1", seed=3)
        env2 = make_env("TS", "D1", seed=3)
        t1 = fast_deepcat(env1, seed=3)
        t2 = fast_deepcat(env2, seed=3)
        l1 = t1.train_offline(env1, 40)
        l2 = t2.train_offline(env2, 40)
        np.testing.assert_allclose(l1.rewards, l2.rewards)
