"""Tests for the Spark unified memory model."""

import pytest

from repro.cluster.memory import HEAP_RESERVE_MB, MemoryModel


def mem_config(fraction=0.6, storage=0.5):
    return {
        "spark.memory.fraction": fraction,
        "spark.memory.storageFraction": storage,
    }


class TestMemoryModelRegions:
    def test_unified_region_arithmetic(self):
        m = MemoryModel(mem_config(), executor_heap_mb=4096, executor_cores=2)
        usable = 4096 - HEAP_RESERVE_MB
        assert m.unified_mb == pytest.approx(usable * 0.6)
        assert m.storage_region_mb == pytest.approx(usable * 0.6 * 0.5)

    def test_exec_region_includes_borrowable(self):
        m = MemoryModel(mem_config(), 4096, 2)
        base = m.unified_mb * 0.5
        assert m.exec_region_mb == pytest.approx(base + m.unified_mb * 0.25)

    def test_per_task_split_by_cores(self):
        m1 = MemoryModel(mem_config(), 4096, 1)
        m4 = MemoryModel(mem_config(), 4096, 4)
        assert m4.per_task_exec_mb() == pytest.approx(
            m1.per_task_exec_mb() / 4
        )

    def test_invalid_executor(self):
        with pytest.raises(ValueError):
            MemoryModel(mem_config(), 0, 1)


class TestVerdicts:
    def test_no_spill_when_fits(self):
        m = MemoryModel(mem_config(), 8192, 1)
        v = m.evaluate_task(working_set_mb=100.0)
        assert v.spill_fraction == 0.0
        assert not v.oom

    def test_spill_fraction_grows_with_working_set(self):
        m = MemoryModel(mem_config(), 2048, 2)
        share = m.per_task_exec_mb()
        v1 = m.evaluate_task(share * 1.5, rigid_fraction=0.2)
        v2 = m.evaluate_task(share * 3.0, rigid_fraction=0.2)
        assert 0 < v1.spill_fraction < v2.spill_fraction < 1

    def test_oom_when_rigid_exceeds_limit(self):
        m = MemoryModel(mem_config(), 1024, 1)
        hard = m.exec_region_mb + 0.5 * m.user_region_mb
        assert m.evaluate_task(hard / 0.5 + 1, rigid_fraction=0.5).oom
        assert not m.evaluate_task(hard / 0.5 - 1, rigid_fraction=0.5).oom

    def test_spillable_workload_tolerates_more(self):
        m = MemoryModel(mem_config(), 1024, 1)
        ws = 2000.0
        assert m.evaluate_task(ws, rigid_fraction=0.9).oom
        assert not m.evaluate_task(ws, rigid_fraction=0.1).oom

    def test_cache_deficit(self):
        m = MemoryModel(mem_config(), 2048, 1)
        v = m.evaluate_task(10.0, cache_demand_mb=m.storage_region_mb * 2)
        assert v.storage_deficit == pytest.approx(0.5)

    def test_cache_fits_no_deficit(self):
        m = MemoryModel(mem_config(), 4096, 1)
        v = m.evaluate_task(10.0, cache_demand_mb=m.storage_region_mb * 0.5)
        assert v.storage_deficit == 0.0

    def test_gc_grows_with_occupancy(self):
        m = MemoryModel(mem_config(), 2048, 2)
        low = m.evaluate_task(10.0).gc_multiplier
        high = m.evaluate_task(
            m.per_task_exec_mb(), cache_demand_mb=m.storage_region_mb
        ).gc_multiplier
        assert high > low >= 1.0

    def test_high_memory_fraction_penalized(self):
        lo = MemoryModel(mem_config(fraction=0.6), 4096, 1)
        hi = MemoryModel(mem_config(fraction=0.9), 4096, 1)
        # identical tiny working set; the 0.9 fraction model pays extra GC
        assert (
            hi.evaluate_task(1.0).gc_multiplier
            > lo.evaluate_task(1.0).gc_multiplier
        )

    def test_negative_demand_rejected(self):
        m = MemoryModel(mem_config(), 2048, 1)
        with pytest.raises(ValueError):
            m.evaluate_task(-1.0)
        with pytest.raises(ValueError):
            m.evaluate_task(1.0, cache_demand_mb=-1.0)
        with pytest.raises(ValueError):
            m.evaluate_task(1.0, rigid_fraction=0.0)
