"""Learning-health diagnostics: detectors, latching, purity, overhead."""

import copy
import time

import numpy as np
import pytest

from repro.core.deepcat import DeepCAT
from repro.core.resilience import ResiliencePolicy
from repro.factory import make_env
from repro.telemetry import (
    DiagnosticsConfig,
    DiagnosticsEngine,
    NULL_DIAGNOSTICS,
    RunContext,
    ensure_context,
)
from repro.telemetry.diagnostics import replay_events
from repro.utils.logging import TuningLogger


def _names(engine):
    return [a.name for a in engine.alerts]


class TestDetectors:
    def test_q_overestimation_grades_by_gap(self):
        e = DiagnosticsEngine()
        for i in range(5):
            e.observe_step(step=i, reward=0.0, success=True, q_pred=2.0)
        alerts = [a for a in e.alerts if a.name == "q-overestimation"]
        assert alerts
        assert alerts[-1].severity == "critical"
        assert alerts[-1].data["gap"] >= 1.0

    def test_q_overestimation_quiet_when_calibrated(self):
        e = DiagnosticsEngine()
        for i in range(50):
            e.observe_step(step=i, reward=0.5, success=True, q_pred=0.55)
        assert "q-overestimation" not in _names(e)

    def test_critic_divergence_needs_rising_ewma(self):
        e = DiagnosticsEngine()
        for _ in range(15):
            e.observe_update(0.05)
        assert "critic-divergence" not in _names(e)
        for _ in range(15):
            e.observe_update(5.0)
        alerts = [a for a in e.alerts if a.name == "critic-divergence"]
        assert alerts
        assert alerts[-1].severity == "critical"

    def test_reward_plateau_warns_then_escalates(self):
        cfg = DiagnosticsConfig(plateau_steps=5)
        e = DiagnosticsEngine(cfg)
        for i in range(12):
            e.observe_step(step=i, reward=0.1, success=True)
        plateau = [a for a in e.alerts if a.name == "reward-plateau"]
        assert [a.severity for a in plateau] == ["warning", "critical"]

    def test_plateau_rearms_after_improvement(self):
        cfg = DiagnosticsConfig(plateau_steps=3)
        e = DiagnosticsEngine(cfg)
        for i in range(4):
            e.observe_step(step=i, reward=0.1, success=True)
        assert len([a for a in e.alerts if a.name == "reward-plateau"]) == 1
        # A new best clears the condition; a second stagnation re-fires.
        e.observe_step(step=4, reward=0.9, success=True)
        for i in range(5, 9):
            e.observe_step(step=i, reward=0.1, success=True)
        assert len([a for a in e.alerts if a.name == "reward-plateau"]) == 2

    def test_rdper_stale_pool(self):
        e = DiagnosticsEngine()
        e.observe_rdper(realized_beta=0.6, beta=0.6, staleness=900,
                        high_size=3, low_size=500)
        alerts = [a for a in e.alerts if a.name == "rdper-stale-pool"]
        assert alerts and alerts[-1].severity == "critical"
        assert alerts[-1].data["staleness"] == 900

    def test_rdper_beta_drift_needs_min_samples(self):
        e = DiagnosticsEngine()
        for _ in range(7):
            e.observe_rdper(realized_beta=0.0, beta=0.6, staleness=0,
                            high_size=0, low_size=64)
        assert "rdper-beta-drift" not in _names(e)
        e.observe_rdper(realized_beta=0.0, beta=0.6, staleness=0,
                        high_size=0, low_size=64)
        alerts = [a for a in e.alerts if a.name == "rdper-beta-drift"]
        assert alerts and alerts[-1].severity == "critical"

    def test_exploration_collapse_relative_to_baseline(self):
        e = DiagnosticsEngine()
        e.observe_step(step=0, reward=0.0, success=True, sigma=0.3)
        e.observe_step(step=1, reward=0.0, success=True, sigma=0.2)
        assert "exploration-collapse" not in _names(e)
        e.observe_step(step=2, reward=0.0, success=True, sigma=0.02)
        alerts = [a for a in e.alerts if a.name == "exploration-collapse"]
        assert alerts and alerts[-1].severity == "critical"
        assert alerts[-1].data["baseline"] == pytest.approx(0.3)

    def test_intervention_rate_window(self):
        cfg = DiagnosticsConfig(
            intervention_window=4, intervention_min_steps=4
        )
        e = DiagnosticsEngine(cfg)
        for i in range(4):
            e.observe_intervention("retry")
            e.observe_intervention("watchdog-abort")
            e.observe_step(step=i, reward=0.0, success=False)
        alerts = [a for a in e.alerts if a.name == "intervention-rate"]
        assert alerts and alerts[-1].severity == "critical"
        assert e.summary()["interventions"] == {
            "retry": 4, "watchdog-abort": 4,
        }


class TestLatchingAndDrain:
    def test_persistent_condition_alerts_once(self):
        e = DiagnosticsEngine()
        for i in range(30):
            e.observe_rdper(realized_beta=0.6, beta=0.6, staleness=5000,
                            high_size=1, low_size=64)
        assert len([a for a in e.alerts
                    if a.name == "rdper-stale-pool"]) == 1

    def test_escalation_fires_again(self):
        e = DiagnosticsEngine()
        e.observe_rdper(realized_beta=0.6, beta=0.6, staleness=300,
                        high_size=1, low_size=64)
        e.observe_rdper(realized_beta=0.6, beta=0.6, staleness=900,
                        high_size=1, low_size=64)
        severities = [a.severity for a in e.alerts
                      if a.name == "rdper-stale-pool"]
        assert severities == ["warning", "critical"]

    def test_drain_returns_each_alert_once(self):
        e = DiagnosticsEngine()
        e.observe_rdper(realized_beta=0.6, beta=0.6, staleness=900,
                        high_size=1, low_size=64)
        first = e.drain_alerts()
        assert [a.name for a in first] == ["rdper-stale-pool"]
        assert e.drain_alerts() == []
        assert len(e.alerts) == 1  # history retained

    def test_alert_event_fields_are_json_scalars(self):
        e = DiagnosticsEngine()
        for i in range(5):
            e.observe_step(step=i, reward=0.0, success=True, q_pred=3.0)
        fields = e.alerts[0].as_event_fields()
        assert fields["name"] == "q-overestimation"
        assert set(fields) == {"name", "severity", "step", "message", "data"}
        for v in fields["data"].values():
            assert isinstance(v, (int, float, str, bool))


class TestNullAndContext:
    def test_null_diagnostics_is_inert(self):
        assert NULL_DIAGNOSTICS.enabled is False
        NULL_DIAGNOSTICS.observe_step(step=0, reward=0.0, success=True)
        NULL_DIAGNOSTICS.observe_update(1.0)
        NULL_DIAGNOSTICS.observe_rdper(0.5, 0.6, 0, 0, 0)
        NULL_DIAGNOSTICS.observe_intervention("retry")
        assert NULL_DIAGNOSTICS.drain_alerts() == []
        assert NULL_DIAGNOSTICS.summary()["alerts_total"] == 0

    def test_default_context_has_null_diagnostics(self):
        assert RunContext().diagnostics.enabled is False

    def test_ensure_context_preserves_diagnostics(self):
        class Probe(TuningLogger):
            def event(self, kind, **fields):
                pass

        engine = DiagnosticsEngine()
        ctx = RunContext(diagnostics=engine)
        grafted = ensure_context(ctx, Probe())
        assert grafted.diagnostics is engine

    def test_engine_pickles(self):
        import pickle

        e = DiagnosticsEngine()
        for i in range(5):
            e.observe_step(step=i, reward=0.0, success=True, q_pred=3.0)
        clone = pickle.loads(pickle.dumps(e))
        assert _names(clone) == _names(e)


class TestInjectedPathologies:
    """Each rigged pathology must trigger its intended named alert."""

    def test_rigged_beta_starves_high_pool(self):
        # β=0.9 demands 90% high-reward samples, but R_th=0.99 lets
        # almost nothing in: realized β collapses to 0 and the pool
        # goes stale — both RDPER detectors must name the cause.
        from repro.replay.base import Transition
        from repro.replay.rdper import RewardDrivenReplayBuffer

        rng = np.random.default_rng(0)
        buffer = RewardDrivenReplayBuffer(
            capacity=512, state_dim=4, action_dim=3, rng=rng,
            reward_threshold=0.99, beta=0.9,
        )
        engine = DiagnosticsEngine(
            DiagnosticsConfig(stale_pushes_warning=20,
                              stale_pushes_critical=60)
        )
        buffer.set_telemetry(RunContext(diagnostics=engine))
        for _ in range(128):
            buffer.push(Transition(
                state=rng.uniform(size=4), action=rng.uniform(size=3),
                reward=float(rng.uniform(-1.0, 0.5)),
                next_state=rng.uniform(size=4),
            ))
        for _ in range(10):
            buffer.sample(32)
        names = set(_names(engine))
        assert "rdper-beta-drift" in names
        assert "rdper-stale-pool" in names

    def test_rigged_sigma_decay_collapses_exploration(self):
        # A SafetyGuard-style σ decay: 0.3 halving every step crosses
        # the collapse thresholds within a handful of steps.
        engine = DiagnosticsEngine()
        sigma = 0.3
        for i in range(8):
            engine.observe_step(step=i, reward=0.0, success=False,
                                sigma=sigma)
            sigma *= 0.5
        alerts = [a for a in engine.alerts
                  if a.name == "exploration-collapse"]
        assert [a.severity for a in alerts] == ["warning", "critical"]

    def test_hostile_profile_triggers_intervention_rate(self):
        # A hostile cluster with resilience enabled fires retries,
        # watchdog aborts, and fallbacks on most steps; the rate
        # detector must flag the session as environment-limited.
        env = make_env("TS", "D1", seed=3, fault_profile="hostile")
        tuner = DeepCAT.from_env(env, seed=3)
        tuner.train_offline(env, 40)
        engine = DiagnosticsEngine(
            DiagnosticsConfig(
                intervention_window=4,
                intervention_min_steps=2,
                intervention_rate_warning=0.25,
                intervention_rate_critical=0.75,
            )
        )
        ctx = RunContext(diagnostics=engine)
        tune_env = make_env("TS", "D1", seed=1003, fault_profile="hostile")
        tuner.tune_online(
            tune_env, steps=6, telemetry=ctx,
            resilience=ResiliencePolicy.default(seed=3),
        )
        assert engine.summary()["interventions"]  # chaos actually fired
        assert "intervention-rate" in _names(engine)


class TestReplay:
    def test_replay_reconstructs_plateau_and_interventions(self):
        records = []
        for i in range(60):
            records.append({
                "kind": "online-step", "step": i, "reward": 0.1,
                "success": True, "attempts": 3, "fallback": i % 2 == 0,
            })
        engine = replay_events(records)
        names = set(_names(engine))
        assert "reward-plateau" in names
        assert "intervention-rate" in names
        assert engine.summary()["interventions"]["retry"] == 120


@pytest.mark.determinism
class TestDiagnosticsPurity:
    """A --diagnostics session is bit-identical science to one without."""

    def _session(self, diagnostics):
        env = make_env("TS", "D1", seed=11)
        tuner = DeepCAT.from_env(env, seed=11)
        tuner.train_offline(env, 60)
        ctx = RunContext(diagnostics=diagnostics)
        tune_env = make_env("TS", "D1", seed=1011,
                            fault_profile="flaky")
        return copy.deepcopy(tuner).tune_online(
            tune_env, steps=4, telemetry=ctx,
            resilience=ResiliencePolicy.default(seed=11),
        )

    def test_science_bit_identical(self):
        base = self._session(None)
        diag = self._session(DiagnosticsEngine())
        assert len(base.steps) == len(diag.steps)
        for a, b in zip(base.steps, diag.steps):
            assert a.step == b.step
            assert a.duration_s == b.duration_s
            assert a.reward == b.reward
            assert a.success == b.success
            assert a.config == b.config
            assert np.array_equal(a.action, b.action)
            assert a.attempts == b.attempts
            assert a.fallback == b.fallback
            assert a.faults == b.faults


class TestOverheadGate:
    def test_observe_cycle_under_two_percent_of_online_step(self):
        # The committed BENCH baseline puts the online.step median in
        # the milliseconds; a full observe cycle must stay below 2% of
        # a measured online step so diagnostics are always-on-safe.
        env = make_env("TS", "D1", seed=5)
        tuner = DeepCAT.from_env(env, seed=5)
        tuner.train_offline(env, 60)
        tune_env = make_env("TS", "D1", seed=1005)
        t0 = time.perf_counter()
        copy.deepcopy(tuner).tune_online(tune_env, steps=4)
        step_s = (time.perf_counter() - t0) / 4

        engine = DiagnosticsEngine()
        n = 2000
        t0 = time.perf_counter()
        for i in range(n):
            engine.observe_update(0.1)
            engine.observe_rdper(realized_beta=0.6, beta=0.6,
                                 staleness=i % 10, high_size=8,
                                 low_size=64)
            engine.observe_step(step=i, reward=0.1, success=True,
                                q_pred=0.2, sigma=0.3)
            engine.drain_alerts()
        cycle_s = (time.perf_counter() - t0) / n
        assert cycle_s < 0.02 * step_s, (
            f"diagnostics cycle {cycle_s * 1e6:.1f}us exceeds 2% of "
            f"online step {step_s * 1e3:.2f}ms"
        )
