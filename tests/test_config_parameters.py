"""Tests for repro.config.parameter."""

import pytest
from hypothesis import given, strategies as st

from repro.config.parameter import (
    BoolParameter,
    CategoricalParameter,
    FloatParameter,
    IntParameter,
)


class TestFloatParameter:
    def make(self, log=False):
        return FloatParameter(
            "p", "spark", default=1.0, low=0.5, high=8.0, log=log
        )

    def test_encode_bounds(self):
        p = self.make()
        assert p.encode(0.5) == 0.0
        assert p.encode(8.0) == 1.0

    def test_roundtrip_linear(self):
        p = self.make()
        for v in [0.5, 1.0, 4.25, 8.0]:
            assert p.decode(p.encode(v)) == pytest.approx(v)

    def test_roundtrip_log(self):
        p = self.make(log=True)
        for v in [0.5, 1.0, 4.0, 8.0]:
            assert p.decode(p.encode(v)) == pytest.approx(v)

    def test_log_midpoint_is_geometric(self):
        p = FloatParameter("p", "spark", default=2.0, low=1.0, high=4.0,
                           log=True)
        assert p.decode(0.5) == pytest.approx(2.0)

    def test_encode_clips_out_of_range(self):
        p = self.make()
        assert p.encode(100.0) == 1.0
        assert p.encode(-5.0) == 0.0

    def test_decode_rejects_outside_unit(self):
        with pytest.raises(ValueError):
            self.make().decode(1.5)

    def test_clip(self):
        p = self.make()
        assert p.clip(100.0) == 8.0
        assert p.clip(1.3) == 1.3

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            FloatParameter("p", "spark", default=1.0, low=2.0, high=1.0)
        with pytest.raises(ValueError):
            FloatParameter("p", "spark", default=9.0, low=0.0, high=1.0)
        with pytest.raises(ValueError):
            FloatParameter("p", "spark", default=1.0, low=0.0, high=2.0,
                           log=True)

    @given(st.floats(0.0, 1.0))
    def test_decode_encode_identity_property(self, u):
        p = self.make()
        assert p.encode(p.decode(u)) == pytest.approx(u, abs=1e-9)


class TestIntParameter:
    def make(self, log=False):
        return IntParameter("p", "yarn", default=4, low=1, high=64, log=log)

    def test_roundtrip_all_values_small_range(self):
        p = IntParameter("p", "hdfs", default=2, low=1, high=5)
        for v in range(1, 6):
            assert p.decode(p.encode(v)) == v

    def test_roundtrip_log(self):
        p = self.make(log=True)
        for v in [1, 2, 8, 17, 64]:
            assert p.decode(p.encode(v)) == v

    def test_decode_is_int(self):
        assert isinstance(self.make().decode(0.37), int)

    def test_clip_rounds(self):
        assert self.make().clip(3.6) == 4

    def test_clip_bounds(self):
        p = self.make()
        assert p.clip(1000) == 64
        assert p.clip(-3) == 1

    @given(st.floats(0.0, 1.0))
    def test_decode_in_range_property(self, u):
        p = self.make(log=True)
        assert 1 <= p.decode(u) <= 64


class TestBoolParameter:
    def make(self):
        return BoolParameter("p", "spark", default=True)

    def test_encode(self):
        p = self.make()
        assert p.encode(True) == 1.0
        assert p.encode(False) == 0.0

    def test_decode_threshold(self):
        p = self.make()
        assert p.decode(0.49) is False
        assert p.decode(0.5) is True

    def test_roundtrip(self):
        p = self.make()
        for v in (True, False):
            assert p.decode(p.encode(v)) is v

    def test_clip(self):
        assert self.make().clip(1) is True


class TestCategoricalParameter:
    def make(self):
        return CategoricalParameter(
            "p", "spark", default="a", choices=("a", "b", "c")
        )

    def test_roundtrip(self):
        p = self.make()
        for c in ("a", "b", "c"):
            assert p.decode(p.encode(c)) == c

    def test_bins_cover_unit_interval(self):
        p = self.make()
        assert p.decode(0.0) == "a"
        assert p.decode(0.999) == "c"
        assert p.decode(1.0) == "c"

    def test_encode_unknown_raises(self):
        with pytest.raises(ValueError):
            self.make().encode("z")

    def test_clip_unknown_raises(self):
        with pytest.raises(ValueError):
            self.make().clip("z")

    def test_needs_two_choices(self):
        with pytest.raises(ValueError):
            CategoricalParameter("p", "spark", default="a", choices=("a",))

    def test_duplicate_choices_rejected(self):
        with pytest.raises(ValueError):
            CategoricalParameter(
                "p", "spark", default="a", choices=("a", "a")
            )

    def test_default_must_be_choice(self):
        with pytest.raises(ValueError):
            CategoricalParameter("p", "spark", default="x", choices=("a", "b"))

    def test_validate(self):
        p = self.make()
        assert p.validate("a")
        assert not p.validate("nope")
