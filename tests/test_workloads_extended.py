"""Tests for the extended (non-paper) workloads."""

import numpy as np
import pytest

from repro.cluster.hardware import CLUSTER_A
from repro.factory import make_env
from repro.sim.engine import SparkSimulator
from repro.workloads.extended import Aggregation, Bayes, Join
from repro.workloads.registry import (
    ALL_WORKLOADS,
    EXTENDED_WORKLOADS,
    WORKLOADS,
    get_workload,
    workload_pairs,
)

EXT_CODES = ("BAY", "AGG", "JOIN")


class TestRegistryExtension:
    def test_paper_set_unchanged(self):
        assert set(WORKLOADS) == {"WC", "TS", "PR", "KM"}
        assert len(workload_pairs()) == 12  # the paper's pairs only

    def test_extended_set(self):
        assert set(EXTENDED_WORKLOADS) == set(EXT_CODES)
        assert set(ALL_WORKLOADS) == set(WORKLOADS) | set(EXT_CODES)

    def test_lookup_extended(self):
        assert get_workload("BAY").name == "Bayes"
        assert get_workload("JOIN").category == "SQL"


class TestExtendedStructure:
    @pytest.mark.parametrize("code", EXT_CODES)
    def test_datasets_grow(self, code):
        ds = get_workload(code).datasets()
        assert ds["D1"].input_mb < ds["D2"].input_mb < ds["D3"].input_mb

    @pytest.mark.parametrize("code", EXT_CODES)
    def test_first_stage_reads_hdfs(self, code):
        w = get_workload(code)
        assert w.stages(w.dataset("D1"))[0].reads_hdfs

    def test_join_reads_two_tables(self):
        w = Join()
        stages = w.stages(w.dataset("D1"))
        readers = [s for s in stages if s.reads_hdfs]
        assert len(readers) == 2

    def test_aggregation_shuffle_is_small(self):
        w = Aggregation()
        s0 = w.stages(w.dataset("D1"))[0]
        assert s0.shuffle_write_mb < 0.2 * s0.input_mb

    def test_bayes_is_cpu_heavy(self):
        assert Bayes().stages(Bayes().dataset("D1"))[0].cpu_per_mb >= 0.04


class TestExtendedSimulation:
    @pytest.mark.parametrize("code", EXT_CODES)
    def test_defaults_succeed(self, code, space):
        w = get_workload(code)
        for label in ("D1", "D2", "D3"):
            sim = SparkSimulator(
                w, label, CLUSTER_A, np.random.default_rng(0),
                noise_sigma=0.0,
            )
            r = sim.evaluate(space.defaults())
            assert r.success, f"{code}-{label}: {r.failure_reason}"

    @pytest.mark.parametrize("code", EXT_CODES)
    def test_tunable(self, code, space):
        """A well-provisioned config beats the default on every extended
        workload — the tuning problem is real, not flat."""
        w = get_workload(code)
        sim = SparkSimulator(
            w, "D1", CLUSTER_A, np.random.default_rng(0), noise_sigma=0.0
        )
        default = sim.evaluate(space.defaults()).duration_s
        good = space.defaults() | {
            "spark.executor.cores": 5,
            "spark.executor.memory": 3072,
            "spark.executor.memoryOverhead": 512,
            "spark.executor.instances": 9,
            "spark.default.parallelism": 96,
            "spark.serializer": "kryo",
            "yarn.nodemanager.resource.memory-mb": 14336,
            "yarn.nodemanager.resource.cpu-vcores": 16,
            "yarn.scheduler.maximum-allocation-mb": 14336,
            "yarn.scheduler.maximum-allocation-vcores": 16,
        }
        tuned = sim.evaluate(good)
        assert tuned.success
        assert tuned.duration_s < default * 0.8

    def test_make_env_supports_extended(self):
        env = make_env("AGG", "D1", seed=0)
        out = env.step(env.space.default_vector())
        assert out.success
