"""Profiling hooks: phase timers, capture layers, and zero-cost default."""

import numpy as np
import pytest

from repro.agents.base import AgentHyperParams
from repro.core.deepcat import DeepCAT
from repro.factory import make_env
from repro.telemetry import (
    NULL_CONTEXT,
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    RunContext,
)
from repro.telemetry.profiling import (
    activate,
    active_profiler,
    deactivate,
    phase,
)

FAST_HP = AgentHyperParams(batch_size=16, warmup_steps=8, hidden=(16, 16))


class TestProfilerPhases:
    def test_phase_accumulates_calls_and_time(self):
        p = Profiler()
        for _ in range(3):
            with p.phase("work"):
                pass
        stats = p.stats()
        assert stats["work"]["calls"] == 3
        assert stats["work"]["total_s"] >= 0.0
        assert stats["work"]["max_s"] >= stats["work"]["mean_s"]

    def test_phase_frames_are_reused(self):
        p = Profiler()
        assert p.phase("a") is p.phase("a")
        assert p.phase("a") is not p.phase("b")

    def test_reentrant_phase_counts_outermost_only(self):
        p = Profiler()
        with p.phase("outer"):
            with p.phase("outer"):
                pass
        assert p.stats()["outer"]["calls"] == 1

    def test_report_sorted_by_total(self):
        import time

        p = Profiler()
        with p.phase("slow"):
            time.sleep(0.002)
        with p.phase("fast"):
            pass
        lines = p.report().splitlines()
        assert "phase" in lines[0]
        assert lines[1].startswith("slow")

    def test_report_min_total_filter(self):
        p = Profiler()
        with p.phase("tiny"):
            pass
        assert "tiny" not in p.report(min_total_s=10.0)


class TestCaptureLayers:
    def test_cprofile_dump_and_hotspots(self, tmp_path):
        p = Profiler(cprofile=True)
        with p:
            sorted(np.random.default_rng(0).uniform(size=1000))
        out = p.dump_pstats(tmp_path / "prof" / "run.pstats")
        assert out.is_file() and out.stat().st_size > 0
        import pstats

        pstats.Stats(str(out))  # loadable
        table = p.hotspot_table(top_n=5)
        assert "cumulative" in table

    def test_cprofile_unavailable_raises(self):
        p = Profiler()
        assert not p.has_cprofile
        with pytest.raises(RuntimeError):
            p.dump_pstats("x.pstats")
        with pytest.raises(RuntimeError):
            p.hotspot_table()

    def test_tracemalloc_tracks_peaks(self):
        p = Profiler(trace_malloc=True)
        with p:
            with p.phase("alloc"):
                _ = [0.0] * 100_000
        assert p.stats()["alloc"]["alloc_peak_bytes"] > 100_000 * 4
        assert p.global_alloc_peak_bytes > 0

    def test_start_stop_idempotent(self):
        p = Profiler(cprofile=True)
        p.start()
        p.start()
        p.stop()
        p.stop()
        assert p.hotspot_table()  # capture usable after double stop


class TestNullProfiler:
    def test_null_phase_is_shared_noop(self):
        null = NullProfiler()
        assert null.phase("a") is null.phase("b")
        with null.phase("a"):
            pass
        assert null.stats() == {}
        assert null.report() == ""
        assert not null.has_cprofile

    def test_default_context_uses_null_profiler(self):
        assert NULL_CONTEXT.profiler is NULL_PROFILER
        with NULL_CONTEXT.phase("x"):
            pass  # must be a silent no-op

    def test_context_enabled_counts_profiler(self):
        assert not RunContext().enabled
        assert RunContext(profiler=Profiler()).enabled


class TestActiveProfiler:
    def test_activate_routes_module_level_phase(self):
        p = Profiler()
        activate(p)
        try:
            with phase("hooked"):
                pass
            assert active_profiler() is p
        finally:
            deactivate()
        assert p.stats()["hooked"]["calls"] == 1
        assert active_profiler() is NULL_PROFILER

    def test_nn_forward_backward_report_phases(self):
        from repro.nn.network import MLP

        net = MLP(4, 2, hidden=(8,), rng=np.random.default_rng(0))
        p = Profiler()
        activate(p)
        try:
            out = net.forward(np.zeros((3, 4)))
            net.backward(np.ones_like(out))
        finally:
            deactivate()
        stats = p.stats()
        assert stats["nn.forward"]["calls"] == 1
        assert stats["nn.backward"]["calls"] == 1


class TestPipelinePhases:
    def test_instrumented_run_reports_hot_phases(self):
        prof = Profiler()
        ctx = RunContext(profiler=prof)
        env = make_env("TS", "D1", seed=0)
        tuner = DeepCAT.from_env(env, seed=0, hp=FAST_HP)
        activate(prof)
        try:
            tuner.train_offline(env, 30, telemetry=ctx)
            tuner.tune_online(make_env("TS", "D1", seed=1000), steps=2,
                              telemetry=ctx)
        finally:
            deactivate()
        stats = prof.stats()
        for name in (
            "offline.train",
            "offline.step",
            "online.tune",
            "online.step",
            "sim.evaluate",
            "nn.forward",
            "nn.backward",
            "agent.update",
            "replay.push",
            "replay.sample",
            "twinq.optimize",
        ):
            assert stats[name]["calls"] >= 1, name
        assert stats["offline.step"]["calls"] == 30
        assert stats["online.step"]["calls"] == 2

    def test_engine_dispatch_phase(self):
        from repro.experiments.engine import ExperimentEngine, TaskSpec

        prof = Profiler()
        engine = ExperimentEngine(telemetry=RunContext(profiler=prof))
        # An unknown task kind aborts dispatch, but the phase frame has
        # already been entered — the cheapest way to cover the hook
        # without paying for a real training task.
        with pytest.raises(KeyError):
            engine.run([TaskSpec(kind="missing-kind", params={})])
        assert prof.stats()["engine.dispatch"]["calls"] == 1

    @pytest.mark.determinism
    def test_profiling_does_not_change_science(self):
        def run(profiled: bool):
            env = make_env("TS", "D1", seed=3)
            tuner = DeepCAT.from_env(env, seed=3, hp=FAST_HP)
            if profiled:
                prof = Profiler(trace_malloc=True)
                ctx = RunContext(profiler=prof)
                activate(prof)
                prof.start()
            else:
                ctx = None
            try:
                tuner.train_offline(env, 25, telemetry=ctx)
                session = tuner.tune_online(
                    make_env("TS", "D1", seed=1003), steps=2, telemetry=ctx
                )
            finally:
                if profiled:
                    prof.stop()
                    deactivate()
            return session

        plain = run(profiled=False)
        profiled = run(profiled=True)
        assert [s.reward for s in plain.steps] == [
            s.reward for s in profiled.steps
        ]
        assert [s.duration_s for s in plain.steps] == [
            s.duration_s for s in profiled.steps
        ]
        np.testing.assert_array_equal(
            plain.steps[-1].action, profiled.steps[-1].action
        )
