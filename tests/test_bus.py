"""Event bus: per-worker streams, merged timeline, engine forwarding."""

import json

import pytest

from repro.experiments.engine import ExperimentEngine, TaskSpec, task_kind
from repro.telemetry import (
    BusWriter,
    MetricsRegistry,
    RunContext,
    iter_jsonl_lenient,
    merge_timeline,
    read_jsonl_lenient,
)
from repro.telemetry.bus import TIMELINE_NAME


@task_kind("bus-probe")
def _bus_probe(*, seed: int, telemetry=None):
    """Tiny deterministic task: emits metrics, events, and one forced
    q-overestimation alert through the injected worker context."""
    if telemetry is not None:
        telemetry.count("probe.runs_total", help="probe executions")
        telemetry.observe("probe.seed", float(seed), help="seed histogram")
        for i in range(5):
            telemetry.diagnostics.observe_step(
                step=i, reward=0.0, success=True, q_pred=5.0
            )
        for alert in telemetry.diagnostics.drain_alerts():
            telemetry.event("alert", **alert.as_event_fields())
        telemetry.event("probe-step", seed=seed)
    return seed * 2


class TestBusWriter:
    def test_envelope_and_monotone_seq(self, tmp_path):
        w = BusWriter(tmp_path, "task-0000")
        w.event("online-step", step=0, reward=0.5)
        w.event("alert", name="reward-plateau", severity="warning")
        w.close()
        records = read_jsonl_lenient(tmp_path / "task-0000.jsonl")
        assert [r["seq"] for r in records] == [0, 1]
        assert all(r["source"] == "task-0000" for r in records)
        assert records[0]["kind"] == "online-step"
        assert records[0]["reward"] == 0.5
        assert records[0]["ts"] <= records[1]["ts"]

    def test_lenient_reader_skips_torn_tail(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(
            json.dumps({"kind": "a", "ts": 1.0}) + "\n" + '{"kind": "b", ',
            encoding="utf-8",
        )
        assert [r["kind"] for r in iter_jsonl_lenient(path)] == ["a"]

    def test_lenient_reader_missing_file(self, tmp_path):
        assert read_jsonl_lenient(tmp_path / "none.jsonl") == []


class TestMergeTimeline:
    def test_orders_by_ts_then_source_then_seq(self, tmp_path):
        (tmp_path / "b.jsonl").write_text(
            json.dumps({"kind": "x", "ts": 2.0, "source": "b", "seq": 0})
            + "\n"
            + json.dumps({"kind": "y", "ts": 2.0, "source": "b", "seq": 1})
            + "\n",
            encoding="utf-8",
        )
        (tmp_path / "a.jsonl").write_text(
            json.dumps({"kind": "z", "ts": 2.0, "source": "a", "seq": 0})
            + "\n"
            + json.dumps({"kind": "w", "ts": 1.0, "source": "a", "seq": 1})
            + "\n",
            encoding="utf-8",
        )
        out = merge_timeline(tmp_path)
        assert out.name == TIMELINE_NAME
        merged = read_jsonl_lenient(out)
        assert [r["kind"] for r in merged] == ["w", "z", "x", "y"]

    def test_tie_break_is_total(self, tmp_path):
        """Records with identical (ts, source, seq) keys — e.g. a clock
        that never advances and records missing their envelope — must
        keep a stable, deterministic order: file read order."""
        (tmp_path / "a.jsonl").write_text(
            json.dumps({"kind": "first", "ts": 1.0})
            + "\n"
            + json.dumps({"kind": "second", "ts": 1.0})
            + "\n",
            encoding="utf-8",
        )
        merged = read_jsonl_lenient(merge_timeline(tmp_path))
        assert [r["kind"] for r in merged] == ["first", "second"]
        # idempotent: re-merging yields the same total order
        remerged = read_jsonl_lenient(merge_timeline(tmp_path))
        assert [r["kind"] for r in remerged] == ["first", "second"]

    def test_trace_id_rides_bus_envelope(self, tmp_path):
        w = BusWriter(tmp_path, "task-0000", trace_id="grid42")
        w.event("online-step", step=0)
        w.close()
        plain = BusWriter(tmp_path, "task-0001")
        plain.event("online-step", step=0)
        plain.close()
        tagged = read_jsonl_lenient(tmp_path / "task-0000.jsonl")[0]
        bare = read_jsonl_lenient(tmp_path / "task-0001.jsonl")[0]
        assert tagged["trace_id"] == "grid42"
        assert "trace_id" not in bare

    def test_remerge_excludes_previous_timeline(self, tmp_path):
        (tmp_path / "a.jsonl").write_text(
            json.dumps({"kind": "x", "ts": 1.0, "source": "a", "seq": 0})
            + "\n",
            encoding="utf-8",
        )
        merge_timeline(tmp_path)
        merged = read_jsonl_lenient(merge_timeline(tmp_path))
        assert len(merged) == 1  # not doubled by reading timeline.jsonl


class TestEngineBusForwarding:
    def _tasks(self, n):
        return [
            TaskSpec(kind="bus-probe", params={"seed": i}) for i in range(n)
        ]

    def test_jobs4_merged_timeline_ordered_and_lossless(self, tmp_path):
        bus = tmp_path / "bus"
        ctx = RunContext(metrics=MetricsRegistry())
        engine = ExperimentEngine(jobs=4, telemetry=ctx, bus_dir=bus)
        results = engine.run(self._tasks(8))
        assert results == [i * 2 for i in range(8)]

        # One stream per worker task, plus the merged timeline.
        streams = sorted(p.name for p in bus.glob("task-*.jsonl"))
        assert streams == [f"task-{i:04d}.jsonl" for i in range(8)]
        timeline = read_jsonl_lenient(bus / TIMELINE_NAME)

        # Ordered: the merge key is non-decreasing over the file.
        keys = [(r["ts"], r["source"], r["seq"]) for r in timeline]
        assert keys == sorted(keys)

        # Lossless: every source's seq values form a gap-free range and
        # the timeline holds exactly the union of the streams.
        per_source = {}
        for r in timeline:
            per_source.setdefault(r["source"], []).append(r["seq"])
        assert set(per_source) == {f"task-{i:04d}" for i in range(8)}
        for seqs in per_source.values():
            assert sorted(seqs) == list(range(len(seqs)))
        total = sum(
            len(read_jsonl_lenient(bus / name)) for name in streams
        )
        assert len(timeline) == total

        # Each worker forwarded its heartbeats and its forced alert.
        kinds = [r["kind"] for r in timeline]
        assert kinds.count("worker-heartbeat") == 16  # start + end per task
        assert kinds.count("metrics-snapshot") == 8
        alerts = [r for r in timeline if r["kind"] == "alert"]
        assert len(alerts) == 8
        assert {a["name"] for a in alerts} == {"q-overestimation"}

        # Cross-process metrics state()/merge(): the parent registry
        # aggregated every worker's counters and pooled histograms.
        dump = ctx.metrics.to_json()
        runs = dump["probe.runs_total"]["series"][0]["value"]
        assert runs == 8
        assert dump["probe.seed"]["series"][0]["count"] == 8

    def test_inline_bus_matches_parallel_semantics(self, tmp_path):
        bus = tmp_path / "bus"
        ctx = RunContext(metrics=MetricsRegistry())
        engine = ExperimentEngine(jobs=1, telemetry=ctx, bus_dir=bus)
        results = engine.run(self._tasks(2))
        assert results == [0, 2]
        timeline = read_jsonl_lenient(bus / TIMELINE_NAME)
        assert [r["kind"] for r in timeline].count("alert") == 2
        runs = ctx.metrics.to_json()["probe.runs_total"]["series"][0]["value"]
        assert runs == 2

    def test_bus_off_keeps_legacy_path(self, tmp_path):
        engine = ExperimentEngine(jobs=1)
        assert engine.run(self._tasks(2)) == [0, 2]
        assert not (tmp_path / TIMELINE_NAME).exists()


@pytest.mark.determinism
class TestBusDeterminism:
    def test_bus_mode_never_changes_results(self, tmp_path):
        from repro.experiments.common import clear_model_cache

        spec = TaskSpec(kind="online-session", params={
            "workload": "TS", "dataset": "D1", "tuner": "DeepCAT",
            "seed": 0, "offline_iterations": 40, "ottertune_samples": 10,
            "online_steps": 3, "fault_profile": "none",
            "resilience": False,
        })
        clear_model_cache()
        plain = ExperimentEngine(jobs=1).run([spec])[0]
        clear_model_cache()
        bussed = ExperimentEngine(
            jobs=1, bus_dir=tmp_path / "bus"
        ).run([spec])[0]
        assert len(plain.steps) == len(bussed.steps)
        for a, b in zip(plain.steps, bussed.steps):
            assert a.duration_s == b.duration_s
            assert a.reward == b.reward
            assert a.config == b.config
        # ... and the bus captured the session's step events.
        timeline = read_jsonl_lenient(tmp_path / "bus" / TIMELINE_NAME)
        kinds = [r["kind"] for r in timeline]
        assert kinds.count("online-step") == 3
        assert kinds.count("metrics-snapshot") == 1
