"""Cross-process trace stitching: re-parenting, critical path, CLI."""

import json
import os

import pytest

from repro.cli import main
from repro.experiments.engine import ExperimentEngine, TaskSpec, task_kind
from repro.telemetry import (
    RunContext,
    Tracer,
    stitch_traces,
    write_chrome,
)


@task_kind("stitch-probe")
def _stitch_probe(*, seed: int, telemetry=None):
    if telemetry is not None:
        with telemetry.span("probe.work", seed=seed):
            pass
    return seed


def _worker_trace(tmp_path, name, trace_id, parent_ref, spans=("work",)):
    tr = Tracer(trace_id=trace_id, parent_ref=parent_ref)
    with tr.span("worker.task"):
        for s in spans:
            with tr.span(s):
                pass
    path = tmp_path / f"{name}.trace.jsonl"
    tr.save_jsonl(path)
    return path


class TestStitchTraces:
    def _parent_trace(self, tmp_path, trace_id="grid", tasks=2):
        tr = Tracer(trace_id=trace_id)
        run = tr.record_span(
            "engine.run", start_wall=100.0, duration_s=10.0, ref="r0.run"
        )
        for i in range(tasks):
            tr.record_span(
                "engine.task", start_wall=100.0 + i, duration_s=2.0 + i,
                parent=run, ref=f"r0-task-{i:04d}",
            )
        path = tmp_path / "engine.trace.jsonl"
        tr.save_jsonl(path)
        return path

    def test_reparents_worker_roots(self, tmp_path):
        parent = self._parent_trace(tmp_path)
        workers = [
            _worker_trace(tmp_path, f"r0-task-{i:04d}", "grid",
                          f"r0-task-{i:04d}")
            for i in range(2)
        ]
        result = stitch_traces([parent, *workers])
        assert len(result.roots) == 1
        assert result.trace_id == "grid"
        assert result.unresolved_parents == 0
        run = result.roots[0]
        assert run["name"] == "engine.run"
        for task in run["children"]:
            grafted = [
                c for c in task.get("children", []) if c.get("stitched")
            ]
            assert [g["name"] for g in grafted] == ["worker.task"]

    def test_unresolved_parent_stays_root(self, tmp_path):
        w = _worker_trace(tmp_path, "orphan", "grid", "r9-task-0042")
        result = stitch_traces([w])
        assert result.unresolved_parents == 1
        assert len(result.roots) == 1

    def test_directory_input_prefers_traces_subdir(self, tmp_path):
        sub = tmp_path / "traces"
        sub.mkdir()
        self._parent_trace(sub)
        # a decoy in the bus root must not be scanned
        (tmp_path / "task-0000.jsonl").write_text("{}\n")
        result = stitch_traces(tmp_path)
        assert result.files == [sub / "engine.trace.jsonl"]
        assert result.spans == 3

    def test_mixed_trace_ids_reported(self, tmp_path):
        a = _worker_trace(tmp_path, "a", "one", None)
        b = _worker_trace(tmp_path, "b", "two", None)
        result = stitch_traces([a, b])
        assert result.trace_id == "mixed"
        assert result.trace_ids == ["one", "two"]

    def test_critical_path_follows_latest_end(self, tmp_path):
        tr = Tracer(trace_id="cp")
        run = tr.record_span(
            "engine.run", start_wall=0.0, duration_s=10.0, ref="r0.run"
        )
        tr.record_span("fast", start_wall=0.0, duration_s=1.0, parent=run)
        slow = tr.record_span(
            "slow", start_wall=0.0, duration_s=9.0, parent=run
        )
        tr.record_span(
            "slow.leaf", start_wall=8.0, duration_s=0.5, parent=slow
        )
        path = tmp_path / "t.trace.jsonl"
        tr.save_jsonl(path)
        result = stitch_traces([path])
        assert result.critical_path_names() == [
            "engine.run", "slow", "slow.leaf",
        ]


class TestWriteChrome:
    def test_document_shape(self, tmp_path):
        w = _worker_trace(tmp_path, "w", "grid", None)
        result = stitch_traces([w])
        out = write_chrome(result, tmp_path / "out.chrome.json")
        doc = json.loads(out.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == result.spans
        assert all(e["pid"] == os.getpid() for e in events)
        assert all(e["args"]["trace_id"] == "grid" for e in events)
        child = next(e for e in events if e["name"] == "work")
        parent = next(e for e in events if e["name"] == "worker.task")
        assert child["args"]["parent_ref"] == parent["args"]["ref"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["pid"] for m in meta} == {os.getpid()}
        assert doc["otherData"]["trace_id"] == "grid"
        critical = [e for e in events if e["args"].get("critical") == "1"]
        assert [e["name"] for e in critical] != []


class TestEngineStitching:
    def _run(self, tmp_path, jobs, n=4):
        bus = tmp_path / "bus"
        ctx = RunContext(tracer=Tracer(trace_id="grid-test"))
        engine = ExperimentEngine(jobs=jobs, telemetry=ctx, bus_dir=bus)
        tasks = [
            TaskSpec(kind="stitch-probe", params={"seed": i})
            for i in range(n)
        ]
        assert engine.run(tasks) == list(range(n))
        return bus

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_grid_stitches_to_single_trace(self, tmp_path, jobs):
        bus = self._run(tmp_path, jobs)
        result = stitch_traces(bus)
        # the parent's engine trace inherits the session's trace id and
        # every worker span carries it
        assert result.trace_id == "grid-test"
        assert result.unresolved_parents == 0
        assert len(result.roots) == 1
        run = result.roots[0]
        assert run["name"] == "engine.run"
        assert len(run["children"]) == 4
        for task in run["children"]:
            names = [c["name"] for c in task.get("children", [])]
            assert "worker.task" in names
        if jobs > 1:
            pids = set()
            for rec in result.roots:
                stack = [rec]
                while stack:
                    r = stack.pop()
                    pids.add(r.get("pid"))
                    stack.extend(r.get("children", []))
            assert len(pids) > 1

    def test_multi_run_engine_keeps_refs_distinct(self, tmp_path):
        bus = tmp_path / "bus"
        engine = ExperimentEngine(jobs=1, bus_dir=bus)
        for _ in range(2):
            engine.run(
                [TaskSpec(kind="stitch-probe", params={"seed": 0})]
            )
        traces = sorted(p.name for p in (bus / "traces").glob("*.jsonl"))
        assert traces == [
            "engine.trace.jsonl",
            "r0-task-0000.trace.jsonl",
            "r1-task-0000.trace.jsonl",
        ]
        result = stitch_traces(bus)
        assert result.unresolved_parents == 0
        assert [r["name"] for r in result.roots] == [
            "engine.run", "engine.run",
        ]


class TestStitchCli:
    def test_stitch_bus_dir(self, tmp_path, capsys):
        bus = tmp_path / "bus"
        engine = ExperimentEngine(jobs=1, bus_dir=bus)
        engine.run(
            [TaskSpec(kind="stitch-probe", params={"seed": i})
             for i in range(2)]
        )
        assert main(["telemetry", "stitch", str(bus)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert (bus / "stitched.chrome.json").exists()

    def test_stitch_explicit_out(self, tmp_path, capsys):
        w = _worker_trace(tmp_path, "w", "grid", None)
        out = tmp_path / "merged.json"
        assert main(
            ["telemetry", "stitch", str(w), "--out", str(out)]
        ) == 0
        assert json.loads(out.read_text())["otherData"]["trace_id"] == "grid"

    def test_stitch_empty_dir_fails(self, tmp_path, capsys):
        assert main(["telemetry", "stitch", str(tmp_path)]) == 1
