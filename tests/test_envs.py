"""Tests for the reward function and the tuning environment."""

import numpy as np
import pytest

from repro.envs.reward import RewardFunction
from repro.factory import EXPECTED_SPEEDUPS, make_env
from repro.sim.faults import FAILURE_PERF_FACTOR


class TestRewardFunction:
    def test_eq1_shape(self):
        r = RewardFunction(default_perf=100.0, expected_speedup=2.0)
        # perf_e = 50
        assert r.perf_e == 50.0
        assert r(50.0) == pytest.approx(0.0)
        assert r(25.0) == pytest.approx(0.5)
        assert r(100.0) == pytest.approx(-1.0)

    def test_reward_monotone_decreasing_in_time(self):
        r = RewardFunction(100.0, 2.0)
        assert r(30.0) > r(40.0) > r(90.0)

    def test_failure_charged_at_penalty(self):
        r = RewardFunction(100.0, 2.0)
        assert r(10.0, success=False) == r(
            FAILURE_PERF_FACTOR * 100.0, success=True
        )

    def test_perf_from_reward_inverse(self):
        r = RewardFunction(100.0, 2.5)
        for perf in [20.0, 40.0, 77.0]:
            assert r.perf_from_reward(r(perf)) == pytest.approx(perf)

    def test_invalid(self):
        with pytest.raises(ValueError):
            RewardFunction(0.0, 2.0)
        with pytest.raises(ValueError):
            RewardFunction(10.0, 0.0)
        with pytest.raises(ValueError):
            RewardFunction(10.0, 2.0)(0.0)


class TestTuningEnv:
    def test_dimensions(self):
        env = make_env("TS", "D1", seed=0)
        assert env.state_dim == 9
        assert env.action_dim == 32
        assert env.state.shape == (9,)

    def test_expected_speedups_used(self):
        env = make_env("KM", "D1", seed=0)
        assert env.reward_fn.expected_speedup == EXPECTED_SPEEDUPS["KM"]

    def test_step_outcome_fields(self):
        env = make_env("TS", "D1", seed=0)
        out = env.step(env.space.default_vector())
        assert out.success
        assert out.duration_s > 0
        assert out.state.shape == (9,)
        assert out.next_state.shape == (9,)
        assert set(out.config) == set(env.space.names)
        # default config at perf ~= default duration: reward well below 0
        assert out.reward < 0

    def test_action_clipped(self):
        env = make_env("TS", "D1", seed=0)
        out = env.step(np.full(32, 5.0))
        assert np.all(out.action <= 1.0)

    def test_accounting(self):
        env = make_env("TS", "D1", seed=0)
        env.step(env.space.default_vector())
        env.step(env.space.default_vector())
        assert env.steps_taken == 2
        assert env.total_evaluation_seconds > 0

    def test_reset_restores_idle_state(self):
        env = make_env("TS", "D1", seed=0)
        good = env.space.default_vector()
        env.step(good)
        s = env.reset()
        assert np.all(s < 0.3)

    def test_good_config_positive_reward(self):
        env = make_env("KM", "D1", seed=0)
        cfg = env.space.defaults()
        cfg.update(
            {
                "spark.executor.cores": 5,
                "spark.executor.memory": 6144,
                "spark.executor.memoryOverhead": 512,
                "spark.executor.instances": 6,
                "spark.memory.storageFraction": 0.6,
                "spark.serializer": "kryo",
                "yarn.nodemanager.resource.memory-mb": 14336,
                "yarn.nodemanager.resource.cpu-vcores": 16,
                "yarn.scheduler.maximum-allocation-mb": 14336,
                "yarn.scheduler.maximum-allocation-vcores": 16,
            }
        )
        out = env.step(env.space.encode(cfg))
        assert out.success
        assert out.reward > 0

    def test_failure_reward_strongly_negative(self):
        env = make_env("TS", "D1", seed=0)
        cfg = env.space.defaults()
        cfg["spark.executor.memory"] = 8192
        cfg["spark.executor.memoryOverhead"] = 2048
        cfg["yarn.scheduler.maximum-allocation-mb"] = 6144
        out = env.step(env.space.encode(cfg))
        assert not out.success
        assert out.reward < -1.0

    def test_deterministic_given_seed(self):
        a = make_env("TS", "D1", seed=5)
        b = make_env("TS", "D1", seed=5)
        va = a.step(a.space.default_vector())
        vb = b.step(b.space.default_vector())
        assert va.duration_s == vb.duration_s
        np.testing.assert_array_equal(va.next_state, vb.next_state)
