"""Tests for the tuner-comparison session grid (tiny budgets)."""

import pytest

from repro.experiments.common import ExperimentScale, clear_model_cache
from repro.experiments.sessions import comparison_grid

TINY = ExperimentScale(
    name="tiny-grid", offline_iterations=100, ottertune_samples=40,
    seeds=(0,), online_steps=3,
)
PAIRS = (("WC", "D1"), ("TS", "D1"))


@pytest.fixture(scope="module")
def grid():
    clear_model_cache()
    g = comparison_grid(TINY, pairs=PAIRS)
    yield g
    clear_model_cache()


class TestComparisonGrid:
    def test_all_cells_present(self, grid):
        for tuner in ("DeepCAT", "CDBTune", "OtterTune"):
            for w, d in PAIRS:
                assert (tuner, w, d) in grid.sessions
                assert len(grid.sessions[(tuner, w, d)]) == 1  # one seed

    def test_cached_across_calls(self, grid):
        again = comparison_grid(TINY, pairs=PAIRS)
        assert again is grid

    def test_aggregates_consistent(self, grid):
        for w, d in PAIRS:
            s = grid.sessions[("DeepCAT", w, d)][0]
            assert grid.mean_best("DeepCAT", w, d) == pytest.approx(
                s.best_duration_s
            )
            assert grid.mean_total_cost("DeepCAT", w, d) == pytest.approx(
                s.total_tuning_seconds
            )
            assert grid.mean_speedup("DeepCAT", w, d) == pytest.approx(
                s.speedup_over_default
            )
            assert grid.mean_total_cost("DeepCAT", w, d) == pytest.approx(
                grid.mean_eval_cost("DeepCAT", w, d)
                + grid.mean_rec_cost("DeepCAT", w, d)
            )

    def test_average_speedup_is_mean_over_pairs(self, grid):
        per_pair = [
            grid.mean_speedup("CDBTune", w, d) for w, d in PAIRS
        ]
        assert grid.average_speedup("CDBTune") == pytest.approx(
            sum(per_pair) / len(per_pair)
        )

    def test_cost_reduction_math(self, grid):
        avg, mx = grid.cost_reduction_vs("DeepCAT", "CDBTune")
        assert mx >= avg
        # definition check on one pair
        w, d = PAIRS[0]
        ours = grid.mean_total_cost("DeepCAT", w, d)
        theirs = grid.mean_total_cost("CDBTune", w, d)
        manual = 100.0 * (1.0 - ours / theirs)
        other = grid.cost_reduction_vs("DeepCAT", "CDBTune")
        assert manual <= other[1] + 1e-9

    def test_sessions_have_expected_steps(self, grid):
        for sessions in grid.sessions.values():
            for s in sessions:
                assert s.n_steps == TINY.online_steps


class TestGridCacheKey:
    """Regressions for the memo key (it once was just (name, pairs, seeds),
    so scales differing only in budgets aliased to the same grid)."""

    def test_same_name_different_budget_not_aliased(self, grid):
        """The historical stale-hit: same name+seeds, different budget."""
        shorter = ExperimentScale(
            name=TINY.name,  # deliberately identical
            offline_iterations=TINY.offline_iterations,
            ottertune_samples=TINY.ottertune_samples,
            seeds=TINY.seeds,  # deliberately identical
            online_steps=TINY.online_steps - 1,
        )
        other = comparison_grid(shorter, pairs=PAIRS)
        assert other is not grid
        for sessions in other.sessions.values():
            for s in sessions:
                assert s.n_steps == shorter.online_steps

    def test_different_overrides_not_aliased(self, grid):
        pair = (PAIRS[0],)
        plain = comparison_grid(TINY, pairs=pair)
        swept = comparison_grid(TINY, pairs=pair, overrides={"beta": 0.4})
        assert swept is not plain
        # and the memoization itself still works per overrides value
        assert comparison_grid(TINY, pairs=pair,
                               overrides={"beta": 0.4}) is swept
