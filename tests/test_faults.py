"""Tests for the chaos layer: fault profiles, the injector, and the
environment/simulator wiring."""

import numpy as np
import pytest

from repro.agents.base import AgentHyperParams
from repro.core.deepcat import DeepCAT
from repro.core.resilience import ResiliencePolicy
from repro.core.result import sessions_equal
from repro.factory import make_env
from repro.faults import FaultInjector, FaultProfile, PROFILES, get_profile

FAST_HP = AgentHyperParams(batch_size=16, warmup_steps=8, hidden=(16, 16))


class TestFaultProfile:
    def test_presets_exist_and_escalate(self):
        assert set(PROFILES) == {"none", "flaky", "degraded", "hostile"}
        assert PROFILES["none"].is_null
        for benign, worse in (("flaky", "degraded"), ("degraded", "hostile")):
            assert (
                PROFILES[worse].straggler_rate
                > PROFILES[benign].straggler_rate
            )
            assert PROFILES[worse].crash_rate > PROFILES[benign].crash_rate
            assert (
                PROFILES[worse].metric_dropout_rate
                > PROFILES[benign].metric_dropout_rate
            )

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultProfile(name="bad", straggler_rate=1.5)
        with pytest.raises(ValueError):
            FaultProfile(name="bad", crash_rate=-0.1)
        with pytest.raises(ValueError):
            FaultProfile(name="bad", straggler_rate=0.5, straggler_factor=0.5)

    def test_get_profile_coercions(self):
        assert get_profile(None) is PROFILES["none"]
        assert get_profile("hostile") is PROFILES["hostile"]
        custom = FaultProfile(name="custom", crash_rate=0.5)
        assert get_profile(custom) is custom
        with pytest.raises(KeyError):
            get_profile("nope")


class TestFaultInjector:
    def _result(self):
        env = make_env("WC", "D1", seed=0)
        return env.step(env.space.encode(env.space.defaults())).result

    def test_null_profile_draws_nothing(self):
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        inj = FaultInjector(PROFILES["none"], rng)
        result = self._result()
        out, injected = inj.perturb_result(result)
        state, n = inj.corrupt_state(np.zeros(9))
        assert out is result and injected == () and n == 0
        assert rng.bit_generator.state == before
        assert not inj.enabled

    def test_injection_is_seed_deterministic(self):
        result = self._result()
        outs = []
        for _ in range(2):
            inj = FaultInjector(PROFILES["hostile"], np.random.default_rng(9))
            durations, faults = [], []
            for _ in range(20):
                out, injected = inj.perturb_result(result)
                durations.append(out.duration_s)
                faults.append(injected)
            outs.append((durations, faults))
        assert outs[0] == outs[1]

    def test_crash_is_terminal_and_cheaper_than_run(self):
        result = self._result()
        inj = FaultInjector(
            FaultProfile(name="crashy", crash_rate=1.0), np.random.default_rng(0)
        )
        out, injected = inj.perturb_result(result)
        assert injected == ("crash",)
        assert not out.success
        assert out.duration_s < result.duration_s
        assert "crash" in out.failure_reason

    def test_slowdown_faults_only_stretch_duration(self):
        result = self._result()
        profile = FaultProfile(
            name="slow", straggler_rate=1.0, straggler_factor=3.0,
            executor_loss_rate=1.0, executor_loss_slowdown=2.0,
            hang_rate=1.0, hang_factor=10.0,
        )
        inj = FaultInjector(profile, np.random.default_rng(0))
        out, injected = inj.perturb_result(result)
        assert set(injected) == {"straggler", "executor-loss", "hang"}
        assert out.success == result.success
        assert out.duration_s > result.duration_s

    def test_metric_dropout_bounds(self):
        inj = FaultInjector(
            FaultProfile(name="drop", metric_dropout_rate=1.0),
            np.random.default_rng(1),
        )
        state, n = inj.corrupt_state(np.ones(9))
        assert n == 9 and np.all(np.isnan(state))


class TestEnvIntegration:
    def test_none_profile_bit_identical_to_default(self):
        outs = []
        for profile in (None, "none"):
            env = make_env("WC", "D1", seed=5, fault_profile=profile)
            rng = np.random.default_rng(0)
            outcomes = [env.step(env.space.sample_vector(rng))
                        for _ in range(3)]
            outs.append(outcomes)
        for a, b in zip(*outs):
            assert a.duration_s == b.duration_s
            assert a.reward == b.reward
            np.testing.assert_array_equal(a.next_state, b.next_state)
            assert a.faults == b.faults == ()

    def test_faults_surface_in_outcome(self):
        env = make_env("WC", "D1", seed=5, fault_profile="hostile")
        rng = np.random.default_rng(0)
        seen = set()
        for _ in range(25):
            outcome = env.step(env.space.sample_vector(rng))
            seen.update(outcome.faults)
            if np.isnan(outcome.next_state).any():
                assert "metric-dropout" in outcome.faults
        assert seen & {"straggler", "executor-loss", "crash", "hang",
                       "metric-dropout"}

    def test_internal_state_stays_clean_under_dropout(self):
        env = make_env("WC", "D1", seed=5, fault_profile="hostile")
        rng = np.random.default_rng(0)
        for _ in range(10):
            env.step(env.space.sample_vector(rng))
            assert np.isfinite(env.state).all()

    def test_observation_tracks_last_corruption(self):
        env = make_env(
            "WC", "D1", seed=5,
            fault_profile=FaultProfile(name="drop", metric_dropout_rate=1.0),
        )
        assert np.isfinite(env.observation).all()  # pre-step: clean state
        outcome = env.step(env.space.encode(env.space.defaults()))
        np.testing.assert_array_equal(env.observation, outcome.next_state)
        assert np.isnan(env.observation).all()
        env.reset()
        assert np.isfinite(env.observation).all()

    def test_default_duration_immune_to_injection(self):
        clean = make_env("WC", "D1", seed=5)
        chaotic = make_env("WC", "D1", seed=5, fault_profile="hostile")
        assert clean.default_duration == chaotic.default_duration


@pytest.mark.faults
class TestChaosSmoke:
    """A whole tuning session on the hostile profile must complete with
    zero unhandled exceptions — the chaos-smoke CI gate."""

    def test_hostile_session_completes(self):
        env_t = make_env("WC", "D1", seed=3)
        tuner = DeepCAT.from_env(env_t, seed=7, hp=FAST_HP)
        tuner.train_offline(env_t, 40)
        env = make_env("WC", "D1", seed=11, fault_profile="hostile")
        session = tuner.tune_online(
            env, steps=6, resilience=ResiliencePolicy.default(seed=5)
        )
        assert len(session.steps) == 6
        # chaos was actually exercised, and the records stayed coherent
        assert any(s.faults for s in session.steps)
        for s in session.steps:
            assert s.duration_s > 0
            assert np.isfinite(s.reward)

    def test_hostile_session_is_deterministic(self):
        def run():
            env_t = make_env("WC", "D1", seed=3)
            tuner = DeepCAT.from_env(env_t, seed=7, hp=FAST_HP)
            tuner.train_offline(env_t, 40)
            env = make_env("WC", "D1", seed=11, fault_profile="hostile")
            return tuner.tune_online(
                env, steps=5, resilience=ResiliencePolicy.default(seed=5)
            )

        assert sessions_equal(run(), run())
