"""Tests for the OtterTune pipeline stages and tuner."""

import numpy as np
import pytest

from repro.baselines.ottertune.ei import expected_improvement
from repro.baselines.ottertune.gp import GaussianProcessRegressor, rbf_kernel
from repro.baselines.ottertune.lasso import (
    lasso_coordinate_descent,
    rank_knobs,
)
from repro.baselines.ottertune.mapping import WorkloadRepository
from repro.baselines.ottertune.tuner import OtterTune
from repro.factory import make_env


class TestRbfKernel:
    def test_diagonal_is_variance(self, rng):
        x = rng.normal(size=(5, 3))
        k = rbf_kernel(x, x, length_scale=1.0, variance=2.0)
        np.testing.assert_allclose(np.diag(k), 2.0)

    def test_symmetry_and_psd(self, rng):
        x = rng.normal(size=(6, 3))
        k = rbf_kernel(x, x, 1.0, 1.0)
        np.testing.assert_allclose(k, k.T)
        eig = np.linalg.eigvalsh(k)
        assert eig.min() > -1e-10

    def test_decay_with_distance(self):
        a = np.zeros((1, 2))
        near = np.array([[0.1, 0.0]])
        far = np.array([[3.0, 0.0]])
        assert rbf_kernel(a, near, 1.0, 1.0) > rbf_kernel(a, far, 1.0, 1.0)

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            rbf_kernel(np.zeros((1, 2)), np.zeros((1, 2)), 0.0, 1.0)


class TestGaussianProcess:
    def test_interpolates_training_points(self, rng):
        x = rng.uniform(0, 1, (20, 2))
        y = np.sin(3 * x[:, 0]) + x[:, 1]
        gp = GaussianProcessRegressor(noise_variance=1e-6).fit(x, y)
        pred = gp.predict(x)
        np.testing.assert_allclose(pred, y, atol=1e-2)

    def test_uncertainty_grows_off_data(self, rng):
        x = rng.uniform(0, 0.3, (15, 2))
        y = x.sum(axis=1)
        gp = GaussianProcessRegressor().fit(x, y)
        _, std_near = gp.predict(np.array([[0.15, 0.15]]), return_std=True)
        _, std_far = gp.predict(np.array([[0.95, 0.95]]), return_std=True)
        assert std_far[0] > std_near[0]

    def test_generalizes_smooth_function(self, rng):
        x = rng.uniform(0, 1, (60, 1))
        y = np.sin(4 * x[:, 0])
        gp = GaussianProcessRegressor(length_scale=0.4).fit(x, y)
        xt = np.linspace(0.1, 0.9, 10)[:, None]
        pred = gp.predict(xt)
        np.testing.assert_allclose(pred, np.sin(4 * xt[:, 0]), atol=0.25)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict(np.zeros((1, 2)))

    def test_fit_validation(self):
        gp = GaussianProcessRegressor()
        with pytest.raises(ValueError):
            gp.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((0, 2)), np.zeros(0))

    def test_1d_query_promoted(self, rng):
        gp = GaussianProcessRegressor().fit(
            rng.uniform(0, 1, (5, 2)), rng.normal(size=5)
        )
        assert gp.predict(np.zeros(2)).shape == (1,)


class TestExpectedImprovement:
    def test_zero_when_mean_worse_and_certain(self):
        ei = expected_improvement(np.array([10.0]), np.array([0.0]), best_y=5.0)
        assert ei[0] == 0.0

    def test_positive_when_mean_better(self):
        ei = expected_improvement(np.array([3.0]), np.array([0.0]), best_y=5.0)
        assert ei[0] == pytest.approx(2.0)

    def test_uncertainty_creates_hope(self):
        certain = expected_improvement(np.array([6.0]), np.array([0.0]), 5.0)
        uncertain = expected_improvement(np.array([6.0]), np.array([2.0]), 5.0)
        assert uncertain[0] > certain[0] == 0.0

    def test_vectorized(self):
        ei = expected_improvement(
            np.array([1.0, 9.0]), np.array([1.0, 1.0]), 5.0
        )
        assert ei.shape == (2,)
        assert ei[0] > ei[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_improvement(np.zeros(2), np.zeros(3), 0.0)
        with pytest.raises(ValueError):
            expected_improvement(np.zeros(1), np.array([-1.0]), 0.0)


class TestLasso:
    def test_recovers_sparse_signal(self, rng):
        n, d = 200, 10
        x = rng.normal(size=(n, d))
        y = 3.0 * x[:, 2] - 2.0 * x[:, 7] + 0.05 * rng.normal(size=n)
        w = lasso_coordinate_descent(x, y - y.mean(), alpha=0.1)
        assert abs(w[2]) > 1.0 and abs(w[7]) > 1.0
        others = np.delete(np.abs(w), [2, 7])
        assert others.max() < 0.2

    def test_large_alpha_kills_everything(self, rng):
        x = rng.normal(size=(50, 5))
        y = x[:, 0]
        w = lasso_coordinate_descent(x, y, alpha=100.0)
        np.testing.assert_array_equal(w, 0.0)

    def test_negative_alpha_rejected(self, rng):
        with pytest.raises(ValueError):
            lasso_coordinate_descent(np.zeros((2, 2)), np.zeros(2), -1.0)

    def test_rank_knobs_orders_by_importance(self, rng):
        n, d = 300, 8
        x = rng.uniform(0, 1, (n, d))
        y = 10.0 * x[:, 3] + 2.0 * x[:, 5] + 0.1 * rng.normal(size=n)
        order = rank_knobs(x, y)
        assert order[0] == 3
        assert order.index(5) < 4
        assert sorted(order) == list(range(d))

    def test_rank_knobs_constant_target(self, rng):
        x = rng.uniform(0, 1, (20, 4))
        order = rank_knobs(x, np.ones(20))
        assert sorted(order) == list(range(4))


class TestWorkloadRepository:
    def test_observe_and_get(self):
        repo = WorkloadRepository()
        repo.observe("w1", np.zeros(3), np.zeros(2), 10.0)
        assert "w1" in repo
        assert len(repo.get("w1")) == 1
        with pytest.raises(KeyError):
            repo.get("nope")

    def test_rejects_nonpositive_perf(self):
        repo = WorkloadRepository()
        with pytest.raises(ValueError):
            repo.observe("w", np.zeros(2), np.zeros(2), 0.0)

    def test_mapping_picks_similar_workload(self, rng):
        repo = WorkloadRepository()
        # workload A: metrics ~ config; workload B: metrics ~ 1 - config
        for _ in range(30):
            c = rng.uniform(0, 1, 3)
            repo.observe("A", c, c.copy(), 10.0)
            repo.observe("B", c, 1.0 - c, 10.0)
        target_c = rng.uniform(0, 1, (10, 3))
        assert repo.map_workload(target_c, target_c) == "A"
        assert repo.map_workload(target_c, 1.0 - target_c) == "B"

    def test_mapping_no_target_data_uses_largest(self, rng):
        repo = WorkloadRepository()
        repo.observe("small", np.zeros(2), np.zeros(2), 1.0)
        for _ in range(5):
            repo.observe("big", rng.uniform(0, 1, 2), np.zeros(2), 1.0)
        assert (
            repo.map_workload(np.zeros((0, 2)), np.zeros((0, 2))) == "big"
        )

    def test_mapping_empty_repo(self):
        repo = WorkloadRepository()
        assert repo.map_workload(np.zeros((1, 2)), np.zeros((1, 2))) is None

    def test_exclude(self, rng):
        repo = WorkloadRepository()
        repo.observe("only", np.zeros(2), np.zeros(2), 1.0)
        assert (
            repo.map_workload(
                np.zeros((1, 2)), np.zeros((1, 2)), exclude="only"
            )
            is None
        )


class TestOtterTuneTuner:
    def test_requires_offline_data(self):
        env = make_env("TS", "D1", seed=0)
        ot = OtterTune.from_env(env, seed=0)
        with pytest.raises(RuntimeError):
            ot.tune_online(env, steps=1)

    def test_end_to_end_session(self):
        env = make_env("TS", "D1", seed=0)
        ot = OtterTune.from_env(env, seed=0, n_candidates=100,
                                max_train_points=80)
        ot.collect_offline(env, "TS-D1", 60)
        s = ot.tune_online(make_env("TS", "D1", seed=9), steps=3)
        assert s.n_steps == 3
        assert s.tuner == "OtterTune"
        assert s.recommendation_seconds > 0

    def test_improves_over_random_median(self):
        env = make_env("TS", "D1", seed=1)
        ot = OtterTune.from_env(env, seed=1)
        ot.collect_offline(env, "TS-D1", 150)
        s = ot.tune_online(make_env("TS", "D1", seed=5), steps=5)
        # GP+EI should find something much better than the default
        assert s.best_duration_s < s.default_duration_s

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            OtterTune(action_dim=0)
        with pytest.raises(ValueError):
            OtterTune(action_dim=4, n_candidates=0)

    def test_collect_offline_validation(self):
        env = make_env("TS", "D1", seed=0)
        ot = OtterTune.from_env(env)
        with pytest.raises(ValueError):
            ot.collect_offline(env, "x", 0)
