"""Tuning-cost ledger: typed accounts, exactness, purity, explain CLI.

Three contracts:

* **Exactness** — ``CostLedger.total_tuning_seconds()`` equals the
  session's ``total_tuning_seconds`` *bit-for-bit*, across fault
  profiles, retries, watchdog aborts, and fallbacks (no double
  charging, no float drift).
* **Purity** — a ``--ledger`` run is bit-identical to an unledgered
  one (``-m determinism``).
* **Attribution** — screening counterfactuals are non-zero exactly
  when Twin-Q accepts an optimized action, and ``repro explain``
  renders every ledger this suite produces.
"""

from __future__ import annotations

import copy
import json
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.deepcat import DeepCAT
from repro.core.resilience import ResiliencePolicy
from repro.core.result import sessions_equal
from repro.factory import make_env
from repro.telemetry import (
    CostLedger,
    LEDGER_SCHEMA,
    NULL_LEDGER,
    RunContext,
    load_ledger,
    merge_ledgers,
)


@pytest.fixture(scope="module")
def trained():
    env = make_env("TS", "D1", seed=5)
    tuner = DeepCAT.from_env(env, seed=5)
    tuner.train_offline(env, 60)
    return tuner


def _tune(trained, *, seed=1005, profile="flaky", steps=5, ledger=None,
          resilience_seed=3, q_threshold=None):
    tuner = copy.deepcopy(trained)
    if q_threshold is not None:
        tuner.q_threshold = q_threshold
    env = make_env("TS", "D1", seed=seed, fault_profile=profile)
    ctx = RunContext(ledger=ledger) if ledger is not None else None
    resilience = (
        ResiliencePolicy.default(seed=resilience_seed)
        if profile != "none" else None
    )
    session = tuner.tune_online(
        env, steps=steps, telemetry=ctx, resilience=resilience
    )
    return session


class TestLedgerPrimitives:
    def test_charge_envelope_and_totals(self):
        led = CostLedger()
        led.charge("evaluation", 10.0, step=0, tuner="T")
        led.charge("retry", 2.5, step=0, attempt=1)
        led.counterfactual("screening", 1.5, step=0)
        assert [e["seq"] for e in led.entries] == [0, 1, 2]
        totals = led.totals()
        assert totals["evaluation"] == {"count": 1, "seconds": 10.0}
        assert totals["retry"] == {"count": 1, "seconds": 2.5}
        assert led.total_charged() == 12.5
        assert led.saved_by_screening == 1.5
        assert led.counterfactual_totals()["screening"]["count"] == 1

    def test_meta_cannot_shadow_envelope(self):
        led = CostLedger(source="run")
        e = led.charge(
            "evaluation", 1.0, step=3, seq=99, source="evil", ts=-1.0
        )
        assert e["seq"] == 0 and e["source"] == "run" and e["ts"] > 0
        assert e["amount_s"] == 1.0 and e["step"] == 3

    def test_streaming_roundtrip(self, tmp_path):
        path = tmp_path / "run.ledger.jsonl"
        led = CostLedger(path, source="run")
        led.charge("evaluation", 7.0, step=0, config={"k": 1})
        led.counterfactual("cache_saving", 3.0, phase="engine")
        led.close()
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == LEDGER_SCHEMA
        assert header["kind"] == "ledger-header"
        view = load_ledger(path)
        assert view.source == "run"
        assert len(view.entries) == 2
        assert view.total_charged() == 7.0
        assert view.cache_savings == 3.0
        assert view.entries[0]["config"] == {"k": 1}

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"kind": "ledger-header", "schema": "other-v9"})
            + "\n"
        )
        with pytest.raises(ValueError, match="other-v9"):
            load_ledger(path)

    def test_load_skips_torn_tail(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        led = CostLedger(path)
        led.charge("evaluation", 5.0, step=0)
        led.close()
        with path.open("a") as fh:
            fh.write('{"kind": "charge", "acc')
        assert len(load_ledger(path).entries) == 1

    def test_absorb_preserves_source_reassigns_seq(self, tmp_path):
        child = CostLedger(source="task-0001")
        child.charge("evaluation", 4.0, step=0)
        parent = CostLedger(source="engine")
        parent.charge("task", 1.0, phase="engine")
        n = parent.absorb(child.entries)
        assert n == 1
        absorbed = parent.entries[-1]
        assert absorbed["source"] == "task-0001"
        assert absorbed["seq"] == 1
        assert parent.total_charged() == 5.0

    def test_merge_ledgers(self, tmp_path):
        for i in range(2):
            led = CostLedger(tmp_path / f"{i}.ledger.jsonl", source=f"t{i}")
            led.charge("evaluation", float(i + 1), step=0)
            led.close()
        view = merge_ledgers(sorted(tmp_path.glob("*.ledger.jsonl")))
        assert view.total_charged() == 3.0
        assert {e["source"] for e in view.entries} == {"t0", "t1"}

    def test_null_ledger_is_inert(self):
        assert not NULL_LEDGER.enabled
        assert NULL_LEDGER.charge("evaluation", 1.0) == {}
        assert NULL_LEDGER.counterfactual("screening", 1.0) == {}
        assert NULL_LEDGER.entries == []
        assert NULL_LEDGER.total_tuning_seconds() == 0.0


class TestExactness:
    """sum(ledger) == session TCT, bit-for-bit — the tentpole contract."""

    @pytest.mark.parametrize("profile,seed,rseed", [
        ("flaky", 1005, 3),
        ("flaky", 1042, 7),
        ("hostile", 1005, 3),
        ("hostile", 1077, 11),
        ("none", 1005, 0),
    ])
    def test_ledger_equals_session_tct(self, trained, profile, seed, rseed):
        led = CostLedger()
        session = _tune(
            trained, seed=seed, profile=profile, ledger=led,
            resilience_seed=rseed,
        )
        assert led.total_tuning_seconds() == session.total_tuning_seconds
        # and no charge was lost or double-booked: one final charge and
        # one recommendation charge per step
        finals = [
            e for e in led.charges()
            if e["account"] in ("evaluation", "watchdog_abort", "fallback")
        ]
        recs = [
            e for e in led.charges() if e["account"] == "recommendation"
        ]
        assert len(finals) == len(session.steps)
        assert len(recs) == len(session.steps)

    def test_retry_charges_mirror_extra_cost(self, trained):
        led = CostLedger()
        session = _tune(trained, profile="hostile", ledger=led)
        retried = [s for s in session.steps if s.attempts > 1]
        if not retried:
            pytest.skip("no retries under this seed")
        for s in retried:
            step_retries = [
                e for e in led.charges()
                if e["account"] == "retry" and e.get("step") == s.step
            ]
            assert len(step_retries) == s.attempts - 1

    def test_roundtrip_preserves_exactness(self, trained, tmp_path):
        path = tmp_path / "run.ledger.jsonl"
        led = CostLedger(path)
        session = _tune(trained, ledger=led)
        led.close()
        view = load_ledger(path)
        assert view.total_tuning_seconds() == session.total_tuning_seconds


class TestScreeningCounterfactual:
    def test_zero_without_acceptance(self, trained):
        # The default Q_th (0.4) is far above this tiny model's critic
        # estimates, so no optimized action is ever accepted.
        led = CostLedger()
        _tune(trained, ledger=led)
        assert led.saved_by_screening == 0.0

    def test_positive_with_reachable_threshold(self, trained):
        led = CostLedger()
        _tune(trained, ledger=led, q_threshold=-0.005)
        assert led.saved_by_screening > 0.0
        screened = [
            e for e in led.counterfactuals()
            if e["account"] == "screening"
        ]
        for e in screened:
            assert e["final_q"] > e["original_q"]
            assert e["amount_s"] > 0.0

    def test_no_twin_q_never_screens(self, trained):
        led = CostLedger()
        tuner = copy.deepcopy(trained)
        tuner.use_twin_q = False
        env = make_env("TS", "D1", seed=1005, fault_profile="flaky")
        tuner.tune_online(
            env, steps=5, telemetry=RunContext(ledger=led),
            resilience=ResiliencePolicy.default(seed=3),
        )
        assert led.saved_by_screening == 0.0
        assert not led.counterfactuals()


class TestPopulationLedger:
    def test_per_member_totals_match_sessions(self, trained):
        from repro.core.population import PopulationTuner

        led = CostLedger()
        tuners = [copy.deepcopy(trained) for _ in range(3)]
        envs = [
            make_env("TS", "D1", seed=1005 + i, fault_profile="flaky")
            for i in range(3)
        ]
        resiliences = [ResiliencePolicy.default(seed=i) for i in range(3)]
        pop = PopulationTuner.from_deepcat(
            tuners, envs, telemetry=RunContext(ledger=led),
            resiliences=resiliences,
        )
        sessions = pop.tune(steps=3)
        for i, session in enumerate(sessions):
            assert (
                led.total_tuning_seconds(member=i)
                == session.total_tuning_seconds
            ), f"member {i} ledger drifted from its session TCT"


class TestOfflineLedger:
    def test_warmup_vs_evaluation_split(self):
        env = make_env("TS", "D1", seed=5)
        tuner = DeepCAT.from_env(env, seed=5)
        led = CostLedger()
        iterations = tuner.agent.hp.warmup_steps + 5
        tuner.train_offline(
            env, iterations, telemetry=RunContext(ledger=led)
        )
        totals = led.totals()
        assert totals["warmup"]["count"] == tuner.agent.hp.warmup_steps
        assert totals["evaluation"]["count"] == 5
        assert all(
            e.get("phase") == "offline" for e in led.charges()
        )


@pytest.mark.determinism
class TestLedgerPurity:
    def test_ledgered_run_bit_identical(self, trained, tmp_path):
        base = _tune(trained)
        ledgered = _tune(
            trained, ledger=CostLedger(tmp_path / "run.ledger.jsonl")
        )
        assert sessions_equal(base, ledgered)

    def test_cli_ledger_flag_bit_identical(self, tmp_path):
        model = str(tmp_path / "m.npz")
        assert main(
            ["train", "--workload", "WC", "--iterations", "80",
             "--model", model]
        ) == 0
        common = [
            "tune", "--workload", "WC", "--model", model, "--steps", "3",
            "--fault-profile", "hostile", "--seed", "7",
        ]
        a = str(tmp_path / "a.ckpt")
        b = str(tmp_path / "b.ckpt")
        assert main(common + ["--checkpoint", a]) == 0
        assert main(
            common + [
                "--checkpoint", b,
                "--ledger", str(tmp_path / "run.ledger.jsonl"),
            ]
        ) == 0
        from repro.core.persistence import load_checkpoint

        assert sessions_equal(
            load_checkpoint(a).session, load_checkpoint(b).session
        )
        view = load_ledger(tmp_path / "run.ledger.jsonl")
        assert (
            view.total_tuning_seconds()
            == load_checkpoint(b).session.total_tuning_seconds
        )


class TestExplainCli:
    def _ledger(self, trained, tmp_path, name, **kwargs):
        path = tmp_path / name
        led = CostLedger(path)
        _tune(trained, ledger=led, **kwargs)
        led.close()
        return str(path)

    def test_explain_exits_zero_and_reports(self, trained, tmp_path, capsys):
        path = self._ledger(
            trained, tmp_path, "run.ledger.jsonl", q_threshold=-0.005
        )
        assert main(["explain", path]) == 0
        out = capsys.readouterr().out
        assert "charges by account" in out
        assert "saved_by_screening" in out
        assert "evaluation" in out
        assert "per-knob cost attribution" in out

    def test_explain_compare(self, trained, tmp_path, capsys):
        a = self._ledger(trained, tmp_path, "a.ledger.jsonl")
        b = self._ledger(
            trained, tmp_path, "b.ledger.jsonl", q_threshold=-0.005
        )
        assert main(["explain", a, b, "--compare"]) == 0
        out = capsys.readouterr().out
        assert "ledger diff" in out
        assert "delta" in out
        assert main(["explain", a, "--compare"]) == 2

    def test_explain_directory(self, trained, tmp_path, capsys):
        sub = tmp_path / "ledgers"
        sub.mkdir()
        led = CostLedger(sub / "t.ledger.jsonl", source="task-0000")
        led.charge("evaluation", 5.0, step=0)
        led.close()
        assert main(["explain", str(tmp_path)]) == 0
        assert "charge(s)" in capsys.readouterr().out

    def test_explain_missing(self, tmp_path, capsys):
        assert main(["explain", str(tmp_path / "nope.jsonl")]) == 1


class TestOverheadGate:
    BASELINE = (
        Path(__file__).resolve().parents[1]
        / "benchmarks"
        / "baselines"
        / "BENCH_baseline.json"
    )

    def test_charge_cycle_under_two_percent_of_online_step(self, tmp_path):
        # Mirrors the diagnostics gate: a streamed charge+counterfactual
        # cycle must stay below 2% of an online step so --ledger is
        # always-on-safe.  The step reference is the committed BENCH
        # baseline's pipeline.online_tune figure, not a live measurement:
        # a warm in-process tune shrinks to sub-millisecond and would
        # make the budget track interpreter cache state instead of
        # ledger cost.
        doc = json.loads(self.BASELINE.read_text())
        bench = next(
            r for r in doc["results"] if r["name"] == "pipeline.online_tune"
        )
        step_s = bench["median_s"] / bench["items"]

        led = CostLedger(tmp_path / "bench.ledger.jsonl")
        config = {f"knob.{i}": i for i in range(12)}
        # Best-of-5 batches: the streamed path flushes per entry, so a
        # single I/O load spike on a shared runner must not fail the
        # gate; a genuine regression slows every batch.
        n, batches = 500, []
        for _ in range(5):
            t0 = time.perf_counter()
            for i in range(n):
                led.charge(
                    "evaluation", 80.0, step=i, tuner="T", success=True,
                    attempts=1, config=config,
                )
                led.charge("recommendation", 0.001, step=i, tuner="T")
                led.counterfactual(
                    "screening", 0.5, step=i, original_q=0.1, final_q=0.4
                )
            batches.append((time.perf_counter() - t0) / n)
        cycle_s = min(batches)
        led.close()
        assert cycle_s < 0.02 * step_s, (
            f"ledger cycle {cycle_s * 1e6:.1f}us exceeds 2% of "
            f"online step {step_s * 1e3:.2f}ms"
        )
