"""Tests for session JSON serialization."""

import numpy as np
import pytest

from repro.core.result import OnlineSession, TuningStepRecord
from repro.utils.serialization import (
    load_session,
    save_session,
    session_from_dict,
    session_to_dict,
)


@pytest.fixture
def session():
    s = OnlineSession(
        tuner="DeepCAT", workload="TS", dataset="D1",
        default_duration_s=150.0,
    )
    for i, (d, ok) in enumerate([(60.0, True), (25.0, False), (52.0, True)]):
        s.add(
            TuningStepRecord(
                step=i,
                duration_s=d,
                recommendation_s=0.01 * (i + 1),
                reward=0.4 - i * 0.1,
                success=ok,
                config={"spark.executor.cores": 4, "spark.serializer": "kryo"},
                action=np.linspace(0, 1, 5),
                twinq_iterations=i,
                twinq_accepted=True,
                original_q=0.2,
                final_q=0.5,
            )
        )
    return s


class TestSessionSerialization:
    def test_dict_roundtrip(self, session):
        restored = session_from_dict(session_to_dict(session))
        assert restored.tuner == session.tuner
        assert restored.n_steps == session.n_steps
        assert restored.best_duration_s == session.best_duration_s
        assert restored.total_tuning_seconds == pytest.approx(
            session.total_tuning_seconds
        )

    def test_aggregates_preserved(self, session):
        restored = session_from_dict(session_to_dict(session))
        assert restored.best_so_far() == session.best_so_far()
        assert restored.accumulated_cost() == pytest.approx(
            session.accumulated_cost()
        )
        assert restored.speedup_over_default == pytest.approx(
            session.speedup_over_default
        )

    def test_actions_roundtrip(self, session):
        restored = session_from_dict(session_to_dict(session))
        np.testing.assert_allclose(
            restored.steps[0].action, session.steps[0].action
        )

    def test_twinq_fields_roundtrip(self, session):
        restored = session_from_dict(session_to_dict(session))
        assert restored.steps[1].twinq_iterations == 1
        assert restored.steps[1].final_q == 0.5

    def test_file_roundtrip(self, session, tmp_path):
        path = tmp_path / "session.json"
        save_session(session, path)
        restored = load_session(path)
        assert restored.workload == "TS"
        assert restored.steps[2].config["spark.serializer"] == "kryo"

    def test_missing_optional_fields_tolerated(self, session):
        data = session_to_dict(session)
        for step in data["steps"]:
            step.pop("twinq_iterations")
            step.pop("final_q")
        restored = session_from_dict(data)
        assert restored.steps[0].twinq_iterations is None
