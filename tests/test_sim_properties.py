"""Property-based tests of simulator invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.hardware import CLUSTER_A
from repro.config.pipeline import build_pipeline_space
from repro.sim.engine import SparkSimulator
from repro.workloads.registry import get_workload

SPACE = build_pipeline_space()


def fresh_sim(code="TS", dataset="D1"):
    return SparkSimulator(
        get_workload(code), dataset, CLUSTER_A,
        np.random.default_rng(7), noise_sigma=0.0,
    )


config_vectors = st.lists(
    st.floats(0.0, 1.0), min_size=SPACE.dim, max_size=SPACE.dim
).map(lambda xs: np.asarray(xs))


class TestEngineInvariants:
    @given(config_vectors)
    @settings(max_examples=60, deadline=None)
    def test_duration_positive_and_finite(self, vec):
        result = fresh_sim().evaluate(SPACE.decode(vec))
        assert np.isfinite(result.duration_s)
        assert result.duration_s > 0

    @given(config_vectors)
    @settings(max_examples=40, deadline=None)
    def test_failure_has_reason(self, vec):
        result = fresh_sim().evaluate(SPACE.decode(vec))
        if not result.success:
            assert result.failure_reason

    @given(config_vectors)
    @settings(max_examples=30, deadline=None)
    def test_success_has_stage_breakdown(self, vec):
        result = fresh_sim().evaluate(SPACE.decode(vec))
        if result.success:
            assert len(result.stages) == 2  # TeraSort map + reduce
            assert all(s.seconds > 0 for s in result.stages)
            total = sum(s.seconds for s in result.stages)
            # stage times plus setup account for the duration
            assert result.duration_s == pytest.approx(
                total + 7.0, rel=0.02
            ) or result.duration_s > total

    @given(config_vectors)
    @settings(max_examples=30, deadline=None)
    def test_bigger_dataset_never_faster(self, vec):
        """Same config, more data -> at least as much time (both clean)."""
        cfg = SPACE.decode(vec)
        r1 = fresh_sim("WC", "D1").evaluate(cfg)
        r3 = fresh_sim("WC", "D3").evaluate(cfg)
        if r1.success and r3.success:
            assert r3.duration_s >= r1.duration_s * 0.95

    @given(config_vectors)
    @settings(max_examples=30, deadline=None)
    def test_demand_vector_sane(self, vec):
        result = fresh_sim().evaluate(SPACE.decode(vec))
        demand = result.cpu_demand_per_node
        assert demand.shape == (3,)
        assert np.all(demand >= 0)
        assert np.all(demand <= CLUSTER_A.node.cores * 2.0)

    @given(config_vectors, st.floats(0.01, 0.2))
    @settings(max_examples=20, deadline=None)
    def test_noise_never_flips_success(self, vec, sigma):
        cfg = SPACE.decode(vec)
        clean = fresh_sim().evaluate(cfg)
        noisy_sim = SparkSimulator(
            get_workload("TS"), "D1", CLUSTER_A,
            np.random.default_rng(3), noise_sigma=sigma,
        )
        noisy = noisy_sim.evaluate(cfg)
        assert clean.success == noisy.success
