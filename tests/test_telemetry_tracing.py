"""Tests for span tracing: nesting, exports, and the disabled path."""

import json
import threading

from repro.telemetry.tracing import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    load_trace,
    render_span_tree,
)


class TestSpanNesting:
    def test_single_span_becomes_root(self):
        tr = Tracer()
        with tr.span("outer"):
            pass
        assert len(tr.roots) == 1
        assert tr.roots[0].name == "outer"
        assert tr.roots[0].duration_s >= 0.0
        assert tr.roots[0].start_wall > 0.0

    def test_children_nest_under_open_parent(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                with tr.span("leaf"):
                    pass
            with tr.span("inner"):
                pass
        assert len(tr.roots) == 1
        outer = tr.roots[0]
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert outer.children[0].children[0].name == "leaf"

    def test_current_tracks_innermost(self):
        tr = Tracer()
        assert tr.current is None
        with tr.span("a") as a:
            assert tr.current is a
            with tr.span("b") as b:
                assert tr.current is b
            assert tr.current is a
        assert tr.current is None

    def test_attrs_and_set_attr(self):
        tr = Tracer()
        with tr.span("op", workload="TS") as sp:
            sp.set_attr("accepted", True)
        assert tr.roots[0].attrs == {"workload": "TS", "accepted": True}

    def test_exception_recorded_and_propagated(self):
        tr = Tracer()
        try:
            with tr.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert tr.roots[0].attrs["error"] == "RuntimeError"

    def test_totals_aggregate_by_name(self):
        tr = Tracer()
        with tr.span("step"):
            with tr.span("eval"):
                pass
        with tr.span("step"):
            with tr.span("eval"):
                pass
        totals = tr.totals()
        assert totals["step"]["count"] == 2
        assert totals["eval"]["count"] == 2
        assert totals["step"]["total_s"] >= totals["eval"]["total_s"]

    def test_total_seconds_on_span(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("eval"):
                pass
            with tr.span("eval"):
                pass
        root = tr.roots[0]
        assert root.total_seconds("eval") <= root.duration_s
        assert root.total_seconds("missing") == 0.0

    def test_threads_get_independent_stacks(self):
        tr = Tracer()
        done = threading.Event()

        def worker():
            with tr.span("thread-op"):
                done.wait(timeout=5)

        t = threading.Thread(target=worker)
        with tr.span("main-op"):
            t.start()
            done.set()
            t.join()
        names = sorted(s.name for s in tr.roots)
        # The thread's span must be a root, not a child of main-op.
        assert names == ["main-op", "thread-op"]
        main = next(s for s in tr.roots if s.name == "main-op")
        assert main.children == []


class TestExports:
    def _sample(self):
        tr = Tracer()
        with tr.span("offline.train", iterations=2):
            with tr.span("offline.step", iteration=0):
                with tr.span("offline.evaluate"):
                    pass
            with tr.span("offline.step", iteration=1):
                pass
        return tr

    def test_jsonl_roundtrip_via_load_trace(self, tmp_path):
        tr = self._sample()
        path = tmp_path / "trace.jsonl"
        tr.save_jsonl(path)
        roots = load_trace(path)
        assert len(roots) == 1
        root = roots[0]
        assert root["name"] == "offline.train"
        assert root["parent"] is None
        assert [c["name"] for c in root["children"]] == [
            "offline.step", "offline.step",
        ]
        assert root["children"][0]["children"][0]["name"] == "offline.evaluate"
        assert root["children"][1]["attrs"]["iteration"] == 1

    def test_load_trace_from_lines(self):
        tr = self._sample()
        roots = load_trace(tr.to_jsonl().splitlines())
        assert roots[0]["name"] == "offline.train"

    def test_load_trace_rejects_orphan(self):
        line = json.dumps(
            {"id": 5, "parent": 99, "name": "x", "ts": 0,
             "duration_s": 0, "attrs": {}}
        )
        try:
            load_trace([line])
        except ValueError as e:
            assert "missing" in str(e)
        else:
            raise AssertionError("expected ValueError")

    def test_chrome_trace_shape(self):
        tr = self._sample()
        events = tr.to_chrome_trace()
        assert len(events) == 4
        for ev in events:
            assert ev["ph"] == "X"
            assert set(ev) >= {"name", "ts", "dur", "pid", "tid", "args"}
        # Complete events carry µs timestamps: parent starts no later
        # than its first child.
        train = next(e for e in events if e["name"] == "offline.train")
        step = next(e for e in events if e["name"] == "offline.step")
        assert train["ts"] <= step["ts"]
        assert all(isinstance(v, str) for v in train["args"].values())

    def test_chrome_trace_file_loads_as_json(self, tmp_path):
        tr = self._sample()
        path = tmp_path / "trace.chrome.json"
        tr.save_chrome_trace(path)
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert len(data["traceEvents"]) == 4

    def test_render_span_tree(self):
        tr = self._sample()
        out = render_span_tree(load_trace(tr.to_jsonl().splitlines()))
        lines = out.splitlines()
        assert lines[0].lstrip().startswith("offline.train")
        assert any("offline.evaluate" in ln for ln in lines)
        assert all("ms" in ln for ln in lines)

    def test_empty_tracer_exports(self):
        tr = Tracer()
        assert tr.to_jsonl() == ""
        assert tr.to_chrome_trace() == []
        assert tr.totals() == {}


class TestTraceContext:
    def test_trace_id_default_and_explicit(self):
        assert Tracer().trace_id != Tracer().trace_id
        tr = Tracer(trace_id="abc123", parent_ref="task-0007")
        assert tr.trace_id == "abc123"
        assert tr.parent_ref == "task-0007"

    def test_spans_carry_pid_tid_ref_in_jsonl(self, tmp_path):
        import os

        tr = Tracer(trace_id="t1", parent_ref="task-0001")
        with tr.span("worker.task"):
            with tr.span("inner"):
                pass
        path = tmp_path / "w.trace.jsonl"
        tr.save_jsonl(path)
        records = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert all(r["trace_id"] == "t1" for r in records)
        assert all(r["pid"] == os.getpid() for r in records)
        assert all(r["tid"] for r in records)
        refs = [r["ref"] for r in records]
        assert len(set(refs)) == len(refs) and all(refs)
        root = next(r for r in records if r["parent"] is None)
        assert root["parent_ref"] == "task-0001"
        child = next(r for r in records if r["parent"] is not None)
        assert "parent_ref" not in child

    def test_load_trace_roundtrips_trace_context(self, tmp_path):
        tr = Tracer(trace_id="t2", parent_ref="task-0002")
        with tr.span("op"):
            pass
        roots = load_trace(tr.to_jsonl().splitlines())
        root = roots[0]
        assert root["trace_id"] == "t2"
        assert root["parent_ref"] == "task-0002"
        assert root["ref"] and root["pid"]

    def test_chrome_events_use_recorded_pid(self):
        import os

        tr = Tracer()
        with tr.span("op"):
            pass
        # Simulate a span recorded in another process.
        tr.roots[0].pid = 4242
        events = tr.to_chrome_trace()
        assert events[0]["pid"] == 4242
        # Spans without a recorded pid fall back to the exporter's.
        tr.roots[0].pid = 0
        assert tr.to_chrome_trace()[0]["pid"] == os.getpid()

    def test_record_span_mirrors_external_work(self):
        tr = Tracer(trace_id="grid")
        run = tr.record_span(
            "engine.run", start_wall=100.0, duration_s=0.0, ref="r0.run",
            tasks=2,
        )
        task = tr.record_span(
            "engine.task", start_wall=100.5, duration_s=1.5, parent=run,
            ref="r0-task-0000", kind="x",
        )
        assert tr.roots == [run]
        assert run.children == [task]
        assert task.ref == "r0-task-0000"
        assert task.start_wall == 100.5 and task.duration_s == 1.5
        roots = load_trace(tr.to_jsonl().splitlines())
        child = roots[0]["children"][0]
        assert child["ref"] == "r0-task-0000"
        assert child["attrs"]["kind"] == "x"


class TestNullTracer:
    def test_span_is_shared_noop(self):
        tr = NullTracer()
        a = tr.span("x", attr=1)
        b = tr.span("y")
        assert a is b
        with a as sp:
            sp.set_attr("k", "v")
        assert sp.attrs == {}

    def test_exports_empty(self):
        assert NULL_TRACER.to_jsonl() == ""
        assert NULL_TRACER.to_chrome_trace() == []
        assert NULL_TRACER.totals() == {}
        assert NULL_TRACER.current is None
        assert json.loads(NULL_TRACER.to_chrome_trace_json()) == {
            "traceEvents": [], "displayTimeUnit": "ms",
        }

    def test_trace_context_noops(self):
        tr = NullTracer()
        assert tr.trace_id == ""
        assert tr.parent_ref is None
        sp = tr.record_span("x", start_wall=0.0, duration_s=1.0)
        assert sp.ref == "" and sp.pid == 0
