"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.hardware import CLUSTER_A
from repro.config.pipeline import build_pipeline_space


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def space():
    return build_pipeline_space()


@pytest.fixture(scope="session")
def cluster_a():
    return CLUSTER_A
