"""Tests for the Spark execution engine — behaviour, not just plumbing."""

import numpy as np
import pytest

from repro.cluster.hardware import CLUSTER_A, CLUSTER_B
from repro.sim.codecs import codec_profile, serializer_profile
from repro.sim.engine import SparkSimulator
from repro.sim.faults import YARN_REJECT_SECONDS, oom_attempt_charge, vmem_kill_penalty
from repro.workloads.registry import get_workload, workload_pairs


def sim(code="TS", dataset="D1", cluster=CLUSTER_A, seed=0, noise=0.0):
    return SparkSimulator(
        get_workload(code), dataset, cluster,
        np.random.default_rng(seed), noise_sigma=noise,
    )


def tuned(space, **overrides):
    cfg = space.defaults()
    cfg.update(
        {
            "spark.executor.cores": 5,
            "spark.executor.memory": 3072,
            "spark.executor.memoryOverhead": 512,
            "spark.executor.instances": 9,
            "spark.default.parallelism": 96,
            "spark.serializer": "kryo",
            "spark.shuffle.file.buffer": 256,
            "spark.reducer.maxSizeInFlight": 96,
            "io.file.buffer.size": 512,
            "yarn.nodemanager.resource.memory-mb": 14336,
            "yarn.nodemanager.resource.cpu-vcores": 16,
            "yarn.scheduler.maximum-allocation-mb": 14336,
            "yarn.scheduler.maximum-allocation-vcores": 16,
            "dfs.namenode.handler.count": 80,
            "dfs.datanode.handler.count": 40,
        }
    )
    cfg.update(overrides)
    return cfg


class TestDeterminismAndNoise:
    def test_noise_free_is_deterministic(self, space):
        # straggler draws consume rng, so use identical fresh sims
        a = sim(seed=42).evaluate(space.defaults()).duration_s
        b = sim(seed=42).evaluate(space.defaults()).duration_s
        assert a == b

    def test_noise_spreads_measurements(self, space):
        s = sim(noise=0.1)
        xs = [s.evaluate(space.defaults()).duration_s for _ in range(20)]
        assert np.std(xs) > 0

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            sim(noise=-0.1)

    def test_evaluation_count(self, space):
        s = sim()
        s.evaluate(space.defaults())
        s.evaluate(space.defaults())
        assert s.evaluation_count == 2


class TestDefaults:
    @pytest.mark.parametrize("pair", workload_pairs(), ids=lambda p: f"{p[0].code}-{p[1].label}")
    def test_all_defaults_succeed(self, pair, space):
        w, ds = pair
        r = SparkSimulator(
            w, ds, CLUSTER_A, np.random.default_rng(0), noise_sigma=0.0
        ).evaluate(space.defaults())
        assert r.success, r.failure_reason
        assert r.duration_s > 0

    def test_default_duration_cached_and_noise_free(self, space):
        s = sim(noise=0.2)
        d1 = s.default_duration(space)
        d2 = s.default_duration(space)
        assert d1 == d2

    def test_bigger_input_takes_longer(self, space):
        d1 = sim("WC", "D1").evaluate(space.defaults()).duration_s
        d3 = sim("WC", "D3").evaluate(space.defaults()).duration_s
        assert d3 > d1 * 2


class TestConfigurationEffects:
    def test_more_parallel_resources_help(self, space):
        default = sim().evaluate(space.defaults()).duration_s
        better = sim().evaluate(tuned(space))
        assert better.success
        assert better.duration_s < default * 0.7

    def test_replication_one_speeds_writes(self, space):
        r3 = sim().evaluate(tuned(space))
        r1 = sim().evaluate(tuned(space, **{"dfs.replication": 1}))
        assert r1.duration_s < r3.duration_s  # TeraSort writes everything

    def test_kryo_beats_java_on_shuffle_heavy(self, space):
        # TeraSort shuffles its whole input: kryo's smaller payloads win.
        java = sim(seed=1).evaluate(
            tuned(space, **{"spark.serializer": "java"})
        )
        kryo = sim(seed=1).evaluate(
            tuned(space, **{"spark.serializer": "kryo"})
        )
        assert kryo.duration_s < java.duration_s

    def test_kmeans_needs_cache_memory(self, space):
        small = sim("KM").evaluate(
            tuned(space, **{"spark.executor.memory": 1024,
                            "spark.memory.storageFraction": 0.1})
        )
        big = sim("KM").evaluate(
            tuned(space, **{"spark.executor.memory": 6144,
                            "spark.memory.storageFraction": 0.6})
        )
        assert big.success
        assert big.duration_s < small.duration_s

    def test_yarn_rejection_is_fast_failure(self, space):
        cfg = tuned(space, **{
            "spark.executor.memory": 8192,
            "spark.executor.memoryOverhead": 2048,
            "yarn.scheduler.maximum-allocation-mb": 6144,
        })
        r = sim().evaluate(cfg)
        assert not r.success
        assert "YARN rejection" in r.failure_reason
        assert r.duration_s == pytest.approx(YARN_REJECT_SECONDS)

    def test_oom_failure_burns_retries(self, space):
        # KMeans with big blocks and a tiny heap: rigid vectors cannot fit.
        cfg = tuned(space, **{
            "spark.executor.memory": 1024,
            "spark.executor.cores": 8,
            "dfs.blocksize": 512,
        })
        r = sim("KM").evaluate(cfg)
        assert not r.success
        assert "OOM" in r.failure_reason
        assert r.duration_s > YARN_REJECT_SECONDS  # retries cost real time

    def test_oversubscribed_cpu_slower_than_fitting(self, space):
        fits = sim(seed=2).evaluate(tuned(space))
        oversub = sim(seed=2).evaluate(
            tuned(space, **{
                "spark.executor.cores": 8,
                "spark.executor.instances": 12,
                "yarn.nodemanager.resource.cpu-vcores": 16,
            })
        )
        # 96 threads on 48 cores cannot beat 32 well-placed cores by much;
        # slots are capped so it must not be *faster* than physical cores allow
        assert oversub.duration_s >= fits.duration_s * 0.8

    def test_stage_breakdown_present(self, space):
        r = sim().evaluate(space.defaults())
        assert len(r.stages) == 2  # TeraSort: map + reduce
        assert r.stage("partition-map").n_tasks >= 1
        with pytest.raises(KeyError):
            r.stage("nope")

    def test_state_demand_shape(self, space):
        r = sim().evaluate(space.defaults())
        assert r.cpu_demand_per_node.shape == (3,)
        assert np.all(r.cpu_demand_per_node >= 0)

    def test_cluster_b_slower_than_a(self, space):
        cfg = space.defaults()
        a = sim("WC", cluster=CLUSTER_A).evaluate(cfg).duration_s
        b = sim("WC", cluster=CLUSTER_B).evaluate(cfg).duration_s
        assert b > a * 0.9  # B has fewer/slower cores and slower disks


class TestCodecs:
    def test_profiles(self):
        lz4 = codec_profile("lz4")
        zstd = codec_profile("zstd")
        assert zstd.ratio < lz4.ratio  # zstd compresses harder
        assert zstd.compress_cpu_per_mb > lz4.compress_cpu_per_mb

    def test_serializers(self):
        kryo = serializer_profile("kryo")
        java = serializer_profile("java")
        assert kryo.size_factor < java.size_factor
        assert kryo.cpu_factor < java.cpu_factor

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            codec_profile("gzip")
        with pytest.raises(ValueError):
            serializer_profile("pickle")


class TestFaults:
    def test_oom_charge(self):
        assert oom_attempt_charge(100.0) == pytest.approx(200.0)
        with pytest.raises(ValueError):
            oom_attempt_charge(-1.0)

    def test_vmem_penalty_safe_ratio(self):
        assert vmem_kill_penalty(3.0, 1.3).penalty_factor == 1.0

    def test_vmem_penalty_aggressive_ratio(self):
        assert vmem_kill_penalty(1.0, 1.3).penalty_factor > 1.0

    def test_vmem_java_worse_than_kryo(self):
        java = vmem_kill_penalty(1.8, 1.30).penalty_factor
        kryo = vmem_kill_penalty(1.8, 1.05).penalty_factor
        assert java >= kryo

    def test_vmem_invalid(self):
        with pytest.raises(ValueError):
            vmem_kill_penalty(0.0, 1.3)
