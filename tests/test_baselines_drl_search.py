"""Tests for CDBTune and the search-based baselines."""

import numpy as np
import pytest

from repro.agents.base import AgentHyperParams
from repro.agents.ddpg import DDPGAgent
from repro.baselines.bestconfig import BestConfigTuner
from repro.baselines.cdbtune import CDBTune
from repro.baselines.random_search import RandomSearchTuner
from repro.factory import make_env
from repro.replay.per import PrioritizedReplayBuffer

FAST_HP = AgentHyperParams(batch_size=16, warmup_steps=8, hidden=(16, 16))


class TestCDBTune:
    def test_composition_matches_paper(self):
        env = make_env("TS", "D1", seed=0)
        t = CDBTune.from_env(env, seed=0, hp=FAST_HP)
        assert isinstance(t.agent, DDPGAgent)  # DDPG, not TD3
        assert isinstance(t.buffer, PrioritizedReplayBuffer)  # TD-error PER

    def test_offline_then_online(self):
        env = make_env("TS", "D1", seed=0)
        t = CDBTune.from_env(env, seed=0, hp=FAST_HP)
        log = t.train_offline(env, iterations=120)
        assert log.iterations == 120
        s = t.tune_online(make_env("TS", "D1", seed=9), steps=3)
        assert s.tuner == "CDBTune"
        assert s.n_steps == 3
        assert all(st.twinq_iterations is None for st in s.steps)

    def test_per_priorities_updated_during_training(self):
        env = make_env("TS", "D1", seed=0)
        t = CDBTune.from_env(env, seed=0, hp=FAST_HP)
        t.train_offline(env, iterations=60)
        # priorities must no longer all be the initial max
        tree = t.buffer._tree
        leaves = [tree[i] for i in range(len(t.buffer))]
        assert len(set(np.round(leaves, 9))) > 1


class TestRandomSearch:
    def test_session(self):
        t = RandomSearchTuner(seed=0)
        s = t.tune_online(make_env("TS", "D1", seed=3), steps=6)
        assert s.n_steps == 6
        assert s.tuner == "RandomSearch"

    def test_time_budget(self):
        t = RandomSearchTuner(seed=0)
        s = t.tune_online(
            make_env("TS", "D1", seed=3), steps=100, time_budget_s=200.0
        )
        assert s.n_steps < 100

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            RandomSearchTuner().tune_online(make_env("TS", "D1"), steps=0)


class TestBestConfig:
    def test_session_runs(self):
        t = BestConfigTuner(seed=0)
        s = t.tune_online(make_env("TS", "D1", seed=3), steps=12)
        assert s.n_steps == 12
        assert s.tuner == "BestConfig"

    def test_bound_and_search_improves(self):
        # with enough steps the shrinking box focuses near the incumbent
        env = make_env("TS", "D1", seed=4)
        t = BestConfigTuner(seed=0, rounds_per_shrink=5)
        s = t.tune_online(env, steps=25)
        first_round = min(
            st.duration_s for st in s.steps[:5] if st.success
        )
        assert s.best_duration_s <= first_round

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BestConfigTuner(shrink_factor=1.0)
        with pytest.raises(ValueError):
            BestConfigTuner(rounds_per_shrink=0)


class TestBayesOpt:
    def test_design_then_model_phases(self):
        from repro.baselines.bo import BayesOptTuner

        t = BayesOptTuner(action_dim=32, seed=0, init_design=3)
        s = t.tune_online(make_env("TS", "D1", seed=8), steps=6)
        assert s.n_steps == 6
        assert s.tuner == "BayesOpt"
        # design steps recommend instantly; model steps pay for a GP fit
        design_rec = max(st.recommendation_s for st in s.steps[:3])
        model_rec = max(st.recommendation_s for st in s.steps[3:])
        assert model_rec > design_rec

    def test_improves_over_its_design(self):
        from repro.baselines.bo import BayesOptTuner

        t = BayesOptTuner(action_dim=32, seed=1, init_design=3)
        s = t.tune_online(make_env("TS", "D1", seed=9), steps=12)
        design_best = min(
            (st.duration_s for st in s.steps[:3] if st.success),
            default=float("inf"),
        )
        assert s.best_duration_s <= design_best

    def test_validation(self):
        from repro.baselines.bo import BayesOptTuner

        with pytest.raises(ValueError):
            BayesOptTuner(action_dim=0)
        with pytest.raises(ValueError):
            BayesOptTuner(action_dim=4, init_design=0)
        t = BayesOptTuner(action_dim=32)
        with pytest.raises(ValueError):
            t.tune_online(make_env("TS", "D1"), steps=0)

    def test_time_budget(self):
        from repro.baselines.bo import BayesOptTuner

        t = BayesOptTuner(action_dim=32, seed=2)
        s = t.tune_online(
            make_env("TS", "D1", seed=10), steps=50, time_budget_s=150.0
        )
        assert s.n_steps < 50
