"""Tests for RunContext plumbing and the run manifest."""

import copy
import json

from repro.telemetry import (
    NULL_CONTEXT,
    RunContext,
    RunManifest,
    ensure_context,
)
from repro.telemetry.manifest import describe_hyper_params, git_sha
from repro.telemetry.metrics import NullRegistry
from repro.telemetry.tracing import NullTracer
from repro.utils.logging import JsonlLogger, NullLogger


class TestManifest:
    def test_serialization_roundtrip(self, tmp_path):
        m = RunManifest(kind="offline-train", seed=7, workload="TS",
                        dataset="D1")
        m.record_hyper_params({"batch_size": 16, "gamma": 0.99})
        m.record_cluster({"nodes": 3, "cores": 8})
        m.record_stage("offline-train", iterations=100)
        m.record_wall_clock({"offline.train": {"count": 1, "total_s": 2.5}})
        path = tmp_path / "run.manifest.json"
        m.save(path)

        loaded = RunManifest.load(path)
        assert loaded.kind == "offline-train"
        assert loaded.seed == 7
        assert loaded.workload == "TS"
        assert loaded.run_id == m.run_id
        assert loaded.hyper_parameters["batch_size"] == 16
        assert loaded.cluster["nodes"] == 3
        assert loaded.stages == [
            {"stage": "offline-train", "iterations": 100}
        ]
        assert loaded.wall_clock["offline.train"]["total_s"] == 2.5
        assert loaded.finished_at is not None

    def test_to_dict_fields(self):
        d = RunManifest(seed=3).to_dict()
        for key in ("run_id", "kind", "seed", "git_sha", "python",
                    "platform", "created_at", "hyper_parameters",
                    "wall_clock", "stages"):
            assert key in d
        json.dumps(d)  # must be JSON-safe

    def test_git_sha_in_repo(self):
        sha = git_sha()
        # Running from the repo checkout this is a 40-hex SHA; tolerate
        # None for sdist/venv installs without git.
        if sha is not None:
            assert len(sha) == 40

    def test_describe_hyper_params_handles_shapes(self):
        import numpy as np

        from repro.agents.base import AgentHyperParams

        hp = describe_hyper_params(AgentHyperParams(batch_size=16))
        assert hp["batch_size"] == 16
        assert isinstance(hp["hidden"], list)
        assert describe_hyper_params(None) == {}
        assert describe_hyper_params({"a": np.float64(1.5)}) == {"a": 1.5}
        assert describe_hyper_params(7) == {"value": 7}


class TestRunContext:
    def test_null_context_is_all_null(self):
        assert isinstance(NULL_CONTEXT.tracer, NullTracer)
        assert isinstance(NULL_CONTEXT.metrics, NullRegistry)
        assert isinstance(NULL_CONTEXT.logger, NullLogger)
        assert NULL_CONTEXT.manifest is None
        assert not NULL_CONTEXT.enabled
        # All delegates are harmless no-ops.
        with NULL_CONTEXT.span("x"):
            NULL_CONTEXT.count("c")
            NULL_CONTEXT.observe("h", 1.0)
            NULL_CONTEXT.gauge_set("g", 1.0)
            NULL_CONTEXT.event("e", a=1)
        assert NULL_CONTEXT.save() == []

    def test_recording_context_is_live(self):
        ctx = RunContext.recording(seed=5, kind="test")
        assert ctx.enabled
        with ctx.span("op"):
            ctx.count("hits", tuner="DeepCAT")
            ctx.observe("lat", 0.5)
            ctx.gauge_set("size", 3)
        assert ctx.tracer.roots[0].name == "op"
        assert "hits" in ctx.metrics.names()
        assert ctx.manifest.seed == 5

    def test_save_writes_all_artifacts(self, tmp_path):
        ctx = RunContext.recording(
            trace=tmp_path / "run.jsonl",
            metrics=tmp_path / "run.prom",
            manifest=tmp_path / "run.manifest.json",
            seed=1,
        )
        with ctx.span("op"):
            ctx.count("hits")
        written = ctx.save()
        assert sorted(p.name for p in written) == [
            "run.chrome.json", "run.jsonl", "run.manifest.json", "run.prom",
        ]
        assert "hits 1" in (tmp_path / "run.prom").read_text()
        trace = (tmp_path / "run.jsonl").read_text()
        assert json.loads(trace.splitlines()[0])["name"] == "op"
        chrome = json.loads((tmp_path / "run.chrome.json").read_text())
        assert chrome["traceEvents"][0]["name"] == "op"
        manifest = json.loads((tmp_path / "run.manifest.json").read_text())
        assert manifest["seed"] == 1
        assert "op" in manifest["wall_clock"]

    def test_metrics_json_extension_selects_json(self, tmp_path):
        ctx = RunContext.recording(metrics=tmp_path / "m.json")
        ctx.count("hits")
        ctx.save()
        data = json.loads((tmp_path / "m.json").read_text())
        assert data["hits"]["series"][0]["value"] == 1.0

    def test_finish_merges_tracer_totals_into_manifest(self):
        ctx = RunContext.recording(seed=0)
        with ctx.span("online.tune"):
            pass
        ctx.finish()
        assert "online.tune" in ctx.manifest.wall_clock
        assert ctx.manifest.finished_at is not None

    def test_context_manager_saves_and_closes_logger(self, tmp_path):
        events = tmp_path / "events.jsonl"
        logger = JsonlLogger(events)
        with RunContext.recording(
            trace=tmp_path / "t.jsonl", logger=logger
        ) as ctx:
            ctx.event("online-step", step=0)
            with ctx.span("x"):
                pass
        assert (tmp_path / "t.jsonl").exists()
        assert json.loads(events.read_text())["kind"] == "online-step"

    def test_copy_and_deepcopy_alias_the_context(self):
        ctx = RunContext.recording()
        assert copy.copy(ctx) is ctx
        assert copy.deepcopy(ctx) is ctx
        # ...including when embedded in a copied object graph.
        holder = {"telemetry": ctx, "data": [1, 2]}
        clone = copy.deepcopy(holder)
        assert clone["telemetry"] is ctx
        assert clone["data"] is not holder["data"]


class TestEnsureContext:
    def test_none_none_yields_shared_null(self):
        assert ensure_context(None, None) is NULL_CONTEXT

    def test_logger_only_wraps(self, tmp_path):
        logger = JsonlLogger(tmp_path / "e.jsonl")
        ctx = ensure_context(None, logger)
        assert ctx.logger is logger
        assert isinstance(ctx.tracer, NullTracer)
        logger.close()

    def test_context_passes_through(self):
        ctx = RunContext.recording()
        assert ensure_context(ctx, None) is ctx

    def test_logger_grafted_onto_loggerless_context(self, tmp_path):
        ctx = RunContext.recording()
        logger = JsonlLogger(tmp_path / "e.jsonl")
        merged = ensure_context(ctx, logger)
        assert merged.logger is logger
        assert merged.tracer is ctx.tracer
        assert merged.metrics is ctx.metrics
        assert merged.manifest is ctx.manifest
        logger.close()

    def test_context_logger_wins_over_argument(self, tmp_path):
        logger_a = JsonlLogger(tmp_path / "a.jsonl")
        logger_b = JsonlLogger(tmp_path / "b.jsonl")
        ctx = RunContext(logger=logger_a)
        assert ensure_context(ctx, logger_b) is ctx
        logger_a.close()
        logger_b.close()
