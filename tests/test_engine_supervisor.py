"""Crash-safe engine supervision: retries, quarantine, pool rebuilds,
per-task deadlines, and cache integrity.

Every kind here is registered at module scope so forked pool workers
inherit it; flaky kinds trigger their failures off marker files (state
*outside* the task parameters), keeping each task's **result** a pure
function of its params — which is what makes retries bit-identical.
"""

import json
import os
import pickle
import signal
import time

import pytest

import repro.experiments.engine as engine_module
from repro.experiments.engine import (
    EngineTaskError,
    ExperimentEngine,
    ResultCache,
    TaskFailure,
    TaskSpec,
    render_failure_report,
    task_kind,
)
from repro.telemetry import RunContext


@task_kind("sup-ok")
def _sup_ok(*, value, seed=0):
    return {"value": value, "seed": seed}


@task_kind("sup-flaky")
def _sup_flaky(*, marker, value, seed=0):
    """Raises RuntimeError until ``marker`` exists, then succeeds.

    The marker lives outside the params, so the eventual *result* is
    still a pure function of ``(value, seed)``.
    """
    if not os.path.exists(marker):
        open(marker, "wb").close()
        raise RuntimeError("transient fault (first attempt)")
    return {"value": value * 2, "seed": seed}


@task_kind("sup-boom")
def _sup_boom(*, seed=0):
    raise RuntimeError("permanent fault")


@task_kind("sup-bad-params")
def _sup_bad_params(*, seed=0):
    raise ValueError("deterministically wrong parameters")


@task_kind("sup-sleep")
def _sup_sleep(*, duration, seed=0):
    time.sleep(duration)
    return {"slept": duration}


@task_kind("sup-selfkill")
def _sup_selfkill(*, marker, value, seed=0):
    """SIGKILLs its own worker once (simulated OOM kill), then succeeds."""
    if not os.path.exists(marker):
        open(marker, "wb").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return {"value": value + 100, "seed": seed}


class TestInlineRetry:
    def test_transient_failure_retried_to_success(self, tmp_path):
        eng = ExperimentEngine(task_retries=2)
        marker = str(tmp_path / "flaky.marker")
        [r] = eng.run([TaskSpec("sup-flaky",
                      {"marker": marker, "value": 3, "seed": 0})])
        assert r == {"value": 6, "seed": 0}
        assert eng.stats.task_failures == 1
        assert eng.stats.task_retries == 1
        assert eng.stats.quarantined_tasks == 0

    @pytest.mark.determinism
    def test_retried_result_bit_identical_to_clean(self, tmp_path):
        clean_marker = tmp_path / "clean.marker"
        clean_marker.touch()  # never fails
        [clean] = ExperimentEngine().run(
            [TaskSpec("sup-flaky",
                      {"marker": str(clean_marker), "value": 7, "seed": 4})]
        )
        [retried] = ExperimentEngine(task_retries=1).run(
            [TaskSpec("sup-flaky",
                      {"marker": str(tmp_path / "dirty.marker"),
                       "value": 7, "seed": 4})]
        )
        assert retried == clean

    def test_non_transient_exception_skips_retries(self):
        eng = ExperimentEngine(task_retries=5, failure_mode="lenient")
        eng.run([TaskSpec("sup-bad-params", {})])
        assert eng.stats.task_failures == 1  # exactly one attempt
        assert eng.stats.task_retries == 0
        assert eng.stats.quarantined_tasks == 1
        assert eng.failures[0].exc_type == "ValueError"


class TestStrictLenient:
    def test_strict_raises_after_grid_completes(self, tmp_path):
        cache = ResultCache(tmp_path)
        eng = ExperimentEngine(cache=cache, task_retries=1)
        tasks = [
            TaskSpec("sup-ok", {"value": 1, "seed": 0}),
            TaskSpec("sup-boom", {}),
            TaskSpec("sup-ok", {"value": 2, "seed": 0}),
        ]
        with pytest.raises(EngineTaskError) as exc_info:
            eng.run(tasks)
        err = exc_info.value
        [failure] = err.failures
        assert failure.kind == "sup-boom"
        assert failure.attempts == 2  # 1 try + 1 retry
        assert failure.exc_type == "RuntimeError"
        # The healthy cells completed and were cached before the raise.
        assert len(cache) == 2
        assert err.report["quarantined"][0]["exc_type"] == "RuntimeError"

    def test_strict_rerun_is_incremental(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = [TaskSpec("sup-ok", {"value": 1, "seed": 0}), TaskSpec("sup-boom", {})]
        with pytest.raises(EngineTaskError):
            ExperimentEngine(cache=cache, task_retries=0).run(tasks)
        eng2 = ExperimentEngine(cache=cache, task_retries=0)
        with pytest.raises(EngineTaskError):
            eng2.run(tasks)
        assert eng2.stats.cache_hits == 1  # the good cell never recomputed

    def test_lenient_returns_partial_results(self):
        eng = ExperimentEngine(failure_mode="lenient", task_retries=0)
        results = eng.run([
            TaskSpec("sup-ok", {"value": 9, "seed": 0}),
            TaskSpec("sup-boom", {}),
        ])
        assert results[0] == {"value": 9, "seed": 0}
        assert results[1] is None

    def test_remote_traceback_propagated_and_printed_once(self, capsys):
        eng = ExperimentEngine(failure_mode="lenient", task_retries=2)
        eng.run([TaskSpec("sup-boom", {})])
        [failure] = eng.failures
        assert "RuntimeError: permanent fault" in failure.traceback
        assert "_sup_boom" in failure.traceback
        err = capsys.readouterr().err
        # One summary line per attempt, the full traceback exactly once.
        assert err.count("RuntimeError: permanent fault") == 1 + 3
        assert err.count("Traceback (most recent call last)") == 1

    def test_invalid_failure_mode_rejected(self):
        with pytest.raises(ValueError, match="failure_mode"):
            ExperimentEngine(failure_mode="yolo")

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="task_retries"):
            ExperimentEngine(task_retries=-1)


class TestPoolSupervision:
    def test_worker_crash_rebuilds_pool_and_retries(self, tmp_path):
        eng = ExperimentEngine(jobs=2, task_retries=2)
        marker = str(tmp_path / "kill.marker")
        tasks = [
            TaskSpec("sup-selfkill", {"marker": marker, "value": 1, "seed": 0}),
            TaskSpec("sup-ok", {"value": 2, "seed": 0}),
            TaskSpec("sup-ok", {"value": 3, "seed": 0}),
        ]
        results = eng.run(tasks)
        assert results[0] == {"value": 101, "seed": 0}
        assert [r["value"] for r in results[1:]] == [2, 3]
        assert eng.stats.pool_rebuilds >= 1
        assert eng.stats.task_failures >= 1
        assert eng.stats.quarantined_tasks == 0

    def test_crash_failure_is_marked_worker_crash(self, tmp_path):
        eng = ExperimentEngine(jobs=2, task_retries=0,
                               failure_mode="lenient")
        # No marker pre-created and retries=0: the one charged crash
        # quarantines the task.
        tasks = [
            TaskSpec("sup-selfkill",
                     {"marker": str(tmp_path / "m"), "value": 1, "seed": 0}),
            TaskSpec("sup-ok", {"value": 2, "seed": 0}),
        ]
        results = eng.run(tasks)
        assert results[0] is None
        assert results[1] == {"value": 2, "seed": 0}
        [failure] = eng.failures
        assert failure.worker_crash is True
        assert failure.exc_type == "WorkerCrash"

    def test_deadline_reaps_hung_worker(self):
        eng = ExperimentEngine(jobs=2, task_timeout=0.75, task_retries=0,
                               failure_mode="lenient")
        t0 = time.monotonic()
        [result] = eng.run([TaskSpec("sup-sleep", {"duration": 60.0})])
        assert time.monotonic() - t0 < 30.0  # reaped, not slept out
        assert result is None
        assert eng.stats.task_timeouts == 1
        [failure] = eng.failures
        assert failure.timed_out is True
        assert failure.worker_crash is True
        assert "deadline" in failure.message

    def test_ewma_deadline_needs_a_completed_kind_first(self):
        eng = ExperimentEngine()
        assert eng._deadline_for("sup-sleep") is None
        eng._note_duration("sup-sleep", 0.1)
        # Floored at 30s so quick kinds are not reaped by jitter.
        assert eng._deadline_for("sup-sleep") == 30.0
        eng._note_duration("sup-sleep", 100.0)
        ewma = eng._kind_ewma["sup-sleep"]
        assert ewma == pytest.approx(0.7 * 0.1 + 0.3 * 100.0)
        assert eng._deadline_for("sup-sleep") == pytest.approx(8.0 * ewma)

    def test_chaos_requires_multiple_jobs(self):
        from repro.faults import WorkerChaos

        with pytest.raises(ValueError, match="jobs >= 2"):
            ExperimentEngine(chaos=WorkerChaos(seed=0, kill_rate=1.0))


class TestFailureReport:
    def test_report_ranks_by_attempts(self):
        eng = ExperimentEngine(failure_mode="lenient", task_retries=1)
        eng.run([
            TaskSpec("sup-bad-params", {}),  # 1 attempt (non-transient)
            TaskSpec("sup-boom", {}),        # 2 attempts (retried once)
        ])
        report = eng.failure_report()
        assert report["schema"] == "engine-failure-report-v1"
        assert report["healthy"] is False
        kinds = [r["kind"] for r in report["quarantined"]]
        assert kinds == ["sup-boom", "sup-bad-params"]
        assert report["counters"]["quarantined_tasks"] == 2
        assert report["counters"]["task_retries"] == 1
        json.dumps(report)  # must be JSON-serializable as-is

    def test_render_failure_report(self):
        eng = ExperimentEngine(failure_mode="lenient", task_retries=0)
        eng.run([TaskSpec("sup-boom", {})])
        text = render_failure_report(eng.failure_report())
        assert "engine failure report" in text
        assert "sup-boom" in text
        assert "RuntimeError: permanent fault" in text
        empty = render_failure_report(ExperimentEngine().failure_report())
        assert "no quarantined tasks" in empty

    def test_summary_mentions_failures(self):
        eng = ExperimentEngine(failure_mode="lenient", task_retries=0)
        eng.run([TaskSpec("sup-boom", {})])
        s = eng.stats.summary()
        assert "1 failure(s)" in s and "1 quarantined" in s

    def test_failure_events_emitted(self):
        ctx = RunContext.recording()
        eng = ExperimentEngine(telemetry=ctx, failure_mode="lenient",
                               task_retries=1)
        eng.run([TaskSpec("sup-boom", {})])
        failures = ctx.metrics.counter(
            "engine.task_failures_total",
            labels={"kind": "sup-boom", "exc": "RuntimeError"},
        )
        assert failures.value == 2.0
        retries = ctx.metrics.counter("engine.task_retries_total",
                                      labels={"kind": "sup-boom"})
        assert retries.value == 1.0
        quarantined = ctx.metrics.counter("engine.quarantined_tasks_total",
                                          labels={"kind": "sup-boom"})
        assert quarantined.value == 1.0


class TestTaskFailureRecord:
    def test_summary_strings(self):
        base = dict(kind="k", index=3, key="{}", exc_type="RuntimeError",
                    message="boom", traceback="", attempts=2)
        assert "RuntimeError: boom" in TaskFailure(**base).summary()
        crash = TaskFailure(**{**base, "worker_crash": True})
        assert "worker died" in crash.summary()
        timeout = TaskFailure(**{**base, "worker_crash": True,
                                 "timed_out": True})
        assert "deadline expired" in timeout.summary()

    def test_as_dict_round_trips_json(self):
        failure = TaskFailure(kind="k", index=0, key="{}",
                              exc_type="E", message="m", traceback="t",
                              attempts=1, pid=42)
        doc = json.loads(json.dumps(failure.as_dict()))
        assert doc["pid"] == 42 and doc["worker_crash"] is False


class TestCacheIntegrity:
    def _cdf(self, seed):
        from repro.experiments.engine import random_cdf_task

        return random_cdf_task(workload="WC", dataset="D1", n_samples=4,
                               seed=seed)

    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = self._cdf(seed=3)
        ExperimentEngine(cache=cache).run([task])
        path = cache._path(cache.key_for(task))
        path.write_bytes(b"\x00garbage, neither magic nor pickle\xff")
        eng = ExperimentEngine(cache=ResultCache(tmp_path))
        eng.run([task])
        assert eng.stats.cache_corrupt == 1
        assert eng.cache.corrupt_entries == 1
        quarantined = list((tmp_path / ".quarantine").iterdir())
        assert len(quarantined) == 1
        # The recomputed entry was rewritten in place and now loads.
        assert not ResultCache.is_miss(ResultCache(tmp_path).load(task))

    def test_torn_checksummed_entry_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = self._cdf(seed=5)
        path = cache.store(task, {"x": 1})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 7])  # torn write
        assert ResultCache.is_miss(cache.load(task))
        assert cache.corrupt_entries == 1
        assert (tmp_path / ".quarantine").is_dir()

    def test_legacy_plain_pickle_entry_still_loads(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = self._cdf(seed=7)
        path = cache.store(task, 42)
        path.write_bytes(pickle.dumps({
            "salt": cache.salt, "kind": task.kind,
            "payload": task.cache_payload(), "result": 42,
        }))  # pre-checksum on-disk format
        assert cache.load(task) == 42
        assert cache.corrupt_entries == 0

    def test_quarantine_not_counted_by_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        a, b = self._cdf(seed=1), self._cdf(seed=2)
        cache.store(a, 1)
        path = cache.store(b, 2)
        path.write_bytes(b"junk")
        assert ResultCache.is_miss(cache.load(b))
        assert len(cache) == 1  # quarantined file no longer counted

    def test_store_leaves_no_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.store(self._cdf(seed=1), 42)
        leftovers = [p for p in path.parent.iterdir() if p != path]
        assert leftovers == []

    def test_magic_prefix_present(self, tmp_path):
        path = ResultCache(tmp_path).store(self._cdf(seed=1), 42)
        assert path.read_bytes().startswith(engine_module._CACHE_MAGIC)
