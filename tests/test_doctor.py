"""Post-mortem doctor: ranking, rendering, CLI exit codes."""

import json

from repro.cli import main
from repro.telemetry.doctor import (
    REMEDIATIONS,
    diagnose_run,
    render_diagnosis,
)


def _write_events(path, records):
    path.write_text(
        "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
    )


def _alert(name, severity, step, message="", **data):
    return {
        "kind": "alert", "ts": float(step), "name": name,
        "severity": severity, "step": step, "message": message,
        "data": data,
    }


def _planted_run(tmp_path):
    """A run whose root cause is critic divergence: 3 critical
    critic-divergence alerts against 1 warning reward-plateau."""
    run = tmp_path / "run"
    run.mkdir()
    records = [
        {"kind": "online-step", "ts": float(i), "step": i,
         "reward": 0.1, "success": True}
        for i in range(6)
    ]
    records += [
        _alert("reward-plateau", "warning", 2, "no improvement"),
        _alert("critic-divergence", "critical", 3, "loss 12x floor",
               loss=12.0, floor=1.0),
        _alert("critic-divergence", "critical", 4, "loss 20x floor",
               loss=20.0, floor=1.0),
        _alert("critic-divergence", "critical", 5, "loss 31x floor",
               loss=31.0, floor=1.0),
    ]
    _write_events(run / "events.jsonl", records)
    return run


class TestDiagnoseRun:
    def test_planted_root_cause_ranked_first(self, tmp_path):
        report = diagnose_run(_planted_run(tmp_path))
        assert not report["healthy"]
        names = [f["name"] for f in report["findings"]]
        assert names[0] == "critic-divergence"
        first = report["findings"][0]
        assert first["severity"] == "critical"
        assert first["count"] == 3
        assert first["last_step"] == 5
        assert first["inferred"] is False
        assert first["remediation"] == REMEDIATIONS["critic-divergence"]
        assert first["data"] == {"loss": 31.0, "floor": 1.0}

    def test_every_cause_has_a_remediation_hint(self, tmp_path):
        run = tmp_path / "run"
        run.mkdir()
        _write_events(
            run / "events.jsonl",
            [_alert(name, "warning", 1) for name in REMEDIATIONS],
        )
        report = diagnose_run(run)
        assert len(report["findings"]) == len(REMEDIATIONS)
        for finding in report["findings"]:
            assert finding["remediation"] == REMEDIATIONS[finding["name"]]

    def test_healthy_run(self, tmp_path):
        run = tmp_path / "run"
        run.mkdir()
        _write_events(
            run / "events.jsonl",
            [{"kind": "online-step", "ts": float(i), "step": i,
              "reward": 0.1 * i, "success": True} for i in range(4)],
        )
        report = diagnose_run(run)
        assert report["healthy"]
        assert report["findings"] == []
        assert report["run"]["steps"] == 4

    def test_inferred_from_replay_without_live_alerts(self, tmp_path):
        run = tmp_path / "run"
        run.mkdir()
        # 40 plateaued steps, no alert events: replay must infer plateau.
        _write_events(
            run / "events.jsonl",
            [{"kind": "online-step", "ts": float(i), "step": i,
              "reward": 0.5, "success": True} for i in range(40)],
        )
        report = diagnose_run(run)
        names = {f["name"] for f in report["findings"]}
        assert "reward-plateau" in names
        assert all(f["inferred"] for f in report["findings"])

    def test_accepts_events_file_directly(self, tmp_path):
        run = _planted_run(tmp_path)
        report = diagnose_run(run / "events.jsonl")
        assert report["findings"][0]["name"] == "critic-divergence"

    def test_missing_events_is_healthy_empty(self, tmp_path):
        run = tmp_path / "empty"
        run.mkdir()
        report = diagnose_run(run)
        assert report["healthy"]
        assert report["run"]["events_file"] is None


class TestEngineFindings:
    def _engine_run(self, tmp_path):
        """A grid run that crashed a worker, timed out a task, and found
        corrupt cache entries — recorded by the supervisor's bus stream."""
        run = tmp_path / "grid"
        run.mkdir()
        _write_events(run / "events.jsonl", [
            {"kind": "cache-quarantined", "ts": 0.0, "count": 2,
             "quarantine_dir": "/tmp/cache/.quarantine"},
            {"kind": "task-failed", "ts": 1.0, "task_kind": "online-session",
             "index": 3, "attempt": 1, "exc_type": "WorkerCrash",
             "message": "worker process died mid-task",
             "worker_crash": True, "timed_out": False},
            {"kind": "pool-rebuilt", "ts": 2.0, "incomplete": 4},
            {"kind": "task-failed", "ts": 3.0, "task_kind": "online-session",
             "index": 5, "attempt": 2, "exc_type": "TaskTimeout",
             "message": "exceeded the 60.0s task deadline",
             "worker_crash": True, "timed_out": True},
        ])
        return run

    def test_engine_events_become_ranked_findings(self, tmp_path):
        report = diagnose_run(self._engine_run(tmp_path))
        assert not report["healthy"]
        names = {f["name"] for f in report["findings"]}
        assert names == {
            "engine-task-failure", "engine-task-timeout",
            "engine-pool-rebuilt", "engine-cache-corruption",
        }
        for finding in report["findings"]:
            assert finding["severity"] == "warning"
            assert finding["inferred"] is False
            assert finding["remediation"] == REMEDIATIONS[finding["name"]]
        assert report["run"]["alerts_engine"] == 4

    def test_timed_out_failure_maps_to_timeout_cause(self, tmp_path):
        report = diagnose_run(self._engine_run(tmp_path))
        by_name = {f["name"]: f for f in report["findings"]}
        assert "deadline" in by_name["engine-task-timeout"]["message"]
        assert "WorkerCrash" in by_name["engine-task-failure"]["message"]
        assert by_name["engine-pool-rebuilt"]["data"] == {"incomplete": 4}
        assert by_name["engine-cache-corruption"]["data"] == {"count": 2}

    def test_engine_findings_merge_with_live_alerts(self, tmp_path):
        run = self._engine_run(tmp_path)
        records = [json.loads(line) for line in
                   (run / "events.jsonl").read_text().splitlines()]
        records.append(_alert("critic-divergence", "critical", 9, "boom"))
        _write_events(run / "events.jsonl", records)
        report = diagnose_run(run)
        names = [f["name"] for f in report["findings"]]
        assert names[0] == "critic-divergence"  # critical still leads
        assert "engine-pool-rebuilt" in names

    def test_engine_findings_render_with_fix_hints(self, tmp_path):
        text = render_diagnosis(diagnose_run(self._engine_run(tmp_path)))
        assert "engine-task-timeout" in text
        assert "--task-timeout" in text
        assert "(inferred from replay)" not in text

    def test_doctor_cli_fails_on_engine_findings(self, tmp_path):
        run = self._engine_run(tmp_path)
        assert main(["doctor", str(run), "--fail-on-findings"]) == 4


class TestRender:
    def test_render_orders_and_hints(self, tmp_path):
        report = diagnose_run(_planted_run(tmp_path))
        text = render_diagnosis(report)
        assert text.index("critic-divergence") < text.index("reward-plateau")
        assert "1. [CRIT] critic-divergence ×3 @ step 5" in text
        assert "fix:" in text
        assert "loss=31.0" in text

    def test_render_top_truncates(self, tmp_path):
        report = diagnose_run(_planted_run(tmp_path))
        text = render_diagnosis(report, top=1)
        assert "critic-divergence" in text
        assert "reward-plateau" not in text

    def test_render_inferred_tag(self, tmp_path):
        run = tmp_path / "run"
        run.mkdir()
        _write_events(
            run / "events.jsonl",
            [{"kind": "online-step", "ts": float(i), "step": i,
              "reward": 0.5, "success": True} for i in range(40)],
        )
        text = render_diagnosis(diagnose_run(run))
        assert "(inferred from replay)" in text


class TestDoctorCLI:
    def test_exit_zero_and_report(self, tmp_path, capsys):
        run = _planted_run(tmp_path)
        assert main(["doctor", str(run)]) == 0
        out = capsys.readouterr().out
        assert "critic-divergence" in out

    def test_fail_on_findings(self, tmp_path):
        assert main(
            ["doctor", str(_planted_run(tmp_path)), "--fail-on-findings"]
        ) == 4

    def test_fail_on_findings_healthy_run_exits_zero(self, tmp_path):
        run = tmp_path / "run"
        run.mkdir()
        _write_events(
            run / "events.jsonl",
            [{"kind": "online-step", "ts": 0.0, "step": 0,
              "reward": 0.1, "success": True}],
        )
        assert main(["doctor", str(run), "--fail-on-findings"]) == 0

    def test_json_output(self, tmp_path, capsys):
        run = _planted_run(tmp_path)
        assert main(["doctor", str(run), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["name"] == "critic-divergence"
        assert doc["healthy"] is False

    def test_missing_path_errors(self, tmp_path, capsys):
        assert main(["doctor", str(tmp_path / "nope")]) == 1
        assert "doctor:" in capsys.readouterr().err
