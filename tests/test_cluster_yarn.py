"""Tests for repro.cluster.yarn container allocation."""


from repro.cluster.hardware import CLUSTER_A
from repro.cluster.yarn import OS_RESERVED_MB, plan_executors


def yarn_config(**overrides):
    base = {
        "spark.executor.memory": 2048,
        "spark.executor.memoryOverhead": 512,
        "spark.executor.cores": 2,
        "spark.executor.instances": 6,
        "yarn.scheduler.minimum-allocation-mb": 512,
        "yarn.scheduler.maximum-allocation-mb": 8192,
        "yarn.scheduler.maximum-allocation-vcores": 8,
        "yarn.nodemanager.resource.memory-mb": 8192,
        "yarn.nodemanager.resource.cpu-vcores": 8,
        "yarn.nodemanager.resource.percentage-physical-cpu-limit": 100,
    }
    base.update(overrides)
    return base


class TestPlanExecutors:
    def test_basic_grant(self):
        p = plan_executors(yarn_config(), CLUSTER_A)
        assert p.feasible
        assert p.n_executors == 6
        assert p.total_cores == 12

    def test_container_rounding(self):
        p = plan_executors(yarn_config(), CLUSTER_A)
        # 2048+512=2560 rounded up to 512-multiple stays 2560
        assert p.container_mb == 2560
        p = plan_executors(
            yarn_config(**{"yarn.scheduler.minimum-allocation-mb": 1024}),
            CLUSTER_A,
        )
        assert p.container_mb == 3072

    def test_capacity_limits_grant(self):
        # 8192 per node / 2560 per container = 3 per node -> 9 total,
        # but vcores: 8//2=4 per node -> min(3,4)=3 -> capacity 9
        p = plan_executors(
            yarn_config(**{"spark.executor.instances": 12}), CLUSTER_A
        )
        assert p.n_executors == 9

    def test_reject_container_over_max_alloc(self):
        p = plan_executors(
            yarn_config(**{"spark.executor.memory": 8192}), CLUSTER_A
        )
        assert not p.feasible
        assert "maximum-allocation-mb" in p.reason

    def test_reject_cores_over_max_vcores(self):
        p = plan_executors(
            yarn_config(**{"spark.executor.cores": 9}), CLUSTER_A
        )
        assert not p.feasible
        assert "vcores" in p.reason

    def test_reject_node_too_small(self):
        p = plan_executors(
            yarn_config(
                **{
                    "yarn.nodemanager.resource.memory-mb": 2048,
                    "spark.executor.memory": 4096,
                    "yarn.scheduler.maximum-allocation-mb": 8192,
                }
            ),
            CLUSTER_A,
        )
        assert not p.feasible
        assert p.n_executors == 0

    def test_cpu_oversubscription_instead_of_reject(self):
        # cores=6 > vcores offered (4), but memory fits: YARN's default
        # memory-only calculator grants it with oversubscription.
        p = plan_executors(
            yarn_config(
                **{
                    "spark.executor.cores": 6,
                    "yarn.nodemanager.resource.cpu-vcores": 4,
                }
            ),
            CLUSTER_A,
        )
        assert p.feasible
        assert p.cpu_oversubscribed
        assert p.n_executors >= 1

    def test_physical_memory_reserve_respected(self):
        # NodeManager claims more than physical: clipped by node - reserve
        p = plan_executors(
            yarn_config(
                **{
                    "yarn.nodemanager.resource.memory-mb": 999999,
                    "spark.executor.instances": 12,
                    "spark.executor.memory": 4096,
                    "spark.executor.memoryOverhead": 1024,
                    "yarn.scheduler.maximum-allocation-mb": 8192,
                }
            ),
            CLUSTER_A,
        )
        budget = CLUSTER_A.node.memory_mb - OS_RESERVED_MB
        per_node = budget // p.container_mb
        assert p.n_executors <= per_node * 3

    def test_cpu_limit_percentage(self):
        full = plan_executors(
            yarn_config(**{"spark.executor.instances": 12}), CLUSTER_A
        )
        half = plan_executors(
            yarn_config(
                **{
                    "spark.executor.instances": 12,
                    "yarn.nodemanager.resource.percentage-physical-cpu-limit": 50,
                }
            ),
            CLUSTER_A,
        )
        assert half.n_executors <= full.n_executors

    def test_total_heap(self):
        p = plan_executors(yarn_config(), CLUSTER_A)
        assert p.total_heap_mb == p.n_executors * 2048
