"""Tests for the HiBench-style runner and report."""

import numpy as np
import pytest

from repro.cluster.hardware import CLUSTER_A
from repro.hibench.report import BenchReport
from repro.hibench.runner import BenchmarkRunner
from repro.workloads.registry import get_workload


@pytest.fixture
def runner(space):
    return BenchmarkRunner(
        get_workload("WC"), "D1", CLUSTER_A,
        np.random.default_rng(0), noise_sigma=0.0,
    )


class TestBenchmarkRunner:
    def test_run_returns_report(self, runner, space):
        rep = runner.run(space.defaults())
        assert rep.success
        assert rep.workload == "WC" and rep.dataset == "D1"
        assert rep.duration_s > 0

    def test_throughput_is_input_over_duration(self, runner, space):
        rep = runner.run(space.defaults())
        assert rep.throughput_mb_s == pytest.approx(
            rep.input_mb / rep.duration_s
        )
        assert rep.throughput_per_node_mb_s == pytest.approx(
            rep.throughput_mb_s / 3
        )

    def test_history_accumulates(self, runner, space):
        runner.run(space.defaults())
        runner.run(space.defaults())
        assert len(runner.history) == 2
        text = runner.report_text()
        assert text.count("WC") == 2

    def test_failed_run_reported(self, runner, space):
        cfg = space.defaults()
        cfg["spark.executor.memory"] = 8192
        cfg["spark.executor.memoryOverhead"] = 2048
        cfg["yarn.scheduler.maximum-allocation-mb"] = 6144
        rep = runner.run(cfg)
        assert not rep.success
        assert rep.throughput_mb_s == 0.0
        assert "FAILED" in rep.report_line()

    def test_report_line_format(self, runner, space):
        line = runner.run(space.defaults()).report_line()
        assert "WC" in line and "MB/s" in line and "OK" in line


class TestBenchReport:
    def test_rejects_zero_duration(self):
        from repro.sim.result import ExecutionResult

        with pytest.raises(ValueError):
            BenchReport.from_result(
                "WC", "D1", 100.0, 3,
                ExecutionResult(duration_s=0.0, success=True),
            )
