"""Population CLI determinism: lockstep serving must never change science.

Two contracts at the command-line level:

* ``repro tune --population N --seed S`` is bit-identical, member by
  member, to the N sequential ``repro tune --seed plan[i]`` runs for
  ``plan = population_seed_plan(S, N)``;
* a population killed mid-run (SIGTERM, the orchestrator's kill signal)
  checkpoints, and ``--resume`` finishes it bit-identically to the
  uninterrupted run.

Plus the :class:`PopulationCheckpointManager` mechanics (cadence,
atomicity, version guard) mirroring ``TestCheckpointMechanics``.
"""

from __future__ import annotations

import os
import pickle
import signal

import pytest

from repro.cli import main
from repro.core.persistence import (
    PopulationCheckpointManager,
    load_checkpoint,
    load_population_checkpoint,
)
from repro.core.population import population_seed_plan
from repro.core.result import sessions_equal
from repro.envs.population import VectorTuningEnv

N = 4
SEED = 42
STEPS = 3


@pytest.fixture(scope="module")
def model(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("model") / "m.npz")
    assert main(
        ["train", "--workload", "WC", "--iterations", "80",
         "--model", path]
    ) == 0
    return path


def _tune_population(model, ckpt, *, steps=STEPS, extra=()):
    return main(
        ["tune", "--workload", "WC", "--model", model,
         "--population", str(N), "--seed", str(SEED),
         "--steps", str(steps), "--fault-profile", "hostile",
         "--checkpoint", ckpt, *extra]
    )


@pytest.mark.determinism
def test_population_cli_matches_sequential_cli(model, tmp_path):
    """Member i of ``--population N --seed S`` == the solo run
    ``--seed plan[i]``, resilience and fault streams included."""
    pop_ckpt = str(tmp_path / "pop.ckpt")
    assert _tune_population(model, pop_ckpt) == 0
    pop = load_population_checkpoint(pop_ckpt)
    assert pop.next_steps == [STEPS] * N

    for i, seed in enumerate(population_seed_plan(SEED, N)):
        solo_ckpt = str(tmp_path / f"solo{i}.ckpt")
        assert main(
            ["tune", "--workload", "WC", "--model", model,
             "--seed", str(seed), "--steps", str(STEPS),
             "--fault-profile", "hostile", "--checkpoint", solo_ckpt]
        ) == 0
        solo = load_checkpoint(solo_ckpt)
        assert sessions_equal(pop.sessions[i], solo.session), (
            f"population member {i} diverged from --seed {seed}"
        )


@pytest.mark.determinism
def test_population_sigterm_then_resume_is_bit_identical(
    model, tmp_path, monkeypatch, capsys
):
    """Kill the population with SIGTERM mid-run; --resume must finish it
    field-for-field equal to the uninterrupted run."""
    full_ckpt = str(tmp_path / "full.ckpt")
    assert _tune_population(model, full_ckpt, steps=4) == 0
    full = load_population_checkpoint(full_ckpt)

    # Interrupted arm: deliver SIGTERM just before the third lockstep
    # evaluation — no RNG has been consumed for that step's evaluation
    # yet, so the snapshot freezes exactly two completed steps.
    ckpt = str(tmp_path / "killed.ckpt")
    original_step = VectorTuningEnv.step
    calls = {"n": 0}

    def dying_step(self, actions, indices=None):
        if calls["n"] == 2:  # the third lockstep evaluation
            os.kill(os.getpid(), signal.SIGTERM)
        calls["n"] += 1
        return original_step(self, actions, indices=indices)

    monkeypatch.setattr(VectorTuningEnv, "step", dying_step)
    rc = _tune_population(model, ckpt, steps=4)
    monkeypatch.setattr(VectorTuningEnv, "step", original_step)
    assert rc == 130
    out = capsys.readouterr().out
    assert "checkpointed" in out
    killed = load_population_checkpoint(ckpt)
    assert killed.next_steps == [2] * N

    assert main(["tune", "--resume", ckpt, "--steps", "4"]) == 0
    assert "resuming population" in capsys.readouterr().out
    resumed = load_population_checkpoint(ckpt)
    assert resumed.next_steps == [4] * N
    for a, b in zip(resumed.sessions, full.sessions):
        assert sessions_equal(a, b)


def test_population_resume_of_finished_run_is_noop(
    model, tmp_path, capsys
):
    ckpt = str(tmp_path / "done.ckpt")
    assert _tune_population(model, ckpt) == 0
    capsys.readouterr()
    assert main(["tune", "--resume", ckpt, "--steps", str(STEPS)]) == 0
    out = capsys.readouterr().out
    assert "nothing to do" in out
    assert out.count("--- session") == N


def test_population_requires_at_least_one_member(model, capsys):
    assert main(
        ["tune", "--workload", "WC", "--model", model,
         "--population", "0"]
    ) == 2
    assert "--population" in capsys.readouterr().err


class TestPopulationCheckpointMechanics:
    def _run(self, model, tmp_path, *, extra=()):
        ckpt = str(tmp_path / "p.ckpt")
        assert _tune_population(model, ckpt, extra=extra) == 0
        return ckpt

    def test_atomic_write_leaves_no_tmp(self, model, tmp_path):
        ckpt = self._run(model, tmp_path)
        assert os.path.exists(ckpt)
        assert not os.path.exists(ckpt + ".tmp")

    def test_snapshot_parallel_lists_are_consistent(self, model, tmp_path):
        ck = load_population_checkpoint(self._run(model, tmp_path))
        assert (
            len(ck.tuners) == len(ck.envs) == len(ck.sessions)
            == len(ck.next_steps) == len(ck.resiliences) == N
        )
        for session, next_step in zip(ck.sessions, ck.next_steps):
            assert len(session.steps) == next_step == STEPS

    def test_cadence_skips_intermediate_steps(self, model, tmp_path):
        ckpt = self._run(model, tmp_path,
                         extra=("--checkpoint-every", "2"))
        # steps 2 fires the cadence; 1 and 3 do not, so the committed
        # snapshot is the one from lockstep 2.
        assert load_population_checkpoint(ckpt).next_steps == [2] * N

    def test_version_mismatch_raises(self, tmp_path):
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(
            pickle.dumps({"population_checkpoint_version": 999})
        )
        with pytest.raises(ValueError, match="version"):
            load_population_checkpoint(bad)

    def test_manager_rejects_bad_cadence(self, tmp_path):
        with pytest.raises(ValueError):
            PopulationCheckpointManager(
                tmp_path / "p.ckpt", [], [], every=0
            )
