"""Unit tests for the parallel experiment engine and its result cache.

The heavy science kinds (``online-session``) are exercised by
``tests/test_engine_determinism.py``; here the cheap ``random-cdf`` kind
and a test-local kind keep everything fast.
"""

import hashlib
import pickle

import numpy as np
import pytest

import repro.experiments.engine as engine_module
from repro.experiments.engine import (
    CACHE_VERSION,
    ExperimentEngine,
    ResultCache,
    TaskSpec,
    derive_task_seeds,
    random_cdf_task,
    session_task,
    task_kind,
)
from repro.telemetry import RunContext


@task_kind("test-echo")
def _echo(*, value, seed=0):
    """A trivially cheap kind for engine-mechanics tests."""
    return {"value": value, "seed": seed}


def _cdf(seed, n=4):
    return random_cdf_task(workload="WC", dataset="D1", n_samples=n,
                           seed=seed)


class TestTaskSpec:
    def test_canonical_key_ignores_param_order(self):
        a = TaskSpec("k", {"x": 1, "y": 2})
        b = TaskSpec("k", {"y": 2, "x": 1})
        assert a.canonical_key() == b.canonical_key()

    def test_canonical_key_separates_params_and_kinds(self):
        assert (TaskSpec("k", {"x": 1}).canonical_key()
                != TaskSpec("k", {"x": 2}).canonical_key())
        assert (TaskSpec("k1", {"x": 1}).canonical_key()
                != TaskSpec("k2", {"x": 1}).canonical_key())

    def test_canonical_unboxes_numpy_scalars(self):
        a = TaskSpec("k", {"x": np.int64(3)})
        b = TaskSpec("k", {"x": 3})
        assert a.canonical_key() == b.canonical_key()

    def test_canonical_rejects_unhashable_types(self):
        with pytest.raises(TypeError):
            TaskSpec("k", {"x": object()}).canonical_key()

    def test_cache_payload_expands_cluster_spec(self):
        t = session_task(workload="WC", dataset="D1", tuner="DeepCAT",
                         seed=0, scale="quick")
        payload = t.cache_payload()
        # full hardware fields, not just the name, enter the hash
        assert "nodes" in payload or "cores" in payload
        assert t.canonical_key() != payload


class TestDeriveTaskSeeds:
    def test_deterministic_across_calls(self):
        tasks = [_cdf(seed=None, n=i + 1) for i in range(5)]
        assert (derive_task_seeds(7, tasks)
                == derive_task_seeds(7, tasks))

    def test_root_seed_changes_plan(self):
        tasks = [_cdf(seed=None, n=i + 1) for i in range(5)]
        assert derive_task_seeds(0, tasks) != derive_task_seeds(1, tasks)

    def test_follows_task_identity_not_position(self):
        tasks = [_cdf(seed=None, n=i + 1) for i in range(5)]
        plan = derive_task_seeds(0, tasks)
        rev = derive_task_seeds(0, list(reversed(tasks)))
        assert rev == list(reversed(plan))

    def test_replicates_get_distinct_seeds(self):
        tasks = [_cdf(seed=None, n=3) for _ in range(4)]
        plan = derive_task_seeds(0, tasks)
        assert len(set(plan)) == len(plan)

    def test_empty(self):
        assert derive_task_seeds(0, []) == []


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = _cdf(seed=3)
        assert ResultCache.is_miss(cache.load(task))
        result = {"durations": np.arange(4.0), "n_failed": 1}
        cache.store(task, result)
        loaded = cache.load(task)
        assert not ResultCache.is_miss(loaded)
        np.testing.assert_array_equal(loaded["durations"],
                                      result["durations"])
        assert loaded["n_failed"] == 1
        assert len(cache) == 1

    def test_cached_none_is_not_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = _cdf(seed=0)
        cache.store(task, None)
        assert not ResultCache.is_miss(cache.load(task))
        assert cache.load(task) is None

    def test_salt_change_invalidates(self, tmp_path):
        task = _cdf(seed=3)
        ResultCache(tmp_path, salt=CACHE_VERSION).store(task, 42)
        assert ResultCache.is_miss(
            ResultCache(tmp_path, salt=CACHE_VERSION + "-other").load(task)
        )

    def test_param_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(_cdf(seed=3), 42)
        assert ResultCache.is_miss(cache.load(_cdf(seed=4)))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = _cdf(seed=3)
        path = cache.store(task, 42)
        path.write_bytes(b"not a pickle")
        assert ResultCache.is_miss(cache.load(task))

    def test_payload_mismatch_is_a_miss(self, tmp_path):
        # A well-formed entry (valid checksum) whose payload differs is
        # a plain miss — a hash collision, not corruption.
        cache = ResultCache(tmp_path)
        task = _cdf(seed=3)
        path = cache.store(task, 42)
        body = pickle.dumps({"payload": "tampered", "result": 42})
        digest = hashlib.sha256(body).hexdigest().encode("ascii")
        path.write_bytes(engine_module._CACHE_MAGIC + digest + b"\n" + body)
        assert ResultCache.is_miss(cache.load(task))
        assert cache.corrupt_entries == 0


class TestExperimentEngine:
    def test_results_in_submission_order(self):
        eng = ExperimentEngine()
        tasks = [TaskSpec("test-echo", {"value": v}) for v in (3, 1, 2)]
        assert [r["value"] for r in eng.run(tasks)] == [3, 1, 2]

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="unknown task kind"):
            ExperimentEngine().run([TaskSpec("no-such-kind", {})])

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ValueError):
            ExperimentEngine(jobs=0)

    def test_seed_none_resolved_deterministically(self):
        tasks = [TaskSpec("test-echo", {"value": 1, "seed": None})
                 for _ in range(3)]
        a = ExperimentEngine().run(tasks)
        b = ExperimentEngine().run(tasks)
        assert a == b
        seeds = [r["seed"] for r in a]
        assert None not in seeds
        assert len(set(seeds)) == 3  # replicates are independent

    def test_explicit_seed_untouched(self):
        [r] = ExperimentEngine().run(
            [TaskSpec("test-echo", {"value": 1, "seed": 123})]
        )
        assert r["seed"] == 123

    def test_cache_hits_on_second_run(self, tmp_path):
        eng = ExperimentEngine(cache=ResultCache(tmp_path))
        tasks = [_cdf(seed=s) for s in (0, 1)]
        first = eng.run(tasks)
        assert eng.stats.cache_hits == 0
        assert eng.stats.executed == 2
        second = eng.run(tasks)
        assert eng.stats.cache_hits == 2
        assert eng.stats.executed == 2  # nothing recomputed
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a["durations"], b["durations"])
            assert a["n_failed"] == b["n_failed"]

    def test_cache_shared_across_engines(self, tmp_path):
        task = _cdf(seed=5)
        ExperimentEngine(cache=ResultCache(tmp_path)).run([task])
        eng2 = ExperimentEngine(cache=ResultCache(tmp_path))
        eng2.run([task])
        assert eng2.stats.cache_hits == 1
        assert eng2.stats.executed == 0

    def test_parallel_matches_inline(self, tmp_path):
        tasks = [_cdf(seed=s, n=3) for s in range(4)]
        inline = ExperimentEngine(jobs=1).run(tasks)
        parallel = ExperimentEngine(jobs=2).run(tasks)
        for a, b in zip(inline, parallel):
            np.testing.assert_array_equal(a["durations"], b["durations"])
            assert a["n_failed"] == b["n_failed"]
            assert a["default_duration"] == b["default_duration"]

    def test_telemetry_counters(self, tmp_path):
        ctx = RunContext.recording()
        eng = ExperimentEngine(cache=ResultCache(tmp_path), telemetry=ctx)
        tasks = [_cdf(seed=s) for s in (0, 1)]
        eng.run(tasks)
        eng.run(tasks)
        miss = ctx.metrics.counter("engine.cache_misses_total")
        hit = ctx.metrics.counter("engine.cache_hits_total")
        assert miss.value == 2.0
        assert hit.value == 2.0
        totals = ctx.tracer.totals()
        assert "engine.run" in totals
        assert totals["engine.task"]["count"] == 4

    def test_stats_summary_mentions_cache(self):
        eng = ExperimentEngine()
        eng.run([TaskSpec("test-echo", {"value": 1})])
        s = eng.stats.summary()
        assert "1 task(s)" in s and "cache hit" in s
