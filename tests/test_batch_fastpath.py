"""Vectorized fast-path regression suite.

Two contracts guard the batch fast paths:

* **Bit-identity** (``-m determinism``): every batched code path —
  columnar codec, YARN placement, simulator evaluation, environment
  stepping, and the batched baselines — must produce byte-for-byte the
  same science as its scalar counterpart, including RNG stream order.
* **Allocation budgets**: the hot update/sample paths reuse preallocated
  workspaces; tracemalloc-enforced ceilings keep per-call allocations an
  order of magnitude below the pre-vectorization peaks recorded in
  ``benchmarks/baselines/BENCH_baseline.json``.
"""

import sys
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.hardware import CLUSTER_A, CLUSTER_B
from repro.cluster.yarn import plan_executors, plan_executors_batch
from repro.config.pipeline import build_pipeline_space
from repro.factory import make_env
from repro.sim.engine import SparkSimulator
from repro.workloads.registry import get_workload

_SEED = 1234


@pytest.fixture(scope="module")
def space():
    return build_pipeline_space()


@pytest.fixture(scope="module")
def vectors(space):
    """A mixed bag: uniform + LHS rows plus corner/center probes."""
    rng = np.random.default_rng(99)
    vecs = space.sample_vectors(rng, 120)
    vecs[:20] = space.latin_hypercube(rng, 20)
    vecs[5] = 0.0
    vecs[6] = 1.0
    vecs[7] = 0.5
    return vecs


# ------------------------------------------------------- determinism suite


@pytest.mark.determinism
def test_sample_vectors_matches_sequential_draws(space):
    """sample_vectors must consume the stream exactly like n scalar draws
    (the batched baselines rely on this for bit-identity)."""
    a = space.sample_vectors(np.random.default_rng(7), 50)
    rng = np.random.default_rng(7)
    b = np.stack([space.sample_vector(rng) for _ in range(50)])
    np.testing.assert_array_equal(a, b)


@pytest.mark.determinism
def test_codec_batch_matches_scalar(space, vectors):
    configs = space.decode_batch(vectors)
    for vec, cfg in zip(vectors, configs):
        assert cfg == space.decode(vec)
    np.testing.assert_array_equal(
        space.encode_batch(configs),
        np.stack([space.encode(c) for c in configs]),
    )
    cols = space.decode_columns(vectors)
    for name, col in cols.items():
        for i, cfg in enumerate(configs):
            assert col[i] == cfg[name], f"{name}[{i}]"


@pytest.mark.determinism
@pytest.mark.parametrize("cluster", [CLUSTER_A, CLUSTER_B],
                         ids=lambda c: c.name)
def test_placement_batch_matches_scalar(space, vectors, cluster):
    placements = plan_executors_batch(space.decode_columns(vectors), cluster)
    for i, cfg in enumerate(space.decode_batch(vectors)):
        assert placements.row(i) == plan_executors(cfg, cluster)


@pytest.mark.determinism
@pytest.mark.parametrize("workload", ["WC", "TS", "KM", "PR"])
def test_evaluate_batch_matches_scalar(space, vectors, workload):
    wl = get_workload(workload)
    sub = vectors[:60]
    sim_a = SparkSimulator(wl, wl.dataset("D2"), CLUSTER_B,
                           np.random.default_rng(7))
    sim_b = SparkSimulator(wl, wl.dataset("D2"), CLUSTER_B,
                           np.random.default_rng(7))
    scalar = [sim_a.evaluate(space.decode(v)) for v in sub]
    batch = sim_b.evaluate_batch(sub, space)
    assert sim_a.evaluation_count == sim_b.evaluation_count
    for a, b in zip(scalar, batch):
        assert a.duration_s == b.duration_s
        assert a.success == b.success
        assert a.failure_reason == b.failure_reason
        assert a.n_executors == b.n_executors
        assert a.executor_cores == b.executor_cores
        assert a.executor_heap_mb == b.executor_heap_mb
        np.testing.assert_array_equal(
            a.cpu_demand_per_node, b.cpu_demand_per_node
        )
        assert a.stages == b.stages


@pytest.mark.determinism
def test_evaluate_batch_matches_scalar_without_noise(space, vectors):
    """sigma=0 must draw zero noise samples on both paths."""
    wl = get_workload("TS")
    sub = vectors[:30]
    sim_a = SparkSimulator(wl, "D1", CLUSTER_A, np.random.default_rng(3),
                           noise_sigma=0.0)
    sim_b = SparkSimulator(wl, "D1", CLUSTER_A, np.random.default_rng(3),
                           noise_sigma=0.0)
    for a, b in zip(
        [sim_a.evaluate(space.decode(v)) for v in sub],
        sim_b.evaluate_batch(sub, space),
    ):
        assert a.duration_s == b.duration_s


@pytest.mark.determinism
@pytest.mark.parametrize("profile", [None, "flaky", "hostile"])
@pytest.mark.parametrize("seed", [11, 23, 37, 51, 68])
def test_env_step_batch_matches_scalar(vectors, profile, seed):
    """step_batch must interleave sim, state, and fault RNG streams in
    the exact scalar order — fault injection included — for every
    (seed, fault preset) cell, not just one lucky stream."""
    sub = vectors[20:50]
    env_a = make_env("TS", "D2", seed=seed, fault_profile=profile)
    env_b = make_env("TS", "D2", seed=seed, fault_profile=profile)
    outs_a = [env_a.step(v) for v in sub]
    outs_b = env_b.step_batch(sub)
    for a, b in zip(outs_a, outs_b):
        np.testing.assert_array_equal(a.state, b.state)
        np.testing.assert_array_equal(a.action, b.action)
        assert a.reward == b.reward
        np.testing.assert_array_equal(a.next_state, b.next_state)
        assert a.duration_s == b.duration_s
        assert a.success == b.success
        assert a.config == b.config
        assert a.faults == b.faults
    assert env_a.total_evaluation_seconds == env_b.total_evaluation_seconds
    np.testing.assert_array_equal(env_a.observation, env_b.observation)
    for ra, rb in zip(env_a.runner.history, env_b.runner.history):
        assert ra.report_line() == rb.report_line()


def _science(session):
    return [
        (s.step, s.duration_s, s.reward, s.success, s.config,
         tuple(s.action))
        for s in session.steps
    ]


@pytest.mark.determinism
def test_random_search_batch_matches_scalar_path():
    """The batched no-budget path must match the per-step loop (forced
    via an unreachable time budget)."""
    from repro.baselines.random_search import RandomSearchTuner

    batched = RandomSearchTuner(seed=5).tune_online(
        make_env("WC", "D1", seed=3), steps=10
    )
    scalar = RandomSearchTuner(seed=5).tune_online(
        make_env("WC", "D1", seed=3), steps=10, time_budget_s=1e12
    )
    assert _science(batched) == _science(scalar)


@pytest.mark.determinism
def test_bestconfig_batch_matches_scalar_path():
    from repro.baselines.bestconfig import BestConfigTuner

    # 13 steps with rounds of 5: two shrinks plus a partial round.
    batched = BestConfigTuner(seed=4, rounds_per_shrink=5).tune_online(
        make_env("TS", "D1", seed=9), steps=13
    )
    scalar = BestConfigTuner(seed=4, rounds_per_shrink=5).tune_online(
        make_env("TS", "D1", seed=9), steps=13, time_budget_s=1e12
    )
    assert _science(batched) == _science(scalar)


# ------------------------------------------- codec properties (hypothesis)


_SPACE = build_pipeline_space()
_INT_PARAMS = [p for p in _SPACE.parameters if type(p).__name__ ==
               "IntParameter"]
_LOG_PARAMS = [p for p in _SPACE.parameters if getattr(p, "log", False)]
_CAT_PARAMS = [p for p in _SPACE.parameters if hasattr(p, "choices")]

_unit = st.floats(0.0, 1.0, allow_nan=False)
_vector = st.lists(_unit, min_size=_SPACE.dim, max_size=_SPACE.dim).map(
    np.asarray
)
# Bias toward the codec's hard cases: exact cell boundaries of the
# categorical/bool grids and the [0, 1] endpoints.
_gridpoints = st.sampled_from(
    [0.0, 1.0, 0.5, 0.25, 1 / 3, 2 / 3, 0.75, 1e-12, 1.0 - 1e-12]
)
_corner_vector = st.lists(
    st.one_of(_gridpoints, _unit), min_size=_SPACE.dim,
    max_size=_SPACE.dim,
).map(np.asarray)


class TestCodecProperties:
    """Property suite for the columnar codec: scalar/batch agreement and
    per-kind invariants on boundary, categorical, and log-scale knobs."""

    @given(_corner_vector)
    @settings(max_examples=60, deadline=None)
    @pytest.mark.determinism
    def test_batch_decode_equals_scalar_everywhere(self, vec):
        config = _SPACE.decode(vec)
        assert _SPACE.decode_batch(vec[None, :])[0] == config
        np.testing.assert_array_equal(
            _SPACE.encode_batch([config])[0], _SPACE.encode(config)
        )

    @given(_corner_vector)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_is_idempotent(self, vec):
        """decode∘encode must be a projection: one round trip lands on a
        fixed point (grid snapping happens exactly once)."""
        config = _SPACE.decode(vec)
        again = _SPACE.decode(_SPACE.encode(config))
        assert again == config

    @given(_vector)
    @settings(max_examples=40, deadline=None)
    def test_decoded_values_respect_bounds(self, vec):
        config = _SPACE.decode(vec)
        for p in _INT_PARAMS:
            value = config[p.name]
            assert isinstance(value, int)
            assert p.low <= value <= p.high
        for p in _CAT_PARAMS:
            assert config[p.name] in p.choices

    @given(u=_unit)
    @settings(max_examples=30, deadline=None)
    def test_log_scale_knobs_decode_within_bounds(self, u):
        vec = np.full(_SPACE.dim, 0.5)
        idx = {p.name: i for i, p in enumerate(_SPACE.parameters)}
        for p in _LOG_PARAMS:
            vec[idx[p.name]] = u
        config = _SPACE.decode(vec)
        for p in _LOG_PARAMS:
            assert p.low <= config[p.name] <= p.high
            if u == 0.0:
                assert config[p.name] == pytest.approx(p.low)
            if u == 1.0:
                assert config[p.name] == pytest.approx(p.high)

    @given(lo=_unit, hi=_unit)
    @settings(max_examples=30, deadline=None)
    def test_log_scale_decode_is_monotone(self, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        idx = {p.name: i for i, p in enumerate(_SPACE.parameters)}
        v_lo = np.full(_SPACE.dim, 0.5)
        v_hi = v_lo.copy()
        for p in _LOG_PARAMS:
            v_lo[idx[p.name]] = lo
            v_hi[idx[p.name]] = hi
        c_lo, c_hi = _SPACE.decode(v_lo), _SPACE.decode(v_hi)
        for p in _LOG_PARAMS:
            assert c_lo[p.name] <= c_hi[p.name]

    @pytest.mark.determinism
    def test_categorical_boundaries_agree_scalar_vs_batch(self):
        """Exact cell edges are where floor-vs-round bugs live; sweep
        every categorical boundary coordinate through both paths."""
        idx = {p.name: i for i, p in enumerate(_SPACE.parameters)}
        probes = []
        for p in _CAT_PARAMS:
            n = len(p.choices)
            for k in range(n + 1):
                vec = np.full(_SPACE.dim, 0.5)
                vec[idx[p.name]] = min(k / n, 1.0)
                probes.append(vec)
        probes = np.stack(probes)
        batch = _SPACE.decode_batch(probes)
        for row, config in zip(probes, batch):
            assert config == _SPACE.decode(row)
            for p in _CAT_PARAMS:
                assert config[p.name] in p.choices


# --------------------------------------------------- allocation budgets

# A Python trace hook (tools/coverage_baseline.py) allocates frame
# bookkeeping inside the measured region, so tracemalloc budgets are
# meaningless under one.
_skip_if_traced = pytest.mark.skipif(
    sys.gettrace() is not None,
    reason="allocation budgets are unmeasurable under a trace hook",
)


def _measure_peak(fn, calls: int = 3) -> int:
    tracemalloc.start()
    tracemalloc.reset_peak()
    for _ in range(calls):
        fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


@_skip_if_traced
def test_td3_update_allocation_budget():
    """Warmed TD3 updates must stay far below the pre-vectorization
    ~934 kB/update peak (layer workspaces + in-place Adam)."""
    from repro.core.deepcat import DeepCAT
    from repro.replay.base import Transition

    env = make_env("WC", "D1", seed=_SEED)
    tuner = DeepCAT.from_env(env, seed=_SEED)
    rng = np.random.default_rng(_SEED)
    dim, act = env.state.shape[0], env.space.dim
    for _ in range(256):
        tuner.buffer.push(Transition(
            rng.uniform(size=dim), rng.uniform(size=act),
            float(rng.uniform(-1.0, 1.0)), rng.uniform(size=dim),
        ))
    batch = tuner.buffer.sample(tuner.agent.hp.batch_size)
    for _ in range(3):  # allocate the lazy workspaces
        tuner.agent.update(batch)
    # Remaining allocations are small per-call temporaries (TD targets,
    # critic input concat; ~175 kB measured); the ceiling sits well
    # under the ~934 kB pre-vectorization peak.
    peak = _measure_peak(lambda: tuner.agent.update(batch))
    assert peak < 400_000, f"td3.update allocated {peak} B"


@_skip_if_traced
def test_rdper_sample_allocation_budget():
    """Warmed RDPER sampling gathers into a pooled ReplayBatch; only the
    index draws allocate (pre-vectorization peak was ~55 kB/sample)."""
    from repro.replay.base import Transition
    from repro.replay.rdper import RewardDrivenReplayBuffer

    rng = np.random.default_rng(_SEED)
    buf = RewardDrivenReplayBuffer(4096, 9, 6, np.random.default_rng(1))
    for _ in range(1024):
        buf.push(Transition(
            rng.uniform(size=9), rng.uniform(size=6),
            float(rng.uniform(-1.0, 1.0)), rng.uniform(size=9),
        ))
    buf.sample(64)  # allocate the pooled batch
    peak = _measure_peak(lambda: buf.sample(64))
    assert peak < 16_384, f"rdper.sample allocated {peak} B"
