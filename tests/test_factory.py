"""Tests for the top-level factory and package exports."""

import numpy as np
import pytest

import repro
from repro.cluster.hardware import CLUSTER_B
from repro.factory import EXPECTED_SPEEDUPS, make_env


class TestMakeEnv:
    def test_defaults(self):
        env = make_env("TS")
        assert env.runner.dataset.label == "D1"
        assert env.cluster.name == "cluster-a"

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            make_env("NOPE")

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            make_env("TS", "D9")

    def test_cluster_b(self):
        env = make_env("WC", cluster=CLUSTER_B)
        assert env.cluster is CLUSTER_B

    def test_generator_seed_accepted(self):
        rng = np.random.default_rng(5)
        env = make_env("TS", seed=rng)
        assert env.default_duration > 0

    def test_expected_speedup_override(self):
        env = make_env("TS", expected_speedup=2.5)
        assert env.reward_fn.expected_speedup == 2.5

    def test_extended_workload_fallback_speedup(self):
        env = make_env("AGG")
        assert env.reward_fn.expected_speedup == 2.0  # not in the table

    def test_expected_speedups_cover_paper_workloads(self):
        assert set(EXPECTED_SPEEDUPS) == {"WC", "TS", "PR", "KM"}


class TestTopLevelExports:
    def test_public_api_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quick_workflow(self):
        env = repro.make_env("WC", "D1", seed=0)
        tuner = repro.DeepCAT.from_env(env, seed=0)
        assert tuner.agent.action_dim == 32
