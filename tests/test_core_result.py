"""Tests for session records and their paper-facing aggregates."""

import numpy as np
import pytest

from repro.core.result import OnlineSession, TuningStepRecord


def record(step, duration, rec=0.01, success=True, reward=0.0):
    return TuningStepRecord(
        step=step,
        duration_s=duration,
        recommendation_s=rec,
        reward=reward,
        success=success,
        config={},
        action=np.zeros(2),
    )


def session(durations, successes=None, default=100.0, rec=0.01):
    s = OnlineSession(tuner="T", workload="TS", dataset="D1",
                      default_duration_s=default)
    successes = successes or [True] * len(durations)
    for i, (d, ok) in enumerate(zip(durations, successes)):
        s.add(record(i, d, rec=rec, success=ok))
    return s


class TestOnlineSession:
    def test_best_step(self):
        s = session([50.0, 30.0, 40.0])
        assert s.best_duration_s == 30.0
        assert s.best_step.step == 1

    def test_best_ignores_failures(self):
        s = session([50.0, 10.0, 40.0], successes=[True, False, True])
        assert s.best_duration_s == 40.0

    def test_no_success_raises(self):
        s = session([50.0], successes=[False])
        with pytest.raises(ValueError):
            _ = s.best_duration_s

    def test_speedup_over_default(self):
        s = session([25.0, 50.0], default=100.0)
        assert s.speedup_over_default == pytest.approx(4.0)

    def test_cost_aggregates(self):
        s = session([10.0, 20.0], rec=0.5)
        assert s.evaluation_seconds == 30.0
        assert s.recommendation_seconds == 1.0
        assert s.total_tuning_seconds == 31.0

    def test_best_so_far_series(self):
        s = session([50.0, 30.0, 40.0])
        assert s.best_so_far() == [50.0, 30.0, 30.0]

    def test_best_so_far_with_leading_failure(self):
        s = session([50.0, 30.0], successes=[False, True], default=100.0)
        assert s.best_so_far() == [100.0, 30.0]

    def test_accumulated_cost_monotone(self):
        s = session([10.0, 20.0, 5.0], rec=1.0)
        acc = s.accumulated_cost()
        assert acc == [11.0, 32.0, 38.0]
        assert all(b > a for a, b in zip(acc, acc[1:]))

    def test_n_steps(self):
        assert session([1.0, 2.0]).n_steps == 2

    def test_speedup_requires_default(self):
        s = OnlineSession(tuner="T", workload="TS", dataset="D1")
        s.add(record(0, 10.0))
        with pytest.raises(ValueError):
            _ = s.speedup_over_default
