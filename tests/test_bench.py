"""Benchmark harness: registry, runner, schema, regression gate, CLI."""

import json

import pytest

from repro.bench import (
    Benchmark,
    compare_docs,
    iter_benchmarks,
    load_doc,
    make_doc,
    render_comparison,
    run_one,
    validate_doc,
)
from repro.bench.registry import bench
from repro.cli import main


def _fake_benchmark(name="fake.bench", kind="micro", items=10):
    return Benchmark(
        name=name,
        kind=kind,
        items=items,
        factory=lambda: (lambda: sum(range(200))),
        description="synthetic",
    )


def _result_record(name, kind="micro", median_s=0.01):
    return {
        "name": name,
        "kind": kind,
        "items": 10,
        "repetitions": 3,
        "median_s": median_s,
        "p10_s": median_s * 0.9,
        "p90_s": median_s * 1.1,
        "throughput_per_s": 10 / median_s,
    }


def _doc(records):
    return make_doc(records, config={"repetitions": 3})


class TestRegistry:
    def test_suite_has_required_coverage(self):
        micro = iter_benchmarks(kind="micro")
        macro = iter_benchmarks(kind="macro")
        assert len(micro) >= 6
        assert len(macro) >= 2
        names = {b.name for b in micro + macro}
        assert {
            "sim.step",
            "td3.update",
            "rdper.push",
            "rdper.sample",
            "twinq.accept",
            "codec.roundtrip",
            "cache.roundtrip",
            "pipeline.offline_train",
            "pipeline.online_tune",
        } <= names

    def test_iter_sorted_and_filtered(self):
        all_names = [b.name for b in iter_benchmarks()]
        assert all_names == sorted(
            all_names,
            key=lambda n: next(
                (b.kind, b.name) for b in iter_benchmarks() if b.name == n
            ),
        )
        assert all(b.kind == "macro" for b in iter_benchmarks(kind="macro"))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            bench("sim.step", kind="micro", items=1)(lambda: lambda: None)

    def test_bad_kind_and_items_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            bench("x.bad", kind="nano", items=1)
        with pytest.raises(ValueError, match="items"):
            bench("x.bad", kind="micro", items=0)

    def test_unknown_benchmark_lists_known(self):
        from repro.bench import get_benchmark

        with pytest.raises(KeyError, match="sim.step"):
            get_benchmark("no.such.bench")


class TestRunner:
    def test_run_one_record_shape(self):
        rec = run_one(_fake_benchmark(), repetitions=3, warmup=1)
        assert rec["name"] == "fake.bench"
        assert rec["repetitions"] == 3
        assert rec["p10_s"] <= rec["median_s"] <= rec["p90_s"]
        assert rec["min_s"] <= rec["median_s"] <= rec["max_s"]
        assert rec["throughput_per_s"] > 0
        assert rec["alloc_peak_bytes"] is not None
        assert rec["peak_rss_kb"] is None or rec["peak_rss_kb"] > 0

    def test_run_one_without_alloc_pass(self):
        rec = run_one(
            _fake_benchmark(), repetitions=1, warmup=0, track_alloc=False
        )
        assert rec["alloc_peak_bytes"] is None

    def test_run_one_invokes_cleanup(self):
        calls = {"run": 0, "cleanup": 0}

        def factory():
            def run():
                calls["run"] += 1

            def cleanup():
                calls["cleanup"] += 1

            return run, cleanup

        b = Benchmark(name="c", kind="micro", items=1, factory=factory)
        run_one(b, repetitions=2, warmup=1)
        # warmup + timed reps + allocation pass, one cleanup at the end
        assert calls == {"run": 4, "cleanup": 1}

    def test_run_one_rejects_zero_repetitions(self):
        with pytest.raises(ValueError, match="repetitions"):
            run_one(_fake_benchmark(), repetitions=0, warmup=0)


class TestSchema:
    def test_make_doc_is_valid(self):
        doc = _doc([_result_record("a"), _result_record("b", kind="macro")])
        assert validate_doc(doc) == []
        assert doc["schema_version"] == 2
        assert "host" in doc and "created_at" in doc
        assert doc["host"]["blas_threads"] >= 1

    def test_v1_documents_remain_accepted(self):
        doc = _doc([_result_record("a")])
        doc["schema_version"] = 1  # pre-multi-core baseline files
        assert validate_doc(doc) == []

    def test_validate_flags_problems(self):
        assert validate_doc("nope") == ["document is not a JSON object"]
        assert any(
            "schema_version" in p
            for p in validate_doc({"schema_version": 99, "results": []})
        )
        doc = _doc([_result_record("a"), _result_record("a")])
        assert any("duplicate" in p for p in validate_doc(doc))
        bad = _doc([_result_record("a", kind="nano")])
        assert any("kind" in p for p in validate_doc(bad))
        incomplete = _doc([{"name": "a"}])
        assert any("missing" in p for p in validate_doc(incomplete))

    def test_load_doc_error_paths(self, tmp_path):
        with pytest.raises(ValueError, match="no such bench file"):
            load_doc(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_doc(bad)
        invalid = tmp_path / "invalid.json"
        invalid.write_text(json.dumps({"schema_version": 1, "results": []}))
        with pytest.raises(ValueError, match="invalid bench document"):
            load_doc(invalid)


class TestCompare:
    def test_unchanged_is_ok(self):
        base = _doc([_result_record("a"), _result_record("b")])
        cmp = compare_docs(base, base)
        assert cmp.ok and not cmp.regressions
        assert all(d.ratio == 1.0 for d in cmp.deltas)

    def test_slowdown_beyond_threshold_regresses(self):
        base = _doc([_result_record("a", median_s=0.010)])
        slow = _doc([_result_record("a", median_s=0.015)])
        cmp = compare_docs(slow, base, threshold=0.25)
        assert not cmp.ok
        assert cmp.regressions[0].name == "a"
        assert cmp.regressions[0].change_pct == pytest.approx(50.0)
        # a looser threshold tolerates the same slowdown
        assert compare_docs(slow, base, threshold=0.60).ok

    def test_speedup_and_missing_never_fail(self):
        base = _doc([_result_record("a", median_s=0.02), _result_record("b")])
        cand = _doc([_result_record("a", median_s=0.01), _result_record("c")])
        cmp = compare_docs(cand, base)
        assert cmp.ok
        assert cmp.only_in_baseline == ["b"]
        assert cmp.only_in_candidate == ["c"]
        text = render_comparison(cmp)
        assert "improved" in text
        assert "not measured in candidate" in text
        assert "no baseline entry" in text

    def test_render_marks_regression(self):
        base = _doc([_result_record("a", median_s=0.010)])
        slow = _doc([_result_record("a", median_s=0.020)])
        text = render_comparison(compare_docs(slow, base))
        assert "REGRESSED" in text
        assert "1 regression(s)" in text

    def test_threshold_must_be_positive(self):
        base = _doc([_result_record("a")])
        with pytest.raises(ValueError, match="threshold"):
            compare_docs(base, base, threshold=0.0)


class TestBenchCLI:
    def test_list_shows_suite(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "sim.step" in out and "pipeline.online_tune" in out

    def test_run_writes_valid_doc(self, tmp_path, capsys):
        out = tmp_path / "BENCH_dev.json"
        rc = main([
            "bench", "run", "--out", str(out),
            "--only", "codec.roundtrip", "--only", "rdper.push",
            "--repetitions", "1", "--warmup", "0", "--no-alloc",
        ])
        assert rc == 0
        doc = load_doc(out)
        assert {r["name"] for r in doc["results"]} == {
            "codec.roundtrip",
            "rdper.push",
        }
        assert "wrote" in capsys.readouterr().out

    def test_run_rejects_bad_repetitions(self, capsys):
        assert main(["bench", "run", "--repetitions", "0"]) == 2
        assert "repetitions" in capsys.readouterr().err

    def test_compare_ok_and_regression_exit_codes(self, tmp_path):
        base = tmp_path / "base.json"
        slow = tmp_path / "slow.json"
        base.write_text(json.dumps(_doc([_result_record("a", median_s=0.01)])))
        slow.write_text(json.dumps(_doc([_result_record("a", median_s=0.05)])))
        assert main(["bench", "compare", str(base), str(base)]) == 0
        assert main(["bench", "compare", str(slow), str(base)]) == 1
        assert main([
            "bench", "compare", str(slow), str(base), "--threshold", "5.0",
        ]) == 0

    def test_compare_check_schema_only(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        slow = tmp_path / "slow.json"
        base.write_text(json.dumps(_doc([_result_record("a", median_s=0.01)])))
        slow.write_text(json.dumps(_doc([_result_record("a", median_s=0.09)])))
        rc = main([
            "bench", "compare", str(slow), str(base), "--check-schema",
        ])
        assert rc == 0  # schema check ignores the slowdown
        assert "schemas OK" in capsys.readouterr().out

    def test_compare_bad_files_exit_2(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_doc([_result_record("a")])))
        assert main([
            "bench", "compare", str(tmp_path / "nope.json"), str(good),
        ]) == 2
        assert "bench compare" in capsys.readouterr().err
        assert main([
            "bench", "compare", str(good), str(good), "--threshold", "-1",
        ]) == 2

    def test_committed_baseline_is_default_and_valid(self, tmp_path, capsys):
        from repro.cli import BASELINE_BENCH_PATH

        doc = load_doc(BASELINE_BENCH_PATH)  # committed baseline parses
        cand = tmp_path / "cand.json"
        cand.write_text(json.dumps(doc))
        # default baseline argument resolves to the committed file
        assert main(["bench", "compare", str(cand)]) == 0
