"""Tests for repro.nn.network (Sequential / MLP / Parameter)."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU
from repro.nn.losses import mse_loss
from repro.nn.network import MLP, Parameter, Sequential


class TestParameter:
    def test_grad_starts_zero(self):
        p = Parameter(np.ones((2, 2)))
        np.testing.assert_array_equal(p.grad, 0.0)

    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        p.grad += 5.0
        p.zero_grad()
        np.testing.assert_array_equal(p.grad, 0.0)

    def test_shape(self):
        assert Parameter(np.zeros((3, 4))).shape == (3, 4)


class TestSequential:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_forward_1d_input_promoted(self, rng):
        net = MLP(3, 2, hidden=(4,), rng=rng)
        out = net.forward(np.zeros(3))
        assert out.shape == (1, 2)

    def test_full_gradient_check(self, rng):
        net = MLP(3, 1, hidden=(5,), rng=rng, final_init_limit=None)
        x = rng.normal(size=(6, 3))
        target = rng.normal(size=(6, 1))

        net.zero_grad()
        pred = net.forward(x)
        _, grad = mse_loss(pred, target)
        net.backward(grad)

        eps = 1e-6
        for p in net.parameters():
            flat = p.data.ravel()
            gflat = p.grad.ravel()
            for i in range(0, flat.size, max(1, flat.size // 5)):
                orig = flat[i]
                flat[i] = orig + eps
                hi, _ = mse_loss(net.forward(x, cache=False), target)
                flat[i] = orig - eps
                lo, _ = mse_loss(net.forward(x, cache=False), target)
                flat[i] = orig
                num = (hi - lo) / (2 * eps)
                assert gflat[i] == pytest.approx(num, rel=1e-4, abs=1e-7)

    def test_input_gradient_check(self, rng):
        net = MLP(4, 1, hidden=(6,), rng=rng, final_init_limit=None)
        x = rng.normal(size=(3, 4))
        pred = net.forward(x)
        grad_in = net.backward(np.ones_like(pred))

        eps = 1e-6
        for i in range(x.shape[0]):
            for j in range(x.shape[1]):
                orig = x[i, j]
                x[i, j] = orig + eps
                hi = float(np.sum(net.forward(x, cache=False)))
                x[i, j] = orig - eps
                lo = float(np.sum(net.forward(x, cache=False)))
                x[i, j] = orig
                assert grad_in[i, j] == pytest.approx(
                    (hi - lo) / (2 * eps), rel=1e-4, abs=1e-7
                )

    def test_state_dict_roundtrip(self, rng):
        a = MLP(3, 2, hidden=(4,), rng=rng)
        b = MLP(3, 2, hidden=(4,), rng=np.random.default_rng(999))
        b.load_state_dict(a.state_dict())
        x = rng.normal(size=(2, 3))
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_load_state_dict_shape_mismatch(self, rng):
        a = MLP(3, 2, hidden=(4,), rng=rng)
        b = MLP(3, 2, hidden=(5,), rng=rng)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_copy_from(self, rng):
        a = MLP(2, 2, hidden=(3,), rng=rng)
        b = MLP(2, 2, hidden=(3,), rng=np.random.default_rng(1))
        b.copy_from(a)
        x = np.ones((1, 2))
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_copy_from_architecture_mismatch(self, rng):
        a = Sequential([Linear(2, 2, rng)])
        b = Sequential([Linear(2, 2, rng), ReLU(), Linear(2, 2, rng)])
        with pytest.raises(ValueError):
            b.copy_from(a)

    def test_zero_grad_all(self, rng):
        net = MLP(2, 1, hidden=(3,), rng=rng)
        x = np.ones((2, 2))
        net.backward_ready = net.forward(x)
        net.backward(np.ones((2, 1)))
        net.zero_grad()
        for p in net.parameters():
            np.testing.assert_array_equal(p.grad, 0.0)


class TestMLP:
    def test_out_activation_sigmoid_bounds(self, rng):
        net = MLP(3, 4, hidden=(8,), out_activation="sigmoid", rng=rng)
        out = net.forward(rng.normal(size=(10, 3)) * 5)
        assert np.all((out >= 0) & (out <= 1))

    def test_linear_head_unbounded(self, rng):
        net = MLP(3, 1, hidden=(8,), rng=rng, final_init_limit=None)
        out = net.forward(rng.normal(size=(200, 3)) * 10)
        assert out.std() > 0

    def test_parameter_count(self, rng):
        net = MLP(4, 2, hidden=(8, 8), rng=rng)
        # 3 Linear layers, each weight+bias
        assert len(net.parameters()) == 6

    def test_dims_recorded(self, rng):
        net = MLP(5, 3, hidden=(7,), rng=rng)
        assert net.in_dim == 5 and net.out_dim == 3 and net.hidden == (7,)

    def test_deterministic_init(self):
        a = MLP(3, 2, rng=np.random.default_rng(5))
        b = MLP(3, 2, rng=np.random.default_rng(5))
        x = np.ones((1, 3))
        np.testing.assert_allclose(a.forward(x), b.forward(x))
