"""Property-based tests for RDPER invariants (paper §3.3).

Three invariants hold for every reward stream, threshold, and β:

1. **Realized β** — when both pools can supply their share, every batch
   contains exactly ``round(β·m)`` high-reward transitions; when one pool
   is empty the other covers the whole batch (the documented deficit
   rule), so the batch size is always honoured.
2. **Exact partition** — ``P_high`` holds precisely the transitions with
   reward ≥ ``R_th`` and ``P_low`` the rest, up to each pool's capacity.
3. **Eviction keeps the newest** — the ring overwrites oldest-first, so
   the most recently pushed transition is always resident.

Skipped cleanly when ``hypothesis`` is unavailable (it is an optional
dev dependency; never ``pip install`` at test time).
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.replay.base import Transition  # noqa: E402
from repro.replay.rdper import RewardDrivenReplayBuffer  # noqa: E402

STATE_DIM, ACTION_DIM = 3, 2

#: finite rewards away from the threshold-equality knife edge is the
#: interesting domain; exact ties are covered by a dedicated example
rewards_lists = st.lists(
    st.floats(min_value=-5.0, max_value=5.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=60,
)


def _make(capacity=32, threshold=0.3, beta=0.6, seed=0):
    return RewardDrivenReplayBuffer(
        capacity=capacity,
        state_dim=STATE_DIM,
        action_dim=ACTION_DIM,
        rng=np.random.default_rng(seed),
        reward_threshold=threshold,
        beta=beta,
    )


def _push(buf, reward, tag=0.0):
    """Push a transition whose state[0] carries ``tag`` as an identity."""
    state = np.zeros(STATE_DIM)
    state[0] = tag
    buf.push(Transition(
        state=state,
        action=np.zeros(ACTION_DIM),
        reward=float(reward),
        next_state=np.zeros(STATE_DIM),
    ))


class TestRealizedBeta:
    @settings(max_examples=60, deadline=None)
    @given(
        rewards=rewards_lists,
        beta=st.floats(min_value=0.0, max_value=1.0),
        threshold=st.floats(min_value=-1.0, max_value=1.0),
        batch_size=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_batch_high_fraction_matches_beta(
        self, rewards, beta, threshold, batch_size, seed
    ):
        buf = _make(threshold=threshold, beta=beta, seed=seed)
        for r in rewards:
            _push(buf, r)
        batch = buf.sample(batch_size)
        assert len(batch) == batch_size  # size always honoured

        n_high_in_batch = int(np.sum(batch.rewards >= threshold))
        if buf.high_size and buf.low_size:
            # both pools can supply: the configured ratio, exactly
            assert n_high_in_batch == int(round(beta * batch_size))
        elif buf.high_size:
            assert n_high_in_batch == batch_size
        else:
            assert n_high_in_batch == 0

    def test_empty_buffer_raises(self):
        with pytest.raises(ValueError):
            _make().sample(4)

    def test_bad_batch_size_raises(self):
        buf = _make()
        _push(buf, 0.0)
        with pytest.raises(ValueError):
            buf.sample(0)


class TestExactPartition:
    @settings(max_examples=60, deadline=None)
    @given(
        rewards=rewards_lists,
        threshold=st.floats(min_value=-1.0, max_value=1.0),
    )
    def test_pools_partition_by_threshold(self, rewards, threshold):
        cap = 256  # large enough that nothing is evicted
        buf = _make(capacity=cap, threshold=threshold)
        for r in rewards:
            _push(buf, r)
        n_high = sum(1 for r in rewards if r >= threshold)
        assert buf.high_size == n_high
        assert buf.low_size == len(rewards) - n_high
        assert len(buf) == len(rewards)

    def test_threshold_tie_goes_high(self):
        buf = _make(threshold=0.3)
        _push(buf, 0.3)  # == R_th: the paper's ">= R_th" rule
        assert buf.high_size == 1
        assert buf.low_size == 0

    @settings(max_examples=40, deadline=None)
    @given(rewards=rewards_lists,
           threshold=st.floats(min_value=-1.0, max_value=1.0))
    def test_occupancy_capped_by_pool_capacity(self, rewards, threshold):
        buf = _make(capacity=8, threshold=threshold)  # high cap 2, low 6
        for r in rewards:
            _push(buf, r)
        n_high = sum(1 for r in rewards if r >= threshold)
        assert buf.high_size == min(n_high, buf._high.capacity)
        assert buf.low_size == min(len(rewards) - n_high,
                                   buf._low.capacity)


class TestEvictionKeepsNewest:
    @settings(max_examples=40, deadline=None)
    @given(
        n_pushes=st.integers(min_value=1, max_value=100),
        capacity=st.integers(min_value=2, max_value=24),
        go_high=st.booleans(),
    )
    def test_newest_transition_survives_overflow(
        self, n_pushes, capacity, go_high
    ):
        """Overflowing a pool evicts oldest-first, never the newest."""
        buf = _make(capacity=capacity, threshold=0.0)
        # unique tags identify transitions; rewards all land in one pool
        reward = 1.0 if go_high else -1.0
        for tag in range(n_pushes):
            _push(buf, reward, tag=float(tag))
        pool = buf._high if go_high else buf._low
        resident_tags = {float(pool._states[i, 0])
                         for i in range(len(pool))}
        newest = float(n_pushes - 1)
        assert newest in resident_tags
        # and occupancy is the ring invariant
        assert len(pool) == min(n_pushes, pool.capacity)
        # the survivors are exactly the most recent window
        expected = {float(t) for t in
                    range(max(0, n_pushes - pool.capacity), n_pushes)}
        assert resident_tags == expected

    @settings(max_examples=30, deadline=None)
    @given(rewards=rewards_lists)
    def test_newest_survives_mixed_stream(self, rewards):
        buf = _make(capacity=4, threshold=0.0)  # high cap 1, low cap 3
        for tag, r in enumerate(rewards):
            _push(buf, r, tag=float(tag))
        newest_tag = float(len(rewards) - 1)
        pool = buf._high if rewards[-1] >= 0.0 else buf._low
        resident = {float(pool._states[i, 0]) for i in range(len(pool))}
        assert newest_tag in resident
