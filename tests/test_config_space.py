"""Tests for repro.config.space and the pipeline assembly."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config.parameter import BoolParameter, FloatParameter, IntParameter
from repro.config.pipeline import build_pipeline_space
from repro.config.space import ConfigurationSpace


def tiny_space():
    return ConfigurationSpace(
        [
            IntParameter("cores", "spark", default=2, low=1, high=8),
            FloatParameter("frac", "spark", default=0.5, low=0.0, high=1.0),
            BoolParameter("flag", "yarn", default=False),
        ]
    )


class TestConfigurationSpace:
    def test_dim_and_names(self):
        s = tiny_space()
        assert s.dim == 3
        assert s.names == ["cores", "frac", "flag"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ConfigurationSpace([])

    def test_duplicate_names_rejected(self):
        p = IntParameter("x", "spark", default=1, low=0, high=2)
        with pytest.raises(ValueError):
            ConfigurationSpace([p, p])

    def test_getitem(self):
        s = tiny_space()
        assert s["cores"].name == "cores"
        with pytest.raises(KeyError):
            s["nope"]

    def test_contains_and_iter(self):
        s = tiny_space()
        assert "frac" in s and "nope" not in s
        assert len(list(s)) == 3

    def test_defaults_roundtrip(self):
        s = tiny_space()
        cfg = s.defaults()
        vec = s.encode(cfg)
        assert vec.shape == (3,)
        assert s.decode(vec) == cfg

    def test_encode_missing_key_raises(self):
        s = tiny_space()
        cfg = s.defaults()
        del cfg["frac"]
        with pytest.raises(KeyError):
            s.encode(cfg)

    def test_encode_unknown_key_raises(self):
        s = tiny_space()
        cfg = s.defaults()
        cfg["extra"] = 1
        with pytest.raises(KeyError):
            s.encode(cfg)

    def test_decode_wrong_shape(self):
        with pytest.raises(ValueError):
            tiny_space().decode(np.zeros(5))

    def test_clip_vector(self):
        s = tiny_space()
        out = s.clip_vector(np.array([-1.0, 0.5, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.5, 1.0])

    def test_clip_config(self):
        s = tiny_space()
        out = s.clip_config({"cores": 99, "frac": -3.0, "flag": True})
        assert out == {"cores": 8, "frac": 0.0, "flag": True}

    def test_sampling_shapes(self, rng):
        s = tiny_space()
        assert s.sample_vector(rng).shape == (3,)
        assert s.sample_vectors(rng, 10).shape == (10, 3)
        cfg = s.sample_config(rng)
        assert set(cfg) == {"cores", "frac", "flag"}

    def test_sample_rejects_nonpositive(self, rng):
        with pytest.raises(ValueError):
            tiny_space().sample_vectors(rng, 0)

    def test_component_counts_and_subset(self):
        s = tiny_space()
        assert s.component_counts() == {"spark": 2, "yarn": 1}
        sub = s.subset(["yarn"])
        assert sub.names == ["flag"]
        with pytest.raises(ValueError):
            s.subset(["hdfs"])

    def test_latin_hypercube_stratification(self, rng):
        s = tiny_space()
        n = 8
        u = s.latin_hypercube(rng, n)
        assert u.shape == (n, 3)
        # each column must have exactly one sample per 1/n stratum
        for j in range(3):
            bins = np.floor(u[:, j] * n).astype(int)
            assert sorted(bins) == list(range(n))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_vector_roundtrip_property(self, seed):
        s = tiny_space()
        rng = np.random.default_rng(seed)
        vec = s.sample_vector(rng)
        cfg = s.decode(vec)
        vec2 = s.encode(cfg)
        # encode(decode(v)) quantizes ints/bools but must be idempotent
        assert s.decode(vec2) == cfg


class TestPipelineSpace:
    def test_dimension_is_32(self, space):
        assert space.dim == 32

    def test_table2_counts(self, space):
        assert space.component_counts() == {"spark": 20, "yarn": 7, "hdfs": 5}

    def test_defaults_are_spark_defaults(self, space):
        d = space.defaults()
        assert d["spark.executor.memory"] == 1024
        assert d["spark.serializer"] == "java"
        assert d["dfs.replication"] == 3
        assert d["spark.shuffle.compress"] is True

    def test_default_vector_roundtrip(self, space):
        vec = space.default_vector()
        assert space.decode(vec) == space.defaults()

    def test_all_parameters_have_descriptions(self, space):
        for p in space:
            assert p.description, f"{p.name} missing description"

    def test_stable_order(self):
        a = build_pipeline_space().names
        b = build_pipeline_space().names
        assert a == b
        assert a[:1] == ["spark.executor.cores"]

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_vector_decodes_to_legal_config(self, seed):
        space = build_pipeline_space()
        rng = np.random.default_rng(seed)
        cfg = space.decode(space.sample_vector(rng))
        clipped = space.clip_config(cfg)
        assert clipped == cfg  # decode never produces out-of-range values
