"""Tests for the metrics registry: instrument semantics and exporters."""

import json
import threading

import pytest

from repro.telemetry.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_concurrent_increments(self):
        c = Counter("x")
        n, per_thread = 8, 2000

        def worker():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n * per_thread


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("x")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0

    def test_set_coerces_to_float(self):
        g = Gauge("x")
        g.set(3)
        assert isinstance(g.value, float)


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        h = Histogram("x")
        for v in (1.0, 2.0, 3.0, 10.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 16.0
        assert snap["min"] == 1.0
        assert snap["max"] == 10.0
        assert h.mean == 4.0

    def test_quantiles_exact_below_reservoir(self):
        h = Histogram("x")
        for v in range(100):
            h.observe(float(v))
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == 50.0
        assert h.quantile(1.0) == 99.0

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("x").quantile(1.5)

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram("x").quantile(0.5) == 0.0

    def test_reservoir_bounds_memory(self):
        h = Histogram("x", reservoir_size=64)
        for v in range(10_000):
            h.observe(float(v))
        assert len(h._reservoir) == 64
        assert h.count == 10_000
        # The sample should still roughly span the stream.
        assert h.quantile(0.5) == pytest.approx(5000, rel=0.5)

    def test_invalid_reservoir_size(self):
        with pytest.raises(ValueError):
            Histogram("x", reservoir_size=0)

    def test_concurrent_observations(self):
        h = Histogram("x")
        n, per_thread = 4, 1000

        def worker():
            for i in range(per_thread):
                h.observe(float(i))

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == n * per_thread
        assert h.sum == n * sum(range(per_thread))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("hits")
        b = reg.counter("hits")
        assert a is b
        a.inc()
        assert b.value == 1.0

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", labels={"tuner": "DeepCAT"})
        b = reg.counter("hits", labels={"tuner": "CDBTune"})
        assert a is not b
        # Label order must not matter.
        c = reg.gauge("g", labels={"a": 1, "b": 2})
        d = reg.gauge("g", labels={"b": 2, "a": 1})
        assert c is d

    def test_same_name_different_kind_coexist(self):
        reg = MetricsRegistry()
        reg.counter("x")
        reg.gauge("x")
        assert len(reg) == 2

    def test_names_sorted_unique(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a", labels={"k": "1"})
        reg.counter("a", labels={"k": "2"})
        assert reg.names() == ["a", "b"]

    def test_prometheus_text_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", help="total requests").inc(3)
        reg.gauge("pool_size", labels={"pool": "high"}).set(7)
        text = reg.to_prometheus_text()
        assert "# HELP requests_total total requests" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3" in text
        assert "# TYPE pool_size gauge" in text
        assert 'pool_size{pool="high"} 7' in text
        assert text.endswith("\n")

    def test_prometheus_text_histogram_as_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency_s")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        text = reg.to_prometheus_text()
        assert "# TYPE latency_s summary" in text
        assert 'latency_s{quantile="0.5"}' in text
        assert 'latency_s{quantile="0.99"}' in text
        assert "latency_s_sum 6" in text
        assert "latency_s_count 3" in text

    def test_json_export_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("hits", labels={"tuner": "DeepCAT"}).inc(2)
        reg.histogram("lat").observe(1.5)
        data = json.loads(reg.to_json_text())
        assert data["hits"]["kind"] == "counter"
        assert data["hits"]["series"][0]["labels"] == {"tuner": "DeepCAT"}
        assert data["hits"]["series"][0]["value"] == 2.0
        assert data["lat"]["series"][0]["count"] == 1

    def test_iteration_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b")
        kinds = sorted(m.kind for m in reg)
        assert kinds == ["counter", "gauge"]


class TestNullRegistry:
    def test_all_paths_noop(self):
        reg = NullRegistry()
        reg.counter("x").inc(5)
        reg.gauge("x").set(5)
        reg.histogram("x").observe(5)
        assert len(reg) == 0
        assert list(reg) == []
        assert reg.names() == []
        assert reg.to_prometheus_text() == ""
        assert reg.to_json() == {}

    def test_handles_are_shared_singletons(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.gauge("a") is NULL_REGISTRY.gauge("b")


def _worker_registry_state(seed: int) -> dict:
    """ProcessPoolExecutor task: record into a fresh registry, ship state."""
    reg = MetricsRegistry()
    reg.counter("worker.tasks_total", help="tasks").inc(seed + 1)
    reg.gauge("worker.last_seed").set(seed)
    h = reg.histogram("worker.task_seconds")
    for i in range(10):
        h.observe(seed * 10.0 + i)
    return reg.state()


class TestPrometheusEscaping:
    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter(
            "faults_total",
            labels={"reason": 'disk "full"\nretry\\later'},
        ).inc()
        text = reg.to_prometheus_text()
        assert (
            'faults_total{reason="disk \\"full\\"\\nretry\\\\later"} 1'
            in text
        )
        # escaped output stays one line per sample
        assert all(
            line.startswith(("#", "faults_total"))
            for line in text.strip().splitlines()
        )

    def test_plain_values_unchanged(self):
        reg = MetricsRegistry()
        reg.counter("hits", labels={"tuner": "DeepCAT"}).inc()
        assert 'hits{tuner="DeepCAT"} 1' in reg.to_prometheus_text()

    def test_type_lines_counter_vs_gauge(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", help="requests").inc()
        reg.gauge("replay_size").set(7)
        text = reg.to_prometheus_text()
        assert "# TYPE requests_total counter" in text
        assert "# TYPE replay_size gauge" in text
        # one TYPE line per metric name, even with several label series
        reg.counter("requests_total", labels={"tuner": "x"}).inc()
        text = reg.to_prometheus_text()
        assert text.count("# TYPE requests_total counter") == 1


class TestRegistryMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits").inc(2)
        b.counter("hits").inc(3)
        a.merge(b.state())
        assert a.counter("hits").value == 5.0

    def test_gauges_take_incoming_value(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("size").set(1)
        b.gauge("size").set(9)
        a.merge(b.state())
        assert a.gauge("size").value == 9.0

    def test_histograms_pool(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (1.0, 2.0):
            a.histogram("lat").observe(v)
        for v in (10.0, 20.0):
            b.histogram("lat").observe(v)
        a.merge(b.state())
        snap = a.histogram("lat").snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 33.0
        assert snap["min"] == 1.0
        assert snap["max"] == 20.0

    def test_merge_creates_missing_series(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("only_in_b", help="h", labels={"k": "v"}).inc(4)
        a.merge(b.state())
        assert a.counter("only_in_b", labels={"k": "v"}).value == 4.0
        assert "# HELP only_in_b h" in a.to_prometheus_text()

    def test_merge_rejects_unknown_kind(self):
        a = MetricsRegistry()
        bad = {"metrics": [{"kind": "exotic", "name": "x", "labels": [],
                            "help": "", "state": {}}]}
        with pytest.raises(ValueError):
            a.merge(bad)

    def test_state_is_picklable_and_empty_mergeable(self):
        import pickle

        a = MetricsRegistry()
        a.histogram("lat").observe(1.0)
        state = pickle.loads(pickle.dumps(a.state()))
        fresh = MetricsRegistry()
        fresh.merge(state)
        assert fresh.histogram("lat").count == 1

    def test_merge_across_process_pool_workers(self):
        from concurrent.futures import ProcessPoolExecutor

        parent = MetricsRegistry()
        with ProcessPoolExecutor(max_workers=2) as pool:
            for state in pool.map(_worker_registry_state, range(3)):
                parent.merge(state)
        # counters add: (0+1) + (1+1) + (2+1)
        assert parent.counter("worker.tasks_total").value == 6.0
        hist = parent.histogram("worker.task_seconds")
        assert hist.count == 30
        assert hist.snapshot()["min"] == 0.0
        assert hist.snapshot()["max"] == 29.0
        # last-wins gauge came from one of the workers
        assert parent.gauge("worker.last_seed").value in (0.0, 1.0, 2.0)
