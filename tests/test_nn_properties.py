"""Property-based tests over the numpy NN substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nn.layers import make_activation
from repro.nn.losses import mse_loss
from repro.nn.network import MLP
from repro.nn.optim import Adam
from repro.nn.target import soft_update

arch = st.tuples(
    st.integers(1, 6),  # in_dim
    st.integers(1, 4),  # out_dim
    st.lists(st.integers(2, 10), min_size=1, max_size=3),  # hidden
    st.sampled_from(["relu", "tanh"]),
    st.integers(0, 2**31 - 1),  # seed
)


class TestArchitectureProperties:
    @given(arch, st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_forward_shape(self, a, batch):
        in_dim, out_dim, hidden, act, seed = a
        net = MLP(in_dim, out_dim, hidden=tuple(hidden), activation=act,
                  rng=np.random.default_rng(seed))
        x = np.random.default_rng(0).normal(size=(batch, in_dim))
        assert net.forward(x, cache=False).shape == (batch, out_dim)

    @given(arch)
    @settings(max_examples=25, deadline=None)
    def test_backward_input_grad_shape(self, a):
        in_dim, out_dim, hidden, act, seed = a
        net = MLP(in_dim, out_dim, hidden=tuple(hidden), activation=act,
                  rng=np.random.default_rng(seed))
        x = np.random.default_rng(1).normal(size=(4, in_dim))
        out = net.forward(x)
        grad_in = net.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert np.all(np.isfinite(grad_in))

    @given(arch)
    @settings(max_examples=20, deadline=None)
    def test_state_dict_roundtrip_preserves_output(self, a):
        in_dim, out_dim, hidden, act, seed = a
        net = MLP(in_dim, out_dim, hidden=tuple(hidden), activation=act,
                  rng=np.random.default_rng(seed))
        clone = MLP(in_dim, out_dim, hidden=tuple(hidden), activation=act,
                    rng=np.random.default_rng(seed + 1))
        clone.load_state_dict(net.state_dict())
        x = np.random.default_rng(2).normal(size=(3, in_dim))
        np.testing.assert_allclose(
            net.forward(x, cache=False), clone.forward(x, cache=False)
        )

    @given(st.sampled_from(["relu", "tanh", "sigmoid"]),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_activation_output_finite(self, name, seed):
        layer = make_activation(name)
        x = np.random.default_rng(seed).normal(size=(5, 4)) * 50
        out = layer.forward(x, cache=False)
        assert np.all(np.isfinite(out))


class TestTrainingProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_adam_step_reduces_fresh_linear_loss(self, seed):
        rng = np.random.default_rng(seed)
        net = MLP(3, 1, hidden=(8,), rng=rng, final_init_limit=None)
        opt = Adam(net.parameters(), lr=1e-2)
        x = rng.normal(size=(32, 3))
        y = x[:, :1]
        losses = []
        for _ in range(50):
            opt.zero_grad()
            pred = net.forward(x)
            loss, grad = mse_loss(pred, y)
            losses.append(loss)
            net.backward(grad)
            opt.step()
        assert losses[-1] < losses[0]

    @given(st.floats(0.01, 1.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_soft_update_contracts_distance(self, tau, seed):
        rng = np.random.default_rng(seed)
        a = MLP(2, 2, hidden=(4,), rng=rng)
        b = MLP(2, 2, hidden=(4,), rng=np.random.default_rng(seed + 7))

        def dist():
            return sum(
                float(np.abs(pa.data - pb.data).sum())
                for pa, pb in zip(a.parameters(), b.parameters())
            )

        before = dist()
        soft_update(b, a, tau=tau)
        after = dist()
        assert after <= before + 1e-12
