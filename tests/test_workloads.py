"""Tests for the workload models (Table 1)."""

import pytest

from repro.workloads.base import DatasetSpec, StageSpec
from repro.workloads.kmeans import KMeans
from repro.workloads.pagerank import PageRank
from repro.workloads.registry import (
    WORKLOADS,
    get_workload,
    table1_rows,
    workload_pairs,
)
from repro.workloads.terasort import TeraSort
from repro.workloads.wordcount import WordCount


class TestStageSpec:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StageSpec(name="s", input_mb=-1.0)
        with pytest.raises(ValueError):
            StageSpec(name="s", input_mb=1.0, cpu_per_mb=-0.1)

    def test_rigid_fraction_bounds(self):
        with pytest.raises(ValueError):
            StageSpec(name="s", input_mb=1.0, rigid_memory_fraction=0.0)
        with pytest.raises(ValueError):
            StageSpec(name="s", input_mb=1.0, rigid_memory_fraction=1.5)

    def test_memory_expansion_positive(self):
        with pytest.raises(ValueError):
            StageSpec(name="s", input_mb=1.0, memory_expansion=0.0)


class TestDatasetSpec:
    def test_positive_sizes(self):
        with pytest.raises(ValueError):
            DatasetSpec("D1", 0.0, "GB", input_mb=1.0)
        with pytest.raises(ValueError):
            DatasetSpec("D1", 1.0, "GB", input_mb=0.0)


class TestRegistry:
    def test_four_workloads(self):
        assert set(WORKLOADS) == {"WC", "TS", "PR", "KM"}

    def test_twelve_pairs(self):
        pairs = workload_pairs()
        assert len(pairs) == 12
        assert pairs[0][0].code == "WC" and pairs[0][1].label == "D1"

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError):
            get_workload("XX")

    def test_table1_matches_paper(self):
        rows = {r[0]: (r[1], r[2]) for r in table1_rows()}
        assert rows["WordCount (WC)"] == ("micro", "3.2, 10, 20 (GB)")
        assert rows["TeraSort (TS)"] == ("micro", "3.2, 6, 10 (GB)")
        assert rows["PageRank (PR)"] == (
            "websearch", "0.5, 1, 1.6 (Million Pages)"
        )
        assert rows["KMeans (KM)"] == ("ML", "20, 30, 40 (Million Points)")


class TestWorkloadStructure:
    @pytest.mark.parametrize("code", ["WC", "TS", "PR", "KM"])
    def test_datasets_grow(self, code):
        ds = get_workload(code).datasets()
        assert ds["D1"].input_mb < ds["D2"].input_mb < ds["D3"].input_mb

    @pytest.mark.parametrize("code", ["WC", "TS", "PR", "KM"])
    def test_first_stage_reads_hdfs(self, code):
        w = get_workload(code)
        stages = w.stages(w.dataset("D1"))
        assert stages[0].reads_hdfs

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_workload("WC").dataset("D9")

    def test_wordcount_shuffle_is_small(self):
        w = WordCount()
        stages = w.stages(w.dataset("D1"))
        assert stages[0].shuffle_write_mb < 0.1 * stages[0].input_mb

    def test_terasort_shuffles_everything(self):
        w = TeraSort()
        stages = w.stages(w.dataset("D1"))
        assert stages[0].shuffle_write_mb == stages[0].input_mb
        assert stages[-1].hdfs_write_mb == stages[0].input_mb

    def test_terasort_stages_are_sorts(self):
        w = TeraSort()
        assert all(s.sortish for s in w.stages(w.dataset("D1")))

    def test_pagerank_is_iterative_with_cache(self):
        w = PageRank()
        stages = w.stages(w.dataset("D1"))
        iters = [s for s in stages if s.name.startswith("rank-iter")]
        assert len(iters) == PageRank.ITERATIONS
        assert all(s.cache_demand_mb > 0 for s in iters)

    def test_kmeans_is_memory_hungry(self):
        w = KMeans()
        stages = w.stages(w.dataset("D1"))
        assigns = [s for s in stages if s.name.startswith("assign")]
        assert len(assigns) == KMeans.ITERATIONS
        # cache demand exceeds the on-disk input (deserialized expansion)
        assert assigns[0].cache_demand_mb > w.dataset("D1").input_mb
        # rigid vectors: the highest OOM sensitivity of all workloads
        assert assigns[0].rigid_memory_fraction >= 0.5
        assert assigns[0].inherits_input_partitions

    def test_kmeans_broadcasts_centroids(self):
        w = KMeans()
        assigns = [
            s for s in w.stages(w.dataset("D1"))
            if s.name.startswith("assign")
        ]
        assert all(s.broadcast_mb > 0 for s in assigns)
