"""Branch-level behaviour tests for the execution engine's cost channels."""

import numpy as np
import pytest

from repro.cluster.hardware import CLUSTER_A
from repro.sim.engine import SparkSimulator
from repro.workloads.base import DatasetSpec, StageSpec, Workload
from repro.workloads.registry import get_workload


def sim_for(workload, seed=0):
    return SparkSimulator(
        workload, "D1", CLUSTER_A, np.random.default_rng(seed),
        noise_sigma=0.0,
    )


def provisioned(space, **overrides):
    cfg = space.defaults() | {
        "spark.executor.cores": 4,
        "spark.executor.memory": 3072,
        "spark.executor.memoryOverhead": 512,
        "spark.executor.instances": 9,
        "spark.default.parallelism": 96,
        "yarn.nodemanager.resource.memory-mb": 14336,
        "yarn.nodemanager.resource.cpu-vcores": 16,
        "yarn.scheduler.maximum-allocation-mb": 14336,
        "yarn.scheduler.maximum-allocation-vcores": 16,
    }
    cfg.update(overrides)
    return cfg


class OneStage(Workload):
    """Synthetic single-stage workload for isolating cost channels."""

    code = "SYN"
    name = "Synthetic"
    category = "test"

    def __init__(self, **stage_kwargs):
        defaults = dict(
            name="only", input_mb=2048.0, reads_hdfs=True, cpu_per_mb=0.02
        )
        defaults.update(stage_kwargs)
        self._stage = StageSpec(**defaults)

    def datasets(self):
        return {"D1": DatasetSpec("D1", 2.0, "GB", input_mb=2048.0)}

    def stages(self, dataset):
        return [self._stage]


class TestSpeculation:
    def test_speculation_damps_straggler_tails(self, space):
        # Same seed => same exponential tail draw; speculation scales it.
        cfg_on = provisioned(space, **{"spark.speculation": True})
        cfg_off = provisioned(space, **{"spark.speculation": False})
        tails_on, tails_off = [], []
        for seed in range(12):
            on = sim_for(get_workload("TS"), seed).evaluate(cfg_on)
            off = sim_for(get_workload("TS"), seed).evaluate(cfg_off)
            tails_on.append(on.duration_s)
            tails_off.append(off.duration_s)
        # on average speculation trims tails more than its 4% CPU tax
        assert np.mean(tails_on) < np.mean(tails_off) * 1.02


class TestLocality:
    def test_locality_wait_costs_when_executors_miss_nodes(self, space):
        # one executor on one node: 2/3 of HDFS data remote
        base = provisioned(space, **{"spark.executor.instances": 1})
        slow = sim_for(get_workload("WC")).evaluate(
            dict(base, **{"spark.locality.wait": 10.0})
        )
        fast = sim_for(get_workload("WC")).evaluate(
            dict(base, **{"spark.locality.wait": 0.0})
        )
        assert slow.duration_s > fast.duration_s

    def test_locality_wait_free_with_full_coverage(self, space):
        base = provisioned(space)  # 9 executors cover all 3 nodes
        a = sim_for(get_workload("WC")).evaluate(
            dict(base, **{"spark.locality.wait": 10.0})
        )
        b = sim_for(get_workload("WC")).evaluate(
            dict(base, **{"spark.locality.wait": 0.0})
        )
        assert a.duration_s == pytest.approx(b.duration_s, rel=0.02)


class TestBypassMerge:
    def test_bypass_trades_cpu_for_disk_streams(self, space):
        # sortish stage with few reducers: bypass active when the
        # threshold exceeds the reducer count
        w = OneStage(
            reads_hdfs=False, shuffle_write_mb=2048.0, sortish=True,
            cpu_per_mb=0.05,
        )
        cfg_bypass = provisioned(
            space,
            **{
                "spark.default.parallelism": 60,
                "spark.shuffle.sort.bypassMergeThreshold": 800,
            },
        )
        cfg_sort = provisioned(
            space,
            **{
                "spark.default.parallelism": 60,
                "spark.shuffle.sort.bypassMergeThreshold": 50,
            },
        )
        r_bypass = sim_for(w).evaluate(cfg_bypass)
        r_sort = sim_for(w).evaluate(cfg_sort)
        # bypass saves sort CPU...
        assert r_bypass.stages[0].cpu_seconds < r_sort.stages[0].cpu_seconds
        # ...but writes through more concurrent streams (slower disk)
        assert r_bypass.stages[0].disk_seconds > r_sort.stages[0].disk_seconds


class TestBroadcast:
    def test_broadcast_adds_network_time(self, space):
        with_bc = OneStage(broadcast_mb=64.0)
        without_bc = OneStage(broadcast_mb=0.0)
        cfg = provisioned(space)
        r_with = sim_for(with_bc).evaluate(cfg)
        r_without = sim_for(without_bc).evaluate(cfg)
        assert (
            r_with.stages[0].network_seconds
            > r_without.stages[0].network_seconds
        )


class TestCompressionBranches:
    def test_disabling_shuffle_compress_moves_bytes(self, space):
        w = get_workload("TS")
        on = sim_for(w).evaluate(
            provisioned(space, **{"spark.shuffle.compress": True})
        )
        off = sim_for(w).evaluate(
            provisioned(space, **{"spark.shuffle.compress": False})
        )
        # uncompressed shuffles move ~2x the bytes on wire and disk
        assert (
            off.stages[1].network_seconds > on.stages[1].network_seconds
        )

    def test_spill_compress_reduces_spill_io(self, space):
        # force spills with tiny memory and low parallelism
        cfg_base = provisioned(
            space,
            **{
                "spark.executor.memory": 1024,
                "spark.default.parallelism": 8,
            },
        )
        w = get_workload("TS")
        on = sim_for(w).evaluate(
            dict(cfg_base, **{"spark.shuffle.spill.compress": True})
        )
        off = sim_for(w).evaluate(
            dict(cfg_base, **{"spark.shuffle.spill.compress": False})
        )
        assert on.stages[1].spill_fraction > 0  # spills actually happen
        assert on.stages[1].disk_seconds < off.stages[1].disk_seconds


class TestOversubscription:
    def test_oversubscribed_slots_capped_at_physical_cores(self, space):
        cfg = provisioned(
            space,
            **{
                "spark.executor.cores": 8,
                "spark.executor.instances": 12,
                "spark.executor.memory": 1024,
                "spark.executor.memoryOverhead": 384,
            },
        )
        r = sim_for(get_workload("WC")).evaluate(cfg)
        assert r.success
        # 12 x 8 = 96 requested threads; waves reflect <= 48 real slots
        stage = r.stages[0]
        min_waves = int(np.ceil(stage.n_tasks / CLUSTER_A.total_cores))
        assert stage.waves >= min_waves


class TestVmemRatio:
    def test_aggressive_vmem_ratio_slows_java_jobs(self, space):
        w = get_workload("PR")
        cfg = provisioned(space, **{"spark.serializer": "java"})
        safe = sim_for(w).evaluate(
            dict(cfg, **{"yarn.nodemanager.vmem-pmem-ratio": 4.0})
        )
        aggressive = sim_for(w).evaluate(
            dict(cfg, **{"yarn.nodemanager.vmem-pmem-ratio": 1.0})
        )
        assert aggressive.duration_s > safe.duration_s * 1.1
