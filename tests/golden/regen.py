"""Regenerate the simulator golden file.

Usage::

    PYTHONPATH=src python tests/golden/regen.py

Pins the *noise-free* default-configuration execution time of every
paper workload at dataset D1 on both clusters.  These are pure functions
of the simulator's physics; any edit that moves them must (a) be
intentional, (b) regenerate this file, and (c) bump
``repro.experiments.engine.CACHE_VERSION`` so stale on-disk task results
are invalidated alongside.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).parent / "sim_defaults.json"

WORKLOADS = ("WC", "TS", "PR", "KM")
CLUSTERS = ("cluster-a", "cluster-b")
DATASET = "D1"


def compute() -> dict[str, float]:
    from repro.cluster.hardware import CLUSTER_A, CLUSTER_B
    from repro.factory import make_env

    spec = {"cluster-a": CLUSTER_A, "cluster-b": CLUSTER_B}
    out = {}
    for cluster in CLUSTERS:
        for workload in WORKLOADS:
            env = make_env(workload, DATASET, cluster=spec[cluster],
                           seed=0, noise_sigma=0.0)
            out[f"{workload}-{DATASET}@{cluster}"] = env.default_duration
    return out


def main() -> None:
    values = compute()
    GOLDEN_PATH.write_text(json.dumps(values, indent=2, sort_keys=True)
                           + "\n")
    print(f"wrote {GOLDEN_PATH}:")
    for key, value in sorted(values.items()):
        print(f"  {key:<18} {value:10.4f}s")


if __name__ == "__main__":
    main()
