"""Regenerate the golden files.

Usage::

    PYTHONPATH=src python tests/golden/regen.py

Two golden artifacts live here:

* ``sim_defaults.json`` — the *noise-free* default-configuration
  execution time of every paper workload at dataset D1 on both
  clusters.  Pure functions of the simulator's physics.
* ``population_trace.json`` — a seeded 3-member population tuning
  trace (``PopulationTuner``, 3 lockstep steps).  Pins the combined
  actor/critic math, Twin-Q screening, RNG stream plan, and simulator
  stack end to end; because the population is bit-identical to
  sequential serving, the same trace also pins ``OnlineTuner.tune``.

Any edit that moves either file must (a) be intentional, (b) regenerate
this file, and (c) bump ``repro.experiments.engine.CACHE_VERSION`` so
stale on-disk task results are invalidated alongside.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).parent / "sim_defaults.json"
POPULATION_TRACE_PATH = Path(__file__).parent / "population_trace.json"

WORKLOADS = ("WC", "TS", "PR", "KM")
CLUSTERS = ("cluster-a", "cluster-b")
DATASET = "D1"

TRACE_BASE_SEED = 7
TRACE_MEMBERS = 3
TRACE_STEPS = 3


def compute() -> dict[str, float]:
    from repro.cluster.hardware import CLUSTER_A, CLUSTER_B
    from repro.factory import make_env

    spec = {"cluster-a": CLUSTER_A, "cluster-b": CLUSTER_B}
    out = {}
    for cluster in CLUSTERS:
        for workload in WORKLOADS:
            env = make_env(workload, DATASET, cluster=spec[cluster],
                           seed=0, noise_sigma=0.0)
            out[f"{workload}-{DATASET}@{cluster}"] = env.default_duration
    return out


def compute_population_trace() -> list[list[dict]]:
    """One seeded population run, serialized step by step.

    ``json`` round-trips Python floats exactly (repr-precision), so the
    comparison in ``tests/test_population_golden.py`` is bitwise.
    """
    from repro.core.deepcat import DeepCAT
    from repro.core.population import PopulationTuner, population_seed_plan
    from repro.factory import make_env

    seeds = population_seed_plan(TRACE_BASE_SEED, TRACE_MEMBERS)
    envs = [make_env("WC", DATASET, seed=1000 + s) for s in seeds]
    tuners = [
        DeepCAT.from_env(env, seed=s, buffer_capacity=256)
        for s, env in zip(seeds, envs)
    ]
    sessions = PopulationTuner.from_deepcat(tuners, envs).tune(
        steps=TRACE_STEPS
    )
    return [
        [
            {
                "step": s.step,
                "duration_s": s.duration_s,
                "reward": s.reward,
                "success": s.success,
                "action_sum": float(s.action.sum()),
                "twinq_iterations": s.twinq_iterations,
                "twinq_accepted": s.twinq_accepted,
            }
            for s in session.steps
        ]
        for session in sessions
    ]


def main() -> None:
    values = compute()
    GOLDEN_PATH.write_text(json.dumps(values, indent=2, sort_keys=True)
                           + "\n")
    print(f"wrote {GOLDEN_PATH}:")
    for key, value in sorted(values.items()):
        print(f"  {key:<18} {value:10.4f}s")

    trace = compute_population_trace()
    POPULATION_TRACE_PATH.write_text(
        json.dumps(trace, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {POPULATION_TRACE_PATH}:")
    for i, steps in enumerate(trace):
        line = ", ".join(f"{s['duration_s']:.1f}s" for s in steps)
        print(f"  member {i}: {line}")


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))
    main()
