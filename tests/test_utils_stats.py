"""Tests for repro.utils.stats."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import (
    RunningStats,
    empirical_cdf,
    geometric_mean,
    lognormal_noise_factor,
    saturating,
)


class TestRunningStats:
    def test_empty_is_nan(self):
        s = RunningStats()
        assert np.isnan(s.mean) and np.isnan(s.std)

    def test_single_value(self):
        s = RunningStats()
        s.push(3.0)
        assert s.mean == 3.0 and s.min == 3.0 and s.max == 3.0
        assert np.isnan(s.variance)

    def test_matches_numpy(self):
        xs = np.random.default_rng(0).normal(5, 2, 100)
        s = RunningStats()
        s.extend(xs)
        assert s.count == 100
        assert s.mean == pytest.approx(xs.mean())
        assert s.variance == pytest.approx(xs.var(ddof=1))
        assert s.std == pytest.approx(xs.std(ddof=1))
        assert s.min == xs.min() and s.max == xs.max()

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_welford_matches_numpy_property(self, xs):
        s = RunningStats()
        s.extend(xs)
        assert s.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(
            np.var(xs, ddof=1), rel=1e-6, abs=1e-6
        )


class TestEmpiricalCdf:
    def test_empty(self):
        xs, ps = empirical_cdf([])
        assert xs.size == 0 and ps.size == 0

    def test_sorted_and_probabilities(self):
        xs, ps = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(xs, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(ps, [1 / 3, 2 / 3, 1.0])

    def test_last_prob_is_one(self):
        _, ps = empirical_cdf(np.random.default_rng(0).random(17))
        assert ps[-1] == pytest.approx(1.0)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=40))
    def test_monotone(self, xs):
        vals, ps = empirical_cdf(xs)
        assert np.all(np.diff(vals) >= 0)
        assert np.all(np.diff(ps) > 0)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_le_arithmetic_mean(self):
        xs = [1.0, 2.0, 10.0]
        assert geometric_mean(xs) <= np.mean(xs)


class TestLognormalNoise:
    def test_zero_sigma_is_identity(self, rng):
        assert lognormal_noise_factor(rng, 0.0) == 1.0

    def test_positive(self, rng):
        for _ in range(50):
            assert lognormal_noise_factor(rng, 0.3) > 0.0

    def test_median_near_one(self):
        rng = np.random.default_rng(0)
        xs = [lognormal_noise_factor(rng, 0.1) for _ in range(4000)]
        assert np.median(xs) == pytest.approx(1.0, abs=0.01)

    def test_negative_sigma_raises(self, rng):
        with pytest.raises(ValueError):
            lognormal_noise_factor(rng, -0.1)


class TestSaturating:
    def test_small_x_linear(self):
        assert saturating(1e-6, 100.0) == pytest.approx(1e-6, rel=1e-3)

    def test_asymptote(self):
        assert saturating(1e9, 100.0) == pytest.approx(100.0, rel=1e-6)

    def test_monotone(self):
        ys = [saturating(x, 50.0) for x in np.linspace(0, 500, 50)]
        assert np.all(np.diff(ys) >= 0)

    def test_never_exceeds_capacity(self):
        for x in [0.1, 10, 1000, 1e7]:
            assert saturating(x, 42.0) < 42.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            saturating(-1.0, 10.0)
        with pytest.raises(ValueError):
            saturating(1.0, 0.0)
