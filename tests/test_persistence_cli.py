"""Tests for model persistence and the CLI."""

import numpy as np
import pytest

from repro.agents.base import AgentHyperParams
from repro.baselines.cdbtune import CDBTune
from repro.cli import build_parser, main
from repro.core.deepcat import DeepCAT
from repro.core.persistence import load_tuner, save_tuner
from repro.factory import make_env

FAST_HP = AgentHyperParams(batch_size=16, warmup_steps=8, hidden=(16, 16))


class TestPersistence:
    def _trained_deepcat(self, seed=0):
        env = make_env("TS", "D1", seed=seed)
        t = DeepCAT.from_env(env, seed=seed, hp=FAST_HP, beta=0.55,
                             q_threshold=0.37)
        t.train_offline(env, 60)
        return t

    def test_deepcat_roundtrip_weights(self, tmp_path):
        t = self._trained_deepcat()
        path = tmp_path / "model.npz"
        save_tuner(t, path)
        loaded = load_tuner(path)
        state = np.full(t.agent.state_dim, 0.3)
        np.testing.assert_allclose(
            t.agent.act(state, explore=False),
            loaded.agent.act(state, explore=False),
        )
        q1 = t.agent.min_q(state, np.full(t.agent.action_dim, 0.5))
        q2 = loaded.agent.min_q(state, np.full(t.agent.action_dim, 0.5))
        assert q1 == pytest.approx(q2)

    def test_deepcat_roundtrip_metadata(self, tmp_path):
        t = self._trained_deepcat()
        path = tmp_path / "model.npz"
        save_tuner(t, path)
        loaded = load_tuner(path)
        assert loaded.beta == 0.55
        assert loaded.q_threshold == 0.37
        assert loaded.hp == t.hp
        assert loaded.use_rdper == t.use_rdper

    def test_loaded_model_tunes(self, tmp_path):
        t = self._trained_deepcat()
        path = tmp_path / "model.npz"
        save_tuner(t, path)
        loaded = load_tuner(path, seed=9)
        s = loaded.tune_online(make_env("TS", "D1", seed=42), steps=2)
        assert s.n_steps == 2

    def test_cdbtune_roundtrip(self, tmp_path):
        env = make_env("WC", "D1", seed=1)
        t = CDBTune.from_env(env, seed=1, hp=FAST_HP)
        t.train_offline(env, 60)
        path = tmp_path / "cdb.npz"
        save_tuner(t, path)
        loaded = load_tuner(path)
        assert isinstance(loaded, CDBTune)
        state = np.full(t.agent.state_dim, 0.2)
        np.testing.assert_allclose(
            t.agent.act(state, explore=False),
            loaded.agent.act(state, explore=False),
        )

    def test_rejects_unknown_type(self, tmp_path):
        with pytest.raises(TypeError):
            save_tuner(object(), tmp_path / "x.npz")


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(
            ["train", "--model", "m.npz", "--iterations", "10"]
        )
        assert args.command == "train" and args.iterations == 10

    def test_evaluate_default(self, capsys):
        rc = main(["evaluate", "--workload", "WC", "--dataset", "D1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "WC-D1" in out and "OK" in out

    def test_evaluate_with_overrides(self, capsys):
        rc = main(
            [
                "evaluate", "--workload", "TS",
                "--set", "spark.executor.instances=8",
                "--set", "spark.serializer=kryo",
                "--set", "spark.shuffle.compress=true",
            ]
        )
        assert rc == 0
        assert "TS-D1" in capsys.readouterr().out

    def test_evaluate_bad_override(self, capsys):
        assert main(["evaluate", "--set", "bogus.key=1"]) == 2
        assert main(["evaluate", "--set", "noequals"]) == 2

    def test_train_then_tune(self, tmp_path, capsys):
        model = str(tmp_path / "m.npz")
        rc = main(
            [
                "train", "--workload", "WC", "--iterations", "80",
                "--model", model,
            ]
        )
        assert rc == 0
        rc = main(
            ["tune", "--workload", "WC", "--model", model, "--steps", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "best" in out

    def test_cluster_b_evaluate(self, capsys):
        rc = main(
            ["evaluate", "--workload", "PR", "--cluster", "cluster-b"]
        )
        assert rc == 0
        assert "cluster-b" in capsys.readouterr().out


class TestCorpusCLI:
    def test_corpus_generation(self, tmp_path, capsys):
        out = str(tmp_path / "c.npz")
        rc = main(
            [
                "corpus", "--workload", "WC", "--samples", "20",
                "--sampler", "lhs", "--output", out,
            ]
        )
        assert rc == 0
        from repro.data import load_corpus

        corpus = load_corpus(out)
        assert len(corpus) == 20
        assert corpus.workload_id == "WC-D1"
