"""Golden-file tests pinning the simulator's default execution times.

The engine's on-disk cache trusts that a task result is a pure function
of (parameters, code salt).  The code-salt half of that contract is
human-maintained: whoever changes the simulator's physics must bump
``CACHE_VERSION``.  These tests make such drift loud — if a physics edit
moves the default-configuration duration of any workload, the suite
fails until the golden file is regenerated (``tests/golden/regen.py``)
and the salt reviewed.  See docs/experiments.md.
"""

import json
from pathlib import Path

import pytest

from repro.cluster.hardware import CLUSTER_A, CLUSTER_B
from repro.factory import make_env

GOLDEN_PATH = Path(__file__).parent / "golden" / "sim_defaults.json"

pytestmark = pytest.mark.golden

_SPECS = {"cluster-a": CLUSTER_A, "cluster-b": CLUSTER_B}


def _golden() -> dict[str, float]:
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_file_covers_the_full_matrix():
    golden = _golden()
    expected = {
        f"{w}-D1@{c}"
        for w in ("WC", "TS", "PR", "KM")
        for c in ("cluster-a", "cluster-b")
    }
    assert set(golden) == expected


@pytest.mark.parametrize("key", sorted(_golden()))
def test_default_duration_matches_golden(key):
    pair, cluster = key.split("@")
    workload, dataset = pair.split("-")
    env = make_env(workload, dataset, cluster=_SPECS[cluster], seed=0,
                   noise_sigma=0.0)
    assert env.default_duration == pytest.approx(
        _golden()[key], rel=1e-9, abs=0.0
    ), (
        f"simulator default duration for {key} drifted; if intentional, "
        "regenerate tests/golden/sim_defaults.json via tests/golden/"
        "regen.py AND bump repro.experiments.engine.CACHE_VERSION"
    )


def test_default_duration_reproducible_per_seed():
    """Same seed, same duration — the property the cache relies on.

    (The value is seed-*dependent* — straggler draws consume the env RNG
    even at ``noise_sigma=0`` — which is why the golden file pins
    ``seed=0`` explicitly.)
    """
    a = make_env("WC", "D1", seed=0, noise_sigma=0.0)
    b = make_env("WC", "D1", seed=0, noise_sigma=0.0)
    assert a.default_duration == b.default_duration
