"""Tests for corpus generation/persistence."""

import numpy as np
import pytest

from repro.baselines.ottertune.tuner import OtterTune
from repro.data import Corpus, generate_corpus, load_corpus, save_corpus
from repro.factory import make_env
from repro.sim.faults import FAILURE_PERF_FACTOR


@pytest.fixture
def corpus():
    env = make_env("TS", "D1", seed=0)
    return generate_corpus(
        env, "TS-D1", 25, np.random.default_rng(1), sampler="uniform"
    )


class TestGenerateCorpus:
    def test_shapes(self, corpus):
        assert len(corpus) == 25
        assert corpus.configs.shape == (25, 32)
        assert corpus.metrics.shape == (25, 9)
        assert corpus.workload_id == "TS-D1"

    def test_failures_penalized(self):
        env = make_env("TS", "D1", seed=0)
        c = generate_corpus(env, "TS-D1", 40, np.random.default_rng(2))
        if c.failure_rate > 0:
            failed = c.durations[~c.success]
            assert np.all(
                failed == FAILURE_PERF_FACTOR * env.default_duration
            )

    def test_lhs_sampler_covers_space(self):
        env = make_env("WC", "D1", seed=0)
        c = generate_corpus(
            env, "WC-D1", 16, np.random.default_rng(0), sampler="lhs"
        )
        # LHS: each dimension has one sample per 1/16 stratum
        for j in range(c.configs.shape[1]):
            bins = np.floor(c.configs[:, j] * 16).astype(int)
            assert len(set(bins.tolist())) >= 14  # int decode may merge

    def test_unknown_sampler(self):
        env = make_env("TS", "D1", seed=0)
        with pytest.raises(ValueError):
            generate_corpus(env, "x", 5, np.random.default_rng(0),
                            sampler="sobol")

    def test_invalid_count(self):
        env = make_env("TS", "D1", seed=0)
        with pytest.raises(ValueError):
            generate_corpus(env, "x", 0, np.random.default_rng(0))

    def test_best_duration(self, corpus):
        assert corpus.best_duration_s == corpus.durations[corpus.success].min()


class TestCorpusPersistence:
    def test_roundtrip(self, corpus, tmp_path):
        path = tmp_path / "corpus.npz"
        save_corpus(corpus, path)
        loaded = load_corpus(path)
        assert loaded.workload_id == corpus.workload_id
        np.testing.assert_allclose(loaded.configs, corpus.configs)
        np.testing.assert_allclose(loaded.durations, corpus.durations)
        np.testing.assert_array_equal(loaded.success, corpus.success)

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            Corpus(
                workload_id="x",
                configs=np.zeros((3, 2)),
                metrics=np.zeros((2, 2)),
                durations=np.zeros(3),
                success=np.ones(3, dtype=bool),
            )


class TestFeedOtterTune:
    def test_feeds_repository(self, corpus):
        tuner = OtterTune(action_dim=32, seed=0)
        corpus.feed_ottertune(tuner)
        assert "TS-D1" in tuner.repository
        assert len(tuner.repository.get("TS-D1")) == len(corpus)

    def test_fed_tuner_can_tune(self, corpus):
        tuner = OtterTune(action_dim=32, seed=0, n_candidates=80,
                          max_train_points=60)
        corpus.feed_ottertune(tuner)
        env = make_env("TS", "D1", seed=5)
        s = tuner.tune_online(env, steps=2)
        assert s.n_steps == 2
