"""Heartbeat writer/reader, the watch CLI, and monotonic manifest time."""

import json
import os
import time

import pytest

from repro.cli import main
from repro.telemetry import (
    HeartbeatWriter,
    default_stale_after,
    finalize_heartbeat,
    heartbeat_status,
    pid_alive,
    read_heartbeat,
    render_heartbeat,
)
from repro.telemetry.manifest import RunManifest
from repro.utils.logging import TeeLogger, TuningLogger


class TestHeartbeatWriter:
    def test_counts_only_step_events(self, tmp_path):
        hb = tmp_path / "hb.json"
        w = HeartbeatWriter(hb, total_steps=4)
        w.event("config", seed=0)  # not a step kind
        assert not hb.exists()
        w.event("offline-step", iteration=0, loss=0.5)
        w.event("offline-step", iteration=1, loss=0.4)
        doc = read_heartbeat(hb)
        assert doc["step"] == 2
        assert doc["total_steps"] == 4
        assert doc["phase"] == "offline-train"
        assert doc["elapsed_s"] >= 0.0
        assert doc["eta_s"] is not None
        assert doc["last_event"]["loss"] == 0.4

    def test_online_step_switches_phase(self, tmp_path):
        hb = tmp_path / "hb.json"
        w = HeartbeatWriter(hb)
        w.event("online-step", step=1)
        doc = read_heartbeat(hb)
        assert doc["phase"] == "online-tune"
        assert doc["eta_s"] is None  # unknown total => no ETA

    def test_last_event_keeps_scalars_only(self, tmp_path):
        hb = tmp_path / "hb.json"
        HeartbeatWriter(hb).event(
            "offline-step", loss=1.0, vec=[1, 2], note="x", flag=True
        )
        last = read_heartbeat(hb)["last_event"]
        assert last == {"loss": 1.0, "note": "x", "flag": True}

    def test_no_tmp_file_left_behind(self, tmp_path):
        hb = tmp_path / "hb.json"
        HeartbeatWriter(hb).event("offline-step")
        assert [p.name for p in tmp_path.iterdir()] == ["hb.json"]

    def test_creates_parent_directory(self, tmp_path):
        hb = tmp_path / "deep" / "nested" / "hb.json"
        HeartbeatWriter(hb).event("offline-step")
        assert hb.is_file()


class TestHeartbeatEnrichment:
    def test_intervention_and_alert_events_do_not_write(self, tmp_path):
        hb = tmp_path / "hb.json"
        w = HeartbeatWriter(hb, total_steps=4)
        w.event("intervention", intervention="retry", step=0)
        w.event("alert", name="reward-plateau", severity="warning", step=0)
        assert not hb.exists()  # counters mutate in memory only

    def test_step_event_flushes_resilience_and_alerts(self, tmp_path):
        hb = tmp_path / "hb.json"
        w = HeartbeatWriter(hb, total_steps=4)
        w.event("intervention", intervention="retry")
        w.event("intervention", intervention="retry")
        w.event("intervention", intervention="watchdog-abort")
        w.event("intervention", intervention="fallback")
        w.event("intervention", intervention="state-repair")
        w.event("alert", name="critic-divergence", severity="critical",
                step=1)
        w.event("online-step", step=1, reward=0.4, success=True,
                duration_s=55.0)
        doc = read_heartbeat(hb)
        assert doc["resilience"] == {
            "retries": 2, "watchdog_aborts": 1,
            "fallbacks": 1, "state_repairs": 1,
        }
        assert doc["alerts"]["total"] == 1
        assert doc["alerts"]["active"][-1]["name"] == "critic-divergence"
        assert doc["best_reward"] == 0.4
        assert doc["best_duration_s"] == 55.0

    def test_best_fields_track_extremes(self, tmp_path):
        hb = tmp_path / "hb.json"
        w = HeartbeatWriter(hb)
        w.event("online-step", step=1, reward=0.2, success=True,
                duration_s=60.0)
        w.event("online-step", step=2, reward=0.5, success=True,
                duration_s=48.0)
        w.event("online-step", step=3, reward=0.1, success=False,
                duration_s=10.0)  # failed step must not win best duration
        doc = read_heartbeat(hb)
        assert doc["best_reward"] == 0.5
        assert doc["best_duration_s"] == 48.0

    def test_alert_ring_is_bounded(self, tmp_path):
        hb = tmp_path / "hb.json"
        w = HeartbeatWriter(hb)
        for i in range(9):
            w.event("alert", name=f"a{i}", severity="info", step=i)
        w.event("online-step", step=1)
        doc = read_heartbeat(hb)
        assert doc["alerts"]["total"] == 9
        assert len(doc["alerts"]["active"]) == 5
        assert doc["alerts"]["active"][0]["name"] == "a4"

    def test_render_shows_resilience_and_alert_extras(self, tmp_path):
        hb = tmp_path / "hb.json"
        w = HeartbeatWriter(hb, total_steps=3)
        w.event("intervention", intervention="retry")
        w.event("alert", name="rdper-beta-drift", severity="warning",
                step=1)
        w.event("online-step", step=1, reward=0.1, success=True)
        line = render_heartbeat(read_heartbeat(hb))
        assert "retries 1" in line
        assert "alerts 1" in line
        assert "rdper-beta-drift" in line

    def test_population_round_stamps_round_time(self, tmp_path):
        hb = tmp_path / "hb.json"
        w = HeartbeatWriter(hb, total_steps=4)
        w.event("population-round", step=0, round_s=12.5, shards=4,
                members=64)
        assert not hb.exists()  # not a step kind — accumulates only
        w.event("online-step", step=1)
        doc = read_heartbeat(hb)
        assert doc["round_s"] == 12.5
        assert doc["step"] == 1  # rounds don't inflate the step count

    def test_round_time_tracks_latest_round(self, tmp_path):
        hb = tmp_path / "hb.json"
        w = HeartbeatWriter(hb)
        w.event("population-round", step=0, round_s=8.0)
        w.event("population-round", step=1, round_s=3.0)
        w.event("online-step", step=2)
        assert read_heartbeat(hb)["round_s"] == 3.0


class TestHeartbeatStatus:
    def _doc(self, **over):
        doc = {
            "phase": "online-tune", "step": 3, "total_steps": 10,
            "elapsed_s": 30.0, "eta_s": 70.0,
            "updated_at": time.time(), "pid": 1,
        }
        doc.update(over)
        return doc

    def test_default_stale_after_is_three_step_intervals(self):
        assert default_stale_after(self._doc()) == 30.0  # 3 * (30/3)
        # Floor of 10s for fast steps / step zero.
        assert default_stale_after(self._doc(step=0)) == 10.0
        assert default_stale_after(
            self._doc(step=30, elapsed_s=3.0)
        ) == 10.0

    def test_round_time_wins_over_step_mean(self):
        # A sharded population lands N member steps per barrier round, so
        # the per-step mean (here 10s) under-estimates the real update
        # cadence; the stamped slowest-shard round time must win.
        doc = self._doc(round_s=40.0)
        assert default_stale_after(doc) == 120.0
        assert heartbeat_status(doc, age_s=100.0) == "running"
        assert heartbeat_status(doc, age_s=130.0) == "stalled"
        # Floor still applies, and a zero round stamp falls back.
        assert default_stale_after(self._doc(round_s=0.5)) == 10.0
        assert default_stale_after(self._doc(round_s=0.0)) == 30.0

    def test_status_transitions(self):
        doc = self._doc()
        assert heartbeat_status(doc, age_s=1.0) == "running"
        assert heartbeat_status(doc, age_s=31.0) == "stalled"
        assert heartbeat_status(doc, age_s=5.0, stale_after=2.0) == "stalled"
        assert heartbeat_status(
            self._doc(step=10), age_s=9999.0
        ) == "done"  # finished runs never stall

    def test_dead_pid_means_crashed_not_stalled(self):
        doc = self._doc()
        assert heartbeat_status(doc, age_s=1.0, alive=False) == "crashed"
        assert heartbeat_status(doc, age_s=9999.0, alive=False) == "crashed"
        # Liveness unknown: fall back to pure mtime staleness.
        assert heartbeat_status(doc, age_s=1.0, alive=None) == "running"
        assert heartbeat_status(doc, age_s=1.0, alive=True) == "running"

    def test_finished_marker_beats_dead_pid(self):
        # A run that stopped on purpose (budget, Ctrl-C + checkpoint) has
        # a gone pid too — the terminal marker is what separates it.
        doc = self._doc(finished="interrupted")
        assert heartbeat_status(doc, age_s=9999.0, alive=False) == "done"

    def test_pid_alive(self):
        assert pid_alive(os.getpid()) is True
        # Fresh child that exited and was reaped: the pid is gone.
        pid = os.fork()
        if pid == 0:
            os._exit(0)  # pragma: no cover - child
        os.waitpid(pid, 0)
        assert pid_alive(pid) is False
        assert pid_alive(None) is None
        assert pid_alive(-1) is None
        assert pid_alive("123") is None
        assert pid_alive(True) is None

    def test_finalize_heartbeat_stamps_marker(self, tmp_path):
        hb = tmp_path / "hb.json"
        HeartbeatWriter(hb, total_steps=10).event("online-step", step=1)
        finalize_heartbeat(hb, "interrupted")
        doc = read_heartbeat(hb)
        assert doc["finished"] == "interrupted"
        assert heartbeat_status(doc, age_s=9999.0, alive=False) == "done"

    def test_finalize_missing_heartbeat_is_a_noop(self, tmp_path):
        finalize_heartbeat(tmp_path / "none.json")  # must not raise
        assert not (tmp_path / "none.json").exists()


class TestHeartbeatReader:
    def test_read_errors_are_valueerror(self, tmp_path):
        with pytest.raises(ValueError, match="no heartbeat file"):
            read_heartbeat(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{torn", encoding="utf-8")
        with pytest.raises(ValueError, match="not a heartbeat JSON"):
            read_heartbeat(bad)
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"kind": "config"}), encoding="utf-8")
        with pytest.raises(ValueError, match="not a heartbeat document"):
            read_heartbeat(other)

    def test_render_line(self):
        line = render_heartbeat({
            "phase": "offline-train",
            "step": 30,
            "total_steps": 60,
            "elapsed_s": 12.0,
            "eta_s": 12.0,
            "updated_at": time.time(),
            "pid": 123,
        })
        assert "offline-train" in line
        assert "30/60" in line
        assert "12.0s" in line
        assert "(stale)" not in line

    def test_render_marks_stale(self):
        line = render_heartbeat({
            "phase": "online-tune",
            "step": 1,
            "total_steps": None,
            "elapsed_s": 5000.0,
            "eta_s": None,
            "updated_at": time.time() - 3600,
            "pid": 1,
        })
        assert "(stale)" in line
        assert "1.4h" in line  # hour formatting
        assert "eta        ?" in line


class TestTeeLogger:
    def test_fans_out_and_skips_none(self, tmp_path):
        seen = []

        class Probe(TuningLogger):
            def event(self, kind, **fields):
                seen.append((kind, fields))

        hb = tmp_path / "hb.json"
        tee = TeeLogger(Probe(), None, HeartbeatWriter(hb))
        tee.event("offline-step", loss=0.1)
        tee.flush()
        tee.close()
        assert seen == [("offline-step", {"loss": 0.1})]
        assert read_heartbeat(hb)["step"] == 1


class TestWatchCLI:
    def test_watch_renders_once(self, tmp_path, capsys):
        hb = tmp_path / "hb.json"
        HeartbeatWriter(hb, total_steps=3).event("offline-step")
        assert main(["telemetry", "watch", str(hb)]) == 0
        assert "offline-train" in capsys.readouterr().out

    def test_watch_missing_file_exits_1(self, tmp_path, capsys):
        rc = main(["telemetry", "watch", str(tmp_path / "none.json")])
        assert rc == 1
        assert "watch:" in capsys.readouterr().err

    def test_watch_flags_stalled_heartbeat(self, tmp_path, capsys):
        hb = tmp_path / "hb.json"
        HeartbeatWriter(hb, total_steps=10).event("online-step", step=1)
        stale = time.time() - 120.0
        os.utime(hb, (stale, stale))
        rc = main([
            "telemetry", "watch", str(hb),
            "--stale-after", "60", "--fail-on-stall",
        ])
        assert rc == 3
        assert "STALLED" in capsys.readouterr().out

    def test_watch_fresh_heartbeat_passes_stall_gate(self, tmp_path, capsys):
        hb = tmp_path / "hb.json"
        HeartbeatWriter(hb, total_steps=10).event("online-step", step=1)
        rc = main([
            "telemetry", "watch", str(hb),
            "--stale-after", "3600", "--fail-on-stall",
        ])
        assert rc == 0
        assert "STALLED" not in capsys.readouterr().out

    def test_top_renders_fleet_table(self, tmp_path, capsys):
        for name in ("alpha", "beta"):
            hb = tmp_path / name / "hb.json"
            w = HeartbeatWriter(hb, total_steps=5)
            w.event("intervention", intervention="retry")
            w.event("online-step", step=2, reward=0.3, success=True,
                    duration_s=50.0)
        rc = main(["telemetry", "top", str(tmp_path), "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SESSION" in out
        assert "alpha" in out and "beta" in out

    def test_top_fail_on_stall(self, tmp_path, capsys):
        hb = tmp_path / "run" / "hb.json"
        HeartbeatWriter(hb, total_steps=10).event("online-step", step=1)
        stale = time.time() - 120.0
        os.utime(hb, (stale, stale))
        rc = main([
            "telemetry", "top", str(tmp_path), "--once",
            "--stale-after", "60", "--fail-on-stall",
        ])
        assert rc == 3
        assert "STALLED" in capsys.readouterr().out

    def _dead_pid(self):
        pid = os.fork()
        if pid == 0:
            os._exit(0)  # pragma: no cover - child
        os.waitpid(pid, 0)
        return pid

    def _mark_dead(self, hb):
        doc = read_heartbeat(hb)
        doc["pid"] = self._dead_pid()
        hb.write_text(json.dumps(doc), encoding="utf-8")

    def test_watch_flags_crashed_session(self, tmp_path, capsys):
        hb = tmp_path / "hb.json"
        HeartbeatWriter(hb, total_steps=10).event("online-step", step=1)
        self._mark_dead(hb)
        rc = main([
            "telemetry", "watch", str(hb),
            "--stale-after", "3600", "--fail-on-stall",
        ])
        assert rc == 3  # crashed fails the gate even while mtime is fresh
        assert "CRASHED" in capsys.readouterr().out

    def test_watch_finalized_session_is_done_not_crashed(
        self, tmp_path, capsys
    ):
        hb = tmp_path / "hb.json"
        HeartbeatWriter(hb, total_steps=10).event("online-step", step=1)
        self._mark_dead(hb)
        finalize_heartbeat(hb, "interrupted")
        rc = main([
            "telemetry", "watch", str(hb),
            "--stale-after", "3600", "--fail-on-stall",
        ])
        assert rc == 0
        assert "CRASHED" not in capsys.readouterr().out

    def test_top_distinguishes_crashed_from_stalled(self, tmp_path, capsys):
        crashed = tmp_path / "crashed" / "hb.json"
        HeartbeatWriter(crashed, total_steps=10).event("online-step", step=1)
        self._mark_dead(crashed)
        stalled = tmp_path / "stalled" / "hb.json"
        HeartbeatWriter(stalled, total_steps=10).event("online-step", step=1)
        doc = read_heartbeat(stalled)
        doc["pid"] = None  # liveness unknown => mtime staleness applies
        stalled.write_text(json.dumps(doc), encoding="utf-8")
        old = time.time() - 120.0
        os.utime(stalled, (old, old))
        rc = main([
            "telemetry", "top", str(tmp_path), "--once",
            "--stale-after", "60", "--fail-on-stall",
        ])
        assert rc == 3
        out = capsys.readouterr().out
        assert "CRASHED" in out
        assert "STALLED" in out
        assert "1 stalled" in out and "1 crashed" in out

    def test_heartbeat_flag_during_train(self, tmp_path, capsys):
        hb = tmp_path / "hb.json"
        rc = main([
            "train", "--workload", "TS", "--iterations", "12",
            "--model", str(tmp_path / "m.npz"), "--heartbeat", str(hb),
        ])
        assert rc == 0
        doc = read_heartbeat(hb)
        assert doc["step"] == 12
        assert doc["total_steps"] == 12
        assert doc["finished"] == "completed"  # stamped on clean exit
        capsys.readouterr()
        assert main(["telemetry", "watch", str(hb)]) == 0
        assert "12/12" in capsys.readouterr().out


class TestManifestDuration:
    def test_elapsed_uses_monotonic_clock(self):
        m = RunManifest(kind="t")
        # A wall-clock step backwards must not produce a negative elapsed.
        m.created_at = time.time() + 9999.0
        m.finish()
        assert m.elapsed_s >= 0.0
        assert m.elapsed_s < 60.0

    def test_finish_freezes_elapsed(self):
        m = RunManifest(kind="t")
        m.finish()
        frozen = m.elapsed_s
        time.sleep(0.01)
        assert m.elapsed_s == frozen

    def test_loaded_manifest_reports_saved_elapsed(self, tmp_path):
        m = RunManifest(kind="t", seed=1)
        m.finish()
        path = tmp_path / "manifest.json"
        m.save(path)
        loaded = RunManifest.load(path)
        assert loaded.elapsed_s == pytest.approx(m.elapsed_s)
        time.sleep(0.01)
        assert loaded.elapsed_s == pytest.approx(m.elapsed_s)
        assert loaded.to_dict()["elapsed_s"] == pytest.approx(m.elapsed_s)
