"""Tests for the DDPG and TD3 agents."""

import numpy as np
import pytest

from repro.agents.base import AgentHyperParams, critic_input
from repro.agents.ddpg import DDPGAgent
from repro.agents.td3 import TD3Agent
from repro.replay.base import ReplayBatch

STATE_DIM, ACTION_DIM = 4, 3


def hp(**kw):
    base = dict(batch_size=16, warmup_steps=0, hidden=(16, 16))
    base.update(kw)
    return AgentHyperParams(**base)


def make_batch(rng, m=16, reward_fn=None):
    states = rng.uniform(0, 1, (m, STATE_DIM))
    actions = rng.uniform(0, 1, (m, ACTION_DIM))
    if reward_fn is None:
        rewards = rng.normal(0, 1, (m, 1))
    else:
        rewards = reward_fn(states, actions)
    return ReplayBatch(
        states=states,
        actions=actions,
        rewards=rewards,
        next_states=rng.uniform(0, 1, (m, STATE_DIM)),
    )


class TestHyperParams:
    def test_defaults_valid(self):
        AgentHyperParams()

    @pytest.mark.parametrize(
        "field,value",
        [("gamma", 1.0), ("tau", 0.0), ("batch_size", 0), ("policy_delay", 0)],
    )
    def test_invalid(self, field, value):
        with pytest.raises(ValueError):
            AgentHyperParams(**{field: value})


class TestCriticInput:
    def test_concat(self, rng):
        s, a = rng.normal(size=(5, 4)), rng.normal(size=(5, 3))
        x = critic_input(s, a)
        assert x.shape == (5, 7)
        np.testing.assert_array_equal(x[:, :4], s)

    def test_1d_promoted(self, rng):
        x = critic_input(np.zeros(4), np.zeros(3))
        assert x.shape == (1, 7)

    def test_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            critic_input(np.zeros((2, 4)), np.zeros((3, 3)))


@pytest.mark.parametrize("agent_cls", [DDPGAgent, TD3Agent])
class TestAgentCommon:
    def make(self, agent_cls, seed=0, **hp_kw):
        return agent_cls(
            STATE_DIM, ACTION_DIM, np.random.default_rng(seed), hp(**hp_kw)
        )

    def test_act_in_unit_cube(self, agent_cls, rng):
        agent = self.make(agent_cls)
        for explore in (False, True):
            a = agent.act(rng.uniform(0, 1, STATE_DIM), explore=explore)
            assert a.shape == (ACTION_DIM,)
            assert np.all((a >= 0) & (a <= 1))

    def test_act_deterministic_without_noise(self, agent_cls, rng):
        agent = self.make(agent_cls)
        s = rng.uniform(0, 1, STATE_DIM)
        np.testing.assert_array_equal(
            agent.act(s, explore=False), agent.act(s, explore=False)
        )

    def test_random_action_shape(self, agent_cls):
        a = self.make(agent_cls).random_action()
        assert a.shape == (ACTION_DIM,)
        assert np.all((a >= 0) & (a <= 1))

    def test_update_returns_diagnostics(self, agent_cls, rng):
        agent = self.make(agent_cls)
        diag = agent.update(make_batch(rng))
        assert "critic_loss" in diag and "mean_q" in diag
        assert diag["td_errors"].shape == (16,)

    def test_update_changes_parameters(self, agent_cls, rng):
        agent = self.make(agent_cls)
        before = [p.data.copy() for p in agent.actor.parameters()]
        for _ in range(4):  # TD3 delays policy updates
            agent.update(make_batch(rng))
        after = agent.actor.parameters()
        assert any(
            not np.allclose(b, a.data) for b, a in zip(before, after)
        )

    def test_critic_learns_reward_signal(self, agent_cls, rng):
        # reward depends only on first action dim: critic should rank a
        # high-first-dim action above a low one after training.
        agent = self.make(agent_cls, gamma=0.0)

        def rew(states, actions):
            return actions[:, :1] * 2.0 - 1.0

        for _ in range(300):
            agent.update(make_batch(rng, reward_fn=rew))
        s = np.full(STATE_DIM, 0.5)
        hi = np.array([0.95, 0.5, 0.5])
        lo = np.array([0.05, 0.5, 0.5])
        if isinstance(agent, TD3Agent):
            assert agent.min_q(s, hi) > agent.min_q(s, lo)
        else:
            assert agent.q_value(s, hi) > agent.q_value(s, lo)

    def test_actor_improves_on_reward(self, agent_cls, rng):
        agent = self.make(agent_cls, gamma=0.0, actor_lr=3e-3)

        def rew(states, actions):
            return actions[:, :1] * 2.0 - 1.0

        s = np.full(STATE_DIM, 0.5)
        for _ in range(500):
            agent.update(make_batch(rng, reward_fn=rew))
        final = agent.act(s, explore=False)
        assert final[0] > 0.8  # learned to push the rewarded dimension up

    def test_invalid_dims(self, agent_cls):
        with pytest.raises(ValueError):
            agent_cls(0, 3, np.random.default_rng(0))


class TestTD3Specifics:
    def make(self, **hp_kw):
        return TD3Agent(
            STATE_DIM, ACTION_DIM, np.random.default_rng(0), hp(**hp_kw)
        )

    def test_delayed_policy_updates(self, rng):
        agent = self.make(policy_delay=2)
        d1 = agent.update(make_batch(rng))
        d2 = agent.update(make_batch(rng))
        assert d1["actor_updated"] is False
        assert d2["actor_updated"] is True

    def test_twin_q_returns_pair(self, rng):
        agent = self.make()
        q1, q2 = agent.twin_q(np.zeros(STATE_DIM), np.zeros(ACTION_DIM))
        assert isinstance(q1, float) and isinstance(q2, float)

    def test_min_q_is_minimum(self, rng):
        agent = self.make()
        s, a = np.zeros(STATE_DIM), np.full(ACTION_DIM, 0.5)
        q1, q2 = agent.twin_q(s, a)
        assert agent.min_q(s, a) == min(q1, q2)

    def test_twin_q_batch_matches_scalar(self, rng):
        agent = self.make()
        s = rng.uniform(0, 1, STATE_DIM)
        actions = rng.uniform(0, 1, (5, ACTION_DIM))
        batch_q = agent.twin_q_batch(s, actions)
        for i in range(5):
            assert batch_q[i] == pytest.approx(agent.min_q(s, actions[i]))

    def test_twin_q_batch_shape_validation(self, rng):
        agent = self.make()
        with pytest.raises(ValueError):
            agent.twin_q_batch(np.zeros(STATE_DIM), np.zeros(ACTION_DIM))

    def test_twin_critics_differ(self, rng):
        agent = self.make()
        q1, q2 = agent.twin_q(
            rng.uniform(0, 1, STATE_DIM), rng.uniform(0, 1, ACTION_DIM)
        )
        assert q1 != q2  # independent initializations


class TestOverestimation:
    def test_td3_target_leq_ddpg_style_single_critic(self, rng):
        """TD3's min-of-two target never exceeds either single critic's
        target — the clipped double-Q property."""
        agent = TD3Agent(
            STATE_DIM, ACTION_DIM, np.random.default_rng(0), hp()
        )
        batch = make_batch(rng)
        y_twin = agent._target_q(batch)
        # recompute with each critic alone (smoothing noise refreshed, so
        # compare statistically over a large batch)
        big = make_batch(rng, m=256)
        y = agent._target_q(big)
        na = agent.actor_target.forward(big.next_states, cache=False)
        x = critic_input(big.next_states, na)
        q1 = agent.critic1_target.forward(x, cache=False)
        q2 = agent.critic2_target.forward(x, cache=False)
        y_max = big.rewards + agent.hp.gamma * np.maximum(q1, q2)
        assert float(np.mean(y)) <= float(np.mean(y_max)) + 1e-6
