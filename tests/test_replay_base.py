"""Tests for transition storage and the uniform replay buffer."""

import numpy as np
import pytest

from repro.replay.base import ReplayBatch, RingStorage, Transition
from repro.replay.uniform import UniformReplayBuffer


def make_transition(i, state_dim=3, action_dim=2):
    return Transition(
        state=np.full(state_dim, float(i)),
        action=np.full(action_dim, float(i)),
        reward=float(i),
        next_state=np.full(state_dim, float(i + 1)),
    )


class TestRingStorage:
    def test_push_and_gather(self):
        s = RingStorage(10, 3, 2)
        for i in range(4):
            s.push(make_transition(i))
        assert len(s) == 4
        batch = s.gather(np.array([0, 3]))
        np.testing.assert_array_equal(batch.rewards.ravel(), [0.0, 3.0])
        np.testing.assert_array_equal(batch.states[1], [3.0, 3.0, 3.0])

    def test_wraparound_overwrites_oldest(self):
        s = RingStorage(3, 3, 2)
        for i in range(5):
            s.push(make_transition(i))
        assert len(s) == 3
        rewards = sorted(s.reward_at(i) for i in range(3))
        assert rewards == [2.0, 3.0, 4.0]

    def test_push_returns_slot(self):
        s = RingStorage(2, 3, 2)
        assert s.push(make_transition(0)) == 0
        assert s.push(make_transition(1)) == 1
        assert s.push(make_transition(2)) == 0  # wrapped

    def test_shape_validation(self):
        s = RingStorage(4, 3, 2)
        with pytest.raises(ValueError):
            s.push(make_transition(0, state_dim=5))
        with pytest.raises(ValueError):
            s.push(make_transition(0, action_dim=9))

    def test_gather_out_of_range(self):
        s = RingStorage(4, 3, 2)
        s.push(make_transition(0))
        with pytest.raises(IndexError):
            s.gather(np.array([3]))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingStorage(0, 3, 2)


class TestUniformReplayBuffer:
    def make(self, capacity=50, rng_seed=0):
        return UniformReplayBuffer(
            capacity, 3, 2, np.random.default_rng(rng_seed)
        )

    def test_sample_shapes(self):
        buf = self.make()
        for i in range(10):
            buf.push(make_transition(i))
        batch = buf.sample(6)
        assert isinstance(batch, ReplayBatch)
        assert batch.states.shape == (6, 3)
        assert batch.actions.shape == (6, 2)
        assert batch.rewards.shape == (6, 1)
        assert batch.next_states.shape == (6, 3)
        assert len(batch) == 6

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            self.make().sample(1)

    def test_sample_nonpositive_raises(self):
        buf = self.make()
        buf.push(make_transition(0))
        with pytest.raises(ValueError):
            buf.sample(0)

    def test_can_sample(self):
        buf = self.make()
        assert not buf.can_sample(1)
        buf.push(make_transition(0))
        assert buf.can_sample(1)
        assert not buf.can_sample(2)

    def test_samples_cover_buffer(self):
        buf = self.make()
        for i in range(20):
            buf.push(make_transition(i))
        seen = set()
        for _ in range(50):
            seen.update(buf.sample(8).rewards.ravel().tolist())
        assert len(seen) >= 15  # uniform sampling touches most entries

    def test_capacity_property(self):
        assert self.make(capacity=7).capacity == 7
