"""Tests for repro.cluster.hardware."""

import dataclasses

import pytest

from repro.cluster.hardware import CLUSTER_A, CLUSTER_B, ClusterSpec, NodeSpec


class TestNodeSpec:
    def test_valid(self):
        n = NodeSpec(cores=4, memory_mb=8192, disk_seq_mbps=100,
                     disk_rand_mbps=30, cpu_ghz=2.5)
        assert n.cores == 4

    @pytest.mark.parametrize(
        "field,value",
        [
            ("cores", 0),
            ("memory_mb", -1),
            ("disk_seq_mbps", 0),
            ("cpu_ghz", 0),
        ],
    )
    def test_invalid_fields(self, field, value):
        base = dict(cores=4, memory_mb=8192, disk_seq_mbps=100,
                    disk_rand_mbps=30, cpu_ghz=2.5)
        base[field] = value
        with pytest.raises(ValueError):
            NodeSpec(**base)

    def test_random_cannot_exceed_sequential(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=4, memory_mb=1024, disk_seq_mbps=50,
                     disk_rand_mbps=100, cpu_ghz=2.0)

    def test_frozen(self):
        n = CLUSTER_A.node
        with pytest.raises(dataclasses.FrozenInstanceError):
            n.cores = 99


class TestClusterSpec:
    def test_totals(self):
        assert CLUSTER_A.total_cores == 48
        assert CLUSTER_A.total_memory_mb == 3 * 16384

    def test_cluster_a_matches_paper(self):
        # 3 nodes, 16 cores and 16 GB each, 1 GbE
        assert CLUSTER_A.n_nodes == 3
        assert CLUSTER_A.node.cores == 16
        assert CLUSTER_A.node.memory_mb == 16384
        assert 100 <= CLUSTER_A.network_mbps <= 125

    def test_cluster_b_matches_paper(self):
        # 3 VMs totalling 24 cores / 24 GB
        assert CLUSTER_B.n_nodes == 3
        assert CLUSTER_B.total_cores == 24
        assert CLUSTER_B.total_memory_mb == 24 * 1024

    def test_b_smaller_than_a(self):
        assert CLUSTER_B.total_cores < CLUSTER_A.total_cores
        assert CLUSTER_B.total_memory_mb < CLUSTER_A.total_memory_mb

    def test_scale_cpu_reference(self):
        assert CLUSTER_A.scale_cpu() == pytest.approx(1.0)
        assert CLUSTER_B.scale_cpu() < 1.0

    def test_invalid_cluster(self):
        with pytest.raises(ValueError):
            ClusterSpec("x", 0, CLUSTER_A.node, 100.0)
        with pytest.raises(ValueError):
            ClusterSpec("x", 3, CLUSTER_A.node, -1.0)
