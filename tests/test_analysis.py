"""Tests for the white-box analysis tools."""

import numpy as np
import pytest

from repro.analysis.breakdown import resource_profile
from repro.analysis.interactions import interaction_strength
from repro.analysis.sensitivity import knob_sensitivity
from repro.cluster.hardware import CLUSTER_A
from repro.sim.engine import SparkSimulator
from repro.workloads.registry import get_workload


@pytest.fixture
def ts_sim():
    return SparkSimulator(
        get_workload("TS"), "D1", CLUSTER_A,
        np.random.default_rng(0), noise_sigma=0.0,
    )


@pytest.fixture
def km_sim():
    return SparkSimulator(
        get_workload("KM"), "D1", CLUSTER_A,
        np.random.default_rng(0), noise_sigma=0.0,
    )


class TestKnobSensitivity:
    def test_ranking_sorted_by_spread(self, ts_sim, space):
        results = knob_sensitivity(ts_sim, space, n_points=5)
        spreads = [r.spread_s for r in results]
        assert spreads == sorted(spreads, reverse=True)
        assert len(results) == space.dim

    def test_executor_knobs_rank_high(self, ts_sim, space):
        results = knob_sensitivity(ts_sim, space, n_points=5)
        top = [r.name for r in results[:10]]
        assert any("executor" in n or "nodemanager" in n for n in top)

    def test_subset_of_knobs(self, ts_sim, space):
        results = knob_sensitivity(
            ts_sim, space, n_points=3,
            knobs=["spark.serializer", "dfs.replication"],
        )
        assert {r.name for r in results} == {
            "spark.serializer", "dfs.replication"
        }

    def test_replication_best_is_low_for_terasort(self, ts_sim, space):
        (result,) = knob_sensitivity(
            ts_sim, space, n_points=3, knobs=["dfs.replication"]
        )
        assert result.best_position == 0.0  # replication=1 writes fastest

    def test_failures_counted_and_penalized(self, km_sim, space):
        # sweeping blocksize on KMeans hits the OOM cliff at 512 MB blocks
        (result,) = knob_sensitivity(
            km_sim, space, n_points=9, knobs=["dfs.blocksize"]
        )
        assert result.n_failures > 0
        assert result.spread_s > 0

    def test_validation(self, ts_sim, space):
        with pytest.raises(ValueError):
            knob_sensitivity(ts_sim, space, n_points=1)
        with pytest.raises(KeyError):
            knob_sensitivity(ts_sim, space, knobs=["nope"])


class TestInteractionStrength:
    def test_memory_knobs_interact_on_kmeans(self, km_sim, space):
        s = interaction_strength(
            km_sim, space,
            "spark.executor.memory", "spark.memory.storageFraction",
            n_points=4,
        )
        assert 0.0 <= s <= 1.0

    def test_unrelated_knobs_interact_less(self, ts_sim, space):
        related = interaction_strength(
            ts_sim, space,
            "spark.executor.cores", "spark.executor.instances",
            n_points=4,
        )
        unrelated = interaction_strength(
            ts_sim, space,
            "spark.locality.wait", "spark.broadcast.blockSize",
            n_points=4,
        )
        assert unrelated <= related + 0.05

    def test_validation(self, ts_sim, space):
        with pytest.raises(ValueError):
            interaction_strength(ts_sim, space, "a.b", "a.b")
        with pytest.raises(KeyError):
            interaction_strength(ts_sim, space, "nope", "dfs.replication")
        with pytest.raises(ValueError):
            interaction_strength(
                ts_sim, space, "dfs.replication", "dfs.blocksize",
                n_points=1,
            )


class TestResourceProfile:
    def test_profile_of_default_run(self, ts_sim, space):
        result = ts_sim.evaluate(space.defaults())
        profile = resource_profile(result)
        assert profile.total_s > 0
        assert profile.dominant in {"cpu", "disk", "network", "overhead"}
        shares = [
            profile.share(c) for c in ("cpu", "disk", "network", "overhead")
        ]
        assert sum(shares) == pytest.approx(1.0)

    def test_default_terasort_cpu_bound(self, ts_sim, space):
        # 2 single-core executors: CPU starves the job at defaults
        profile = resource_profile(ts_sim.evaluate(space.defaults()))
        assert profile.dominant == "cpu"

    def test_failed_run_rejected(self, km_sim, space):
        cfg = space.defaults()
        cfg.update({
            "spark.executor.memory": 8192,
            "spark.executor.memoryOverhead": 2048,
            "yarn.scheduler.maximum-allocation-mb": 6144,
        })
        result = km_sim.evaluate(cfg)
        assert not result.success
        with pytest.raises(ValueError):
            resource_profile(result)
