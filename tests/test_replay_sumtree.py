"""Tests for the PER sum-tree, including hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.replay.sumtree import SumTree


class TestSumTree:
    def test_total_tracks_updates(self):
        t = SumTree(8)
        t.update(0, 1.0)
        t.update(3, 2.0)
        assert t.total == pytest.approx(3.0)
        t.update(0, 0.5)
        assert t.total == pytest.approx(2.5)

    def test_getitem(self):
        t = SumTree(4)
        t.update(2, 7.0)
        assert t[2] == 7.0
        assert t[0] == 0.0

    def test_find_prefix_boundaries(self):
        t = SumTree(4)
        t.update(0, 1.0)
        t.update(1, 2.0)
        t.update(2, 3.0)
        assert t.find_prefix(0.5) == 0
        assert t.find_prefix(1.5) == 1
        assert t.find_prefix(3.5) == 2
        assert t.find_prefix(6.0) == 2

    def test_find_prefix_skips_zero_leaves(self):
        t = SumTree(8)
        t.update(5, 4.0)
        for v in [0.0, 1.0, 3.9]:
            assert t.find_prefix(v) == 5

    def test_max_min_priority(self):
        t = SumTree(4)
        t.update(0, 1.0)
        t.update(1, 5.0)
        assert t.max_priority() == 5.0
        assert t.min_priority(2) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            SumTree(0)
        t = SumTree(4)
        with pytest.raises(IndexError):
            t.update(4, 1.0)
        with pytest.raises(ValueError):
            t.update(0, -1.0)
        with pytest.raises(ValueError):
            t.find_prefix(99.0)
        with pytest.raises(IndexError):
            _ = t[9]

    @given(
        st.lists(
            st.tuples(st.integers(0, 31), st.floats(0.0, 100.0)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_total_invariant(self, updates):
        t = SumTree(32)
        leaves = np.zeros(32)
        for idx, prio in updates:
            t.update(idx, prio)
            leaves[idx] = prio
        assert t.total == pytest.approx(leaves.sum(), rel=1e-9, abs=1e-9)

    @given(
        st.lists(st.floats(0.01, 10.0), min_size=2, max_size=16),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_find_prefix_consistent(self, prios, frac):
        t = SumTree(16)
        for i, p in enumerate(prios):
            t.update(i, p)
        value = frac * t.total
        leaf = t.find_prefix(value)
        cumsum = np.cumsum(prios)
        expected = int(np.searchsorted(cumsum, value))
        expected = min(expected, len(prios) - 1)
        assert leaf == expected

    def test_proportional_sampling_statistics(self):
        t = SumTree(4)
        t.update(0, 1.0)
        t.update(1, 3.0)
        rng = np.random.default_rng(0)
        hits = np.zeros(4)
        for _ in range(4000):
            hits[t.find_prefix(rng.uniform(0, t.total))] += 1
        assert hits[1] / hits[0] == pytest.approx(3.0, rel=0.15)
