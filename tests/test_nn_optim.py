"""Tests for repro.nn.optim."""

import numpy as np
import pytest

from repro.nn.network import MLP, Parameter
from repro.nn.optim import SGD, Adam


def quadratic_params():
    """A single parameter minimizing ||p - 3||^2."""
    return Parameter(np.array([0.0]))


def quad_grad(p):
    p.grad[...] = 2.0 * (p.data - 3.0)


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_params()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quad_grad(p)
            opt.step()
        assert p.data[0] == pytest.approx(3.0, abs=1e-4)

    def test_momentum_converges(self):
        p = quadratic_params()
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(300):
            opt.zero_grad()
            quad_grad(p)
            opt.step()
        assert p.data[0] == pytest.approx(3.0, abs=1e-3)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([quadratic_params()], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([quadratic_params()], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_params()
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            opt.zero_grad()
            quad_grad(p)
            opt.step()
        assert p.data[0] == pytest.approx(3.0, abs=1e-3)

    def test_first_step_size_is_lr(self):
        # Adam's bias correction makes the first step exactly lr in
        # magnitude (for eps << |grad|).
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.01)
        p.grad[...] = 123.0
        opt.step()
        assert abs(p.data[0]) == pytest.approx(0.01, rel=1e-4)

    def test_grad_clipping(self):
        p = Parameter(np.zeros(4))
        opt = Adam([p], lr=0.1, max_grad_norm=1.0)
        p.grad[...] = 100.0
        opt._clip_grads()
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_clipping_leaves_small_grads(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1, max_grad_norm=10.0)
        p.grad[...] = 0.1
        g = p.grad.copy()
        opt._clip_grads()
        np.testing.assert_array_equal(p.grad, g)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([quadratic_params()], betas=(1.0, 0.999))

    def test_trains_network_to_fit(self, rng):
        net = MLP(2, 1, hidden=(16,), rng=rng, final_init_limit=None)
        opt = Adam(net.parameters(), lr=1e-2)
        x = rng.normal(size=(64, 2))
        y = (x[:, :1] + 2 * x[:, 1:]) * 0.5
        first = None
        for i in range(300):
            opt.zero_grad()
            pred = net.forward(x)
            diff = pred - y
            loss = float(np.mean(diff**2))
            if first is None:
                first = loss
            net.backward(2.0 / len(x) * diff)
            opt.step()
        assert loss < first * 0.05
