"""Tiny-scale smoke tests for the heavier experiment modules.

These verify plumbing (shapes, labels, accounting) with minimal budgets;
the benchmark suite runs the science-scale versions.
"""

import pytest

from repro.experiments import (
    ablations,
    drift,
    fig9_workload_adapt,
    fig10_hardware_adapt,
    headline,
    whitebox_ablation,
)
from repro.experiments.common import ExperimentScale, clear_model_cache
from repro.experiments.sessions import comparison_grid

TINY = ExperimentScale(
    name="tiny-heavy", offline_iterations=100, ottertune_samples=40,
    seeds=(0,), online_steps=2,
)


@pytest.fixture(autouse=True, scope="module")
def fresh_cache():
    clear_model_cache()
    yield
    clear_model_cache()


class TestFig9Smoke:
    def test_runs_and_labels(self):
        r = fig9_workload_adapt.run(TINY, seeds=(0,))
        assert set(r.best) == {
            "M_PR", "M_WC->PR", "M_TS->PR", "M_KM->PR",
            "CDBTune", "OtterTune",
        }
        assert r.transfer_penalty_pct("PR") == 0.0
        assert "Figure 9" in fig9_workload_adapt.format_result(r)


class TestFig10Smoke:
    def test_runs_and_labels(self):
        r = fig10_hardware_adapt.run(TINY, seeds=(0,))
        assert set(r.speedup) == {
            (w, t)
            for w in ("WC", "PR")
            for t in ("DeepCAT", "CDBTune", "OtterTune")
        }
        assert all(v > 0 for v in r.speedup.values())
        assert "Figure 10" in fig10_hardware_adapt.format_result(r)


class TestAblationSmoke:
    def test_matrix_complete(self):
        r = ablations.run(TINY, seeds=(0,))
        assert set(r.best) == {
            (a, b)
            for a in ("TD3", "DDPG")
            for b in ("RDPER", "PER", "uniform")
        }
        out = ablations.format_result(r)
        assert "DeepCAT offline" in out and "CDBTune offline" in out


class TestDriftSmoke:
    def test_stream_accounting(self):
        r = drift.run(TINY, stream=(("TS", "D1"), ("WC", "D1")), seeds=(0,))
        assert set(r.total_cost) == {"DeepCAT", "CDBTune"}
        assert len([k for k in r.speedup if k[0] == "DeepCAT"]) == 2
        assert r.mean_speedup("DeepCAT") > 0
        assert "drift" in drift.format_result(r).lower()


class TestWhiteboxSmoke:
    def test_budget_accounting(self):
        r = whitebox_ablation.run(TINY, top_k=6, seeds=(0,))
        assert r.budget == TINY.offline_iterations
        assert r.probe_evaluations > 0
        assert r.full_best > 0 and r.reduced_best > 0
        assert "White-box" in whitebox_ablation.format_result(r)


class TestHeadlineSmoke:
    def test_checks_structure(self):
        grid = comparison_grid(TINY, pairs=(("WC", "D1"), ("KM", "D1")))
        checks = headline.check_headlines(grid)
        assert len(checks) == 6
        assert all(isinstance(c.measured, str) and c.measured for c in checks)
        out = headline.format_checks(checks)
        assert "Headline claims" in out
        assert out.count("[") == 6
