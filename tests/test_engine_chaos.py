"""Process-level chaos harness: deterministic worker kills and the
bit-identity proof that supervision never changes the science.

The heavy soak runs under ``-m faults`` (CI chaos-smoke job); the
schedule tests and the retried-result determinism proof are cheap and
run everywhere.
"""

import os

import numpy as np
import pytest

from repro.experiments.engine import (
    ExperimentEngine,
    ResultCache,
    TaskSpec,
    random_cdf_task,
    task_kind,
)
from repro.faults import WorkerChaos


@task_kind("chaos-flaky-cdf")
def _chaos_flaky_cdf(*, marker, workload, dataset, n_samples, seed):
    """A real science kind with an injected first-attempt fault: raises
    until ``marker`` exists, then computes the ordinary random-search
    CDF — whose value is a pure function of the science params."""
    from repro.experiments.engine import _TASK_KINDS

    if not os.path.exists(marker):
        open(marker, "wb").close()
        raise RuntimeError("injected transient fault")
    return _TASK_KINDS["random-cdf"](
        workload=workload, dataset=dataset, n_samples=n_samples, seed=seed
    )


def _cdf_grid(n_tasks=6, n_samples=20):
    return [
        random_cdf_task(workload="WC", dataset="D1", n_samples=n_samples,
                        seed=1000 + i)
        for i in range(n_tasks)
    ]


def _assert_identical(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x["durations"], y["durations"])
        assert x["n_failed"] == y["n_failed"]
        assert x["default_duration"] == y["default_duration"]


class TestWorkerChaosSchedule:
    def test_schedule_is_deterministic(self):
        a = WorkerChaos(seed=7, kill_rate=0.5)
        b = WorkerChaos(seed=7, kill_rate=0.5)
        keys = [t.canonical_key() for t in _cdf_grid()]
        assert [a.kills_for(k) for k in keys] == [b.kills_for(k) for k in keys]

    def test_seed_changes_schedule(self):
        keys = [t.canonical_key() for t in _cdf_grid(32)]
        a = [WorkerChaos(seed=0, kill_rate=0.5).kills_for(k) for k in keys]
        b = [WorkerChaos(seed=1, kill_rate=0.5).kills_for(k) for k in keys]
        assert a != b

    def test_kill_rate_bounds(self):
        keys = [t.canonical_key() for t in _cdf_grid(16)]
        never = WorkerChaos(seed=3, kill_rate=0.0)
        always = WorkerChaos(seed=3, kill_rate=1.0)
        assert all(never.kills_for(k) == 0 for k in keys)
        assert all(always.kills_for(k) == 1 for k in keys)

    def test_should_kill_counts_attempts(self):
        chaos = WorkerChaos(seed=3, kill_rate=1.0, max_kills_per_task=2)
        key = _cdf_grid(1)[0].canonical_key()
        assert chaos.should_kill(key, attempt=1)
        assert chaos.should_kill(key, attempt=2)
        assert not chaos.should_kill(key, attempt=3)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WorkerChaos(seed=0, kill_rate=1.5)
        with pytest.raises(ValueError):
            WorkerChaos(seed=0, kill_rate=-0.1)
        with pytest.raises(ValueError):
            WorkerChaos(seed=0, kill_rate=0.5, max_kills_per_task=-1)


@pytest.mark.faults
class TestChaosSoak:
    def test_killed_grid_completes_bit_identical(self, tmp_path):
        tasks = _cdf_grid(n_tasks=6, n_samples=20)
        chaos = WorkerChaos(seed=7, kill_rate=0.5)
        scheduled = sum(chaos.kills_for(t.canonical_key()) for t in tasks)
        assert scheduled >= 1  # the soak must actually kill workers

        clean = ExperimentEngine(jobs=1).run(tasks)
        eng = ExperimentEngine(jobs=4, chaos=chaos, task_retries=2,
                               cache=ResultCache(tmp_path / "cache"))
        soaked = eng.run(tasks)

        _assert_identical(clean, soaked)
        assert eng.stats.quarantined_tasks == 0
        assert eng.stats.task_failures >= scheduled
        assert eng.stats.pool_rebuilds >= 1
        assert eng.failure_report()["healthy"] is True

    def test_chaos_run_populates_reusable_cache(self, tmp_path):
        tasks = _cdf_grid(n_tasks=4, n_samples=15)
        cache_root = tmp_path / "cache"
        chaos = WorkerChaos(seed=11, kill_rate=1.0)
        eng = ExperimentEngine(jobs=4, chaos=chaos, task_retries=2,
                               cache=ResultCache(cache_root))
        soaked = eng.run(tasks)
        # A later clean engine sees ordinary, integrity-checked entries.
        eng2 = ExperimentEngine(cache=ResultCache(cache_root))
        cached = eng2.run(tasks)
        assert eng2.stats.cache_hits == len(tasks)
        assert eng2.stats.executed == 0
        _assert_identical(soaked, cached)


@pytest.mark.determinism
class TestRetryDeterminism:
    def _task(self, marker, seed):
        return TaskSpec("chaos-flaky-cdf", {
            "marker": str(marker), "workload": "WC", "dataset": "D1",
            "n_samples": 12, "seed": seed,
        })

    def test_inline_retried_equals_clean(self, tmp_path):
        clean_marker = tmp_path / "clean"
        clean_marker.touch()
        [clean] = ExperimentEngine().run([self._task(clean_marker, 5)])
        [retried] = ExperimentEngine(task_retries=1).run(
            [self._task(tmp_path / "dirty", 5)]
        )
        _assert_identical([clean], [retried])

    def test_pool_retried_equals_clean(self, tmp_path):
        clean_marker = tmp_path / "clean"
        clean_marker.touch()
        tasks_clean = [self._task(clean_marker, s) for s in (5, 6)]
        clean = ExperimentEngine().run(tasks_clean)
        dirty = tmp_path / "dirty"
        tasks_flaky = [self._task(dirty, s) for s in (5, 6)]
        eng = ExperimentEngine(jobs=2, task_retries=2)
        retried = eng.run(tasks_flaky)
        _assert_identical(clean, retried)
        assert eng.stats.task_failures >= 1

    def test_supervised_engine_matches_default_without_injection(self):
        # With no chaos and no failures, the supervised pool path must be
        # bit-identical to the plain inline engine (the pre-supervision
        # behaviour) — and cache keys are unchanged by construction
        # (CACHE_VERSION stayed at deepcat-engine-v2).
        tasks = _cdf_grid(n_tasks=4, n_samples=15)
        _assert_identical(
            ExperimentEngine(jobs=1).run(tasks),
            ExperimentEngine(jobs=2, task_retries=2).run(tasks),
        )
