"""Tests for structured logging and timeline rendering."""

import io
import json

import numpy as np
import pytest

from repro.agents.base import AgentHyperParams
from repro.cluster.hardware import CLUSTER_A
from repro.core.deepcat import DeepCAT
from repro.core.offline import OfflineTrainer
from repro.factory import make_env
from repro.sim.engine import SparkSimulator
from repro.sim.timeline import render_timeline
from repro.utils.logging import ConsoleLogger, JsonlLogger, NullLogger
from repro.workloads.registry import get_workload

FAST_HP = AgentHyperParams(batch_size=16, warmup_steps=8, hidden=(16, 16))


class TestLoggers:
    def test_null_logger_swallows(self):
        NullLogger().event("anything", x=1)

    def test_console_logger_throttles_offline_steps(self):
        buf = io.StringIO()
        logger = ConsoleLogger(stream=buf, every=10)
        for i in range(30):
            logger.event("offline-step", iteration=i, reward=0.1)
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == 3  # every 10th

    def test_console_logger_passes_other_events(self):
        buf = io.StringIO()
        logger = ConsoleLogger(stream=buf, every=100)
        logger.event("online-step", step=0, duration_s=12.5)
        out = buf.getvalue()
        assert "online-step" in out and "duration_s=12.5" in out

    def test_console_invalid_every(self):
        with pytest.raises(ValueError):
            ConsoleLogger(every=0)

    def test_jsonl_logger_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlLogger(path) as logger:
            logger.event("online-step", step=0, reward=0.3)
            logger.event("online-step", step=1, reward=0.5)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len(records) == 2
        assert records[1]["kind"] == "online-step"
        assert records[1]["reward"] == 0.5
        assert "ts" in records[0]

    def test_offline_trainer_emits_events(self, tmp_path):
        path = tmp_path / "train.jsonl"
        env = make_env("TS", "D1", seed=0)
        tuner = DeepCAT.from_env(env, seed=0, hp=FAST_HP)
        logger = JsonlLogger(path)
        OfflineTrainer(tuner.agent, tuner.buffer, logger=logger).train(
            env, 12
        )
        logger.close()
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        steps = [r for r in records if r["kind"] == "offline-step"]
        assert len(steps) == 12
        assert steps[-1]["iteration"] == 11
        # The simulator now reports its stage timings through the same
        # logger (sim-stage events), interleaved with the step events.
        assert any(r["kind"] == "sim-stage" for r in records)


class TestTimeline:
    def test_render_successful_run(self, space):
        sim = SparkSimulator(
            get_workload("TS"), "D1", CLUSTER_A,
            np.random.default_rng(0), noise_sigma=0.0,
        )
        result = sim.evaluate(space.defaults())
        out = render_timeline(result)
        assert "partition-map" in out and "sort-reduce" in out
        assert "bound" in out
        assert "executors" in out.splitlines()[0]

    def test_kmeans_shows_cache_misses(self, space):
        sim = SparkSimulator(
            get_workload("KM"), "D1", CLUSTER_A,
            np.random.default_rng(0), noise_sigma=0.0,
        )
        out = render_timeline(sim.evaluate(space.defaults()))
        assert "cache miss" in out

    def test_failed_run_message(self, space):
        sim = SparkSimulator(
            get_workload("TS"), "D1", CLUSTER_A,
            np.random.default_rng(0), noise_sigma=0.0,
        )
        cfg = space.defaults()
        cfg.update({
            "spark.executor.memory": 8192,
            "spark.executor.memoryOverhead": 2048,
            "yarn.scheduler.maximum-allocation-mb": 6144,
        })
        out = render_timeline(sim.evaluate(cfg))
        assert out.startswith("job failed")

    def test_width_validation(self, space):
        sim = SparkSimulator(
            get_workload("TS"), "D1", CLUSTER_A,
            np.random.default_rng(0), noise_sigma=0.0,
        )
        result = sim.evaluate(space.defaults())
        with pytest.raises(ValueError):
            render_timeline(result, width=2)
