"""Multi-core execution plane primitives: shard planning, shared-memory
arenas, and BLAS pinning.

These are the process-free contracts — everything here runs in one
process.  The cross-process behaviour (worker stepping, bit-identity,
crash handling) lives in ``test_sharded_population.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import (
    ShmArena,
    active_segments,
    blas_env,
    effective_blas_threads,
    limit_blas_threads,
    plan_blocks,
    shard_plan,
)
from repro.parallel.pinning import _BLAS_ENV_VARS


class TestShardPlan:
    def test_even_split(self):
        assert shard_plan(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_to_earlier_shards(self):
        assert shard_plan(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_single_shard_is_everything(self):
        assert shard_plan(5, 1) == [(0, 5)]

    def test_shards_clamped_to_members(self):
        plan = shard_plan(3, 8)
        assert plan == [(0, 1), (1, 2), (2, 3)]

    def test_covers_range_contiguously(self):
        for n in (1, 2, 7, 64):
            for shards in (1, 2, 3, 5, n, n + 3):
                plan = shard_plan(n, shards)
                assert plan[0][0] == 0
                assert plan[-1][1] == n
                for (_, hi), (lo, _) in zip(plan, plan[1:]):
                    assert hi == lo
                assert all(hi > lo for lo, hi in plan)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            shard_plan(0, 2)
        with pytest.raises(ValueError):
            shard_plan(4, 0)


class TestArenaPlan:
    def test_blocks_are_aligned_and_disjoint(self):
        plan = plan_blocks([("a", (3, 5)), ("b", (2,)), ("c", (1, 1, 7))])
        end = 0
        for blk in plan.blocks:
            assert blk.offset % 64 == 0
            assert blk.offset >= end
            end = blk.offset + blk.nbytes
        assert plan.size >= end

    def test_nbytes_is_float64(self):
        plan = plan_blocks([("a", (4, 8))])
        assert plan.block("a").nbytes == 4 * 8 * 8

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            plan_blocks([("a", (2,)), ("a", (3,))])

    def test_unknown_block_raises(self):
        plan = plan_blocks([("a", (2,))])
        with pytest.raises(KeyError):
            plan.block("nope")


class TestShmArena:
    def test_write_through_between_mappings(self):
        plan = plan_blocks([("x", (4, 3)), ("y", (2,))])
        with ShmArena.create(plan) as arena:
            other = ShmArena.attach(arena.name, plan)
            try:
                arena.view("x")[:] = 1.5
                np.testing.assert_array_equal(
                    other.view("x"), np.full((4, 3), 1.5)
                )
                other.view("y")[:] = [7.0, 8.0]
                np.testing.assert_array_equal(arena.view("y"), [7.0, 8.0])
            finally:
                other.close()
        assert active_segments() == []

    def test_only_owner_may_unlink(self):
        plan = plan_blocks([("x", (2,))])
        with ShmArena.create(plan) as arena:
            other = ShmArena.attach(arena.name, plan)
            with pytest.raises(RuntimeError, match="owner"):
                other.unlink()
            other.close()

    def test_segment_visible_while_alive_gone_after(self):
        plan = plan_blocks([("x", (2,))])
        arena = ShmArena.create(plan)
        assert arena.name in active_segments()
        arena.unlink()
        assert arena.name not in active_segments()

    def test_view_after_close_raises(self):
        plan = plan_blocks([("x", (2,))])
        arena = ShmArena.create(plan)
        arena.unlink()
        with pytest.raises(RuntimeError, match="closed"):
            arena.view("x")

    def test_sequential_allocator_serves_plan_order(self):
        plan = plan_blocks([("a", (2, 3)), ("b", (4,))])
        with ShmArena.create(plan) as arena:
            alloc = arena.sequential_allocator()
            a = alloc((2, 3), dtype=np.float64)
            b = alloc((4,), dtype=np.float64)
            a[:] = 2.0
            np.testing.assert_array_equal(arena.view("a"), np.full((2, 3), 2.0))
            b[:] = 3.0
            np.testing.assert_array_equal(arena.view("b"), np.full(4, 3.0))

    def test_sequential_allocator_rejects_plan_mismatch(self):
        plan = plan_blocks([("a", (2, 3))])
        with ShmArena.create(plan) as arena:
            alloc = arena.sequential_allocator()
            with pytest.raises(ValueError, match="mismatch"):
                alloc((9, 9), dtype=np.float64)


class TestPinning:
    def test_blas_env_covers_all_knobs(self):
        env = blas_env(3)
        assert set(env) == set(_BLAS_ENV_VARS)
        assert all(v == "3" for v in env.values())

    def test_limit_reports_mechanism(self, monkeypatch):
        for var in _BLAS_ENV_VARS:
            monkeypatch.delenv(var, raising=False)
        how = limit_blas_threads(1)
        assert how in ("threadpoolctl", "openblas", "env")
        import os

        assert all(os.environ[v] == "1" for v in _BLAS_ENV_VARS)

    def test_effective_threads_positive(self):
        threads = effective_blas_threads()
        assert isinstance(threads, int)
        assert threads >= 1

    def test_non_positive_budget_clamps_to_one(self):
        assert blas_env(0)["OMP_NUM_THREADS"] == "1"
        assert limit_blas_threads(0) in ("threadpoolctl", "openblas", "env")
