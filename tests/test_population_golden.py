"""Golden-file test pinning a seeded population tuning trace.

``tests/golden/population_trace.json`` freezes a 3-member, 3-step
``PopulationTuner`` run end to end: actor/critic forward math, Twin-Q
screening decisions, the ``SeedSequence``-derived member seed plan, and
the simulator stack.  Any drift — a reordered RNG draw, a changed
default, a "harmless" numeric refactor — fails loudly here until the
trace is regenerated (``tests/golden/regen.py``) and
``CACHE_VERSION`` reviewed.  Because the population is bit-identical to
sequential serving (``tests/test_population_equivalence.py``), this
one trace pins both serving paths.
"""

import json
from pathlib import Path

import pytest

from tests.golden.regen import (
    POPULATION_TRACE_PATH,
    TRACE_MEMBERS,
    TRACE_STEPS,
    compute_population_trace,
)

pytestmark = pytest.mark.golden

GOLDEN_PATH = Path(__file__).parent / "golden" / "population_trace.json"


def test_golden_trace_shape():
    trace = json.loads(GOLDEN_PATH.read_text())
    assert len(trace) == TRACE_MEMBERS
    for steps in trace:
        assert [s["step"] for s in steps] == list(range(TRACE_STEPS))


def test_population_trace_matches_golden():
    assert GOLDEN_PATH == POPULATION_TRACE_PATH
    golden = json.loads(GOLDEN_PATH.read_text())
    live = json.loads(json.dumps(compute_population_trace()))
    assert live == golden, (
        "population tuning trace drifted; if intentional, regenerate "
        "tests/golden/population_trace.json via tests/golden/regen.py "
        "and review repro.experiments.engine.CACHE_VERSION"
    )
