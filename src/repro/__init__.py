"""DeepCAT reproduction library.

Implements the full stack of "DeepCAT: A Cost-Efficient Online
Configuration Auto-Tuning Approach for Big Data Frameworks" (ICPP 2022):
the DeepCAT tuner (TD3 + RDPER + Twin-Q Optimizer), the CDBTune and
OtterTune baselines, and the simulated Spark/YARN/HDFS cluster substrate
they tune.

Quickstart
----------
>>> from repro import DeepCAT, make_env
>>> env = make_env("TS", "D1", seed=7)
>>> tuner = DeepCAT.from_env(env, seed=7)
>>> tuner.train_offline(env, iterations=400)      # doctest: +SKIP
>>> session = tuner.tune_online(env, steps=5)     # doctest: +SKIP
>>> session.best_duration_s                       # doctest: +SKIP
"""

from repro.baselines.cdbtune import CDBTune
from repro.baselines.ottertune.tuner import OtterTune
from repro.cluster.hardware import CLUSTER_A, CLUSTER_B
from repro.config.pipeline import build_pipeline_space
from repro.core.deepcat import DeepCAT
from repro.core.persistence import load_tuner, save_tuner
from repro.envs.tuning_env import TuningEnv
from repro.factory import make_env
from repro.telemetry import RunContext, RunManifest

__version__ = "1.0.0"

__all__ = [
    "DeepCAT",
    "CDBTune",
    "OtterTune",
    "TuningEnv",
    "CLUSTER_A",
    "CLUSTER_B",
    "build_pipeline_space",
    "make_env",
    "save_tuner",
    "load_tuner",
    "RunContext",
    "RunManifest",
    "__version__",
]
