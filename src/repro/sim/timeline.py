"""Execution timeline rendering (a text-mode Spark-UI stage view)."""

from __future__ import annotations

from repro.sim.result import ExecutionResult

__all__ = ["render_timeline"]


def render_timeline(result: ExecutionResult, width: int = 60) -> str:
    """Render a result's stages as a proportional text timeline.

    Each stage gets a bar sized by its share of the job, annotated with
    its dominant resource and memory behaviour — the view an engineer
    uses to decide which knob to turn next.
    """
    if not result.success:
        return f"job failed: {result.failure_reason}"
    if not result.stages:
        return "no stages recorded"
    if width < 10:
        raise ValueError("width too small")
    total = sum(s.seconds for s in result.stages)
    name_pad = max(len(s.name) for s in result.stages)
    lines = [
        f"total {result.duration_s:.1f}s on {result.n_executors} executors "
        f"x {result.executor_cores} cores "
        f"({result.executor_heap_mb} MB heap)"
    ]
    for s in result.stages:
        bar_len = max(1, int(round(s.seconds / total * width)))
        parts = {
            "cpu": s.cpu_seconds,
            "disk": s.disk_seconds,
            "net": s.network_seconds,
        }
        dominant = max(parts, key=parts.get)
        notes = [f"{dominant}-bound"]
        if s.spill_fraction > 0.01:
            notes.append(f"spill {s.spill_fraction * 100:.0f}%")
        if s.cache_deficit > 0.01:
            notes.append(f"cache miss {s.cache_deficit * 100:.0f}%")
        if s.gc_multiplier > 1.15:
            notes.append(f"gc x{s.gc_multiplier:.2f}")
        lines.append(
            f"{s.name:<{name_pad}} |{'#' * bar_len:<{width}}| "
            f"{s.seconds:7.1f}s  {s.n_tasks} tasks / {s.waves} waves  "
            f"[{', '.join(notes)}]"
        )
    return "\n".join(lines)
