"""Execution result records produced by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["StageResult", "ExecutionResult"]


@dataclass(frozen=True)
class StageResult:
    """Timing breakdown for one stage."""

    name: str
    seconds: float
    n_tasks: int
    waves: int
    cpu_seconds: float  # critical-path CPU component
    disk_seconds: float
    network_seconds: float
    overhead_seconds: float
    spill_fraction: float
    gc_multiplier: float
    cache_deficit: float
    oom: bool = False
    attempts: int = 1


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of evaluating one configuration on the simulated cluster."""

    duration_s: float
    success: bool
    failure_reason: str = ""
    stages: tuple[StageResult, ...] = field(default_factory=tuple)
    #: average runnable-thread demand per node during the run (feeds the
    #: uptime-style load-average state)
    cpu_demand_per_node: np.ndarray = field(
        default_factory=lambda: np.zeros(0)
    )
    #: placement summary for reports
    n_executors: int = 0
    executor_cores: int = 0
    executor_heap_mb: int = 0
    #: chaos faults injected into this evaluation (empty when the run
    #: was clean or fault injection is disabled)
    injected_faults: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.duration_s < 0:
            raise ValueError("duration cannot be negative")

    def stage(self, name: str) -> StageResult:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"no stage named {name!r}")
