"""The wave-based Spark execution engine.

``SparkSimulator`` evaluates a full configuration dictionary against one
workload-input pair on one cluster.  Per stage it computes three
partially-overlapping resource components (CPU, disk, network) plus
scheduling overheads, applies memory verdicts (spill / GC / OOM), and sums
stages into a job duration with multiplicative measurement noise.

Design notes (see DESIGN.md §5): the model is *mechanistic*, not fitted —
every term corresponds to a real Spark cost channel, so configuration
effects compose the way they do on hardware: e.g. raising
``spark.executor.instances`` only helps once the YARN NodeManager budget
admits the containers, and extra parallelism degrades HDD throughput
unless the stream buffers grow too.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.cluster.disk import disk_seconds
from repro.cluster.hardware import ClusterSpec
from repro.cluster.hdfs import HdfsModel
from repro.cluster.memory import MemoryModel
from repro.cluster.network import broadcast_seconds, shuffle_network_seconds
from repro.cluster.yarn import ExecutorPlacement, plan_executors
from repro.sim.codecs import codec_profile, serializer_profile
from repro.sim.faults import (
    TASK_MAX_FAILURES,
    YARN_HANG_SECONDS,
    YARN_REJECT_SECONDS,
    StageFailure,
    oom_attempt_charge,
    vmem_kill_penalty,
)
from repro.sim.result import ExecutionResult, StageResult
from repro.telemetry.context import NULL_CONTEXT
from repro.utils.stats import lognormal_noise_factor
from repro.workloads.base import DatasetSpec, StageSpec, Workload

__all__ = ["SparkSimulator"]

#: fixed application-master + driver + context startup cost
JOB_SETUP_SECONDS = 7.0
#: per-stage DAG-scheduler bookkeeping
STAGE_SETUP_SECONDS = 0.35
#: serial driver-side dispatch cost per task (divided by sqrt(driver cores))
TASK_DISPATCH_SECONDS = 0.006
#: executor-side launch/deserialize latency per wave
WAVE_LAUNCH_SECONDS = 0.12
#: CPU cost of re-parsing data evicted from the RDD cache
CACHE_REPARSE_CPU_PER_MB = 0.015
#: CPU cost of spill serialization per spilled MB
SPILL_CPU_PER_MB = 0.006
#: fraction of non-critical-path resource time not hidden by overlap
OVERLAP_RESIDUE = 0.35


class SparkSimulator:
    """Evaluate configurations for one (workload, dataset, cluster) triple.

    Parameters
    ----------
    workload, dataset:
        What runs.  ``dataset`` may be a label ("D1") or a spec.
    cluster:
        The hardware (CLUSTER_A by default at call sites).
    rng:
        Generator for measurement noise and straggler draws.
    noise_sigma:
        Lognormal sigma of run-to-run measurement noise (0 disables).
    """

    def __init__(
        self,
        workload: Workload,
        dataset: DatasetSpec | str,
        cluster: ClusterSpec,
        rng: np.random.Generator,
        noise_sigma: float = 0.10,
    ):
        if noise_sigma < 0:
            raise ValueError("noise_sigma cannot be negative")
        self.workload = workload
        self.dataset = (
            workload.dataset(dataset) if isinstance(dataset, str) else dataset
        )
        self.cluster = cluster
        self.noise_sigma = noise_sigma
        self._rng = rng
        self._stages = workload.stages(self.dataset)
        self._default_duration: float | None = None
        self.evaluation_count = 0
        #: attach a RunContext (e.g. via TuningEnv.attach_telemetry) to
        #: trace per-evaluation spans and fault-injection counters
        self.telemetry = NULL_CONTEXT
        #: optional :class:`~repro.faults.injector.FaultInjector` applied
        #: to every evaluation (set by TuningEnv after the default
        #: duration is cached, so the baseline itself is never faulted)
        self.fault_injector = None

    # ------------------------------------------------------------------ API

    def evaluate(self, config: Mapping[str, Any]) -> ExecutionResult:
        """Run the workload once under ``config`` and return the result."""
        with self.telemetry.phase("sim.evaluate"), self.telemetry.span(
            "sim.evaluate", workload=self.workload.code
        ) as span:
            result = self._evaluate(config)
            if self.fault_injector is not None and self.fault_injector.enabled:
                result, injected = self.fault_injector.perturb_result(result)
                if injected:
                    span.set_attr("faults", ",".join(injected))
                    for kind in injected:
                        self.telemetry.count(
                            "faults.injected_total",
                            help="stochastic chaos injections by kind",
                            kind=kind,
                        )
            span.set_attr("success", result.success)
            span.set_attr("simulated_s", round(result.duration_s, 3))
        return result

    def evaluate_batch(
        self, vectors: np.ndarray, space, apply_faults: bool = True
    ) -> list[ExecutionResult]:
        """Evaluate ``n`` normalized vectors through the vectorized path.

        Row ``i`` is bit-identical to ``evaluate(space.decode(vectors[i]))``
        under the same generator state; see :mod:`repro.sim.batch`.
        """
        from repro.sim.batch import evaluate_batch

        return evaluate_batch(self, vectors, space, apply_faults=apply_faults)

    def _evaluate(self, config: Mapping[str, Any]) -> ExecutionResult:
        t = self.telemetry
        self.evaluation_count += 1
        t.count("sim.evaluations_total", help="simulated configuration runs")
        placement = plan_executors(config, self.cluster)
        if not placement.feasible:
            burnt = YARN_HANG_SECONDS if placement.hangs else YARN_REJECT_SECONDS
            t.count(
                "sim.faults_total",
                help="injected faults by kind",
                kind="yarn-hang" if placement.hangs else "yarn-reject",
            )
            t.event(
                "sim-fault", fault="yarn-rejection", reason=placement.reason,
                burnt_s=float(burnt),
            )
            return ExecutionResult(
                duration_s=burnt,
                success=False,
                failure_reason=f"YARN rejection: {placement.reason}",
                cpu_demand_per_node=np.full(self.cluster.n_nodes, 0.1),
            )

        noise = lognormal_noise_factor(self._rng, self.noise_sigma)
        try:
            stages, duration, cpu_core_s = self._run_stages(config, placement)
        except StageFailure as failure:
            duration = (JOB_SETUP_SECONDS + failure.burnt_seconds) * noise
            t.count(
                "sim.faults_total",
                help="injected faults by kind",
                kind="stage-failure",
            )
            t.event(
                "sim-fault", fault="stage-failure", stage=failure.stage_name,
                reason=failure.reason, burnt_s=float(duration),
            )
            return ExecutionResult(
                duration_s=float(duration),
                success=False,
                failure_reason=failure.reason,
                cpu_demand_per_node=self._demand(placement, 0.5),
                n_executors=placement.n_executors,
                executor_cores=placement.executor_cores,
                executor_heap_mb=placement.executor_heap_mb,
            )

        duration = (JOB_SETUP_SECONDS + duration) * noise
        utilization = min(
            cpu_core_s / max(duration * self.cluster.total_cores, 1e-9), 1.0
        )
        return ExecutionResult(
            duration_s=float(duration),
            success=True,
            stages=tuple(stages),
            cpu_demand_per_node=self._demand(placement, utilization),
            n_executors=placement.n_executors,
            executor_cores=placement.executor_cores,
            executor_heap_mb=placement.executor_heap_mb,
        )

    def default_duration(self, space) -> float:
        """Noise-free duration under the framework defaults (cached)."""
        if self._default_duration is None:
            saved, self.noise_sigma = self.noise_sigma, 0.0
            try:
                result = self.evaluate(space.defaults())
            finally:
                self.noise_sigma = saved
            if not result.success:
                raise RuntimeError(
                    "default configuration failed on the simulator: "
                    f"{result.failure_reason}"
                )
            self._default_duration = result.duration_s
        return self._default_duration

    # ------------------------------------------------------------ internals

    def _demand(
        self, placement: ExecutorPlacement, utilization: float
    ) -> np.ndarray:
        """Average runnable threads per node for the state tracker."""
        nodes_used = min(placement.n_executors, self.cluster.n_nodes)
        demand = np.full(self.cluster.n_nodes, 0.05 * self.cluster.node.cores)
        if nodes_used:
            busy = utilization * placement.total_cores / nodes_used
            demand[:nodes_used] += busy
        return demand

    def _run_stages(
        self, config: Mapping[str, Any], placement: ExecutorPlacement
    ) -> tuple[list[StageResult], float, float]:
        memory = MemoryModel(
            config, placement.executor_heap_mb, placement.executor_cores
        )
        hdfs = HdfsModel(config, self.cluster)
        results: list[StageResult] = []
        elapsed = 0.0
        total_cpu_core_s = 0.0
        t = self.telemetry
        for stage in self._stages:
            res = self._simulate_stage(stage, config, placement, memory, hdfs)
            if res.oom:
                burnt = elapsed + oom_attempt_charge(res.seconds)
                raise StageFailure(
                    stage.name,
                    f"executor OOM in stage {stage.name!r} after "
                    f"{TASK_MAX_FAILURES} task attempts",
                    burnt,
                )
            results.append(res)
            elapsed += res.seconds
            total_cpu_core_s += res.cpu_seconds * placement.total_cores
            t.observe(
                "sim.stage_seconds",
                res.seconds,
                help="simulated per-stage duration",
                stage=stage.name,
            )
            t.event(
                "sim-stage",
                stage=stage.name,
                seconds=float(res.seconds),
                waves=res.waves,
                spill_fraction=float(res.spill_fraction),
            )
        return results, elapsed, total_cpu_core_s

    def _simulate_stage(
        self,
        stage: StageSpec,
        config: Mapping[str, Any],
        placement: ExecutorPlacement,
        memory: MemoryModel,
        hdfs: HdfsModel,
    ) -> StageResult:
        cluster = self.cluster
        node = cluster.node
        serializer = serializer_profile(config["spark.serializer"])
        codec = codec_profile(config["spark.io.compression.codec"])
        shuffle_compress = bool(config["spark.shuffle.compress"])
        spill_compress = bool(config["spark.shuffle.spill.compress"])
        parallelism = int(config["spark.default.parallelism"])
        shuffle_buffer_kb = float(config["spark.shuffle.file.buffer"])
        io_buffer_kb = float(config["io.file.buffer.size"])
        max_in_flight = float(config["spark.reducer.maxSizeInFlight"])
        bypass_threshold = int(
            config["spark.shuffle.sort.bypassMergeThreshold"]
        )
        speculation = bool(config["spark.speculation"])
        locality_wait = float(config["spark.locality.wait"])
        driver_cores = int(config["spark.driver.cores"])

        # ---- task geometry ------------------------------------------------
        if stage.reads_hdfs or stage.inherits_input_partitions:
            n_tasks = hdfs.input_splits(stage.input_mb)
        else:
            n_tasks = max(1, parallelism)
        # Executor threads beyond the physical cores just contend.
        slots = max(min(placement.total_cores, cluster.total_cores), 1)
        waves = int(np.ceil(n_tasks / slots))
        active_slots = min(n_tasks, slots)
        conc_per_node = max(
            1, int(np.ceil(active_slots / cluster.n_nodes))
        )
        per_task_mb = stage.input_mb / n_tasks

        # ---- memory verdict -----------------------------------------------
        per_exec_cache_mb = (
            stage.cache_demand_mb / placement.n_executors
            if stage.cache_demand_mb
            else 0.0
        )
        working_set_mb = (
            per_task_mb * stage.memory_expansion * serializer.deser_expansion
        )
        verdict = memory.evaluate_task(
            working_set_mb, per_exec_cache_mb,
            rigid_fraction=stage.rigid_memory_fraction,
        )
        if verdict.oom:
            # Charge an estimated clean-stage time for the retry accounting.
            approx = (
                stage.input_mb * stage.cpu_per_mb / slots
                + stage.input_mb / (node.disk_seq_mbps * cluster.n_nodes)
            )
            return StageResult(
                name=stage.name, seconds=float(approx), n_tasks=n_tasks,
                waves=waves, cpu_seconds=0.0, disk_seconds=0.0,
                network_seconds=0.0, overhead_seconds=0.0,
                spill_fraction=verdict.spill_fraction,
                gc_multiplier=verdict.gc_multiplier,
                cache_deficit=verdict.storage_deficit,
                oom=True, attempts=TASK_MAX_FAILURES,
            )

        spill_mb = verdict.spill_fraction * stage.input_mb
        deficit_read_mb = (
            verdict.storage_deficit * stage.input_mb
            if (stage.cache_demand_mb and not stage.reads_hdfs)
            else 0.0
        )

        # ---- shuffle byte sizes -------------------------------------------
        shuffle_ratio = codec.ratio if shuffle_compress else 1.0
        shuffle_out_wire_mb = (
            stage.shuffle_write_mb * serializer.size_factor * shuffle_ratio
        )
        shuffle_in_wire_mb = (
            0.0
            if stage.reads_hdfs
            else stage.input_mb * serializer.size_factor * shuffle_ratio
        )
        spill_ratio = codec.ratio if spill_compress else 1.0
        spill_wire_mb = spill_mb * serializer.size_factor * spill_ratio

        # ---- sort bypass ---------------------------------------------------
        bypass = stage.sortish and n_tasks <= bypass_threshold
        sort_cpu_factor = 0.85 if bypass else 1.0
        # Bypass writes one file per reducer: many more concurrent streams.
        shuffle_write_streams = conc_per_node * (3 if bypass else 1)

        # ---- CPU component -------------------------------------------------
        ser_heavy = (
            stage.shuffle_write_mb > 0
            or not stage.reads_hdfs
            or stage.cache_demand_mb > 0
        )
        cpu_core_s = (
            stage.input_mb
            * stage.cpu_per_mb
            * sort_cpu_factor
            * (serializer.cpu_factor if ser_heavy else 1.0)
            / cluster.scale_cpu()
        )
        if shuffle_compress:
            cpu_core_s += (
                stage.shuffle_write_mb * serializer.size_factor
                * codec.compress_cpu_per_mb
            )
            if not stage.reads_hdfs:
                cpu_core_s += (
                    stage.input_mb * serializer.size_factor
                    * codec.decompress_cpu_per_mb
                )
        cpu_core_s += spill_mb * SPILL_CPU_PER_MB
        cpu_core_s += deficit_read_mb * CACHE_REPARSE_CPU_PER_MB
        if speculation:
            cpu_core_s *= 1.04  # duplicate speculative work
        cpu_core_s *= verdict.gc_multiplier
        # Wave quantization: each wave takes one per-task CPU time, so the
        # stage's CPU component is per-task CPU x number of waves (equals
        # cpu_core_s / slots when n_tasks divides evenly into slots).
        cpu_time = (cpu_core_s / n_tasks) * waves

        # ---- disk component (per-node bound) -------------------------------
        disk_time = 0.0
        if stage.reads_hdfs:
            disk_time += hdfs.read_seconds(stage.input_mb, conc_per_node)
        if deficit_read_mb:
            disk_time += hdfs.read_seconds(deficit_read_mb, conc_per_node)
        if shuffle_out_wire_mb:
            disk_time += disk_seconds(
                shuffle_out_wire_mb / cluster.n_nodes,
                node, shuffle_write_streams, shuffle_buffer_kb,
            )
        if shuffle_in_wire_mb:
            disk_time += disk_seconds(
                shuffle_in_wire_mb / cluster.n_nodes,
                node, conc_per_node, io_buffer_kb,
            )
        if spill_wire_mb:
            disk_time += disk_seconds(
                2.0 * spill_wire_mb / cluster.n_nodes,  # write + read back
                node, conc_per_node, shuffle_buffer_kb,
            )
        if stage.hdfs_write_mb:
            disk_time += hdfs.write_seconds(stage.hdfs_write_mb, conc_per_node)

        # ---- network component ----------------------------------------------
        net_time = 0.0
        if shuffle_in_wire_mb:
            net_time += shuffle_network_seconds(
                shuffle_in_wire_mb, cluster, max_in_flight
            )
        if stage.broadcast_mb:
            net_time += broadcast_seconds(
                stage.broadcast_mb, cluster,
                float(config["spark.broadcast.blockSize"]),
            )
        # Executors on fewer nodes than the data: remote HDFS reads.
        nodes_used = min(placement.n_executors, cluster.n_nodes)
        remote_frac = 1.0 - nodes_used / cluster.n_nodes
        if stage.reads_hdfs and remote_frac > 0:
            net_time += (
                stage.input_mb * remote_frac / cluster.network_mbps
            )

        # ---- scheduling overheads -------------------------------------------
        overhead = STAGE_SETUP_SECONDS
        overhead += n_tasks * TASK_DISPATCH_SECONDS / np.sqrt(driver_cores)
        overhead += waves * WAVE_LAUNCH_SECONDS
        if stage.reads_hdfs and remote_frac > 0:
            # The scheduler waits out the locality timeout before running
            # tasks remotely.
            overhead += locality_wait * remote_frac * min(waves, 3)

        # ---- combine with partial overlap -------------------------------------
        components = np.array([cpu_time, disk_time, net_time])
        critical = float(components.max())
        residue = float(components.sum() - critical)
        stage_time = critical + OVERLAP_RESIDUE * residue + overhead

        # ---- stragglers / speculation -----------------------------------------
        tail = float(self._rng.exponential(0.10))
        if speculation:
            tail *= 0.35
        stage_time *= 1.0 + tail

        # ---- YARN vmem monitor --------------------------------------------------
        stage_time *= vmem_kill_penalty(
            float(config["yarn.nodemanager.vmem-pmem-ratio"]),
            serializer.deser_expansion,
        ).penalty_factor

        return StageResult(
            name=stage.name,
            seconds=float(stage_time),
            n_tasks=n_tasks,
            waves=waves,
            cpu_seconds=float(cpu_time),
            disk_seconds=float(disk_time),
            network_seconds=float(net_time),
            overhead_seconds=float(overhead),
            spill_fraction=verdict.spill_fraction,
            gc_multiplier=verdict.gc_multiplier,
            cache_deficit=verdict.storage_deficit,
        )
