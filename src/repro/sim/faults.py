"""Failure semantics: OOM retries, YARN rejections, container kills.

Spark retries a failed task up to ``spark.task.maxFailures`` (4) times
before aborting the stage and the job.  An analytic OOM is deterministic,
so a job that OOMs always burns the retries and fails; the burnt time is
charged to the evaluation, which is exactly the cost a real online tuning
step pays for a bad memory configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TASK_MAX_FAILURES",
    "YARN_REJECT_SECONDS",
    "YARN_HANG_SECONDS",
    "FAILURE_PERF_FACTOR",
    "StageFailure",
    "oom_attempt_charge",
    "vmem_kill_penalty",
]

#: spark.task.maxFailures default
TASK_MAX_FAILURES = 4

#: wall time burnt when YARN rejects the request outright
#: (InvalidResourceRequestException: container above max-allocation)
YARN_REJECT_SECONDS = 25.0

#: wall time burnt when the request is *valid but unsatisfiable* — the
#: application sits in ACCEPTED state until the operator's submit timeout
YARN_HANG_SECONDS = 180.0

#: a failed evaluation is charged this multiple of the *default-config*
#: execution time when converted to a performance value for rewards —
#: modelling the operator falling back to the default after the failure.
FAILURE_PERF_FACTOR = 2.5


class StageFailure(Exception):
    """Raised inside the engine when a stage exhausts its task retries."""

    def __init__(self, stage_name: str, reason: str, burnt_seconds: float):
        super().__init__(f"{stage_name}: {reason}")
        self.stage_name = stage_name
        self.reason = reason
        self.burnt_seconds = burnt_seconds


def oom_attempt_charge(stage_seconds: float) -> float:
    """Wall time burnt by OOM retries of one stage.

    Each attempt crashes partway through (tasks die when their working set
    peaks, roughly mid-stage), so each of the ``TASK_MAX_FAILURES``
    attempts is charged half a clean stage execution.
    """
    if stage_seconds < 0:
        raise ValueError("stage time cannot be negative")
    return TASK_MAX_FAILURES * 0.5 * stage_seconds


@dataclass(frozen=True)
class VmemVerdict:
    """Outcome of the YARN virtual-memory check."""

    penalty_factor: float  # >= 1 multiplier on stage time (restarted tasks)


def vmem_kill_penalty(vmem_pmem_ratio: float, deser_expansion: float) -> VmemVerdict:
    """Penalty from YARN's vmem monitor killing fat containers.

    JVMs map far more virtual than physical memory; with an aggressive
    ``yarn.nodemanager.vmem-pmem-ratio`` (close to 1) containers are
    killed and their tasks rerun.  The Java serializer's larger object
    graphs make this worse.
    """
    if vmem_pmem_ratio <= 0:
        raise ValueError("ratio must be positive")
    # JVM vmem footprint is ~1.8-2.3x pmem; ratios above ~2.2 are safe.
    threshold = 1.9 + 0.3 * (deser_expansion - 1.0)
    if vmem_pmem_ratio >= threshold:
        return VmemVerdict(1.0)
    deficit = (threshold - vmem_pmem_ratio) / threshold
    return VmemVerdict(1.0 + 0.8 * deficit)
