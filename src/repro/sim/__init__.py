"""The Spark execution simulator.

Composes the cluster substrate (:mod:`repro.cluster`) with workload stage
DAGs (:mod:`repro.workloads`) into an analytic wave-based execution model:
``SparkSimulator.evaluate(config)`` returns an :class:`ExecutionResult`
with the job duration, success flag, per-stage breakdown and the
utilization profile that feeds the DRL state.

This replaces the paper's physical 3-node cluster; see DESIGN.md §2 for
the substitution rationale.
"""

from repro.sim.codecs import CodecProfile, SerializerProfile, codec_profile, serializer_profile
from repro.sim.engine import SparkSimulator
from repro.sim.result import ExecutionResult, StageResult
from repro.sim.timeline import render_timeline

__all__ = [
    "SparkSimulator",
    "ExecutionResult",
    "StageResult",
    "CodecProfile",
    "SerializerProfile",
    "codec_profile",
    "serializer_profile",
    "render_timeline",
]
