"""Compression codec and serializer cost profiles.

Numbers are throughput-derived costs per MB of *uncompressed* data on the
reference 2.9 GHz core, in line with published lz4/snappy/zstd benchmarks
and the well-known Kryo-vs-Java serialization gap.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CodecProfile",
    "SerializerProfile",
    "codec_profile",
    "serializer_profile",
]


@dataclass(frozen=True)
class CodecProfile:
    """A compression codec's size ratio and CPU costs."""

    name: str
    ratio: float  # compressed size / uncompressed size
    compress_cpu_per_mb: float  # core-seconds per uncompressed MB
    decompress_cpu_per_mb: float


_CODECS = {
    "lz4": CodecProfile("lz4", ratio=0.55, compress_cpu_per_mb=0.0035,
                        decompress_cpu_per_mb=0.0012),
    "snappy": CodecProfile("snappy", ratio=0.60, compress_cpu_per_mb=0.0030,
                           decompress_cpu_per_mb=0.0012),
    "zstd": CodecProfile("zstd", ratio=0.40, compress_cpu_per_mb=0.0095,
                         decompress_cpu_per_mb=0.0030),
}


@dataclass(frozen=True)
class SerializerProfile:
    """Serializer CPU factor and on-wire/in-memory size behaviour."""

    name: str
    cpu_factor: float  # multiplier on serialization-heavy stage CPU
    size_factor: float  # serialized size multiplier (shuffle bytes)
    deser_expansion: float  # in-memory expansion of deserialized records


_SERIALIZERS = {
    "java": SerializerProfile("java", cpu_factor=1.0, size_factor=1.0,
                              deser_expansion=1.30),
    "kryo": SerializerProfile("kryo", cpu_factor=0.80, size_factor=0.72,
                              deser_expansion=1.05),
}


def codec_profile(name: str) -> CodecProfile:
    """Look up a codec profile (spark.io.compression.codec values)."""
    try:
        return _CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; have {sorted(_CODECS)}"
        ) from None


def serializer_profile(name: str) -> SerializerProfile:
    """Look up a serializer profile (spark.serializer values)."""
    try:
        return _SERIALIZERS[name]
    except KeyError:
        raise ValueError(
            f"unknown serializer {name!r}; have {sorted(_SERIALIZERS)}"
        ) from None
