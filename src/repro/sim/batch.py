"""Vectorized batch evaluation for :class:`~repro.sim.engine.SparkSimulator`.

The analytic stage model is deterministic given a configuration; only the
measurement noise and straggler tails are stochastic.  That split drives
the batch design:

1. **pass 1 (vectorized, no RNG)** — decode the candidate matrix into
   typed columns, plan YARN placements for all candidates at once, and
   broadcast the per-stage CPU/disk/network/overhead math over the
   candidate axis.  OOM verdicts are configuration-only, so the stage at
   which each candidate fails (if any) is known before any draw.
2. **pass 2 (sequential RNG + assembly)** — walk candidates in order,
   drawing exactly the variates the scalar path would (one noise factor
   per feasible candidate, one straggler tail per completed stage,
   nothing for YARN-rejected candidates or the OOM stage itself), and
   assemble :class:`~repro.sim.result.StageResult` /
   :class:`~repro.sim.result.ExecutionResult` records.

Every arithmetic expression mirrors the scalar engine's operation order,
so row ``i`` of ``evaluate_batch`` is bit-identical to a sequential
``evaluate`` under the same generator state (pinned by the determinism
suite).  The two scalar-``**`` sites (fetch-pipelining efficiency, GC
occupancy curve) stay Python-float ``pow`` per element because numpy's
array ``**`` is not bit-identical to it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.cluster.yarn import plan_executors_batch
from repro.sim.codecs import codec_profile, serializer_profile
from repro.sim.faults import (
    TASK_MAX_FAILURES,
    YARN_HANG_SECONDS,
    YARN_REJECT_SECONDS,
    oom_attempt_charge,
    vmem_kill_penalty,
)
from repro.sim.result import ExecutionResult, StageResult
from repro.utils.stats import lognormal_noise_factor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config.space import ConfigurationSpace
    from repro.sim.engine import SparkSimulator

__all__ = ["evaluate_batch", "evaluate_population"]

# log2(512/16): normalization constant of the disk buffer-quality curve.
_BUFFER_QUALITY_DENOM = float(np.log2(512.0 / 16.0))


def _profile_columns(col: np.ndarray, getter, attrs: tuple[str, ...]):
    """Expand a categorical column into per-attribute float columns."""
    out = {a: np.empty(col.shape, dtype=np.float64) for a in attrs}
    for name in np.unique(col):
        profile = getter(str(name))
        mask = col == name
        for a in attrs:
            out[a][mask] = getattr(profile, a)
    return out


class _ClusterVecModels:
    """Per-candidate disk/HDFS/network rate helpers (feasible subset)."""

    def __init__(self, cluster, cols: Mapping[str, np.ndarray], sel):
        from repro.utils.stats import saturating

        self.cluster = cluster
        self.node = cluster.node
        self.blocksize = cols["dfs.blocksize"][sel].astype(np.float64)
        self.replication = cols["dfs.replication"][sel].astype(np.int64)
        self.io_buffer_kb = cols["io.file.buffer.size"][sel].astype(
            np.float64
        )
        nn = cols["dfs.namenode.handler.count"][sel].astype(np.float64)
        dn = cols["dfs.datanode.handler.count"][sel].astype(np.float64)
        nn_capacity = np.array([saturating(float(x), 120.0) for x in nn])
        dn_capacity = np.array([saturating(float(x), 60.0) for x in dn])
        self.rpc_capacity = np.minimum(nn_capacity * 4.0, dn_capacity * 6.0)

    def input_splits(self, input_mb: float) -> np.ndarray:
        return np.maximum(
            1, np.ceil(input_mb / self.blocksize).astype(np.int64)
        )

    def disk_rate(self, streams: np.ndarray, buffer_kb) -> np.ndarray:
        quality = np.clip(
            np.log2(buffer_kb / 16.0) / _BUFFER_QUALITY_DENOM, 0.0, 1.0
        )
        interference = (streams - 1) * (0.30 - 0.22 * quality)
        floor = self.node.disk_rand_mbps / self.node.disk_seq_mbps
        share = np.maximum(floor, 1.0 / (1.0 + interference))
        return self.node.disk_seq_mbps * share

    def disk_seconds(self, mb, streams, buffer_kb) -> np.ndarray:
        return mb / self.disk_rate(streams, buffer_kb)

    def _rpc_slowdown(self, clients: np.ndarray) -> np.ndarray:
        return np.where(
            clients <= self.rpc_capacity,
            1.0,
            1.0 + 0.12 * (clients / self.rpc_capacity - 1.0),
        )

    def hdfs_read_seconds(self, mb, streams: np.ndarray) -> np.ndarray:
        per_node_mb = mb / self.cluster.n_nodes
        rate = self.disk_rate(streams, self.io_buffer_kb)
        base = per_node_mb / rate
        return base * self._rpc_slowdown(streams * self.cluster.n_nodes)

    def hdfs_write_seconds(self, mb, streams: np.ndarray) -> np.ndarray:
        disk_mb_per_node = mb * self.replication / self.cluster.n_nodes
        rate = self.disk_rate(streams, self.io_buffer_kb)
        disk_time = disk_mb_per_node / rate
        net_mb_per_node = (
            mb * np.maximum(self.replication - 1, 0) / self.cluster.n_nodes
        )
        net_time = net_mb_per_node / self.cluster.network_mbps
        return np.maximum(disk_time, net_time) * self._rpc_slowdown(
            streams * self.cluster.n_nodes
        )


def evaluate_batch(
    sim: "SparkSimulator",
    vectors: np.ndarray,
    space: "ConfigurationSpace",
    apply_faults: bool = True,
) -> list[ExecutionResult]:
    """Evaluate ``n`` normalized configuration vectors in one pass.

    Returns one :class:`ExecutionResult` per row, bit-identical to
    ``[sim.evaluate(space.decode(v)) for v in vectors]`` under the same
    generator state.  ``apply_faults=False`` skips the fault injector so
    a caller interleaving other fault-stream draws (the environment's
    ``step_batch``) can apply it per step itself.
    """
    from repro.sim.engine import (
        CACHE_REPARSE_CPU_PER_MB,
        JOB_SETUP_SECONDS,
        OVERLAP_RESIDUE,
        SPILL_CPU_PER_MB,
        STAGE_SETUP_SECONDS,
        TASK_DISPATCH_SECONDS,
        WAVE_LAUNCH_SECONDS,
    )

    mat = np.asarray(vectors, dtype=np.float64)
    if mat.ndim != 2 or mat.shape[1] != space.dim:
        raise ValueError(
            f"expected shape (n, {space.dim}), got {mat.shape}"
        )
    n = mat.shape[0]
    if n == 0:
        return []

    t = sim.telemetry
    cluster = sim.cluster
    node = cluster.node
    stages = sim._stages

    with t.phase("sim.evaluate_batch"), t.span(
        "sim.evaluate_batch", workload=sim.workload.code, n=n
    ):
        cols = space.decode_columns(mat)
        placement = plan_executors_batch(cols, cluster)
        feasible = placement.feasible
        fi = np.flatnonzero(feasible)
        k = fi.size

        plan = _stage_plan(
            sim, cols, placement, fi, cluster, node, stages,
            CACHE_REPARSE_CPU_PER_MB, SPILL_CPU_PER_MB, OVERLAP_RESIDUE,
            STAGE_SETUP_SECONDS, TASK_DISPATCH_SECONDS, WAVE_LAUNCH_SECONDS,
        ) if k else None

        # position of candidate j within the feasible subset
        pos = np.full(n, -1, dtype=np.int64)
        pos[fi] = np.arange(k)

        results: list[ExecutionResult] = []
        for j in range(n):
            sim.evaluation_count += 1
            t.count(
                "sim.evaluations_total", help="simulated configuration runs"
            )
            pl = placement.row(j)
            if not pl.feasible:
                results.append(_infeasible_result(sim, pl, t))
                continue
            results.append(
                _assemble_feasible(
                    sim, pl, plan, int(pos[j]), stages, t,
                    JOB_SETUP_SECONDS,
                )
            )

        if apply_faults and (
            sim.fault_injector is not None and sim.fault_injector.enabled
        ):
            for j, result in enumerate(results):
                perturbed, injected = sim.fault_injector.perturb_result(
                    result
                )
                if injected:
                    for kind in injected:
                        t.count(
                            "faults.injected_total",
                            help="stochastic chaos injections by kind",
                            kind=kind,
                        )
                results[j] = perturbed
    return results


def evaluate_population(
    sims: "list[SparkSimulator]",
    vectors: np.ndarray,
    space: "ConfigurationSpace",
) -> list[ExecutionResult]:
    """Evaluate one vector per simulator through a single analytic pass.

    ``sims[j]`` evaluates ``vectors[j]``.  All simulators must share the
    same workload, dataset, and cluster, so the deterministic pass-1
    stage math (:func:`_stage_plan` never touches per-sim state) is
    computed once for the whole population; pass 2 walks rows in order
    drawing each simulator's *own* RNG stream and counting against its
    own telemetry, exactly as a scalar ``sims[j].evaluate`` would.
    Faults are never applied here — each caller interleaves its
    environment's fault stream per session (see
    ``VectorTuningEnv.step``).

    Row ``j`` is bit-identical to ``sims[j].evaluate(space.decode(
    vectors[j]))`` under the same per-sim generator states.
    """
    from repro.sim.engine import (
        CACHE_REPARSE_CPU_PER_MB,
        JOB_SETUP_SECONDS,
        OVERLAP_RESIDUE,
        SPILL_CPU_PER_MB,
        STAGE_SETUP_SECONDS,
        TASK_DISPATCH_SECONDS,
        WAVE_LAUNCH_SECONDS,
    )

    mat = np.asarray(vectors, dtype=np.float64)
    if mat.ndim != 2 or mat.shape[1] != space.dim:
        raise ValueError(
            f"expected shape (n, {space.dim}), got {mat.shape}"
        )
    n = mat.shape[0]
    if len(sims) != n:
        raise ValueError(
            f"got {len(sims)} simulators for {n} vectors"
        )
    if n == 0:
        return []
    lead = sims[0]
    for sim in sims[1:]:
        if (
            sim.workload.code != lead.workload.code
            or sim.dataset.label != lead.dataset.label
            or sim.cluster != lead.cluster
        ):
            raise ValueError(
                "population simulators must share workload/dataset/cluster"
            )

    cluster = lead.cluster
    node = cluster.node
    stages = lead._stages
    t0 = lead.telemetry

    with t0.phase("sim.evaluate_population"), t0.span(
        "sim.evaluate_population", workload=lead.workload.code, n=n
    ):
        cols = space.decode_columns(mat)
        placement = plan_executors_batch(cols, cluster)
        fi = np.flatnonzero(placement.feasible)
        k = fi.size

        plan = _stage_plan(
            lead, cols, placement, fi, cluster, node, stages,
            CACHE_REPARSE_CPU_PER_MB, SPILL_CPU_PER_MB, OVERLAP_RESIDUE,
            STAGE_SETUP_SECONDS, TASK_DISPATCH_SECONDS, WAVE_LAUNCH_SECONDS,
        ) if k else None

        pos = np.full(n, -1, dtype=np.int64)
        pos[fi] = np.arange(k)

        results: list[ExecutionResult] = []
        for j in range(n):
            sim = sims[j]
            t = sim.telemetry
            sim.evaluation_count += 1
            t.count(
                "sim.evaluations_total", help="simulated configuration runs"
            )
            pl = placement.row(j)
            if not pl.feasible:
                results.append(_infeasible_result(sim, pl, t))
                continue
            results.append(
                _assemble_feasible(
                    sim, pl, plan, int(pos[j]), stages, t,
                    JOB_SETUP_SECONDS,
                )
            )
    return results


def _infeasible_result(sim, pl, t) -> ExecutionResult:
    burnt = YARN_HANG_SECONDS if pl.hangs else YARN_REJECT_SECONDS
    t.count(
        "sim.faults_total",
        help="injected faults by kind",
        kind="yarn-hang" if pl.hangs else "yarn-reject",
    )
    t.event(
        "sim-fault", fault="yarn-rejection", reason=pl.reason,
        burnt_s=float(burnt),
    )
    return ExecutionResult(
        duration_s=burnt,
        success=False,
        failure_reason=f"YARN rejection: {pl.reason}",
        cpu_demand_per_node=np.full(sim.cluster.n_nodes, 0.1),
    )


class _StagePlan:
    """Pass-1 output: per-stage candidate-axis arrays (feasible subset)."""

    __slots__ = ("per_stage", "speculation", "vmem_factor")

    def __init__(self, per_stage, speculation, vmem_factor):
        self.per_stage = per_stage
        self.speculation = speculation
        self.vmem_factor = vmem_factor


def _stage_plan(
    sim, cols, placement, fi, cluster, node, stages,
    cache_reparse_cpu, spill_cpu, overlap_residue,
    stage_setup_s, task_dispatch_s, wave_launch_s,
) -> _StagePlan:
    """Vectorize the per-stage analytic model over the feasible subset."""
    k = fi.size
    heap = placement.executor_heap_mb[fi]
    cores = placement.executor_cores[fi]
    n_exec = placement.n_executors[fi]
    total_cores = placement.total_cores[fi]
    if np.any(heap <= 0) or np.any(cores <= 0):
        raise ValueError("executor heap and cores must be positive")

    # -- per-candidate config columns (feasible subset) ---------------------
    ser = _profile_columns(
        cols["spark.serializer"][fi], serializer_profile,
        ("cpu_factor", "size_factor", "deser_expansion"),
    )
    codec = _profile_columns(
        cols["spark.io.compression.codec"][fi], codec_profile,
        ("ratio", "compress_cpu_per_mb", "decompress_cpu_per_mb"),
    )
    shuffle_compress = cols["spark.shuffle.compress"][fi]
    spill_compress = cols["spark.shuffle.spill.compress"][fi]
    parallelism = cols["spark.default.parallelism"][fi].astype(np.int64)
    shuffle_buffer_kb = cols["spark.shuffle.file.buffer"][fi].astype(
        np.float64
    )
    max_in_flight = cols["spark.reducer.maxSizeInFlight"][fi].astype(
        np.float64
    )
    bypass_threshold = cols[
        "spark.shuffle.sort.bypassMergeThreshold"
    ][fi].astype(np.int64)
    speculation = cols["spark.speculation"][fi]
    locality_wait = cols["spark.locality.wait"][fi]
    driver_cores = cols["spark.driver.cores"][fi].astype(np.int64)
    broadcast_block = cols["spark.broadcast.blockSize"][fi].astype(
        np.float64
    )
    mem_fraction = cols["spark.memory.fraction"][fi]
    storage_fraction = cols["spark.memory.storageFraction"][fi]
    vmem_ratio = cols["yarn.nodemanager.vmem-pmem-ratio"][fi]

    models = _ClusterVecModels(cluster, cols, fi)
    scale_cpu = cluster.scale_cpu()

    # -- unified memory regions (MemoryModel, vectorized) -------------------
    usable = np.maximum(heap.astype(np.float64) - 300.0, 1.0)
    unified = usable * mem_fraction
    base_exec = unified * (1.0 - storage_fraction)
    borrowable = unified * storage_fraction * 0.5
    exec_region = base_exec + borrowable
    storage_region = unified * storage_fraction
    user_region = usable * (1.0 - mem_fraction)
    share = exec_region / cores
    hard_limit = exec_region + 0.5 * user_region

    # Scalar-pow sites: numpy's array ``**`` is not bit-identical to
    # Python float pow, so these stay per-element.
    efficiency = np.array(
        [
            float(np.clip(m / 48.0, 0.15, 1.0)) ** 0.35
            for m in max_in_flight
        ],
        dtype=np.float64,
    )
    vmem_factor = np.array(
        [
            vmem_kill_penalty(float(r), float(d)).penalty_factor
            for r, d in zip(vmem_ratio, ser["deser_expansion"])
        ],
        dtype=np.float64,
    )

    slots = np.maximum(np.minimum(total_cores, cluster.total_cores), 1)
    nodes_used = np.minimum(n_exec, cluster.n_nodes)
    remote_frac = 1.0 - nodes_used / cluster.n_nodes
    latency_s = cluster.network_latency_ms / 1000.0

    per_stage = []
    for stage in stages:
        # ---- task geometry ------------------------------------------------
        if stage.reads_hdfs or stage.inherits_input_partitions:
            n_tasks = models.input_splits(stage.input_mb)
        else:
            n_tasks = np.maximum(1, parallelism)
        waves = np.ceil(n_tasks / slots).astype(np.int64)
        active_slots = np.minimum(n_tasks, slots)
        conc_per_node = np.maximum(
            1, np.ceil(active_slots / cluster.n_nodes).astype(np.int64)
        )
        per_task_mb = stage.input_mb / n_tasks

        # ---- memory verdict -----------------------------------------------
        per_exec_cache = (
            stage.cache_demand_mb / n_exec
            if stage.cache_demand_mb
            else np.zeros(k)
        )
        working_set = (
            per_task_mb * stage.memory_expansion * ser["deser_expansion"]
        )
        oom = working_set * stage.rigid_memory_fraction > hard_limit
        spill_fraction = np.zeros(k)
        over = working_set > share
        spill_fraction[over] = (
            (working_set[over] - share[over]) / working_set[over]
        )
        storage_deficit = np.zeros(k)
        cached = per_exec_cache > 0
        if cached.any():
            fits = np.minimum(per_exec_cache[cached], storage_region[cached])
            storage_deficit[cached] = 1.0 - fits / per_exec_cache[cached]
        live = np.minimum(working_set, share) * cores + np.minimum(
            per_exec_cache, storage_region
        )
        occupancy = np.minimum(live / usable, 1.0)
        gc_multiplier = np.fromiter(
            (1.0 + 2.2 * float(o) ** 3.5 for o in occupancy),
            dtype=np.float64, count=k,
        )
        hot = mem_fraction > 0.78
        gc_multiplier[hot] += 2.0 * (mem_fraction[hot] - 0.78)

        input_cpu = stage.input_mb * stage.cpu_per_mb
        approx = input_cpu / slots + stage.input_mb / (
            node.disk_seq_mbps * cluster.n_nodes
        )

        spill_mb = spill_fraction * stage.input_mb
        use_deficit = stage.cache_demand_mb and not stage.reads_hdfs
        deficit_read_mb = (
            storage_deficit * stage.input_mb if use_deficit else np.zeros(k)
        )

        # ---- shuffle byte sizes -------------------------------------------
        shuffle_ratio = np.where(shuffle_compress, codec["ratio"], 1.0)
        shuffle_out_wire = (
            stage.shuffle_write_mb * ser["size_factor"] * shuffle_ratio
        )
        shuffle_in_wire = (
            np.zeros(k)
            if stage.reads_hdfs
            else stage.input_mb * ser["size_factor"] * shuffle_ratio
        )
        spill_ratio = np.where(spill_compress, codec["ratio"], 1.0)
        spill_wire = spill_mb * ser["size_factor"] * spill_ratio

        # ---- sort bypass ---------------------------------------------------
        if stage.sortish:
            bypass = n_tasks <= bypass_threshold
        else:
            bypass = np.zeros(k, dtype=bool)
        sort_cpu_factor = np.where(bypass, 0.85, 1.0)
        shuffle_write_streams = conc_per_node * np.where(bypass, 3, 1)

        # ---- CPU component -------------------------------------------------
        ser_heavy = (
            stage.shuffle_write_mb > 0
            or not stage.reads_hdfs
            or stage.cache_demand_mb > 0
        )
        cpu_core_s = input_cpu * sort_cpu_factor
        if ser_heavy:
            cpu_core_s = cpu_core_s * ser["cpu_factor"]
        cpu_core_s = cpu_core_s / scale_cpu
        sc = shuffle_compress
        if sc.any():
            add = (
                stage.shuffle_write_mb * ser["size_factor"]
                * codec["compress_cpu_per_mb"]
            )
            cpu_core_s[sc] += add[sc]
            if not stage.reads_hdfs:
                add = (
                    stage.input_mb * ser["size_factor"]
                    * codec["decompress_cpu_per_mb"]
                )
                cpu_core_s[sc] += add[sc]
        cpu_core_s += spill_mb * spill_cpu
        cpu_core_s += deficit_read_mb * cache_reparse_cpu
        spec = speculation
        cpu_core_s[spec] *= 1.04
        cpu_core_s *= gc_multiplier
        cpu_time = (cpu_core_s / n_tasks) * waves

        # ---- disk component (per-node bound) -------------------------------
        disk_time = np.zeros(k)
        if stage.reads_hdfs:
            disk_time += models.hdfs_read_seconds(
                stage.input_mb, conc_per_node
            )
        if use_deficit:
            disk_time += models.hdfs_read_seconds(
                deficit_read_mb, conc_per_node
            )
        if stage.shuffle_write_mb:
            disk_time += models.disk_seconds(
                shuffle_out_wire / cluster.n_nodes,
                shuffle_write_streams, shuffle_buffer_kb,
            )
        if not stage.reads_hdfs and stage.input_mb:
            disk_time += models.disk_seconds(
                shuffle_in_wire / cluster.n_nodes,
                conc_per_node, models.io_buffer_kb,
            )
        disk_time += models.disk_seconds(
            2.0 * spill_wire / cluster.n_nodes,
            conc_per_node, shuffle_buffer_kb,
        )
        if stage.hdfs_write_mb:
            disk_time += models.hdfs_write_seconds(
                stage.hdfs_write_mb, conc_per_node
            )

        # ---- network component --------------------------------------------
        net_time = np.zeros(k)
        if (
            not stage.reads_hdfs
            and stage.input_mb
            and cluster.n_nodes > 1
        ):
            cross_mb = shuffle_in_wire * (cluster.n_nodes - 1) / cluster.n_nodes
            per_node_mb = cross_mb / cluster.n_nodes
            bandwidth = cluster.network_mbps * efficiency
            rounds = np.maximum(
                1, np.ceil(per_node_mb / max_in_flight).astype(np.int64)
            )
            net_time += per_node_mb / bandwidth + rounds * latency_s
        if stage.broadcast_mb:
            blocks = np.maximum(1.0, stage.broadcast_mb / broadcast_block)
            net_time += (
                stage.broadcast_mb / cluster.network_mbps
                + blocks * latency_s
            )
        remote = remote_frac > 0
        if stage.reads_hdfs and remote.any():
            add = stage.input_mb * remote_frac / cluster.network_mbps
            net_time[remote] += add[remote]

        # ---- scheduling overheads -----------------------------------------
        overhead = np.full(k, stage_setup_s)
        overhead += n_tasks * task_dispatch_s / np.sqrt(driver_cores)
        overhead += waves * wave_launch_s
        if stage.reads_hdfs and remote.any():
            add = locality_wait * remote_frac * np.minimum(waves, 3)
            overhead[remote] += add[remote]

        # ---- combine with partial overlap ---------------------------------
        components = np.stack([cpu_time, disk_time, net_time], axis=1)
        critical = components.max(axis=1)
        residue = components.sum(axis=1) - critical
        stage_pre = critical + overlap_residue * residue + overhead

        per_stage.append(
            {
                "n_tasks": n_tasks,
                "waves": waves,
                "pre": stage_pre,
                "cpu_time": cpu_time,
                "disk_time": disk_time,
                "net_time": net_time,
                "overhead": overhead,
                "spill_fraction": spill_fraction,
                "gc_multiplier": gc_multiplier,
                "storage_deficit": storage_deficit,
                "oom": oom,
                "approx": approx,
            }
        )
    return _StagePlan(per_stage, speculation, vmem_factor)


def _assemble_feasible(
    sim, pl, plan: _StagePlan, p: int, stages, t, job_setup_s,
) -> ExecutionResult:
    """Pass 2 for one feasible candidate: draw RNG, build result records."""
    noise = lognormal_noise_factor(sim._rng, sim.noise_sigma)
    speculation = bool(plan.speculation[p])
    vmem = float(plan.vmem_factor[p])
    results: list[StageResult] = []
    elapsed = 0.0
    total_cpu_core_s = 0.0
    for stage, arrs in zip(stages, plan.per_stage):
        if arrs["oom"][p]:
            approx = float(arrs["approx"][p])
            burnt = elapsed + oom_attempt_charge(approx)
            duration = (job_setup_s + burnt) * noise
            reason = (
                f"executor OOM in stage {stage.name!r} after "
                f"{TASK_MAX_FAILURES} task attempts"
            )
            t.count(
                "sim.faults_total",
                help="injected faults by kind",
                kind="stage-failure",
            )
            t.event(
                "sim-fault", fault="stage-failure", stage=stage.name,
                reason=reason, burnt_s=float(duration),
            )
            return ExecutionResult(
                duration_s=float(duration),
                success=False,
                failure_reason=reason,
                cpu_demand_per_node=sim._demand(pl, 0.5),
                n_executors=pl.n_executors,
                executor_cores=pl.executor_cores,
                executor_heap_mb=pl.executor_heap_mb,
            )
        tail = float(sim._rng.exponential(0.10))
        if speculation:
            tail *= 0.35
        stage_time = float(arrs["pre"][p]) * (1.0 + tail)
        stage_time *= vmem
        res = StageResult(
            name=stage.name,
            seconds=float(stage_time),
            n_tasks=int(arrs["n_tasks"][p]),
            waves=int(arrs["waves"][p]),
            cpu_seconds=float(arrs["cpu_time"][p]),
            disk_seconds=float(arrs["disk_time"][p]),
            network_seconds=float(arrs["net_time"][p]),
            overhead_seconds=float(arrs["overhead"][p]),
            spill_fraction=float(arrs["spill_fraction"][p]),
            gc_multiplier=float(arrs["gc_multiplier"][p]),
            cache_deficit=float(arrs["storage_deficit"][p]),
        )
        results.append(res)
        elapsed += res.seconds
        total_cpu_core_s += res.cpu_seconds * pl.total_cores
        t.observe(
            "sim.stage_seconds",
            res.seconds,
            help="simulated per-stage duration",
            stage=stage.name,
        )
        t.event(
            "sim-stage",
            stage=stage.name,
            seconds=float(res.seconds),
            waves=res.waves,
            spill_fraction=float(res.spill_fraction),
        )
    duration = (job_setup_s + elapsed) * noise
    utilization = min(
        total_cpu_core_s / max(duration * sim.cluster.total_cores, 1e-9),
        1.0,
    )
    return ExecutionResult(
        duration_s=float(duration),
        success=True,
        stages=tuple(results),
        cpu_demand_per_node=sim._demand(pl, utilization),
        n_executors=pl.n_executors,
        executor_cores=pl.executor_cores,
        executor_heap_mb=pl.executor_heap_mb,
    )
