"""HiBench-style run report."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.result import ExecutionResult

__all__ = ["BenchReport"]


@dataclass(frozen=True)
class BenchReport:
    """One line of a ``hibench.report`` file, plus the raw result.

    HiBench reports ``Type Date Input_data_size Duration(s)
    Throughput(bytes/s) Throughput/node``; we keep the same quantities in
    MB for readability.
    """

    workload: str
    dataset: str
    input_mb: float
    duration_s: float
    throughput_mb_s: float
    throughput_per_node_mb_s: float
    success: bool
    result: ExecutionResult

    @classmethod
    def from_result(
        cls,
        workload: str,
        dataset: str,
        input_mb: float,
        n_nodes: int,
        result: ExecutionResult,
    ) -> "BenchReport":
        if result.duration_s <= 0:
            raise ValueError("duration must be positive")
        throughput = input_mb / result.duration_s if result.success else 0.0
        return cls(
            workload=workload,
            dataset=dataset,
            input_mb=input_mb,
            duration_s=result.duration_s,
            throughput_mb_s=throughput,
            throughput_per_node_mb_s=throughput / n_nodes,
            success=result.success,
            result=result,
        )

    def report_line(self) -> str:
        """The single-line textual form, HiBench style."""
        status = "OK" if self.success else "FAILED"
        return (
            f"{self.workload:<10} {self.dataset:<3} "
            f"{self.input_mb:>10.1f}MB {self.duration_s:>9.2f}s "
            f"{self.throughput_mb_s:>9.2f}MB/s "
            f"{self.throughput_per_node_mb_s:>9.2f}MB/s/node {status}"
        )
