"""HiBench-style benchmark runner and report.

HiBench reports, per application run, the input size, duration and
throughput; :class:`BenchmarkRunner` produces the same record from the
simulator so the tuning stack consumes results in the shape the paper's
toolchain did.
"""

from repro.hibench.report import BenchReport
from repro.hibench.runner import BenchmarkRunner

__all__ = ["BenchReport", "BenchmarkRunner"]
