"""Benchmark runner: evaluate a configuration and produce a report."""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.cluster.hardware import ClusterSpec
from repro.hibench.report import BenchReport
from repro.sim.engine import SparkSimulator
from repro.workloads.base import DatasetSpec, Workload

__all__ = ["BenchmarkRunner"]


class BenchmarkRunner:
    """Runs one workload-input pair repeatedly under different configs.

    This is the object a tuning approach holds: each ``run`` is one costly
    configuration evaluation, and the runner keeps the HiBench-style
    history for reports.
    """

    def __init__(
        self,
        workload: Workload,
        dataset: DatasetSpec | str,
        cluster: ClusterSpec,
        rng: np.random.Generator,
        noise_sigma: float = 0.10,
    ):
        self.simulator = SparkSimulator(
            workload, dataset, cluster, rng, noise_sigma=noise_sigma
        )
        self.workload = workload
        self.dataset = self.simulator.dataset
        self.cluster = cluster
        self.history: list[BenchReport] = []

    def run(self, config: Mapping[str, Any]) -> BenchReport:
        """Evaluate ``config`` once; append and return the report."""
        result = self.simulator.evaluate(config)
        report = BenchReport.from_result(
            workload=self.workload.code,
            dataset=self.dataset.label,
            input_mb=self.dataset.input_mb,
            n_nodes=self.cluster.n_nodes,
            result=result,
        )
        self.history.append(report)
        return report

    def record(self, result) -> BenchReport:
        """Append and return the report for an externally evaluated result.

        Used by the batch fast path, where the simulator evaluates many
        configurations in one vectorized call and the per-candidate
        bookkeeping happens afterwards.
        """
        report = BenchReport.from_result(
            workload=self.workload.code,
            dataset=self.dataset.label,
            input_mb=self.dataset.input_mb,
            n_nodes=self.cluster.n_nodes,
            result=result,
        )
        self.history.append(report)
        return report

    def report_text(self) -> str:
        """The accumulated ``hibench.report`` content."""
        return "\n".join(r.report_line() for r in self.history)
