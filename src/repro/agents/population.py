"""Batched critic/actor queries across a population of TD3 agents.

:class:`PopulationTD3View` stacks N independent
:class:`~repro.agents.td3.TD3Agent` instances (via
:class:`~repro.nn.population.StackedSequential`) and exposes exactly the
three deterministic queries the online tuning loop issues — greedy
``act``, single-pair ``min_q``, and candidate-fan ``twin_q`` — as one
3-D tensor program each.  Everything stochastic (exploration noise,
candidate draws, fine-tune updates) stays on the scalar agents, whose
parameters are *views* into the stacked storage, so per-agent updates
and batched queries always agree.

Bit-identity per row is inherited from ``StackedSequential`` plus the
facts that ``np.clip``/``np.minimum`` are elementwise and the critic
input concatenation is pure data movement.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.population import StackedSequential

__all__ = ["PopulationTD3View"]


class PopulationTD3View:
    """Lockstep deterministic queries over N distinct TD3 agents.

    Row ``i`` of every method equals the corresponding scalar call on
    ``agents[i]`` bit-for-bit.  Returned arrays may alias pooled
    workspaces — consume them before the next call with the same
    candidate count.
    """

    def __init__(self, agents: Sequence, allocator=None):
        agents = list(agents)
        if not agents:
            raise ValueError("population needs at least one agent")
        if len({id(a) for a in agents}) != len(agents):
            raise ValueError("population agents must be distinct objects")
        lead = agents[0]
        for agent in agents:
            for net in ("actor", "critic1", "critic2"):
                if not hasattr(agent, net):
                    raise TypeError(
                        "population agents must expose actor/critic1/"
                        f"critic2 (missing {net!r})"
                    )
            if (
                agent.state_dim != lead.state_dim
                or agent.action_dim != lead.action_dim
            ):
                raise ValueError("population agents must share dimensions")
        self.agents = agents
        self.n = len(agents)
        self.state_dim = lead.state_dim
        self.action_dim = lead.action_dim
        # Parameter blocks are allocated in this fixed order (actor,
        # critic1, critic2; per Linear layer weight then bias) — the
        # shared-memory arena plan in ``repro.parallel.sharding``
        # depends on it.
        self.actor = StackedSequential(
            [a.actor for a in agents], allocator=allocator
        )
        self.critic1 = StackedSequential(
            [a.critic1 for a in agents], allocator=allocator
        )
        self.critic2 = StackedSequential(
            [a.critic2 for a in agents], allocator=allocator
        )
        # Pooled (n, rows, state+action) critic-input buffers, keyed by
        # candidate count — mirrors the scalar layers' workspace policy.
        self._x: dict[int, np.ndarray] = {}

    def members_finite(self) -> np.ndarray:
        """``True`` per member iff its actor and both critics hold only
        finite parameters — the health probe behind member quarantine."""
        return (
            self.actor.members_finite()
            & self.critic1.members_finite()
            & self.critic2.members_finite()
        )

    def _x_buffer(self, rows: int) -> np.ndarray:
        buf = self._x.get(rows)
        if buf is None:
            buf = self._x[rows] = np.empty(
                (self.n, rows, self.state_dim + self.action_dim),
                dtype=np.float64,
            )
        return buf

    def act(self, states: np.ndarray) -> np.ndarray:
        """Greedy actions, ``(n, action_dim)``.

        Row ``i`` equals ``agents[i].act(states[i], explore=False)``.
        """
        out = self.actor.forward(
            np.asarray(states, dtype=np.float64)[:, None, :]
        )
        return np.clip(out[:, 0, :], 0.0, 1.0)

    def min_q(self, states: np.ndarray, actions: np.ndarray) -> list[float]:
        """Conservative ``min(Q1, Q2)`` per agent for one pair each.

        Element ``i`` equals ``agents[i].min_q(states[i], actions[i])``.
        """
        x = self._x_buffer(1)
        x[:, 0, : self.state_dim] = states
        x[:, 0, self.state_dim :] = actions
        q1 = self.critic1.forward(x)
        q2 = self.critic2.forward(x)
        # Python min over floats, exactly as the scalar ``min_q``.
        return [
            min(float(q1[i, 0, 0]), float(q2[i, 0, 0]))
            for i in range(self.n)
        ]

    def twin_q_rows(
        self, states: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        """Candidate-fan scores, ``(n, n_candidates)``.

        Row ``i`` equals ``agents[i].twin_q_batch(states[i],
        candidates[i])``.  The returned array aliases a pooled workspace.
        """
        rows = candidates.shape[1]
        x = self._x_buffer(rows)
        x[:, :, : self.state_dim] = np.asarray(states, dtype=np.float64)[
            :, None, :
        ]
        x[:, :, self.state_dim :] = candidates
        q1 = self.critic1.forward(x)
        q2 = self.critic2.forward(x)
        np.minimum(q1, q2, out=q1)
        return q1[:, :, 0]
