"""Shared agent configuration and helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.network import MLP, Sequential

__all__ = ["AgentHyperParams", "build_actor", "build_critic", "critic_input"]


@dataclass(frozen=True)
class AgentHyperParams:
    """Hyper-parameters common to DDPG and TD3.

    Defaults follow the TD3 reference implementation scaled to the small
    state/action sizes of configuration tuning, with a deliberately slow
    actor (``actor_lr`` 5x below ``critic_lr``, small ``tau``, large
    batches): the load-average state barely varies, so the policy is
    close to a single learned vector and a fast actor chases every
    fluctuation of the critic surface instead of converging.
    ``gamma`` is low because
    the paper's immediate-reward design (Eq. 1) makes each step's reward
    directly meaningful — the agent maximizes per-action performance, not
    a long horizon — and it keeps Q-values on the same scale as rewards,
    which the Twin-Q Optimizer's ``Q_th`` relies on.
    """

    actor_lr: float = 2e-4
    critic_lr: float = 1e-3
    gamma: float = 0.4
    tau: float = 0.005
    batch_size: int = 128
    hidden: tuple[int, ...] = (64, 64)
    exploration_sigma: float = 0.25
    exploration_sigma_min: float = 0.08
    exploration_decay: float = 0.999
    warmup_steps: int = 64
    # TD3-specific
    policy_delay: int = 2
    target_noise_sigma: float = 0.1
    target_noise_clip: float = 0.25

    def __post_init__(self):
        if not 0.0 <= self.gamma < 1.0:
            raise ValueError(f"gamma must be in [0,1), got {self.gamma}")
        if not 0.0 < self.tau <= 1.0:
            raise ValueError(f"tau must be in (0,1], got {self.tau}")
        if self.batch_size <= 0 or self.warmup_steps < 0:
            raise ValueError("invalid batch/warmup sizes")
        if self.policy_delay < 1:
            raise ValueError("policy_delay must be >= 1")


def build_actor(
    state_dim: int, action_dim: int, hidden: tuple[int, ...],
    rng: np.random.Generator,
) -> Sequential:
    """Actor network: state -> action in [0,1]^d (sigmoid head).

    The normalized configuration cube is [0,1]^d (§3.1), so a sigmoid
    output is the natural squashing (DDPG's tanh maps to [-1,1]).
    """
    return MLP(
        state_dim, action_dim, hidden=hidden,
        activation="relu", out_activation="sigmoid", rng=rng,
    )


def build_critic(
    state_dim: int, action_dim: int, hidden: tuple[int, ...],
    rng: np.random.Generator,
) -> Sequential:
    """Critic network: (state, action) -> Q, linear head."""
    return MLP(
        state_dim + action_dim, 1, hidden=hidden,
        activation="relu", out_activation=None, rng=rng,
    )


def critic_input(states: np.ndarray, actions: np.ndarray) -> np.ndarray:
    """Concatenate state and action batches for the critic."""
    if states.ndim == 1:
        states = states[None, :]
    if actions.ndim == 1:
        actions = actions[None, :]
    if states.shape[0] != actions.shape[0]:
        raise ValueError("state/action batch sizes differ")
    return np.concatenate([states, actions], axis=1)
