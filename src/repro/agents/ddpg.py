"""Deep Deterministic Policy Gradient (Lillicrap et al. 2015).

The CDBTune baseline builds on this agent.  Supports importance-sampling
weights and exposes per-sample TD errors so a TD-error PER buffer can
refresh priorities (the CDBTune configuration of the paper's §5.2).
"""

from __future__ import annotations

import numpy as np

from repro.agents.base import (
    AgentHyperParams,
    build_actor,
    build_critic,
    critic_input,
)
from repro.nn.noise import GaussianNoise
from repro.nn.optim import Adam
from repro.nn.target import hard_update, soft_update
from repro.replay.base import ReplayBatch

__all__ = ["DDPGAgent"]


class DDPGAgent:
    """Actor-critic with a deterministic policy and target networks."""

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        rng: np.random.Generator,
        hp: AgentHyperParams | None = None,
    ):
        if state_dim <= 0 or action_dim <= 0:
            raise ValueError("state/action dims must be positive")
        self.hp = hp if hp is not None else AgentHyperParams()
        self.state_dim = state_dim
        self.action_dim = action_dim
        self._rng = rng

        net_rng, noise_rng = rng.spawn(2)
        self.actor = build_actor(state_dim, action_dim, self.hp.hidden, net_rng)
        self.critic = build_critic(state_dim, action_dim, self.hp.hidden, net_rng)
        self.actor_target = build_actor(
            state_dim, action_dim, self.hp.hidden, net_rng
        )
        self.critic_target = build_critic(
            state_dim, action_dim, self.hp.hidden, net_rng
        )
        hard_update(self.actor_target, self.actor)
        hard_update(self.critic_target, self.critic)

        self.actor_opt = Adam(self.actor.parameters(), lr=self.hp.actor_lr,
                              max_grad_norm=5.0)
        self.critic_opt = Adam(self.critic.parameters(), lr=self.hp.critic_lr,
                               max_grad_norm=5.0)
        self.noise = GaussianNoise(
            action_dim,
            sigma=self.hp.exploration_sigma,
            rng=noise_rng,
            sigma_min=self.hp.exploration_sigma_min,
            decay=self.hp.exploration_decay,
        )
        self.updates_done = 0
        from repro.telemetry.context import NULL_CONTEXT

        #: RunContext set by the trainer/tuner; null by default
        self.telemetry = NULL_CONTEXT

    # ------------------------------------------------------------- acting

    def act(self, state: np.ndarray, explore: bool = True) -> np.ndarray:
        """Deterministic policy output, plus exploration noise if asked."""
        action = self.actor.forward(state[None, :], cache=False)[0]
        if explore:
            action = action + self.noise.sample()
        return np.clip(action, 0.0, 1.0)

    def random_action(self) -> np.ndarray:
        """Uniform action for warmup steps."""
        return self._rng.uniform(0.0, 1.0, size=self.action_dim)

    # ------------------------------------------------------------ learning

    def _target_q(self, batch: ReplayBatch) -> np.ndarray:
        next_actions = self.actor_target.forward(batch.next_states, cache=False)
        q_next = self.critic_target.forward(
            critic_input(batch.next_states, next_actions), cache=False
        )
        return batch.rewards + self.hp.gamma * q_next

    def update(self, batch: ReplayBatch) -> dict[str, float]:
        """One gradient step on critic and actor.

        Returns diagnostics including per-sample TD errors (key
        ``"td_errors"`` is a numpy array) for PER priority refresh.
        """
        m = len(batch)
        y = self._target_q(batch)

        # --- critic: weighted MSE on the TD target ---
        self.critic.zero_grad()
        q = self.critic.forward(critic_input(batch.states, batch.actions))
        td_errors = q - y
        # q aliases the critic's reusable forward buffer, which the actor
        # pass below overwrites — reduce it now.
        mean_q = float(np.mean(q))
        weights = batch.weights if batch.weights is not None else 1.0
        critic_loss = float(np.mean(weights * td_errors**2))
        self.critic.backward((2.0 / m) * weights * td_errors)
        self.critic_opt.step()

        # --- actor: ascend dQ/da through the fresh critic ---
        self.actor.zero_grad()
        actions = self.actor.forward(batch.states)
        q_pi = self.critic.forward(critic_input(batch.states, actions))
        # Maximize mean Q => descend on -Q; route the gradient through the
        # critic input back into the actor output.
        grad_in = self.critic.backward(np.full_like(q_pi, -1.0 / m))
        self.actor.backward(grad_in[:, self.state_dim :])
        self.actor_opt.step()
        # The actor pass polluted critic parameter grads; clear them.
        self.critic.zero_grad()

        soft_update(self.actor_target, self.actor, self.hp.tau)
        soft_update(self.critic_target, self.critic, self.hp.tau)
        self.updates_done += 1

        t = self.telemetry
        t.count("agent.updates_total", help="gradient updates", agent="ddpg")
        t.observe(
            "agent.critic_loss", critic_loss,
            help="per-update critic loss", agent="ddpg",
        )
        t.observe(
            "agent.mean_q", mean_q,
            help="batch-mean critic Q", agent="ddpg",
        )
        return {
            "critic_loss": critic_loss,
            "mean_q": mean_q,
            "td_errors": td_errors.ravel(),
        }

    # ------------------------------------------------------------- critics

    def q_value(self, state: np.ndarray, action: np.ndarray) -> float:
        """Q(s, a) from the (single) critic."""
        x = critic_input(state[None, :], action[None, :])
        return float(self.critic.forward(x, cache=False)[0, 0])
