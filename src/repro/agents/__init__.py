"""Deep reinforcement learning agents (from scratch on :mod:`repro.nn`).

:class:`DDPGAgent` is the tuner core of CDBTune; :class:`TD3Agent` (twin
critics, target-policy smoothing, delayed policy updates) is DeepCAT's.
"""

from repro.agents.base import AgentHyperParams
from repro.agents.ddpg import DDPGAgent
from repro.agents.td3 import TD3Agent

__all__ = ["AgentHyperParams", "DDPGAgent", "TD3Agent"]
