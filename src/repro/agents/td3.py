"""Twin Delayed DDPG (Fujimoto et al. 2018) — DeepCAT's agent (§3.2).

Three mechanisms over DDPG:

* **clipped double-Q**: two critics, the target uses min(Q1', Q2'),
  offsetting value overestimation;
* **target policy smoothing**: clipped Gaussian noise on the target
  action regularizes the value estimate;
* **delayed policy updates**: the actor (and targets) update every
  ``policy_delay`` critic updates.

The twin critics double as the Twin-Q Optimizer's estimator during
online tuning (:mod:`repro.core.twinq`).
"""

from __future__ import annotations

import numpy as np

from repro.agents.base import (
    AgentHyperParams,
    build_actor,
    build_critic,
    critic_input,
)
from repro.nn.noise import GaussianNoise
from repro.nn.optim import Adam
from repro.nn.target import hard_update, soft_update
from repro.replay.base import ReplayBatch

__all__ = ["TD3Agent"]


class TD3Agent:
    """TD3 with twin critics exposed for Q-based action screening."""

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        rng: np.random.Generator,
        hp: AgentHyperParams | None = None,
    ):
        if state_dim <= 0 or action_dim <= 0:
            raise ValueError("state/action dims must be positive")
        self.hp = hp if hp is not None else AgentHyperParams()
        self.state_dim = state_dim
        self.action_dim = action_dim
        self._rng = rng

        net_rng, noise_rng, smooth_rng = rng.spawn(3)
        self.actor = build_actor(state_dim, action_dim, self.hp.hidden, net_rng)
        self.actor_target = build_actor(
            state_dim, action_dim, self.hp.hidden, net_rng
        )
        self.critic1 = build_critic(state_dim, action_dim, self.hp.hidden, net_rng)
        self.critic2 = build_critic(state_dim, action_dim, self.hp.hidden, net_rng)
        self.critic1_target = build_critic(
            state_dim, action_dim, self.hp.hidden, net_rng
        )
        self.critic2_target = build_critic(
            state_dim, action_dim, self.hp.hidden, net_rng
        )
        hard_update(self.actor_target, self.actor)
        hard_update(self.critic1_target, self.critic1)
        hard_update(self.critic2_target, self.critic2)

        self.actor_opt = Adam(self.actor.parameters(), lr=self.hp.actor_lr,
                              max_grad_norm=5.0)
        self.critic1_opt = Adam(self.critic1.parameters(),
                                lr=self.hp.critic_lr, max_grad_norm=5.0)
        self.critic2_opt = Adam(self.critic2.parameters(),
                                lr=self.hp.critic_lr, max_grad_norm=5.0)
        self.noise = GaussianNoise(
            action_dim,
            sigma=self.hp.exploration_sigma,
            rng=noise_rng,
            sigma_min=self.hp.exploration_sigma_min,
            decay=self.hp.exploration_decay,
        )
        self._smooth_rng = smooth_rng
        self.updates_done = 0
        from repro.telemetry.context import NULL_CONTEXT

        #: RunContext set by the trainer/tuner; null by default
        self.telemetry = NULL_CONTEXT

    # ------------------------------------------------------------- acting

    def act(self, state: np.ndarray, explore: bool = True) -> np.ndarray:
        action = self.actor.forward(state[None, :], cache=False)[0]
        if explore:
            action = action + self.noise.sample()
        return np.clip(action, 0.0, 1.0)

    def random_action(self) -> np.ndarray:
        return self._rng.uniform(0.0, 1.0, size=self.action_dim)

    # ------------------------------------------------------------ learning

    def _target_q(self, batch: ReplayBatch) -> np.ndarray:
        """Clipped double-Q target with smoothed target actions."""
        next_actions = self.actor_target.forward(batch.next_states, cache=False)
        smoothing = np.clip(
            self._smooth_rng.normal(
                0.0, self.hp.target_noise_sigma, size=next_actions.shape
            ),
            -self.hp.target_noise_clip,
            self.hp.target_noise_clip,
        )
        next_actions = np.clip(next_actions + smoothing, 0.0, 1.0)
        x = critic_input(batch.next_states, next_actions)
        q1 = self.critic1_target.forward(x, cache=False)
        q2 = self.critic2_target.forward(x, cache=False)
        return batch.rewards + self.hp.gamma * np.minimum(q1, q2)

    def update(self, batch: ReplayBatch) -> dict[str, float]:
        """One TD3 update; the actor moves every ``policy_delay`` calls."""
        with self.telemetry.phase("agent.update"):
            return self._update(batch)

    def _update(self, batch: ReplayBatch) -> dict[str, float]:
        m = len(batch)
        y = self._target_q(batch)
        x = critic_input(batch.states, batch.actions)
        weights = batch.weights if batch.weights is not None else 1.0

        self.critic1.zero_grad()
        q1 = self.critic1.forward(x)
        td1 = q1 - y
        self.critic1.backward((2.0 / m) * weights * td1)
        self.critic1_opt.step()

        self.critic2.zero_grad()
        q2 = self.critic2.forward(x)
        td2 = q2 - y
        self.critic2.backward((2.0 / m) * weights * td2)
        self.critic2_opt.step()

        critic_loss = float(np.mean(weights * (td1**2 + td2**2)) / 2.0)
        self.updates_done += 1
        diag = {
            "critic_loss": critic_loss,
            "mean_q": float(np.mean(np.minimum(q1, q2))),
            "td_errors": np.minimum(np.abs(td1), np.abs(td2)).ravel(),
            "actor_updated": False,
        }

        if self.updates_done % self.hp.policy_delay == 0:
            self.actor.zero_grad()
            actions = self.actor.forward(batch.states)
            q_pi = self.critic1.forward(critic_input(batch.states, actions))
            grad_in = self.critic1.backward(np.full_like(q_pi, -1.0 / m))
            self.actor.backward(grad_in[:, self.state_dim :])
            self.actor_opt.step()
            self.critic1.zero_grad()

            soft_update(self.actor_target, self.actor, self.hp.tau)
            soft_update(self.critic1_target, self.critic1, self.hp.tau)
            soft_update(self.critic2_target, self.critic2, self.hp.tau)
            diag["actor_updated"] = True

        t = self.telemetry
        t.count("agent.updates_total", help="gradient updates", agent="td3")
        if diag["actor_updated"]:
            t.count(
                "agent.actor_updates_total",
                help="delayed policy updates",
                agent="td3",
            )
        t.observe(
            "agent.critic_loss", critic_loss,
            help="per-update critic loss", agent="td3",
        )
        t.observe(
            "agent.mean_q", diag["mean_q"],
            help="batch-mean conservative Q", agent="td3",
        )
        t.diagnostics.observe_update(
            critic_loss=critic_loss,
            mean_q=diag["mean_q"],
            actor_updated=diag["actor_updated"],
        )
        return diag

    # ------------------------------------------------------------- critics

    def twin_q(self, state: np.ndarray, action: np.ndarray) -> tuple[float, float]:
        """(Q1, Q2) for a single state-action pair — Algorithm 1's inputs."""
        x = critic_input(state[None, :], action[None, :])
        q1 = float(self.critic1.forward(x, cache=False)[0, 0])
        q2 = float(self.critic2.forward(x, cache=False)[0, 0])
        return q1, q2

    def twin_q_batch(
        self, state: np.ndarray, actions: np.ndarray
    ) -> np.ndarray:
        """min(Q1, Q2) for many candidate actions under one state.

        Vectorized variant used by the Twin-Q Optimizer's exploration
        loop: shape (n,) of conservative Q estimates.
        """
        if actions.ndim != 2:
            raise ValueError("actions must be (n, action_dim)")
        states = np.broadcast_to(state, (actions.shape[0], state.shape[0]))
        x = critic_input(states, actions)
        q1 = self.critic1.forward(x, cache=False)
        q2 = self.critic2.forward(x, cache=False)
        return np.minimum(q1, q2).ravel()

    def min_q(self, state: np.ndarray, action: np.ndarray) -> float:
        """The conservative estimate min(Q1, Q2) (Figure 3's indicator)."""
        q1, q2 = self.twin_q(state, action)
        return min(q1, q2)
