"""KMeans (KM) — HiBench *ML* category.

The canonical memory-hungry Spark job: the sample matrix is cached
deserialized and swept once per iteration; centroids are broadcast and
only tiny per-partition sums are shuffled.  The paper singles KMeans out
(§5.2.1): "not enough memory may lead to OOM errors... high-reward
transitions become more sparse" — the cache-or-recompute cliff plus the
OOM cliff is exactly what this model expresses.
"""

from __future__ import annotations

from repro.workloads.base import DatasetSpec, StageSpec, Workload

__all__ = ["KMeans"]


class KMeans(Workload):
    code = "KM"
    name = "KMeans"
    category = "ML"

    ITERATIONS = 5
    K = 10
    DIMENSIONS = 20
    #: on-disk MB per million points (20 doubles + key, HiBench writer)
    MB_PER_MILLION_POINTS = 170.0
    #: deserialized double[] vectors + object headers in cache
    CACHE_EXPANSION = 2.8

    def datasets(self) -> dict[str, DatasetSpec]:
        # Table 1: 20, 30, 40 million points.
        return {
            "D1": DatasetSpec(
                "D1", 20.0, "Million Points",
                input_mb=20.0 * self.MB_PER_MILLION_POINTS,
            ),
            "D2": DatasetSpec(
                "D2", 30.0, "Million Points",
                input_mb=30.0 * self.MB_PER_MILLION_POINTS,
            ),
            "D3": DatasetSpec(
                "D3", 40.0, "Million Points",
                input_mb=40.0 * self.MB_PER_MILLION_POINTS,
            ),
        }

    def stages(self, dataset: DatasetSpec) -> list[StageSpec]:
        mb = dataset.input_mb
        cache_mb = mb * self.CACHE_EXPANSION
        centroid_mb = max(0.01, self.K * self.DIMENSIONS * 8 / 1e6)
        stages = [
            StageSpec(
                name="load-points",
                input_mb=mb,
                reads_hdfs=True,
                cpu_per_mb=0.024,  # parse + vectorize points
                memory_expansion=2.6,  # building deserialized vectors
                rigid_memory_fraction=0.5,
                cache_demand_mb=cache_mb,
            ),
        ]
        for i in range(self.ITERATIONS):
            stages.append(
                StageSpec(
                    name=f"assign-iter-{i}",
                    input_mb=mb,  # full sweep of (possibly cached) points
                    shuffle_write_mb=2.0,  # per-partition centroid sums
                    broadcast_mb=centroid_mb,
                    cpu_per_mb=0.065,  # K x D distance computations
                    memory_expansion=2.9,  # deserialized vectors per split
                    rigid_memory_fraction=0.6,  # dense vectors must be resident
                    cache_demand_mb=cache_mb,
                    inherits_input_partitions=True,
                )
            )
        stages.append(
            StageSpec(
                name="write-model",
                input_mb=1.0,
                hdfs_write_mb=0.5,
                cpu_per_mb=0.005,
                memory_expansion=1.1,
            )
        )
        return stages
