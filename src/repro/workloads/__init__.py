"""HiBench-style workload models.

Each workload describes its execution as a DAG of stages with per-stage
data volumes, CPU intensity, memory expansion and caching demands, derived
from the structure of the actual algorithm (map/reduce for WordCount and
TeraSort, iterative joins for PageRank, cached-dataset iterations for
KMeans).  The registry exposes the paper's 12 workload-input pairs
(Table 1).
"""

from repro.workloads.base import DatasetSpec, StageSpec, Workload
from repro.workloads.kmeans import KMeans
from repro.workloads.pagerank import PageRank
from repro.workloads.registry import (
    WORKLOADS,
    get_workload,
    table1_rows,
    workload_pairs,
)
from repro.workloads.terasort import TeraSort
from repro.workloads.wordcount import WordCount

__all__ = [
    "StageSpec",
    "DatasetSpec",
    "Workload",
    "WordCount",
    "TeraSort",
    "PageRank",
    "KMeans",
    "WORKLOADS",
    "get_workload",
    "workload_pairs",
    "table1_rows",
]
