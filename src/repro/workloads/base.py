"""Workload and stage abstractions.

A workload turns a dataset label (D1/D2/D3) into a list of
:class:`StageSpec`.  Stage fields are *demands*; the simulation engine
(:mod:`repro.sim.engine`) combines them with the configuration and
hardware to produce times.  CPU costs are expressed in core-seconds per MB
on the reference 2.9 GHz core so they scale with cluster CPU speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StageSpec", "DatasetSpec", "Workload"]


@dataclass(frozen=True)
class StageSpec:
    """One Spark stage's resource demands.

    Attributes
    ----------
    name:
        Stage label for reports.
    input_mb:
        Bytes entering the stage (from HDFS if ``reads_hdfs`` else from the
        previous stage's shuffle).
    reads_hdfs:
        Whether input comes from HDFS (input splits drive the task count)
        or from a shuffle (``spark.default.parallelism`` drives it).
    shuffle_write_mb:
        Uncompressed map-output bytes this stage shuffles to the next.
    hdfs_write_mb:
        Bytes persisted to HDFS at the end of the stage.
    cpu_per_mb:
        Core-seconds of computation per MB of stage input (reference core).
    memory_expansion:
        Per-task working set as a multiple of the task's input split
        (deserialized objects, sort buffers, hash maps).
    cache_demand_mb:
        Cluster-wide storage-memory demand for cached RDDs alive during
        this stage (iterative workloads).
    broadcast_mb:
        Data broadcast to every executor before the stage runs.
    sortish:
        True when the stage performs a sort/merge whose CPU cost can be
        bypassed by ``spark.shuffle.sort.bypassMergeThreshold``.
    inherits_input_partitions:
        True for narrow stages that sweep a cached RDD: they keep the
        partition count of the original HDFS load (block-size driven)
        instead of ``spark.default.parallelism``.
    rigid_memory_fraction:
        Share of the working set that cannot be spilled to disk (live
        object graphs, in-flight deserialized records).  Sorts are highly
        spillable (~0.25); hash aggregations and dense ML vectors much
        less so.  When the rigid share exceeds the executor's hard memory
        limit the task OOMs.
    """

    name: str
    input_mb: float
    reads_hdfs: bool = False
    shuffle_write_mb: float = 0.0
    hdfs_write_mb: float = 0.0
    cpu_per_mb: float = 0.02
    memory_expansion: float = 1.5
    cache_demand_mb: float = 0.0
    broadcast_mb: float = 0.0
    sortish: bool = False
    inherits_input_partitions: bool = False
    rigid_memory_fraction: float = 0.35

    def __post_init__(self):
        for attr in (
            "input_mb",
            "shuffle_write_mb",
            "hdfs_write_mb",
            "cpu_per_mb",
            "memory_expansion",
            "cache_demand_mb",
            "broadcast_mb",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"{self.name}: {attr} cannot be negative")
        if self.memory_expansion <= 0:
            raise ValueError(f"{self.name}: memory_expansion must be positive")
        if not 0.0 < self.rigid_memory_fraction <= 1.0:
            raise ValueError(
                f"{self.name}: rigid_memory_fraction must be in (0, 1]"
            )


@dataclass(frozen=True)
class DatasetSpec:
    """A named input scale for a workload."""

    label: str  # "D1" | "D2" | "D3"
    size: float  # in the workload's natural unit
    unit: str  # "GB", "Million Pages", "Million Points"
    input_mb: float = field(default=0.0)  # materialized on-disk size

    def __post_init__(self):
        if self.size <= 0 or self.input_mb <= 0:
            raise ValueError(f"{self.label}: sizes must be positive")


class Workload:
    """Base class for benchmark applications."""

    #: short code used throughout the paper (WC/TS/PR/KM)
    code: str = ""
    name: str = ""
    category: str = ""

    def datasets(self) -> dict[str, DatasetSpec]:
        """Mapping of dataset label -> spec (D1, D2, D3)."""
        raise NotImplementedError

    def stages(self, dataset: DatasetSpec) -> list[StageSpec]:
        """The stage DAG (as a topological list) for the given input."""
        raise NotImplementedError

    def dataset(self, label: str) -> DatasetSpec:
        try:
            return self.datasets()[label]
        except KeyError:
            raise KeyError(
                f"{self.code}: unknown dataset {label!r}; "
                f"have {sorted(self.datasets())}"
            ) from None

    def total_input_mb(self, dataset: DatasetSpec) -> float:
        return dataset.input_mb

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(code={self.code!r})"
