"""WordCount (WC) — HiBench *micro* category.

Two stages: a scan-heavy map that tokenizes text and pre-aggregates
counts map-side (so the shuffle is a small fraction of the input), and a
light reduce that merges per-word counts and writes a tiny result.
Tuning pressure: input-scan parallelism and disk throughput dominate; the
shuffle is nearly free.
"""

from __future__ import annotations

from repro.workloads.base import DatasetSpec, StageSpec, Workload

__all__ = ["WordCount"]


class WordCount(Workload):
    code = "WC"
    name = "WordCount"
    category = "micro"

    #: map-side combining shrinks the shuffle to ~4% of the input text
    SHUFFLE_RATIO = 0.04
    #: aggregated output is tiny
    OUTPUT_RATIO = 0.005

    def datasets(self) -> dict[str, DatasetSpec]:
        # Table 1: 3.2, 10, 20 GB of generated text.
        return {
            "D1": DatasetSpec("D1", 3.2, "GB", input_mb=3.2 * 1024),
            "D2": DatasetSpec("D2", 10.0, "GB", input_mb=10.0 * 1024),
            "D3": DatasetSpec("D3", 20.0, "GB", input_mb=20.0 * 1024),
        }

    def stages(self, dataset: DatasetSpec) -> list[StageSpec]:
        mb = dataset.input_mb
        shuffle_mb = mb * self.SHUFFLE_RATIO
        return [
            StageSpec(
                name="tokenize-map",
                input_mb=mb,
                reads_hdfs=True,
                shuffle_write_mb=shuffle_mb,
                cpu_per_mb=0.030,  # tokenization + hash-map combining
                memory_expansion=1.2,  # streaming with a modest combiner map
            ),
            StageSpec(
                name="count-reduce",
                input_mb=shuffle_mb,
                shuffle_write_mb=0.0,
                hdfs_write_mb=mb * self.OUTPUT_RATIO,
                cpu_per_mb=0.020,
                memory_expansion=1.6,  # merged hash map of word counts
                rigid_memory_fraction=0.5,  # hash maps spill poorly
            ),
        ]
