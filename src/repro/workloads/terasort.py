"""TeraSort (TS) — HiBench *micro* category.

A full-data sort: the map stage range-partitions every record, shuffling
the entire dataset; the reduce stage sort-merges its partition and writes
the sorted output back to HDFS.  Tuning pressure: shuffle bandwidth
(compression pays for itself), sort working-set vs execution memory
(spills are brutal), and write-side replication.
"""

from __future__ import annotations

from repro.workloads.base import DatasetSpec, StageSpec, Workload

__all__ = ["TeraSort"]


class TeraSort(Workload):
    code = "TS"
    name = "TeraSort"
    category = "micro"

    def datasets(self) -> dict[str, DatasetSpec]:
        # Table 1: 3.2, 6, 10 GB of 100-byte records.
        return {
            "D1": DatasetSpec("D1", 3.2, "GB", input_mb=3.2 * 1024),
            "D2": DatasetSpec("D2", 6.0, "GB", input_mb=6.0 * 1024),
            "D3": DatasetSpec("D3", 10.0, "GB", input_mb=10.0 * 1024),
        }

    def stages(self, dataset: DatasetSpec) -> list[StageSpec]:
        mb = dataset.input_mb
        return [
            StageSpec(
                name="partition-map",
                input_mb=mb,
                reads_hdfs=True,
                shuffle_write_mb=mb,  # the whole dataset moves
                cpu_per_mb=0.022,  # key extraction + range partitioning
                memory_expansion=1.6,  # map-side sort buffers
                sortish=True,
                rigid_memory_fraction=0.25,  # ExternalSorter spills freely
            ),
            StageSpec(
                name="sort-reduce",
                input_mb=mb,
                shuffle_write_mb=0.0,
                hdfs_write_mb=mb,  # sorted output, fully written back
                cpu_per_mb=0.040,  # merge sort of the partition
                memory_expansion=2.3,  # deserialized records + sort arrays
                sortish=True,
                rigid_memory_fraction=0.25,
            ),
        ]
