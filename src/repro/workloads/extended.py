"""Extended HiBench workloads beyond the paper's four.

The paper evaluates WordCount/TeraSort/PageRank/KMeans; HiBench itself
is broader.  These models follow the same StageSpec methodology so the
library covers more of the suite — useful for stress-testing tuners on
workload shapes the paper never trained on:

* **Bayes (BAY, ML)** — Naive Bayes training on text: tokenize + TF
  counting (CPU heavy), a term-count shuffle, and a model aggregation
  with rigid hash maps.
* **Aggregation (AGG, SQL)** — scan + hash GROUP BY: input-scan bound
  with a modest shuffle and rigid aggregation state.
* **Join (JOIN, SQL)** — two table scans feeding a shuffle join: big
  shuffles and join hash tables on the probe side.
"""

from __future__ import annotations

from repro.workloads.base import DatasetSpec, StageSpec, Workload

__all__ = ["Bayes", "Aggregation", "Join"]


class Bayes(Workload):
    code = "BAY"
    name = "Bayes"
    category = "ML"

    #: term-count pairs after map-side combining
    SHUFFLE_RATIO = 0.12

    def datasets(self) -> dict[str, DatasetSpec]:
        return {
            "D1": DatasetSpec("D1", 2.0, "GB", input_mb=2.0 * 1024),
            "D2": DatasetSpec("D2", 5.0, "GB", input_mb=5.0 * 1024),
            "D3": DatasetSpec("D3", 9.0, "GB", input_mb=9.0 * 1024),
        }

    def stages(self, dataset: DatasetSpec) -> list[StageSpec]:
        mb = dataset.input_mb
        shuffle_mb = mb * self.SHUFFLE_RATIO
        return [
            StageSpec(
                name="tokenize-tf",
                input_mb=mb,
                reads_hdfs=True,
                shuffle_write_mb=shuffle_mb,
                cpu_per_mb=0.050,  # tokenization + per-class TF vectors
                memory_expansion=1.7,
                rigid_memory_fraction=0.45,
            ),
            StageSpec(
                name="aggregate-theta",
                input_mb=shuffle_mb,
                shuffle_write_mb=2.0,
                cpu_per_mb=0.030,
                memory_expansion=2.0,  # per-term class-count maps
                rigid_memory_fraction=0.55,
            ),
            StageSpec(
                name="write-model",
                input_mb=2.0,
                hdfs_write_mb=1.0,
                cpu_per_mb=0.005,
                memory_expansion=1.1,
            ),
        ]


class Aggregation(Workload):
    code = "AGG"
    name = "Aggregation"
    category = "SQL"

    GROUPS_RATIO = 0.08  # distinct-key output relative to input

    def datasets(self) -> dict[str, DatasetSpec]:
        return {
            "D1": DatasetSpec("D1", 4.0, "GB", input_mb=4.0 * 1024),
            "D2": DatasetSpec("D2", 8.0, "GB", input_mb=8.0 * 1024),
            "D3": DatasetSpec("D3", 16.0, "GB", input_mb=16.0 * 1024),
        }

    def stages(self, dataset: DatasetSpec) -> list[StageSpec]:
        mb = dataset.input_mb
        groups_mb = mb * self.GROUPS_RATIO
        return [
            StageSpec(
                name="scan-partial-agg",
                input_mb=mb,
                reads_hdfs=True,
                shuffle_write_mb=groups_mb,
                cpu_per_mb=0.022,  # row decode + partial hash aggregate
                memory_expansion=1.5,
                rigid_memory_fraction=0.5,
            ),
            StageSpec(
                name="final-agg",
                input_mb=groups_mb,
                hdfs_write_mb=groups_mb * 0.6,
                cpu_per_mb=0.018,
                memory_expansion=1.9,
                rigid_memory_fraction=0.55,
            ),
        ]


class Join(Workload):
    code = "JOIN"
    name = "Join"
    category = "SQL"

    #: probe-side (fact) table dominates; build side is ~25% of it
    BUILD_RATIO = 0.25

    def datasets(self) -> dict[str, DatasetSpec]:
        return {
            "D1": DatasetSpec("D1", 3.0, "GB", input_mb=3.0 * 1024),
            "D2": DatasetSpec("D2", 6.0, "GB", input_mb=6.0 * 1024),
            "D3": DatasetSpec("D3", 12.0, "GB", input_mb=12.0 * 1024),
        }

    def stages(self, dataset: DatasetSpec) -> list[StageSpec]:
        probe_mb = dataset.input_mb
        build_mb = probe_mb * self.BUILD_RATIO
        return [
            StageSpec(
                name="scan-build-side",
                input_mb=build_mb,
                reads_hdfs=True,
                shuffle_write_mb=build_mb,
                cpu_per_mb=0.018,
                memory_expansion=1.4,
            ),
            StageSpec(
                name="scan-probe-side",
                input_mb=probe_mb,
                reads_hdfs=True,
                shuffle_write_mb=probe_mb,
                cpu_per_mb=0.018,
                memory_expansion=1.4,
            ),
            StageSpec(
                name="shuffle-join",
                input_mb=probe_mb + build_mb,
                shuffle_write_mb=0.0,
                hdfs_write_mb=probe_mb * 0.4,
                cpu_per_mb=0.032,  # sort-merge join of both sides
                memory_expansion=1.8,  # streamed sorted runs
                rigid_memory_fraction=0.3,  # SMJ spills its runs freely
                sortish=True,
            ),
        ]
