"""Workload registry — the paper's Table 1.

Provides lookup by code and the 12 workload-input pairs used throughout
the evaluation.
"""

from __future__ import annotations

from repro.workloads.base import DatasetSpec, Workload
from repro.workloads.kmeans import KMeans
from repro.workloads.pagerank import PageRank
from repro.workloads.terasort import TeraSort
from repro.workloads.wordcount import WordCount

__all__ = [
    "WORKLOADS",
    "EXTENDED_WORKLOADS",
    "ALL_WORKLOADS",
    "get_workload",
    "workload_pairs",
    "table1_rows",
]

#: the paper's four evaluation workloads (Table 1)
WORKLOADS: dict[str, Workload] = {
    w.code: w for w in (WordCount(), TeraSort(), PageRank(), KMeans())
}


def _extended() -> dict[str, Workload]:
    # local import: extended workloads are additions beyond the paper
    from repro.workloads.extended import Aggregation, Bayes, Join

    return {w.code: w for w in (Bayes(), Aggregation(), Join())}


#: extra HiBench-style workloads shipped by this library (not in the paper)
EXTENDED_WORKLOADS: dict[str, Workload] = _extended()

#: everything, paper workloads first
ALL_WORKLOADS: dict[str, Workload] = {**WORKLOADS, **EXTENDED_WORKLOADS}


def get_workload(code: str) -> Workload:
    """Look a workload up by code (paper: WC/TS/PR/KM; extended:
    BAY/AGG/JOIN)."""
    try:
        return ALL_WORKLOADS[code]
    except KeyError:
        raise KeyError(
            f"unknown workload {code!r}; have {sorted(ALL_WORKLOADS)}"
        ) from None


def workload_pairs() -> list[tuple[Workload, DatasetSpec]]:
    """The 12 (workload, dataset) pairs of the evaluation, in Table 1 order."""
    pairs: list[tuple[Workload, DatasetSpec]] = []
    for code in ("WC", "TS", "PR", "KM"):
        w = WORKLOADS[code]
        for label in ("D1", "D2", "D3"):
            pairs.append((w, w.dataset(label)))
    return pairs


def table1_rows() -> list[tuple[str, str, str]]:
    """Rows of the paper's Table 1 (workload, category, input datasets)."""
    rows = []
    for code in ("WC", "TS", "PR", "KM"):
        w = WORKLOADS[code]
        ds = w.datasets()
        sizes = ", ".join(
            f"{ds[label].size:g}" for label in ("D1", "D2", "D3")
        )
        unit = ds["D1"].unit
        rows.append((f"{w.name} ({w.code})", w.category, f"{sizes} ({unit})"))
    return rows
