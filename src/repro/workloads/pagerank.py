"""PageRank (PR) — HiBench *websearch* category.

Iterative: after loading and caching the link graph, each iteration joins
ranks with adjacency lists and shuffles contributions.  Tuning pressure:
the cached graph must fit in storage memory (or every iteration re-reads
and re-parses it), and per-iteration shuffle traffic makes network and
serialization choices matter repeatedly.
"""

from __future__ import annotations

from repro.workloads.base import DatasetSpec, StageSpec, Workload

__all__ = ["PageRank"]


class PageRank(Workload):
    code = "PR"
    name = "PageRank"
    category = "websearch"

    ITERATIONS = 6
    #: on-disk MB per million pages (links + metadata, HiBench generator)
    MB_PER_MILLION_PAGES = 1850.0
    #: deserialized graph expansion in cache (Java object overhead)
    CACHE_EXPANSION = 2.2
    #: rank contributions shuffled per iteration, relative to graph size
    SHUFFLE_RATIO = 0.45

    def datasets(self) -> dict[str, DatasetSpec]:
        # Table 1: 0.5, 1, 1.6 million pages.
        return {
            "D1": DatasetSpec(
                "D1", 0.5, "Million Pages",
                input_mb=0.5 * self.MB_PER_MILLION_PAGES,
            ),
            "D2": DatasetSpec(
                "D2", 1.0, "Million Pages",
                input_mb=1.0 * self.MB_PER_MILLION_PAGES,
            ),
            "D3": DatasetSpec(
                "D3", 1.6, "Million Pages",
                input_mb=1.6 * self.MB_PER_MILLION_PAGES,
            ),
        }

    def stages(self, dataset: DatasetSpec) -> list[StageSpec]:
        mb = dataset.input_mb
        cache_mb = mb * self.CACHE_EXPANSION
        shuffle_mb = mb * self.SHUFFLE_RATIO
        stages = [
            StageSpec(
                name="load-graph",
                input_mb=mb,
                reads_hdfs=True,
                shuffle_write_mb=mb * 0.9,  # partition adjacency lists
                cpu_per_mb=0.028,  # parse link structure
                memory_expansion=1.8,
                cache_demand_mb=cache_mb,
            ),
        ]
        for i in range(self.ITERATIONS):
            stages.append(
                StageSpec(
                    name=f"rank-iter-{i}",
                    input_mb=shuffle_mb + mb * 0.15,  # contributions + ranks
                    shuffle_write_mb=shuffle_mb,
                    cpu_per_mb=0.022,  # join + contribution sums
                    memory_expansion=1.9,  # join hash tables
                    rigid_memory_fraction=0.45,
                    cache_demand_mb=cache_mb,
                )
            )
        stages.append(
            StageSpec(
                name="write-ranks",
                input_mb=mb * 0.1,
                hdfs_write_mb=mb * 0.08,
                cpu_per_mb=0.010,
                memory_expansion=1.2,
                cache_demand_mb=cache_mb,
            )
        )
        return stages
