"""Figure 10: adaptability to a different hardware environment.

All three tuners are trained on Cluster-A (the physical testbed) and then
online-tune WordCount-D1 and PageRank-D1 on Cluster-B (the smaller VM
cluster).  Recommended parameters outside the new environment's scope are
clipped to the boundary — which happens automatically because the action
cube decodes against the same parameter ranges and YARN then clips
against the smaller NodeManager budgets.  Paper speedups on Cluster-B:
WC 1.68/1.30/1.17x, PR 1.42/1.25/1.09x (DeepCAT/CDBTune/OtterTune).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import get_scale
from repro.experiments.engine import default_engine, session_task
from repro.utils.tables import format_table

__all__ = ["Fig10Result", "run", "format_result"]

WORKLOADS = ("WC", "PR")
TUNERS = ("DeepCAT", "CDBTune", "OtterTune")


@dataclass(frozen=True)
class Fig10Result:
    #: speedup[(workload, tuner)] over Cluster-B's default execution
    speedup: dict[tuple[str, str], float]
    total_cost: dict[tuple[str, str], float]


def run(
    scale: str = "quick",
    seeds: tuple[int, ...] | None = None,
    *,
    engine=None,
) -> Fig10Result:
    sc = get_scale(scale)
    seeds = seeds if seeds is not None else tuple(range(max(3, len(sc.seeds))))
    cells = [
        (workload, seed, tuner)
        for workload in WORKLOADS
        for seed in seeds
        for tuner in TUNERS
    ]
    tasks = [
        session_task(
            workload=w, dataset="D1", tuner=t, seed=seed, scale=sc,
            cluster="cluster-b", train_cluster="cluster-a",
        )
        for w, seed, t in cells
    ]
    speedup: dict[tuple[str, str], list[float]] = {}
    cost: dict[tuple[str, str], list[float]] = {}
    for (w, _seed, t), s in zip(cells, default_engine(engine).run(tasks)):
        speedup.setdefault((w, t), []).append(s.speedup_over_default)
        cost.setdefault((w, t), []).append(s.total_tuning_seconds)
    return Fig10Result(
        speedup={k: float(np.mean(v)) for k, v in speedup.items()},
        total_cost={k: float(np.mean(v)) for k, v in cost.items()},
    )


def format_result(r: Fig10Result) -> str:
    rows = []
    for w in WORKLOADS:
        for t in TUNERS:
            rows.append(
                (w, t, r.speedup[(w, t)], r.total_cost[(w, t)])
            )
    return format_table(
        headers=("workload", "tuner", "speedup on Cluster-B (x)",
                 "total cost (s)"),
        rows=rows,
        title="Figure 10: hardware adaptability (trained on A, tuned on B)",
    )
