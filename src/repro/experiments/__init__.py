"""Experiment harness — one module per paper artifact.

Every ``fig*`` module exposes ``run(scale) -> <result dataclass>`` and a
``format_result`` helper that prints the same rows/series the paper's
table or figure reports.  ``scale`` selects between the quick preset
(used by the benchmark suite), the standard preset (used to generate
``EXPERIMENTS.md``) and the full preset.

Artifact map (see DESIGN.md §4 for the full index):

====================  ==============================================
module                paper artifact
====================  ==============================================
``tables``            Tables 1 and 2
``fig2_cdf``          Figure 2 (random-config CDF)
``fig3_twinq_trend``  Figure 3 (twin-Q vs reward trend)
``fig4_rdper``        Figure 4 (RDPER convergence)
``fig5_twinq_ablation``  Figure 5 (Twin-Q on/off)
``fig6_speedup``      Figure 6 (speedup over default)
``fig7_tuning_cost``  Figure 7 (total tuning cost)
``fig8_cost_constraint`` Figure 8 (best-so-far / accumulated cost)
``fig9_workload_adapt``  Figure 9 (workload transfer)
``fig10_hardware_adapt`` Figure 10 (Cluster-A -> Cluster-B)
``fig11_beta``        Figure 11 (RDPER β sweep)
``fig12_qth``         Figure 12 (Q_th sweep)
``cost_breakdown``    (extension) instrumented-session telemetry
``ablations``         (extension) agent x replay matrix
``whitebox_ablation`` (extension) reduced-space tuning
``drift``             (extension) workload-drift request stream
``fault_sweep``       (extension) tuning quality under chaos profiles
``headline``          abstract-level claim checks
``engine``            parallel task engine + on-disk result cache
``report``            EXPERIMENTS.md generator
====================  ==============================================

Every ``run()`` accepts an ``engine`` keyword
(:class:`~repro.experiments.engine.ExperimentEngine`) to shard its grid
over worker processes and serve previously computed cells from the
content-addressed on-disk cache; omitting it runs inline and uncached,
exactly as the serial harness always did.
"""

from repro.experiments.common import (
    SCALES,
    ExperimentScale,
    clear_model_cache,
    get_scale,
    train_cdbtune,
    train_deepcat,
    train_ottertune,
)
from repro.experiments.engine import (
    ExperimentEngine,
    ResultCache,
    TaskSpec,
    derive_task_seeds,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "train_deepcat",
    "train_cdbtune",
    "train_ottertune",
    "clear_model_cache",
    "ExperimentEngine",
    "ResultCache",
    "TaskSpec",
    "derive_task_seeds",
]
