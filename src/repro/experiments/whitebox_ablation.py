"""White-box extension ablation (the paper's future-work direction).

Compares, at a *matched total evaluation budget*, full-space DeepCAT
against white-box-assisted DeepCAT: the sensitivity probe's evaluations
are charged against the reduced tuner's offline budget, so any win comes
from spending the same currency smarter, not from extra information.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.hardware import CLUSTER_A
from repro.core.deepcat import DeepCAT
from repro.envs.tuning_env import TuningEnv
from repro.experiments.common import get_scale, online_env, train_deepcat, fork_tuner
from repro.extensions.whitebox import build_whitebox_plan
from repro.factory import EXPECTED_SPEEDUPS, make_env
from repro.sim.engine import SparkSimulator
from repro.utils.tables import format_table
from repro.workloads.registry import get_workload

__all__ = ["WhiteboxAblationResult", "run", "format_result"]


@dataclass(frozen=True)
class WhiteboxAblationResult:
    workload: str
    dataset: str
    budget: int
    full_best: float
    reduced_best: float
    top_k: int
    probe_evaluations: int

    @property
    def improvement_pct(self) -> float:
        return 100.0 * (1.0 - self.reduced_best / self.full_best)


def run(
    scale: str = "quick",
    workload: str = "TS",
    dataset: str = "D1",
    top_k: int = 10,
    n_points: int = 5,
    seeds: tuple[int, ...] | None = None,
) -> WhiteboxAblationResult:
    sc = get_scale(scale)
    seeds = seeds if seeds is not None else tuple(range(max(2, len(sc.seeds))))
    budget = sc.offline_iterations

    full_bests, reduced_bests = [], []
    probe_evals = 0
    for seed in seeds:
        # Full-space DeepCAT at the whole budget.
        full = fork_tuner(train_deepcat(workload, dataset, seed, sc))
        s_full = full.tune_online(
            online_env(workload, dataset, seed), steps=sc.online_steps
        )
        full_bests.append(s_full.best_duration_s)

        # White-box plan (probe charged against the budget) + reduced DeepCAT.
        probe_sim = SparkSimulator(
            get_workload(workload), dataset, CLUSTER_A,
            np.random.default_rng(seed), noise_sigma=0.0,
        )
        base_env = make_env(workload, dataset, seed=seed)
        plan = build_whitebox_plan(
            probe_sim, base_env.space, top_k=top_k, n_points=n_points
        )
        probe_evals = plan.probe_evaluations
        remaining = max(budget - plan.probe_evaluations,
                        2 * DeepCAT.from_env(base_env).hp.warmup_steps)
        reduced_env = TuningEnv(
            workload=get_workload(workload), dataset=dataset,
            cluster=CLUSTER_A, space=plan.reduced_space,
            rng=np.random.default_rng(seed),
            expected_speedup=EXPECTED_SPEEDUPS.get(workload, 2.0),
        )
        reduced = DeepCAT.from_env(reduced_env, seed=seed)
        reduced.train_offline(reduced_env, remaining)
        request = TuningEnv(
            workload=get_workload(workload), dataset=dataset,
            cluster=CLUSTER_A, space=plan.reduced_space,
            rng=np.random.default_rng(10_000 + seed),
            expected_speedup=EXPECTED_SPEEDUPS.get(workload, 2.0),
        )
        s_reduced = reduced.tune_online(request, steps=sc.online_steps)
        reduced_bests.append(s_reduced.best_duration_s)

    return WhiteboxAblationResult(
        workload=workload,
        dataset=dataset,
        budget=budget,
        full_best=float(np.mean(full_bests)),
        reduced_best=float(np.mean(reduced_bests)),
        top_k=top_k,
        probe_evaluations=probe_evals,
    )


def format_result(r: WhiteboxAblationResult) -> str:
    rows = [
        ("full 32-dim DeepCAT", r.budget, r.full_best),
        (
            f"white-box DeepCAT (top {r.top_k} knobs)",
            r.budget,
            r.reduced_best,
        ),
    ]
    return format_table(
        headers=("tuner", "eval budget", "best exec (s)"),
        rows=rows,
        title=(
            f"White-box extension on {r.workload}-{r.dataset} "
            f"(probe {r.probe_evaluations} evals charged; "
            f"reduced-space improvement {r.improvement_pct:+.1f}%)"
        ),
    )
