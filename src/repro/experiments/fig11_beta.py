"""Figure 11: RDPER's high-reward ratio β.

Train one offline model per β in {0.1 ... 0.9} and compare the best
execution time and total online cost.  The paper finds a U-shape —
all-good or all-bad batches both over-fit — with the sweet spot around
β ∈ [0.4, 0.7] and picks 0.6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import get_scale
from repro.experiments.engine import default_engine, session_task
from repro.utils.tables import format_table

__all__ = ["Fig11Result", "run", "format_result"]

DEFAULT_BETAS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass(frozen=True)
class Fig11Result:
    betas: tuple[float, ...]
    best: tuple[float, ...]  # best execution time per beta
    total_cost: tuple[float, ...]

    def best_beta(self) -> float:
        return self.betas[int(np.argmin(self.best))]


def run(
    scale: str = "quick",
    workload: str = "TS",
    dataset: str = "D1",
    betas: tuple[float, ...] = DEFAULT_BETAS,
    seeds: tuple[int, ...] | None = None,
    *,
    engine=None,
) -> Fig11Result:
    sc = get_scale(scale)
    seeds = seeds if seeds is not None else tuple(range(max(3, len(sc.seeds))))
    cells = [(beta, seed) for beta in betas for seed in seeds]
    tasks = [
        session_task(
            workload=workload, dataset=dataset, tuner="DeepCAT", seed=seed,
            scale=sc, overrides={"beta": beta},
        )
        for beta, seed in cells
    ]
    sessions = dict(zip(cells, default_engine(engine).run(tasks)))
    best, cost = [], []
    for beta in betas:
        ss = [sessions[(beta, seed)] for seed in seeds]
        best.append(float(np.mean([s.best_duration_s for s in ss])))
        cost.append(float(np.mean([s.total_tuning_seconds for s in ss])))
    return Fig11Result(
        betas=tuple(betas), best=tuple(best), total_cost=tuple(cost)
    )


def format_result(r: Fig11Result) -> str:
    from repro.utils.ascii_plot import line_plot

    rows = list(zip(r.betas, r.best, r.total_cost))
    table = format_table(
        headers=("beta", "best exec time (s)", "total tuning cost (s)"),
        rows=rows,
        title=f"Figure 11: RDPER ratio sweep (best at beta={r.best_beta():.1f})",
    )
    plot = line_plot(
        {"best exec (s)": r.best}, x=r.betas, height=10, width=54,
    )
    return table + "\n\n" + plot
