"""Figure 2: CDF of 200 random configurations (TeraSort).

The paper plots, for 200 uniformly random configurations, the cumulative
distribution of performance *relative to the found optimal*: easy to beat
the default, but close-to-optimal configurations are rare.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.engine import default_engine, random_cdf_task
from repro.utils.stats import empirical_cdf
from repro.utils.tables import format_table

__all__ = ["Fig2Result", "run", "format_result"]


@dataclass(frozen=True)
class Fig2Result:
    """CDF of relative performance (execution time / best execution time)."""

    relative_perf: np.ndarray  # sorted, one per sampled config
    cumulative_prob: np.ndarray
    best_duration_s: float
    default_duration_s: float
    n_failed: int

    def prob_within(self, factor: float) -> float:
        """Fraction of random configs within ``factor`` x of the optimum."""
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        return float(np.mean(self.relative_perf <= factor))


def run(
    scale: str = "quick",
    workload: str = "TS",
    dataset: str = "D1",
    n_samples: int = 200,
    seed: int = 0,
    *,
    engine=None,
) -> Fig2Result:
    """Sample ``n_samples`` random configurations and build the CDF."""
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    task = random_cdf_task(
        workload=workload, dataset=dataset, n_samples=n_samples, seed=seed,
    )
    (raw,) = default_engine(engine).run([task])
    durations = np.asarray(raw["durations"])
    best = float(durations.min())
    rel, prob = empirical_cdf(durations / best)
    return Fig2Result(
        relative_perf=rel,
        cumulative_prob=prob,
        best_duration_s=best,
        default_duration_s=raw["default_duration"],
        n_failed=raw["n_failed"],
    )


def format_result(r: Fig2Result) -> str:
    """The CDF at the paper-relevant factors."""
    from repro.utils.ascii_plot import line_plot

    rows = [
        (f"within {f:.1f}x of optimum", f"{r.prob_within(f) * 100:.1f}%")
        for f in (1.1, 1.2, 1.5, 2.0, 3.0)
    ]
    rows.append(("better than default",
                 f"{float(np.mean(r.relative_perf * r.best_duration_s < r.default_duration_s)) * 100:.1f}%"))
    table = format_table(
        headers=("relative performance", "cumulative probability"),
        rows=rows,
        title=(
            "Figure 2: CDF of random configurations "
            f"(best {r.best_duration_s:.1f}s, default {r.default_duration_s:.1f}s, "
            f"{r.n_failed} failed)"
        ),
    )
    # clip the x-axis at 5x the optimum so the body of the CDF is visible
    mask = r.relative_perf <= 5.0
    plot = line_plot(
        {"CDF": r.cumulative_prob[mask]},
        x=r.relative_perf[mask], height=10, width=56,
        y_label="P",
    )
    return table + "\n\n" + plot
