"""Component ablations beyond the paper's figures.

DESIGN.md calls out two design choices (TD3-over-DDPG, RDPER-over-
uniform/PER); this experiment crosses them into a matrix so each
component's contribution is measurable in isolation:

  agent  x  replay   ->  {TD3, DDPG} x {RDPER, PER, uniform}

TD3+RDPER is DeepCAT's offline configuration, DDPG+PER is CDBTune's.
Every cell trains offline on the same budget and is scored by the best
execution time found in a 5-step online session (no Twin-Q, to isolate
offline quality).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.agents.base import AgentHyperParams
from repro.agents.ddpg import DDPGAgent
from repro.agents.td3 import TD3Agent
from repro.core.offline import OfflineTrainer
from repro.core.online import OnlineTuner
from repro.experiments.common import get_scale, online_env
from repro.factory import make_env
from repro.replay.per import PrioritizedReplayBuffer
from repro.replay.rdper import RewardDrivenReplayBuffer
from repro.replay.uniform import UniformReplayBuffer
from repro.utils.tables import format_table

__all__ = ["AblationResult", "run", "format_result"]

AGENTS = ("TD3", "DDPG")
REPLAYS = ("RDPER", "PER", "uniform")


@dataclass(frozen=True)
class AblationResult:
    #: best[(agent, replay)] -> seed-averaged best execution time
    best: dict[tuple[str, str], float]
    eval_cost: dict[tuple[str, str], float]
    workload: str
    dataset: str

    def cell(self, agent: str, replay: str) -> float:
        return self.best[(agent, replay)]


def _build_cell(
    agent_name: str, replay_name: str, state_dim: int, action_dim: int,
    seed: int, capacity: int = 20_000,
):
    rng = np.random.default_rng(seed)
    agent_rng, buf_rng = rng.spawn(2)
    hp = AgentHyperParams()
    agent_cls = TD3Agent if agent_name == "TD3" else DDPGAgent
    agent = agent_cls(state_dim, action_dim, agent_rng, hp)
    if replay_name == "RDPER":
        buffer = RewardDrivenReplayBuffer(
            capacity, state_dim, action_dim, buf_rng
        )
    elif replay_name == "PER":
        buffer = PrioritizedReplayBuffer(
            capacity, state_dim, action_dim, buf_rng
        )
    else:
        buffer = UniformReplayBuffer(capacity, state_dim, action_dim, buf_rng)
    return agent, buffer


def run(
    scale: str = "quick",
    workload: str = "TS",
    dataset: str = "D1",
    seeds: tuple[int, ...] | None = None,
) -> AblationResult:
    sc = get_scale(scale)
    seeds = seeds if seeds is not None else tuple(range(max(2, len(sc.seeds))))
    best: dict[tuple[str, str], list[float]] = {}
    cost: dict[tuple[str, str], list[float]] = {}
    for agent_name in AGENTS:
        for replay_name in REPLAYS:
            for seed in seeds:
                env = make_env(workload, dataset, seed=seed)
                agent, buffer = _build_cell(
                    agent_name, replay_name, env.state_dim, env.action_dim,
                    seed,
                )
                OfflineTrainer(agent, buffer).train(
                    env, sc.offline_iterations
                )
                tuner = OnlineTuner(
                    agent, buffer,
                    name=f"{agent_name}+{replay_name}",
                    use_twin_q=False,
                    rng=np.random.default_rng(seed + 999),
                )
                s = tuner.tune(
                    online_env(workload, dataset, seed),
                    steps=sc.online_steps,
                )
                key = (agent_name, replay_name)
                best.setdefault(key, []).append(s.best_duration_s)
                cost.setdefault(key, []).append(s.evaluation_seconds)
    return AblationResult(
        best={k: float(np.mean(v)) for k, v in best.items()},
        eval_cost={k: float(np.mean(v)) for k, v in cost.items()},
        workload=workload,
        dataset=dataset,
    )


def format_result(r: AblationResult) -> str:
    rows = []
    for agent in AGENTS:
        for replay in REPLAYS:
            label = f"{agent}+{replay}"
            if (agent, replay) == ("TD3", "RDPER"):
                label += "  (DeepCAT offline)"
            elif (agent, replay) == ("DDPG", "PER"):
                label += "  (CDBTune offline)"
            rows.append(
                (label, r.best[(agent, replay)],
                 r.eval_cost[(agent, replay)])
            )
    return format_table(
        headers=("configuration", "best exec (s)", "eval cost (s)"),
        rows=rows,
        title=(
            f"Component ablation on {r.workload}-{r.dataset}: "
            "agent x replay matrix"
        ),
    )
