"""Tables 1 and 2 of the paper."""

from __future__ import annotations

from repro.config.pipeline import build_pipeline_space
from repro.utils.tables import format_table
from repro.workloads.registry import table1_rows

__all__ = ["table1", "table2"]


def table1() -> str:
    """Table 1: workload characteristics."""
    return format_table(
        headers=("Workload", "Category", "Input Datasets (D1, D2, D3)"),
        rows=table1_rows(),
        title="Table 1: Workload characteristics",
    )


def table2() -> str:
    """Table 2: number of tuned parameters in the pipeline."""
    space = build_pipeline_space()
    counts = space.component_counts()
    rows = [
        ("Spark", f"{counts['spark']}*"),
        ("YARN", str(counts["yarn"])),
        ("HDFS", str(counts["hdfs"])),
    ]
    table = format_table(
        headers=("Component of the pipeline", "Number of parameters"),
        rows=rows,
        title="Table 2: Number of tuned parameters in the pipeline",
    )
    return table + "\n*Including the Spark-YARN connector parameters"
