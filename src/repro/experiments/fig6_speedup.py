"""Figure 6: speedup of the best recommended configuration over default.

For every workload-input pair and every tuner, the best execution time
found in 5 online steps, expressed as a speedup over the default
configuration.  Paper aggregates: DeepCAT 4.66x, CDBTune 3.21x,
OtterTune 2.82x (so DeepCAT/CDBTune = 1.45x, DeepCAT/OtterTune = 1.65x).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.sessions import TUNERS, SessionGrid, comparison_grid
from repro.utils.tables import format_table

__all__ = ["Fig6Result", "run", "format_result"]


@dataclass(frozen=True)
class Fig6Result:
    grid: SessionGrid

    def average_speedups(self) -> dict[str, float]:
        return {t: self.grid.average_speedup(t) for t in TUNERS}

    def relative_speedup(self, over: str) -> float:
        """DeepCAT's average speedup over the baseline's (1.45x/1.65x)."""
        s = self.average_speedups()
        return s["DeepCAT"] / s[over]


def run(scale: str = "quick", pairs=None, *, engine=None) -> Fig6Result:
    return Fig6Result(grid=comparison_grid(scale, pairs, engine=engine))


def format_result(r: Fig6Result) -> str:
    rows = []
    for w, d in r.grid.pairs:
        rows.append(
            (
                f"{w}-{d}",
                r.grid.mean_speedup("DeepCAT", w, d),
                r.grid.mean_speedup("CDBTune", w, d),
                r.grid.mean_speedup("OtterTune", w, d),
            )
        )
    avg = r.average_speedups()
    rows.append(("average", avg["DeepCAT"], avg["CDBTune"], avg["OtterTune"]))
    return format_table(
        headers=("pair", "DeepCAT (x)", "CDBTune (x)", "OtterTune (x)"),
        rows=rows,
        title=(
            "Figure 6: speedup over default "
            f"(DeepCAT vs CDBTune {r.relative_speedup('CDBTune'):.2f}x, "
            f"vs OtterTune {r.relative_speedup('OtterTune'):.2f}x)"
        ),
    )
