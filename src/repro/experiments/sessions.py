"""Shared session grid for Figures 6, 7 and 8.

Runs the full comparison — every workload-input pair, tuned online by
DeepCAT, CDBTune and OtterTune from their offline models — once per
(scale, pairs, overrides) request and caches the resulting sessions.

The grid is sharded into one :class:`~repro.experiments.engine.TaskSpec`
per (pair, seed, tuner) cell and executed by an
:class:`~repro.experiments.engine.ExperimentEngine`, so callers can run
it in parallel (``jobs > 1``) and/or incrementally (on-disk result
cache) without changing a single float of the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.result import OnlineSession
from repro.experiments.common import ExperimentScale, get_scale
from repro.experiments.engine import (
    ExperimentEngine,
    default_engine,
    session_task,
)

__all__ = ["SessionGrid", "comparison_grid", "ALL_PAIRS", "QUICK_PAIRS"]

#: the paper's 12 workload-input pairs
ALL_PAIRS: tuple[tuple[str, str], ...] = tuple(
    (w, d) for w in ("WC", "TS", "PR", "KM") for d in ("D1", "D2", "D3")
)
#: a 4-pair subset (one per workload) for the quick scale
QUICK_PAIRS: tuple[tuple[str, str], ...] = (
    ("WC", "D1"),
    ("TS", "D1"),
    ("PR", "D1"),
    ("KM", "D1"),
)

TUNERS = ("DeepCAT", "CDBTune", "OtterTune")

_GRID_CACHE: dict[tuple, "SessionGrid"] = {}


@dataclass(frozen=True)
class SessionGrid:
    """Sessions indexed by (tuner, workload, dataset); seed-averaged
    scalars are computed on demand."""

    pairs: tuple[tuple[str, str], ...]
    seeds: tuple[int, ...]
    #: sessions[(tuner, workload, dataset)] -> list over seeds
    sessions: dict[tuple[str, str, str], list[OnlineSession]]

    def mean_speedup(self, tuner: str, workload: str, dataset: str) -> float:
        ss = self.sessions[(tuner, workload, dataset)]
        return float(np.mean([s.speedup_over_default for s in ss]))

    def mean_best(self, tuner: str, workload: str, dataset: str) -> float:
        ss = self.sessions[(tuner, workload, dataset)]
        return float(np.mean([s.best_duration_s for s in ss]))

    def mean_eval_cost(self, tuner: str, workload: str, dataset: str) -> float:
        ss = self.sessions[(tuner, workload, dataset)]
        return float(np.mean([s.evaluation_seconds for s in ss]))

    def mean_rec_cost(self, tuner: str, workload: str, dataset: str) -> float:
        ss = self.sessions[(tuner, workload, dataset)]
        return float(np.mean([s.recommendation_seconds for s in ss]))

    def mean_total_cost(self, tuner: str, workload: str, dataset: str) -> float:
        ss = self.sessions[(tuner, workload, dataset)]
        return float(np.mean([s.total_tuning_seconds for s in ss]))

    def average_speedup(self, tuner: str) -> float:
        """Arithmetic mean speedup across all pairs (the paper's 4.66x /
        3.21x / 2.82x aggregates)."""
        return float(
            np.mean([self.mean_speedup(tuner, w, d) for w, d in self.pairs])
        )

    def cost_reduction_vs(self, tuner: str, baseline: str) -> tuple[float, float]:
        """(average %, maximum %) total-cost reduction of ``tuner`` against
        ``baseline`` across pairs (the paper's 24.64%/50.08% numbers)."""
        reductions = []
        for w, d in self.pairs:
            ours = self.mean_total_cost(tuner, w, d)
            theirs = self.mean_total_cost(baseline, w, d)
            reductions.append(100.0 * (1.0 - ours / theirs))
        return float(np.mean(reductions)), float(np.max(reductions))


def _scale_key(sc: ExperimentScale) -> tuple:
    """Every field of the scale, not just its name.

    The historical key was ``(sc.name, pairs, sc.seeds)``; two scales
    sharing a name and seed list but differing in any budget override
    (offline iterations, OtterTune samples, online steps) collided, so a
    grid computed under one budget could be served for the other.
    """
    return (
        sc.name,
        sc.offline_iterations,
        sc.ottertune_samples,
        sc.seeds,
        sc.online_steps,
    )


def comparison_grid(
    scale: str = "quick",
    pairs: tuple[tuple[str, str], ...] | None = None,
    *,
    engine: ExperimentEngine | None = None,
    overrides: dict | None = None,
) -> SessionGrid:
    """Run (or fetch) the tuner-comparison grid at the given scale.

    ``overrides`` are DeepCAT construction hyper-parameters applied to
    every DeepCAT cell (the baselines are untouched); they are part of
    the memoization key, so sweeps over overrides never alias.
    """
    sc = get_scale(scale)
    if pairs is None:
        pairs = QUICK_PAIRS if sc.name == "quick" else ALL_PAIRS
    key = (
        _scale_key(sc), pairs,
        tuple(sorted((overrides or {}).items())),
    )
    if key in _GRID_CACHE:
        return _GRID_CACHE[key]

    eng = default_engine(engine)
    cells = [
        (workload, dataset, seed, tuner)
        for workload, dataset in pairs
        for seed in sc.seeds
        for tuner in TUNERS
    ]
    tasks = [
        session_task(
            workload=w, dataset=d, tuner=t, seed=seed, scale=sc,
            overrides=overrides if t == "DeepCAT" else None,
        )
        for w, d, seed, t in cells
    ]
    sessions: dict[tuple[str, str, str], list[OnlineSession]] = {}
    for (w, d, _seed, t), session in zip(cells, eng.run(tasks)):
        sessions.setdefault((t, w, d), []).append(session)
    grid = SessionGrid(pairs=pairs, seeds=sc.seeds, sessions=sessions)
    _GRID_CACHE[key] = grid
    return grid
