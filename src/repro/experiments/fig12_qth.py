"""Figure 12: the Twin-Q Optimizer's Q-value threshold.

From the same offline model, run the online phase with Q_th in
{0.1 ... 0.5}.  The paper finds Q_th = 0.5 reaches the best configuration
but at the highest total cost (risky exploration), while Q_th = 0.3 is
the cost-performance sweet spot it adopts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import get_scale
from repro.experiments.engine import default_engine, session_task
from repro.utils.tables import format_table

__all__ = ["Fig12Result", "run", "format_result"]

DEFAULT_THRESHOLDS = (0.1, 0.2, 0.3, 0.4, 0.5)


@dataclass(frozen=True)
class Fig12Result:
    thresholds: tuple[float, ...]
    best: tuple[float, ...]
    total_cost: tuple[float, ...]

    def cheapest_threshold(self) -> float:
        return self.thresholds[int(np.argmin(self.total_cost))]


def run(
    scale: str = "quick",
    workload: str = "TS",
    dataset: str = "D1",
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
    seeds: tuple[int, ...] | None = None,
    *,
    engine=None,
) -> Fig12Result:
    sc = get_scale(scale)
    seeds = seeds if seeds is not None else tuple(range(max(3, len(sc.seeds))))
    cells = [(q_th, seed) for q_th in thresholds for seed in seeds]
    tasks = [
        session_task(
            workload=workload, dataset=dataset, tuner="DeepCAT", seed=seed,
            scale=sc, tuner_attrs={"q_threshold": q_th},
        )
        for q_th, seed in cells
    ]
    sessions = dict(zip(cells, default_engine(engine).run(tasks)))
    best, cost = [], []
    for q_th in thresholds:
        ss = [sessions[(q_th, seed)] for seed in seeds]
        best.append(float(np.mean([s.best_duration_s for s in ss])))
        cost.append(float(np.mean([s.total_tuning_seconds for s in ss])))
    return Fig12Result(
        thresholds=tuple(thresholds), best=tuple(best), total_cost=tuple(cost)
    )


def format_result(r: Fig12Result) -> str:
    from repro.utils.ascii_plot import line_plot

    rows = list(zip(r.thresholds, r.best, r.total_cost))
    table = format_table(
        headers=("Q_th", "best exec time (s)", "total tuning cost (s)"),
        rows=rows,
        title=(
            "Figure 12: Q-value threshold sweep "
            f"(cheapest at Q_th={r.cheapest_threshold():.1f})"
        ),
    )
    plot = line_plot(
        {"best (s)": r.best, "cost (s)": r.total_cost},
        x=r.thresholds, height=10, width=54,
    )
    return table + "\n\n" + plot
