"""Figure 9: adaptability to different workloads.

Models offline-trained on WC/TS/KM (and PR itself) each online-tune
PageRank-D1; CDBTune and OtterTune are trained on PR directly.  Paper
findings: transferred DeepCAT models stay within ~11-19% of the natively
trained DeepCAT, still beat both baselines, and M_TS->PR is the worst
transfer (TeraSort's characteristics differ most from PageRank's).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import get_scale
from repro.experiments.engine import default_engine, session_task
from repro.utils.tables import format_table

__all__ = ["Fig9Result", "run", "format_result"]

TARGET = ("PR", "D1")
SOURCES = ("PR", "WC", "TS", "KM")


@dataclass(frozen=True)
class Fig9Result:
    #: best execution time per model label (M_PR, M_WC->PR, ...)
    best: dict[str, float]
    total_cost: dict[str, float]

    def transfer_penalty_pct(self, source: str) -> float:
        """Extra execution time of M_<source>->PR vs native M_PR."""
        if source == "PR":
            return 0.0
        return 100.0 * (
            self.best[f"M_{source}->PR"] / self.best["M_PR"] - 1.0
        )


def _label(source: str) -> str:
    return "M_PR" if source == "PR" else f"M_{source}->PR"


def run(
    scale: str = "quick",
    seeds: tuple[int, ...] | None = None,
    *,
    engine=None,
) -> Fig9Result:
    sc = get_scale(scale)
    seeds = seeds if seeds is not None else tuple(range(max(3, len(sc.seeds))))
    workload, dataset = TARGET

    labels, tasks = [], []
    for seed in seeds:
        for source in SOURCES:
            labels.append(_label(source))
            tasks.append(session_task(
                workload=workload, dataset=dataset, tuner="DeepCAT",
                seed=seed, scale=sc,
                train_workload=source, train_dataset="D1",
            ))
        for tuner in ("CDBTune", "OtterTune"):
            labels.append(tuner)
            tasks.append(session_task(
                workload=workload, dataset=dataset, tuner=tuner,
                seed=seed, scale=sc,
            ))

    best: dict[str, list[float]] = {}
    cost: dict[str, list[float]] = {}
    for label, session in zip(labels, default_engine(engine).run(tasks)):
        best.setdefault(label, []).append(session.best_duration_s)
        cost.setdefault(label, []).append(session.total_tuning_seconds)

    return Fig9Result(
        best={k: float(np.mean(v)) for k, v in best.items()},
        total_cost={k: float(np.mean(v)) for k, v in cost.items()},
    )


def format_result(r: Fig9Result) -> str:
    rows = [
        (label, r.best[label], r.total_cost[label])
        for label in (*map(_label, SOURCES), "CDBTune", "OtterTune")
    ]
    worst = max(
        (s for s in SOURCES if s != "PR"), key=r.transfer_penalty_pct
    )
    return format_table(
        headers=("model", "best exec time (s)", "total tuning cost (s)"),
        rows=rows,
        title=(
            "Figure 9: workload adaptability on PageRank-D1 "
            f"(worst transfer M_{worst}->PR, "
            f"+{r.transfer_penalty_pct(worst):.1f}% vs native)"
        ),
    )
