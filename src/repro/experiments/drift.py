"""Continuous tuning under workload drift (extension experiment).

The paper motivates online tuning with time-varying workloads (§1) and
evaluates one-shot transfers (Figure 9).  This experiment goes one step
further: a *stream* of tuning requests as the workload drifts
TS -> PR -> KM, served by a single tuner instance that carries its
fine-tuned state across phases.  DeepCAT (trained offline on the first
phase only) is compared with CDBTune under the identical stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    fork_tuner,
    get_scale,
    online_env,
    train_cdbtune,
    train_deepcat,
)
from repro.utils.tables import format_table

__all__ = ["DriftResult", "run", "format_result", "DEFAULT_STREAM"]

#: the drift schedule: each entry is one online tuning request
DEFAULT_STREAM = (("TS", "D1"), ("PR", "D1"), ("KM", "D1"))


@dataclass(frozen=True)
class DriftResult:
    stream: tuple[tuple[str, str], ...]
    #: speedup[(tuner, phase_index)] — best-config speedup per phase
    speedup: dict[tuple[str, int], float]
    total_cost: dict[str, float]

    def mean_speedup(self, tuner: str) -> float:
        vals = [
            v for (t, _), v in self.speedup.items() if t == tuner
        ]
        return float(np.mean(vals))


def run(
    scale: str = "quick",
    stream: tuple[tuple[str, str], ...] = DEFAULT_STREAM,
    seeds: tuple[int, ...] | None = None,
) -> DriftResult:
    sc = get_scale(scale)
    seeds = seeds if seeds is not None else tuple(range(max(2, len(sc.seeds))))
    first_w, first_d = stream[0]

    speedup: dict[tuple[str, int], list[float]] = {}
    cost: dict[str, list[float]] = {}
    for seed in seeds:
        tuners = {
            "DeepCAT": fork_tuner(train_deepcat(first_w, first_d, seed, sc)),
            "CDBTune": fork_tuner(train_cdbtune(first_w, first_d, seed, sc)),
        }
        for name, tuner in tuners.items():
            total = 0.0
            for phase_idx, (w, d) in enumerate(stream):
                env = online_env(w, d, seed * 31 + phase_idx)
                session = tuner.tune_online(env, steps=sc.online_steps)
                speedup.setdefault((name, phase_idx), []).append(
                    session.speedup_over_default
                )
                total += session.total_tuning_seconds
            cost.setdefault(name, []).append(total)

    return DriftResult(
        stream=tuple(stream),
        speedup={k: float(np.mean(v)) for k, v in speedup.items()},
        total_cost={k: float(np.mean(v)) for k, v in cost.items()},
    )


def format_result(r: DriftResult) -> str:
    rows = []
    for name in ("DeepCAT", "CDBTune"):
        row = [name]
        for i in range(len(r.stream)):
            row.append(f"{r.speedup[(name, i)]:.2f}x")
        row.append(f"{r.total_cost[name]:.0f}")
        rows.append(tuple(row))
    phase_headers = tuple(
        f"{w}-{d} (phase {i})" for i, (w, d) in enumerate(r.stream)
    )
    return format_table(
        headers=("tuner", *phase_headers, "total cost (s)"),
        rows=rows,
        title=(
            "Workload-drift stream (offline model from phase 0 only; "
            f"DeepCAT mean {r.mean_speedup('DeepCAT'):.2f}x vs CDBTune "
            f"{r.mean_speedup('CDBTune'):.2f}x)"
        ),
    )
