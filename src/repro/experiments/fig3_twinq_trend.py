"""Figure 3: min twin-Q versus real reward during offline training.

The Twin-Q Optimizer rests on the observation that the conservative
estimate min(Q1, Q2) tracks the real reward of executed actions.  This
experiment trains TD3 (with RDPER) and records both series; the headline
statistic is their correlation over the post-warmup window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import get_scale
from repro.experiments.engine import default_engine, offline_trend_task
from repro.utils.tables import format_table

__all__ = ["Fig3Result", "run", "format_result"]


@dataclass(frozen=True)
class Fig3Result:
    iterations: np.ndarray
    min_q: np.ndarray
    reward: np.ndarray
    correlation: float  # over the post-warmup window
    warmup: int


def _smooth(x: np.ndarray, window: int) -> np.ndarray:
    """Trailing moving average (same length as input)."""
    if window <= 1:
        return x.copy()
    c = np.cumsum(np.insert(x, 0, 0.0))
    out = np.empty_like(x)
    for i in range(len(x)):
        lo = max(0, i - window + 1)
        out[i] = (c[i + 1] - c[lo]) / (i + 1 - lo)
    return out


def run(
    scale: str = "quick",
    workload: str = "TS",
    dataset: str = "D1",
    seed: int = 0,
    smooth_window: int = 25,
    *,
    engine=None,
) -> Fig3Result:
    sc = get_scale(scale)
    task = offline_trend_task(
        workload=workload, dataset=dataset, seed=seed, scale=sc,
    )
    (trend,) = default_engine(engine).run([task])
    q = np.asarray(trend["min_q"])
    r = np.asarray(trend["rewards"])
    warmup = trend["warmup_steps"] * 3
    warmup = min(warmup, len(q) // 2)
    qs, rs = _smooth(q, smooth_window), _smooth(r, smooth_window)
    # Correlate the smoothed series: Figure 3 is about the two *trends*
    # tracking each other, not per-step noise.
    tail_q, tail_r = qs[warmup:], rs[warmup:]
    corr = (
        float(np.corrcoef(tail_q, tail_r)[0, 1])
        if tail_q.std() > 1e-9 and tail_r.std() > 1e-9
        else float("nan")
    )
    return Fig3Result(
        iterations=np.arange(len(q)),
        min_q=qs,
        reward=rs,
        correlation=corr,
        warmup=warmup,
    )


def format_result(r: Fig3Result) -> str:
    idx = np.linspace(r.warmup, len(r.iterations) - 1, 8).astype(int)
    rows = [
        (int(r.iterations[i]), float(r.min_q[i]), float(r.reward[i]))
        for i in idx
    ]
    return format_table(
        headers=("iteration", "min twin-Q (smoothed)", "reward (smoothed)"),
        rows=rows,
        title=(
            "Figure 3: twin-Q vs real reward "
            f"(post-warmup correlation {r.correlation:.2f})"
        ),
    )
