"""Telemetry cost breakdown: where one DeepCAT session spends its time.

Runs a short fully-instrumented offline+online DeepCAT session (a scaled
-down version of the paper's protocol) and reports the wall-clock split
across pipeline stages plus the Twin-Q / RDPER counters — the live
version of the cost-efficiency signals behind Figures 3, 5, and 7.  This
is the template every perf PR should measure itself against: the same
``RunContext`` attaches to any run via ``--trace`` / ``--metrics-out``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.deepcat import DeepCAT
from repro.experiments.common import ExperimentScale, get_scale
from repro.factory import make_env
from repro.telemetry import RunContext
from repro.utils.tables import format_table

__all__ = ["CostBreakdownResult", "run", "format_result"]


@dataclass(frozen=True)
class CostBreakdownResult:
    """Aggregates of one instrumented session."""

    workload: str
    dataset: str
    offline_iterations: int
    online_steps: int
    #: {span name: {"count": n, "total_s": seconds}} from the tracer
    wall_clock: dict[str, dict[str, float]]
    #: flat {metric name: value} for the headline counters
    counters: dict[str, float]
    #: the run manifest as a dict (seed, git SHA, hyper-parameters...)
    manifest: dict

    def span_seconds(self, name: str) -> float:
        entry = self.wall_clock.get(name)
        return float(entry["total_s"]) if entry else 0.0

    @property
    def recommendation_share(self) -> float:
        """Fraction of online wall-clock spent recommending (not
        evaluating) — the tuner's own overhead."""
        rec = self.span_seconds("online.recommend")
        total = self.span_seconds("online.tune")
        return rec / total if total > 0 else 0.0


def run(
    scale: str | ExperimentScale = "quick",
    workload: str = "TS",
    dataset: str = "D1",
) -> CostBreakdownResult:
    """Run the instrumented session and collect its telemetry."""
    sc = get_scale(scale)
    seed = sc.seeds[0]
    # A tenth of the scale's offline budget is enough to exercise every
    # instrumented path cheaply; the floor keeps it above the default
    # batch size so gradient updates (offline.update spans) do occur.
    iterations = max(150, sc.offline_iterations // 10)

    ctx = RunContext.recording(kind="cost-breakdown", seed=seed)
    env = make_env(workload, dataset, seed=seed)
    tuner = DeepCAT.from_env(env, seed=seed)
    tuner.train_offline(env, iterations, telemetry=ctx)
    request_env = make_env(workload, dataset, seed=1000 + seed)
    tuner.tune_online(request_env, steps=sc.online_steps, telemetry=ctx)
    ctx.finish()

    counters: dict[str, float] = {}
    for metric in ctx.metrics:
        if metric.kind == "counter":
            label = "".join(
                f"{{{k}={v}}}" for k, v in metric.labels
            )
            counters[f"{metric.name}{label}"] = metric.value
    gauges = {
        f"{m.name}": m.value for m in ctx.metrics if m.kind == "gauge"
    }
    counters.update(gauges)
    return CostBreakdownResult(
        workload=workload,
        dataset=dataset,
        offline_iterations=iterations,
        online_steps=sc.online_steps,
        wall_clock=ctx.tracer.totals(),
        counters=counters,
        manifest=ctx.manifest.to_dict(),
    )


def format_result(r: CostBreakdownResult) -> str:
    """Render the wall-clock and counter tables."""
    span_rows = [
        (name, int(entry["count"]), entry["total_s"])
        for name, entry in sorted(
            r.wall_clock.items(),
            key=lambda item: -item[1]["total_s"],
        )
    ]
    counter_rows = [
        (name, f"{value:g}") for name, value in sorted(r.counters.items())
    ]
    parts = [
        format_table(
            ("span", "count", "total s"),
            span_rows,
            title=(
                f"Wall-clock breakdown — DeepCAT {r.workload}-{r.dataset} "
                f"({r.offline_iterations} offline iters, "
                f"{r.online_steps} online steps)"
            ),
        ),
        "",
        format_table(("metric", "value"), counter_rows,
                     title="Counters and gauges"),
        "",
        f"recommendation share of online wall-clock: "
        f"{r.recommendation_share * 100:.1f}%",
    ]
    return "\n".join(parts)
