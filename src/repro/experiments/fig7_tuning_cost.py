"""Figure 7: total online tuning cost with recommendation-time breakdown.

Total cost = configuration-evaluation time + recommendation time over the
5 online steps.  Paper: DeepCAT cuts total cost 24.64% on average (up to
50.08%) vs CDBTune and 39.71% (up to 53.39%) vs OtterTune; DRL
recommendation time is sub-second while OtterTune's GP retraining makes
its recommendation share noticeable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.sessions import SessionGrid, comparison_grid
from repro.utils.tables import format_table

__all__ = ["Fig7Result", "run", "format_result"]


@dataclass(frozen=True)
class Fig7Result:
    grid: SessionGrid

    def reduction_vs_cdbtune(self) -> tuple[float, float]:
        return self.grid.cost_reduction_vs("DeepCAT", "CDBTune")

    def reduction_vs_ottertune(self) -> tuple[float, float]:
        return self.grid.cost_reduction_vs("DeepCAT", "OtterTune")


def run(scale: str = "quick", pairs=None, *, engine=None) -> Fig7Result:
    return Fig7Result(grid=comparison_grid(scale, pairs, engine=engine))


def format_result(r: Fig7Result) -> str:
    rows = []
    for w, d in r.grid.pairs:
        row = [f"{w}-{d}"]
        for t in ("DeepCAT", "CDBTune", "OtterTune"):
            total = r.grid.mean_total_cost(t, w, d)
            rec = r.grid.mean_rec_cost(t, w, d)
            row.append(f"{total:.1f} (rec {rec:.3f})")
        rows.append(tuple(row))
    avg_c, max_c = r.reduction_vs_cdbtune()
    avg_o, max_o = r.reduction_vs_ottertune()
    return format_table(
        headers=("pair", "DeepCAT (s)", "CDBTune (s)", "OtterTune (s)"),
        rows=rows,
        title=(
            "Figure 7: total online tuning cost "
            f"(vs CDBTune -{avg_c:.1f}% avg / -{max_c:.1f}% max; "
            f"vs OtterTune -{avg_o:.1f}% avg / -{max_o:.1f}% max)"
        ),
    )
