"""Headline-claim checker.

Condenses the paper's abstract-level claims into one structured check
over an existing session grid — used by the benchmark suite's final
gate and handy for CI-style regression checks after simulator or agent
changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.sessions import SessionGrid, comparison_grid

__all__ = ["HeadlineCheck", "check_headlines"]


@dataclass(frozen=True)
class HeadlineCheck:
    """Outcome of one claim check."""

    claim: str
    passed: bool
    measured: str


def check_headlines(
    grid: SessionGrid | None = None, scale: str = "quick"
) -> list[HeadlineCheck]:
    """Evaluate the paper's headline claims against a session grid.

    Claims (paper values in parentheses):

    1. DeepCAT's average best-config speedup exceeds CDBTune's (1.45x).
    2. DeepCAT's average best-config speedup exceeds OtterTune's (1.65x).
    3. DeepCAT's total online tuning cost undercuts CDBTune's on average
       (-24.64%).
    4. DeepCAT's total online tuning cost undercuts OtterTune's on
       average (-39.71%).
    5. The KMeans margin over CDBTune exceeds the all-workload margin
       (§5.2.1: KM is DeepCAT's best case).
    6. DRL recommendation time is at least an order of magnitude below
       OtterTune's.
    """
    grid = grid if grid is not None else comparison_grid(scale)
    checks: list[HeadlineCheck] = []

    dc = grid.average_speedup("DeepCAT")
    cb = grid.average_speedup("CDBTune")
    ot = grid.average_speedup("OtterTune")
    checks.append(
        HeadlineCheck(
            "DeepCAT avg speedup > CDBTune (paper 1.45x)",
            dc > cb,
            f"{dc:.2f}x vs {cb:.2f}x ({dc / cb:.2f}x)",
        )
    )
    checks.append(
        HeadlineCheck(
            "DeepCAT avg speedup > OtterTune (paper 1.65x)",
            dc > ot,
            f"{dc:.2f}x vs {ot:.2f}x ({dc / ot:.2f}x)",
        )
    )

    avg_c, max_c = grid.cost_reduction_vs("DeepCAT", "CDBTune")
    avg_o, max_o = grid.cost_reduction_vs("DeepCAT", "OtterTune")
    checks.append(
        HeadlineCheck(
            "DeepCAT cheaper than CDBTune on avg (paper -24.64%)",
            avg_c > 0,
            f"-{avg_c:.1f}% avg, -{max_c:.1f}% max",
        )
    )
    checks.append(
        HeadlineCheck(
            "DeepCAT cheaper than OtterTune on avg (paper -39.71%)",
            avg_o > 0,
            f"-{avg_o:.1f}% avg, -{max_o:.1f}% max",
        )
    )

    km_pairs = [(w, d) for w, d in grid.pairs if w == "KM"]
    if km_pairs:
        km_margin = sum(
            grid.mean_speedup("DeepCAT", w, d)
            / grid.mean_speedup("CDBTune", w, d)
            for w, d in km_pairs
        ) / len(km_pairs)
        overall_margin = dc / cb
        checks.append(
            HeadlineCheck(
                "KMeans margin over CDBTune exceeds overall (paper §5.2.1)",
                km_margin >= overall_margin * 0.95,
                f"KM {km_margin:.2f}x vs overall {overall_margin:.2f}x",
            )
        )

    w, d = grid.pairs[0]
    rec_dc = grid.mean_rec_cost("DeepCAT", w, d)
    rec_ot = grid.mean_rec_cost("OtterTune", w, d)
    checks.append(
        HeadlineCheck(
            "DRL recommendation time << OtterTune's (paper 0.69s vs 43s)",
            rec_ot > 10 * rec_dc,
            f"{rec_dc * 1e3:.1f}ms vs {rec_ot * 1e3:.0f}ms",
        )
    )
    return checks


def format_checks(checks: list[HeadlineCheck]) -> str:
    lines = ["Headline claims:"]
    for c in checks:
        mark = "PASS" if c.passed else "MISS"
        lines.append(f"  [{mark}] {c.claim}: {c.measured}")
    return "\n".join(lines)
