"""Fault sweep: tuning-quality degradation under escalating chaos.

One DeepCAT online session per (fault profile, seed) cell, all served
from the same offline model (training stays clean — the chaos lives in
the target cluster, not the historical data).  Every arm runs the same
default resilience policy so the sweep isolates the *environment's*
hostility: the ``none`` column is the clean baseline, and the
degradation curve shows how gracefully tuning quality decays through
``flaky``/``degraded``/``hostile``.

Cells go through the experiment engine, so the sweep shards across
``--jobs`` workers and caches like every other figure — and because the
fault profile is part of the cache key, a chaos cell can never be
served a clean cell's result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import get_scale
from repro.experiments.engine import default_engine, session_task
from repro.utils.tables import format_table

__all__ = ["FaultSweepResult", "PROFILE_ORDER", "run", "format_result"]

#: sweep order, benign to hostile
PROFILE_ORDER = ("none", "flaky", "degraded", "hostile")


@dataclass(frozen=True)
class FaultSweepResult:
    profiles: tuple[str, ...]
    #: seed-mean best-so-far execution time after each step, per profile
    #: (failed-only sessions carry the default duration — no NaNs)
    curves: tuple[tuple[float, ...], ...]
    #: seed-mean final best-so-far per profile
    best: tuple[float, ...]
    #: seed-mean evaluation cost per profile (retry/backoff/watchdog
    #: charges included; recommendation wall-clock deliberately excluded
    #: so the sweep is bit-deterministic for the ``-m determinism`` suite)
    total_cost: tuple[float, ...]
    #: fraction of successful steps per profile
    success_rate: tuple[float, ...]
    #: seed-mean evaluation attempts per step (retries included)
    mean_attempts: tuple[float, ...]

    def degradation_pct(self, profile: str) -> float:
        """Final best-so-far regression of ``profile`` vs the clean arm."""
        baseline = self.best[self.profiles.index("none")]
        value = self.best[self.profiles.index(profile)]
        return (value / baseline - 1.0) * 100.0


def run(
    scale: str = "quick",
    workload: str = "TS",
    dataset: str = "D1",
    profiles: tuple[str, ...] = PROFILE_ORDER,
    seeds: tuple[int, ...] | None = None,
    *,
    engine=None,
) -> FaultSweepResult:
    if "none" not in profiles:
        raise ValueError("the sweep needs the 'none' baseline arm")
    sc = get_scale(scale)
    seeds = seeds if seeds is not None else sc.seeds
    cells = [(profile, seed) for profile in profiles for seed in seeds]
    tasks = [
        session_task(
            workload=workload, dataset=dataset, tuner="DeepCAT", seed=seed,
            scale=sc, fault_profile=profile, resilience=True,
        )
        for profile, seed in cells
    ]
    sessions = dict(zip(cells, default_engine(engine).run(tasks)))
    curves, best, cost, success, attempts = [], [], [], [], []
    for profile in profiles:
        ss = [sessions[(profile, seed)] for seed in seeds]
        series = np.mean([s.best_so_far() for s in ss], axis=0)
        curves.append(tuple(float(v) for v in series))
        best.append(float(series[-1]))
        cost.append(float(np.mean([s.evaluation_seconds for s in ss])))
        steps = [rec for s in ss for rec in s.steps]
        success.append(
            float(np.mean([1.0 if rec.success else 0.0 for rec in steps]))
        )
        attempts.append(float(np.mean([rec.attempts for rec in steps])))
    return FaultSweepResult(
        profiles=tuple(profiles),
        curves=tuple(curves),
        best=tuple(best),
        total_cost=tuple(cost),
        success_rate=tuple(success),
        mean_attempts=tuple(attempts),
    )


def format_result(r: FaultSweepResult) -> str:
    from repro.utils.ascii_plot import line_plot

    rows = [
        (
            profile,
            f"{r.best[i]:.1f}",
            f"{r.degradation_pct(profile):+.1f}%",
            f"{r.total_cost[i]:.1f}",
            f"{r.success_rate[i] * 100:.0f}%",
            f"{r.mean_attempts[i]:.2f}",
        )
        for i, profile in enumerate(r.profiles)
    ]
    table = format_table(
        headers=("profile", "final best (s)", "vs clean",
                 "tuning cost (s)", "step success", "attempts/step"),
        rows=rows,
        title="Fault sweep: tuning quality under escalating chaos",
    )
    steps = tuple(range(1, len(r.curves[0]) + 1))
    plot = line_plot(
        {profile: r.curves[i] for i, profile in enumerate(r.profiles)},
        x=steps, height=10, width=54,
    )
    return table + "\n\n" + plot
