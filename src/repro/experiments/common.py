"""Shared experiment infrastructure: scales, model cache, session runners.

Offline training is the expensive part of every experiment, and several
figures reuse the same offline model (Figures 5-8 all start from the
DeepCAT model of a workload pair).  The cache keys trained tuners by
their full construction recipe so repeated ``run()`` calls within one
process (e.g. the benchmark suite) train each model once.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.baselines.cdbtune import CDBTune
from repro.baselines.ottertune.tuner import OtterTune
from repro.cluster.hardware import CLUSTER_A, ClusterSpec
from repro.core.deepcat import DeepCAT
from repro.core.result import OnlineSession
from repro.factory import make_env

__all__ = [
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "train_deepcat",
    "train_cdbtune",
    "train_ottertune",
    "online_env",
    "clear_model_cache",
    "fork_tuner",
    "describe_session",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Budget preset for experiments.

    ``quick`` keeps the whole benchmark suite in minutes; ``full``
    approaches the paper's budgets (thousands of offline iterations,
    multiple seeds).
    """

    name: str
    offline_iterations: int
    ottertune_samples: int
    seeds: tuple[int, ...]
    online_steps: int = 5

    def __post_init__(self):
        if self.offline_iterations <= 0 or self.ottertune_samples <= 0:
            raise ValueError("budgets must be positive")
        if not self.seeds:
            raise ValueError("need at least one seed")


SCALES: dict[str, ExperimentScale] = {
    "quick": ExperimentScale(
        name="quick",
        offline_iterations=700,
        ottertune_samples=300,
        seeds=(0,),
    ),
    "standard": ExperimentScale(
        name="standard",
        offline_iterations=1500,
        ottertune_samples=500,
        seeds=(0, 1),
    ),
    "full": ExperimentScale(
        name="full",
        offline_iterations=2500,
        ottertune_samples=800,
        seeds=(0, 1, 2),
    ),
}


def get_scale(scale: str | ExperimentScale) -> ExperimentScale:
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise KeyError(
            f"unknown scale {scale!r}; have {sorted(SCALES)}"
        ) from None


# --------------------------------------------------------------------- cache

_MODEL_CACHE: dict[tuple, object] = {}


def clear_model_cache() -> None:
    """Drop all cached trained tuners (frees memory between experiments)."""
    _MODEL_CACHE.clear()


def _offline_env(
    workload: str, dataset: str, seed: int, cluster: ClusterSpec
):
    return make_env(workload, dataset, cluster=cluster, seed=seed)


def train_deepcat(
    workload: str,
    dataset: str,
    seed: int,
    scale: str | ExperimentScale = "quick",
    cluster: ClusterSpec = CLUSTER_A,
    iterations: int | None = None,
    **deepcat_kwargs,
) -> DeepCAT:
    """Train (or fetch from cache) a DeepCAT model for a workload pair."""
    sc = get_scale(scale)
    iters = iterations if iterations is not None else sc.offline_iterations
    key = (
        "deepcat", workload, dataset, seed, iters, cluster.name,
        tuple(sorted(deepcat_kwargs.items())),
    )
    if key not in _MODEL_CACHE:
        env = _offline_env(workload, dataset, seed, cluster)
        tuner = DeepCAT.from_env(env, seed=seed, **deepcat_kwargs)
        tuner.train_offline(env, iters)
        _MODEL_CACHE[key] = tuner
    return _MODEL_CACHE[key]  # type: ignore[return-value]


def train_cdbtune(
    workload: str,
    dataset: str,
    seed: int,
    scale: str | ExperimentScale = "quick",
    cluster: ClusterSpec = CLUSTER_A,
    iterations: int | None = None,
) -> CDBTune:
    """Train (or fetch from cache) a CDBTune model for a workload pair."""
    sc = get_scale(scale)
    iters = iterations if iterations is not None else sc.offline_iterations
    key = ("cdbtune", workload, dataset, seed, iters, cluster.name)
    if key not in _MODEL_CACHE:
        env = _offline_env(workload, dataset, seed, cluster)
        tuner = CDBTune.from_env(env, seed=seed)
        tuner.train_offline(env, iters)
        _MODEL_CACHE[key] = tuner
    return _MODEL_CACHE[key]  # type: ignore[return-value]


def _ottertune_corpus_pairs(workload: str, dataset: str) -> list[tuple[str, str]]:
    """Repository contents for a tuning request on (workload, dataset).

    OtterTune's repository holds *previously tuned* workloads, and the
    online stage maps the new request onto the most similar of them.
    Feeding it pristine samples of the exact target pair would make the
    mapping trivial and the GP unrealistically strong, so the corpus is
    every other workload at the target's input scale plus the target
    workload at a *different* input scale (the paper's workload-mapping
    scenario: same application, drifted data size).
    """
    other_ds = "D2" if dataset != "D2" else "D1"
    pairs = [(workload, other_ds)]
    pairs.extend(
        (w, dataset) for w in ("WC", "TS", "PR", "KM") if w != workload
    )
    return pairs


def train_ottertune(
    workload: str,
    dataset: str,
    seed: int,
    scale: str | ExperimentScale = "quick",
    cluster: ClusterSpec = CLUSTER_A,
    samples: int | None = None,
) -> OtterTune:
    """Build (or fetch) an OtterTune repository for a workload pair.

    The total sample budget is split across the repository's corpus
    pairs (see :func:`_ottertune_corpus_pairs`).
    """
    sc = get_scale(scale)
    n = samples if samples is not None else sc.ottertune_samples
    key = ("ottertune", workload, dataset, seed, n, cluster.name)
    if key not in _MODEL_CACHE:
        tuner = None
        pairs = _ottertune_corpus_pairs(workload, dataset)
        per_pair = max(1, n // len(pairs))
        for w, d in pairs:
            env = _offline_env(w, d, seed, cluster)
            if tuner is None:
                tuner = OtterTune.from_env(env, seed=seed)
            tuner.collect_offline(env, f"{w}-{d}", per_pair)
        _MODEL_CACHE[key] = tuner
    return _MODEL_CACHE[key]  # type: ignore[return-value]


def fork_tuner(tuner):
    """Deep-copy a trained tuner so online fine-tuning cannot leak between
    experiment arms (e.g. Figure 5 runs with/without Twin-Q from the SAME
    offline model)."""
    return copy.deepcopy(tuner)


def online_env(
    workload: str,
    dataset: str,
    seed: int,
    cluster: ClusterSpec = CLUSTER_A,
    fault_profile: str | None = None,
):
    """A fresh environment representing a new online tuning request."""
    return make_env(workload, dataset, cluster=cluster, seed=10_000 + seed,
                    fault_profile=fault_profile)


def describe_session(s: OnlineSession) -> str:
    """One-line summary used by several benchmarks."""
    return (
        f"{s.tuner:12s} {s.workload}-{s.dataset}: best {s.best_duration_s:7.1f}s "
        f"(speedup {s.speedup_over_default:4.2f}x), eval {s.evaluation_seconds:7.1f}s, "
        f"rec {s.recommendation_seconds:6.3f}s"
    )
