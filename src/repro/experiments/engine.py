"""Parallel experiment execution engine with an on-disk result cache.

Every figure reduces to a grid of independent *tasks* — one
``(workload, dataset, tuner, seed, ...)`` cell each — whose results are
pure functions of their parameters (the library seeds every stochastic
component explicitly, see :mod:`repro.utils.rng`).  This module exploits
that purity three ways:

* **Sharding** — :class:`ExperimentEngine` decomposes a grid into
  :class:`TaskSpec` cells and runs them on a
  :class:`concurrent.futures.ProcessPoolExecutor` (``jobs > 1``) or
  inline (``jobs=1``, the default, which preserves the serial code path
  bit-for-bit).  Results are always assembled in submission order, so
  parallelism can never change the science.
* **Seeding** — tasks carry explicit integer seeds; a task submitted
  with ``seed=None`` receives a deterministic child seed derived from
  :meth:`numpy.random.SeedSequence.spawn` in canonical task order
  (:func:`derive_task_seeds`), independent of ``jobs`` and of worker
  scheduling.
* **Caching** — :class:`ResultCache` persists each task's result under a
  content-addressed key: the SHA-256 of the task kind, its full
  parameters (cluster *specs* expanded field-by-field, not just named),
  and a code-version salt (:data:`CACHE_VERSION`).  Repeated
  ``repro report`` invocations are incremental; editing the simulator's
  physics must be accompanied by a salt bump (the golden-file tests
  under ``tests/golden/`` catch silent drift).

Telemetry (PR 1) is integrated throughout: a span per task, cache
hit/miss counters, and a scheduler-overhead breakdown
(:class:`EngineStats`).

Worker failure is treated as routine, not fatal (**supervision**):
workers catch exceptions and return a structured :class:`TaskFailure`
instead of raising; the parent survives ``BrokenProcessPool`` by
rebuilding the pool and re-dispatching only the incomplete tasks; failed
tasks get bounded retries (bit-identical by construction — a task's
result is a pure function of its seeded parameters); tasks that exhaust
their retry budget are quarantined and the grid completes with partial
results plus a ranked failure report (``strict`` mode raises
:class:`EngineTaskError` afterwards, ``lenient`` returns ``None`` in the
failed slots).  Hung workers are reaped against a per-kind EWMA deadline
(or an explicit ``task_timeout``).  The deterministic worker-kill
harness exercising all of this lives in :class:`repro.faults.WorkerChaos`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import os
import pickle
import shutil
import sys
import tempfile
import time
import traceback as traceback_module
import weakref
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.cluster.hardware import CLUSTER_A, CLUSTER_B, ClusterSpec
from repro.experiments.common import (
    ExperimentScale,
    fork_tuner,
    get_scale,
    online_env,
    train_cdbtune,
    train_deepcat,
    train_ottertune,
)
from repro.telemetry.context import NULL_CONTEXT, RunContext

__all__ = [
    "CACHE_VERSION",
    "TaskSpec",
    "task_kind",
    "session_task",
    "policy_quality_task",
    "offline_trend_task",
    "random_cdf_task",
    "derive_task_seeds",
    "ResultCache",
    "EngineStats",
    "TaskFailure",
    "EngineTaskError",
    "render_failure_report",
    "ExperimentEngine",
]

#: Code-version salt folded into every cache key.  Bump whenever a change
#: alters what any task computes (simulator physics, tuner semantics,
#: reward shaping, ...) so stale on-disk results can never be served.
#: v2: online-session tasks gained fault_profile/resilience parameters —
#: v1 keys never encoded the chaos setting, so any v1 entry is ambiguous.
CACHE_VERSION = "deepcat-engine-v2"

_CLUSTERS: dict[str, ClusterSpec] = {
    "cluster-a": CLUSTER_A,
    "cluster-b": CLUSTER_B,
}


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-stable structure (sorted keys, no sets,
    numpy scalars unboxed) so equal parameters always hash equally."""
    if isinstance(obj, Mapping):
        return {str(k): _canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _canonical(dataclasses.asdict(obj))
    if isinstance(obj, np.generic):
        return obj.item()
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for hashing")


@dataclass(frozen=True)
class TaskSpec:
    """One independent unit of experiment work.

    ``kind`` names a registered task function; ``params`` are its keyword
    arguments and must be JSON-canonicalizable (the cache key is derived
    from them).
    """

    kind: str
    params: dict[str, Any]

    def canonical_key(self) -> str:
        """Deterministic JSON identity of this task (no salt)."""
        return json.dumps(
            {"kind": self.kind, "params": _canonical(self.params)},
            sort_keys=True, separators=(",", ":"),
        )

    def cache_payload(self) -> str:
        """Like :meth:`canonical_key` but with cluster *names* expanded to
        their full hardware specs and fault-profile names to their full
        rate/factor presets, so editing either invalidates keys."""
        from repro.faults import PROFILES

        params = dict(self.params)
        for key in ("cluster", "train_cluster"):
            name = params.get(key)
            if isinstance(name, str) and name in _CLUSTERS:
                spec = _canonical(_CLUSTERS[name])
                spec["name"] = name
                params[key] = spec
        profile = params.get("fault_profile")
        if isinstance(profile, str) and profile in PROFILES:
            params["fault_profile"] = _canonical(PROFILES[profile])
        return json.dumps(
            {"kind": self.kind, "params": _canonical(params)},
            sort_keys=True, separators=(",", ":"),
        )


# ------------------------------------------------------------- task kinds

_TASK_KINDS: dict[str, Callable[..., Any]] = {}


def task_kind(name: str):
    """Register a module-level function as an executable task kind.

    Registered functions must be importable from workers (defined at
    module scope) and accept only keyword arguments.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        _TASK_KINDS[name] = fn
        return fn

    return decorate


def _scale_params(scale: str | ExperimentScale) -> dict[str, int]:
    """The budget fields of a scale — everything a task needs; the name
    and seed list stay out so equal budgets share cache entries."""
    sc = get_scale(scale)
    return {
        "offline_iterations": sc.offline_iterations,
        "ottertune_samples": sc.ottertune_samples,
        "online_steps": sc.online_steps,
    }


def _budget_scale(seed: int, *, offline_iterations: int,
                  ottertune_samples: int, online_steps: int) -> ExperimentScale:
    return ExperimentScale(
        name="engine-task",
        offline_iterations=offline_iterations,
        ottertune_samples=ottertune_samples,
        seeds=(seed,),
        online_steps=online_steps,
    )


@task_kind("online-session")
def _run_online_session(
    *,
    workload: str,
    dataset: str,
    tuner: str,
    seed: int,
    offline_iterations: int,
    ottertune_samples: int,
    online_steps: int,
    cluster: str = "cluster-a",
    train_workload: str | None = None,
    train_dataset: str | None = None,
    train_cluster: str = "cluster-a",
    overrides: dict[str, Any] | None = None,
    tuner_attrs: dict[str, Any] | None = None,
    fault_profile: str = "none",
    resilience: bool = False,
    telemetry=None,
):
    """Train one tuner and serve one online request — one grid cell.

    ``train_workload``/``train_dataset`` allow transfer cells (Figure 9:
    train on WC, tune PR); ``train_cluster``/``cluster`` allow hardware
    transfer (Figure 10); ``overrides`` are DeepCAT construction
    hyper-parameters (Figure 11's β); ``tuner_attrs`` are set on the
    forked tuner before tuning (Figure 12's ``q_threshold``, Figure 5's
    ``use_twin_q``).  ``fault_profile`` injects chaos into the *online*
    evaluations only (offline training stays clean — the model is a
    shared artifact); ``resilience`` enables the default
    retry/watchdog/guard policy during tuning (fault-sweep cells).

    ``telemetry`` is a per-worker :class:`RunContext` injected by the
    engine's bus mode (never part of ``params``, so cache keys are
    unaffected); it observes the *online* stage only — offline training
    is a shared, cacheable artifact and stays clean.
    """
    t, env, res, steps = _prepare_online_session(
        workload=workload, dataset=dataset, tuner=tuner, seed=seed,
        offline_iterations=offline_iterations,
        ottertune_samples=ottertune_samples, online_steps=online_steps,
        cluster=cluster, train_workload=train_workload,
        train_dataset=train_dataset, train_cluster=train_cluster,
        overrides=overrides, tuner_attrs=tuner_attrs,
        fault_profile=fault_profile, resilience=resilience,
    )
    tune_kwargs: dict[str, Any] = {}
    if telemetry is not None:
        # Baselines like OtterTune predate the telemetry kwarg; only
        # inject it where the tuner's tune_online accepts it.
        if "telemetry" in inspect.signature(t.tune_online).parameters:
            tune_kwargs["telemetry"] = telemetry
    if res is not None:
        tune_kwargs["resilience"] = res
    return t.tune_online(env, steps=steps, **tune_kwargs)


def _prepare_online_session(
    *,
    workload: str,
    dataset: str,
    tuner: str,
    seed: int,
    offline_iterations: int,
    ottertune_samples: int,
    online_steps: int,
    cluster: str = "cluster-a",
    train_workload: str | None = None,
    train_dataset: str | None = None,
    train_cluster: str = "cluster-a",
    overrides: dict[str, Any] | None = None,
    tuner_attrs: dict[str, Any] | None = None,
    fault_profile: str = "none",
    resilience: bool = False,
):
    """Train/fork the tuner and build the environment for one
    ``online-session`` cell; returns ``(tuner, env, resilience, steps)``.

    Shared by the scalar task and the population grouping — both produce
    exactly the objects ``tune_online`` would act on, so the lockstep
    population starts from bit-identical member state.
    """
    sc = _budget_scale(
        seed, offline_iterations=offline_iterations,
        ottertune_samples=ottertune_samples, online_steps=online_steps,
    )
    t_w = train_workload if train_workload is not None else workload
    t_d = train_dataset if train_dataset is not None else dataset
    t_cluster = _CLUSTERS[train_cluster]
    if tuner == "DeepCAT":
        base = train_deepcat(t_w, t_d, seed, sc, cluster=t_cluster,
                             **(overrides or {}))
    elif tuner == "CDBTune":
        if overrides:
            raise ValueError("overrides are DeepCAT-only")
        base = train_cdbtune(t_w, t_d, seed, sc, cluster=t_cluster)
    elif tuner == "OtterTune":
        if overrides:
            raise ValueError("overrides are DeepCAT-only")
        base = train_ottertune(t_w, t_d, seed, sc, cluster=t_cluster)
    else:
        raise ValueError(f"unknown tuner {tuner!r}")
    t = fork_tuner(base)
    for attr, value in (tuner_attrs or {}).items():
        if not hasattr(t, attr):
            raise AttributeError(f"{tuner} has no attribute {attr!r}")
        setattr(t, attr, value)
    env = online_env(workload, dataset, seed, cluster=_CLUSTERS[cluster],
                     fault_profile=fault_profile)
    res = None
    if resilience:
        if tuner != "DeepCAT":
            raise ValueError("resilience cells are DeepCAT-only")
        from repro.core.resilience import ResiliencePolicy

        res = ResiliencePolicy.default(seed=seed)
    return t, env, res, sc.online_steps


def _population_groups(tasks, pending: list[int]) -> list[list[int]]:
    """Cache-missed ``online-session`` DeepCAT cells that differ only in
    ``seed``, grouped for lockstep population stepping (>= 2 members).
    """
    groups: dict[tuple, list[int]] = {}
    for i in pending:
        task = tasks[i]
        if task.kind != "online-session":
            continue
        if task.params.get("tuner") != "DeepCAT":
            continue
        key = tuple(
            sorted(
                (k, repr(v)) for k, v in task.params.items() if k != "seed"
            )
        )
        groups.setdefault(key, []).append(i)
    return [idxs for idxs in groups.values() if len(idxs) >= 2]


def _run_online_population(params_list: list[dict[str, Any]]):
    """Run a seed-differing group of DeepCAT ``online-session`` cells as
    one lockstep population; per-cell sessions (input order) are
    bit-identical to running each cell alone, so cached results are
    interchangeable with scalar ones and ``CACHE_VERSION`` is unchanged.
    """
    from repro.core.population import PopulationTuner

    tuners, envs, resiliences = [], [], []
    steps = None
    for params in params_list:
        t, env, res, online_steps = _prepare_online_session(**params)
        tuners.append(t)
        envs.append(env)
        resiliences.append(res)
        steps = online_steps
    population = PopulationTuner.from_deepcat(
        tuners, envs, resiliences=resiliences
    )
    return population.tune(steps=steps)


@task_kind("policy-quality")
def _run_policy_quality(
    *,
    workload: str,
    dataset: str,
    seed: int,
    iterations: int,
    use_rdper: bool = True,
    policy_evals: int = 3,
):
    """Mean evaluated duration of a trained DeepCAT greedy policy
    (Figure 4's low-variance convergence metric)."""
    from repro.sim.faults import FAILURE_PERF_FACTOR

    sc = _budget_scale(
        seed, offline_iterations=iterations, ottertune_samples=1,
        online_steps=1,
    )
    kwargs = {} if use_rdper else {"use_rdper": False}
    t = train_deepcat(workload, dataset, seed, sc, iterations=iterations,
                      **kwargs)
    env = online_env(workload, dataset, seed)
    durations = []
    for _ in range(policy_evals):
        outcome = env.step(t.agent.act(env.state, explore=False))
        durations.append(
            outcome.duration_s if outcome.success
            else FAILURE_PERF_FACTOR * env.default_duration
        )
    return float(np.mean(durations))


@task_kind("offline-trend")
def _run_offline_trend(
    *,
    workload: str,
    dataset: str,
    seed: int,
    offline_iterations: int,
):
    """Offline-training series for Figure 3: min twin-Q and real reward
    per iteration, plus the agent's warmup length."""
    sc = _budget_scale(
        seed, offline_iterations=offline_iterations, ottertune_samples=1,
        online_steps=1,
    )
    t = train_deepcat(workload, dataset, seed, sc)
    log = t.offline_log
    if log is None:
        raise RuntimeError("offline log missing")
    return {
        "min_q": np.asarray(log.min_q, dtype=float),
        "rewards": np.asarray(log.rewards, dtype=float),
        "warmup_steps": int(t.agent.hp.warmup_steps),
    }


@task_kind("random-cdf")
def _run_random_cdf(
    *,
    workload: str,
    dataset: str,
    n_samples: int,
    seed: int,
):
    """Figure 2's raw material: durations of random configurations
    (failures charged at the failure performance factor)."""
    from repro.factory import make_env
    from repro.sim.faults import FAILURE_PERF_FACTOR

    env = make_env(workload, dataset, seed=seed)
    rng = np.random.default_rng(seed + 77)
    # One vectorized draw plus one batched evaluation — bit-identical to
    # the per-step loop: uniform rows come off the same stream in the
    # same order, and step_batch reproduces step's RNG schedule.
    vectors = env.space.sample_vectors(rng, n_samples)
    durations, n_failed = [], 0
    for outcome in env.step_batch(vectors):
        if outcome.success:
            durations.append(outcome.duration_s)
        else:
            n_failed += 1
            durations.append(FAILURE_PERF_FACTOR * env.default_duration)
    return {
        "durations": np.asarray(durations, dtype=float),
        "n_failed": n_failed,
        "default_duration": float(env.default_duration),
    }


def session_task(
    *,
    workload: str,
    dataset: str,
    tuner: str,
    seed: int | None,
    scale: str | ExperimentScale,
    cluster: str = "cluster-a",
    train_workload: str | None = None,
    train_dataset: str | None = None,
    train_cluster: str = "cluster-a",
    overrides: Mapping[str, Any] | None = None,
    tuner_attrs: Mapping[str, Any] | None = None,
    fault_profile: str = "none",
    resilience: bool = False,
) -> TaskSpec:
    """Build the :class:`TaskSpec` for one online-session grid cell.

    ``fault_profile``/``resilience`` always enter the params — and hence
    the cache key — even at their defaults: a cached chaos run must never
    be served for a clean cell or vice versa.
    """
    params: dict[str, Any] = {
        "workload": workload,
        "dataset": dataset,
        "tuner": tuner,
        "seed": seed,
        **_scale_params(scale),
        "cluster": cluster,
        "train_cluster": train_cluster,
        "fault_profile": fault_profile,
        "resilience": resilience,
    }
    if train_workload is not None:
        params["train_workload"] = train_workload
    if train_dataset is not None:
        params["train_dataset"] = train_dataset
    if overrides:
        params["overrides"] = dict(overrides)
    if tuner_attrs:
        params["tuner_attrs"] = dict(tuner_attrs)
    return TaskSpec(kind="online-session", params=params)


def policy_quality_task(
    *, workload: str, dataset: str, seed: int | None, iterations: int,
    use_rdper: bool = True, policy_evals: int = 3,
) -> TaskSpec:
    return TaskSpec(kind="policy-quality", params={
        "workload": workload, "dataset": dataset, "seed": seed,
        "iterations": iterations, "use_rdper": use_rdper,
        "policy_evals": policy_evals,
    })


def offline_trend_task(
    *, workload: str, dataset: str, seed: int | None,
    scale: str | ExperimentScale,
) -> TaskSpec:
    return TaskSpec(kind="offline-trend", params={
        "workload": workload, "dataset": dataset, "seed": seed,
        "offline_iterations": get_scale(scale).offline_iterations,
    })


def random_cdf_task(
    *, workload: str, dataset: str, n_samples: int, seed: int | None,
) -> TaskSpec:
    return TaskSpec(kind="random-cdf", params={
        "workload": workload, "dataset": dataset,
        "n_samples": n_samples, "seed": seed,
    })


# -------------------------------------------------------------- seed plan


def derive_task_seeds(
    root_seed: int, tasks: Sequence[TaskSpec]
) -> list[int]:
    """One deterministic integer seed per task via ``SeedSequence.spawn``.

    Children of ``SeedSequence(root_seed)`` are assigned in canonical
    task order (sorted by :meth:`TaskSpec.canonical_key`, ties broken by
    submission position), so the mapping depends only on the task list —
    never on ``jobs``, worker scheduling, or completion order.  Identical
    replicate specs receive *distinct* children (by position), which is
    what makes seedless replicate sweeps statistically independent.
    """
    if not tasks:
        return []
    order = sorted(range(len(tasks)),
                   key=lambda i: (tasks[i].canonical_key(), i))
    children = np.random.SeedSequence(root_seed).spawn(len(tasks))
    seeds = [0] * len(tasks)
    for child, i in zip(children, order):
        seeds[i] = int(child.generate_state(1, dtype=np.uint32)[0])
    return seeds


# ------------------------------------------------------------------ cache

#: sentinel distinguishing "cache miss" from a cached ``None``
_MISS = object()

#: container-format magic for checksummed entries; followed by the hex
#: SHA-256 of the pickle body, a newline, then the body itself.  Entries
#: without the magic are legacy plain pickles and stay readable.
_CACHE_MAGIC = b"repro-cache-c1\n"


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives a power cut;
    best-effort — some filesystems refuse directory fds."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


class ResultCache:
    """Content-addressed on-disk store for task results.

    Layout: ``<root>/<key[:2]>/<key>.pkl`` where ``key`` is the SHA-256
    of the task's :meth:`~TaskSpec.cache_payload` plus ``salt``.  Each
    entry stores the payload alongside the pickled result; a payload
    mismatch on load (hash collision, salt bug) is treated as a miss.

    Integrity: entries are written as a checksummed container (magic +
    SHA-256 of the body), atomically (temp file + fsync +
    :func:`os.replace` + directory fsync), so a crash or power cut never
    leaves a torn entry behind.  An entry that fails its checksum or
    won't unpickle is moved to ``<root>/.quarantine/`` and counted in
    :attr:`corrupt_entries` — never silently re-read, never crash-looped
    on, and never deleted (operators can inspect the bytes).  Entries in
    the legacy un-checksummed format still load.
    """

    def __init__(self, root: str | Path, salt: str = CACHE_VERSION):
        self.root = Path(root)
        self.salt = salt
        #: entries that failed integrity checks and were quarantined
        self.corrupt_entries = 0

    @property
    def quarantine_dir(self) -> Path:
        return self.root / ".quarantine"

    def key_for(self, task: TaskSpec) -> str:
        payload = f"{self.salt}\n{task.cache_payload()}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _quarantine(self, path: Path) -> None:
        self.corrupt_entries += 1
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:  # pragma: no cover - cross-device/permission edge
            try:
                path.unlink()
            except OSError:
                pass

    def _decode(self, data: bytes, path: Path) -> dict[str, Any] | None:
        """Unpickle an entry, verifying the checksum when present;
        quarantines and returns ``None`` on any integrity failure."""
        if data.startswith(_CACHE_MAGIC):
            head = data[len(_CACHE_MAGIC):]
            digest, sep, body = head.partition(b"\n")
            if (
                not sep
                or hashlib.sha256(body).hexdigest().encode("ascii")
                != digest
            ):
                self._quarantine(path)
                return None
        else:
            body = data  # legacy pre-checksum entry
        try:
            entry = pickle.loads(body)
        except Exception:
            self._quarantine(path)
            return None
        if not isinstance(entry, dict):
            self._quarantine(path)
            return None
        return entry

    def load(self, task: TaskSpec):
        """Return the cached result, or the module-private miss sentinel."""
        path = self._path(self.key_for(task))
        try:
            data = path.read_bytes()
        except OSError:
            return _MISS
        entry = self._decode(data, path)
        if entry is None:
            return _MISS  # quarantined: recompute and rewrite
        if entry.get("payload") != task.cache_payload():
            return _MISS
        return entry["result"]

    def store(self, task: TaskSpec, result: Any) -> Path:
        key = self.key_for(task)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = pickle.dumps(
            {
                "salt": self.salt,
                "kind": task.kind,
                "payload": task.cache_payload(),
                "result": result,
            }
        )
        digest = hashlib.sha256(body).hexdigest().encode("ascii")
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            fh.write(_CACHE_MAGIC + digest + b"\n" + body)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("[0-9a-f][0-9a-f]/*.pkl"))

    @staticmethod
    def is_miss(value: Any) -> bool:
        return value is _MISS


# ----------------------------------------------------------------- engine


@dataclass
class EngineStats:
    """Counters accumulated across :meth:`ExperimentEngine.run` calls."""

    tasks: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    #: task attempts that ended in a failure (any disposition)
    task_failures: int = 0
    #: failed attempts that were re-dispatched
    task_retries: int = 0
    #: failures caused by the per-task deadline reaping a hung worker
    task_timeouts: int = 0
    #: worker pools rebuilt after a crash or deadline reap
    pool_rebuilds: int = 0
    #: tasks that exhausted their retry budget and were quarantined
    quarantined_tasks: int = 0
    #: cache entries that failed integrity checks and were quarantined
    cache_corrupt: int = 0
    #: worker-measured seconds actually spent computing tasks
    compute_seconds: float = 0.0
    #: wall-clock of the ``run()`` calls themselves
    wall_seconds: float = 0.0
    #: wall-clock not covered by (parallel-adjusted) compute: scheduling,
    #: serialization, and cache I/O
    overhead_seconds: float = 0.0

    def summary(self) -> str:
        text = (
            f"{self.tasks} task(s): {self.cache_hits} cache hit(s), "
            f"{self.executed} executed in {self.compute_seconds:.1f}s "
            f"compute / {self.wall_seconds:.1f}s wall "
            f"(scheduler overhead {self.overhead_seconds:.2f}s)"
        )
        if self.task_failures or self.pool_rebuilds or self.cache_corrupt:
            text += (
                f"; {self.task_failures} failure(s), "
                f"{self.task_retries} retried, "
                f"{self.quarantined_tasks} quarantined, "
                f"{self.pool_rebuilds} pool rebuild(s), "
                f"{self.cache_corrupt} corrupt cache entr(ies)"
            )
        return text


@dataclass
class TaskFailure:
    """Structured record of one failed task attempt.

    Workers return this instead of raising, so the parent always gets
    the remote exception type and its formatted traceback — never a bare
    ``BrokenProcessPool`` with zero context.  Synthesized at the parent
    for failures the worker cannot report itself (the process died, or
    the deadline reaped it).
    """

    kind: str
    index: int
    key: str
    exc_type: str
    message: str
    traceback: str
    attempts: int
    pid: int | None = None
    #: the worker process died (SIGKILL/OOM) rather than raising
    worker_crash: bool = False
    #: the per-task deadline expired and the supervisor reaped the worker
    timed_out: bool = False

    def as_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    def summary(self) -> str:
        cause = (
            "deadline expired" if self.timed_out
            else "worker died" if self.worker_crash
            else f"{self.exc_type}: {self.message}"
        )
        return (
            f"task {self.index} ({self.kind}) after "
            f"{self.attempts} attempt(s): {cause}"
        )


class EngineTaskError(RuntimeError):
    """Raised by a strict-mode engine after tasks exhausted their retries.

    The grid still ran to completion first — every successful cell was
    cached — so fixing the cause and re-running is incremental.
    :attr:`failures` holds the quarantined :class:`TaskFailure` records
    and :attr:`report` the full ranked failure report.
    """

    def __init__(self, failures: Sequence[TaskFailure],
                 report: dict[str, Any]):
        self.failures = list(failures)
        self.report = report
        super().__init__(
            f"{len(self.failures)} task(s) failed permanently; "
            "completed results are cached — see .report or "
            "engine.failure_report()"
        )


def render_failure_report(report: dict[str, Any]) -> str:
    """Human-readable form of :meth:`ExperimentEngine.failure_report`."""
    counters = report.get("counters", {})
    lines = [
        "engine failure report: "
        + ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
    ]
    quarantined = report.get("quarantined", [])
    if not quarantined:
        lines.append("no quarantined tasks")
    for rec in quarantined:
        cause = (
            "deadline expired" if rec.get("timed_out")
            else "worker died" if rec.get("worker_crash")
            else f"{rec.get('exc_type')}: {rec.get('message')}"
        )
        lines.append(
            f"  [{rec.get('attempts')} attempt(s)] task {rec.get('index')}"
            f" ({rec.get('kind')}): {cause}"
        )
    return "\n".join(lines)


#: exception types treated as deterministic: the task's result is a pure
#: function of its parameters, so re-running a task that raised one of
#: these cannot succeed — quarantine immediately instead of burning the
#: retry budget.  Crashes and timeouts are always retryable (the
#: *environment* failed, not the task).
_NON_TRANSIENT = frozenset({
    "ValueError",
    "TypeError",
    "KeyError",
    "AttributeError",
    "AssertionError",
    "NotImplementedError",
})


def _retryable(failure: TaskFailure) -> bool:
    return (
        failure.worker_crash
        or failure.timed_out
        or failure.exc_type not in _NON_TRANSIENT
    )


def _execute_task(task: TaskSpec) -> tuple[Any, float]:
    """Worker entry point: run the task, return (result, compute seconds)."""
    fn = _TASK_KINDS.get(task.kind)
    if fn is None:
        raise KeyError(
            f"unknown task kind {task.kind!r}; have {sorted(_TASK_KINDS)}"
        )
    t0 = time.perf_counter()
    result = fn(**task.params)
    return result, time.perf_counter() - t0


def _supervised_task(
    task: TaskSpec,
    index: int,
    attempt: int,
    chaos=None,
    spool: str | None = None,
    bus_dir: str | None = None,
    source: str | None = None,
    trace: tuple[str, str] | None = None,
) -> tuple[Any, float, dict[str, Any] | None]:
    """Supervised worker entry point: never raises.

    Returns ``(result, seconds, metrics_state)`` on success or
    ``(TaskFailure, 0.0, None)`` on any exception.  Before any work it
    touches an attempt marker in ``spool`` so the parent can tell a task
    whose worker died mid-attempt (charge the attempt) from one that was
    still queued when a *sibling* broke the pool (free re-dispatch) —
    ``Future.running()`` alone races the crash.  The chaos harness, when
    armed, SIGKILLs doomed attempts right after the marker: the parent
    sees exactly what a real mid-task OOM-kill produces.
    """
    if spool is not None:
        try:
            open(os.path.join(spool, f"{index}.{attempt}"), "wb").close()
        except OSError:  # pragma: no cover - spool on a broken disk
            pass
    if chaos is not None and chaos.should_kill(task.canonical_key(), attempt):
        chaos.kill_now()
    try:
        if bus_dir is not None:
            return _execute_task_bus(task, bus_dir, source, trace)
        result, seconds = _execute_task(task)
        return result, seconds, None
    except (KeyboardInterrupt, SystemExit):  # pragma: no cover - passthrough
        raise
    except BaseException as exc:
        return (
            TaskFailure(
                kind=task.kind,
                index=index,
                key=task.canonical_key(),
                exc_type=type(exc).__name__,
                message=str(exc),
                traceback=traceback_module.format_exc(),
                attempts=attempt,
                pid=os.getpid(),
            ),
            0.0,
            None,
        )


_ACCEPTS_TELEMETRY: dict[str, bool] = {}


def _accepts_telemetry(kind: str) -> bool:
    """Whether a task kind takes the engine-injected ``telemetry`` kwarg
    (cached per kind — signature inspection is not free)."""
    cached = _ACCEPTS_TELEMETRY.get(kind)
    if cached is None:
        fn = _TASK_KINDS[kind]
        try:
            params = inspect.signature(fn).parameters
        except (TypeError, ValueError):  # pragma: no cover - builtins only
            params = {}
        cached = _ACCEPTS_TELEMETRY[kind] = "telemetry" in params
    return cached


def _execute_task_bus(
    task: TaskSpec,
    bus_dir: str,
    source: str,
    trace: tuple[str, str] | None = None,
) -> tuple[Any, float, dict[str, Any]]:
    """Bus-mode worker entry point.

    Wraps :func:`_execute_task` with a per-worker telemetry context whose
    events land on this worker's bus stream: a ``worker-heartbeat`` pair
    bracketing the task, live diagnostics ``alert`` events, and a final
    ``metrics-snapshot`` carrying the picklable registry ``state()`` —
    which is also returned so the parent can ``merge()`` it without
    re-reading the stream.

    With a ``trace`` context — ``(trace_id, ref)``, the grid's trace id
    plus the ref of the parent-side ``engine.task`` span — the worker
    also records its own span tree (roots carry ``parent_ref: <ref>``)
    and a per-task cost ledger; both are saved to the ``traces/`` and
    ``ledgers/`` subdirs of the bus directory — kept out of the bus root
    so ``merge_timeline`` never sweeps them into the event timeline.
    """
    from repro.telemetry.bus import BusWriter
    from repro.telemetry.diagnostics import DiagnosticsEngine
    from repro.telemetry.ledger import CostLedger
    from repro.telemetry.metrics import MetricsRegistry
    from repro.telemetry.tracing import Tracer

    fn = _TASK_KINDS.get(task.kind)
    if fn is None:
        raise KeyError(
            f"unknown task kind {task.kind!r}; have {sorted(_TASK_KINDS)}"
        )
    trace_id, trace_ref = trace if trace is not None else (None, None)
    writer = BusWriter(bus_dir, source, trace_id=trace_id)
    tracer = None
    ledger = None
    if trace is not None:
        tracer = Tracer(trace_id=trace_id, parent_ref=trace_ref)
        ledger = CostLedger(
            Path(bus_dir) / "ledgers" / f"{trace_ref}.ledger.jsonl",
            source=trace_ref,
        )
    ctx = RunContext(
        logger=writer,
        tracer=tracer,
        metrics=MetricsRegistry(),
        diagnostics=DiagnosticsEngine(),
        ledger=ledger,
    )
    try:
        writer.event(
            "worker-heartbeat", status="start", task_kind=task.kind,
            pid=os.getpid(),
        )
        kwargs = dict(task.params)
        if _accepts_telemetry(task.kind):
            kwargs["telemetry"] = ctx
        t0 = time.perf_counter()
        if tracer is not None:
            with tracer.span("worker.task", kind=task.kind, source=source):
                result = fn(**kwargs)
        else:
            result = fn(**kwargs)
        seconds = time.perf_counter() - t0
        # Anything raised but not yet drained by the instrumented loops.
        for alert in ctx.diagnostics.drain_alerts():
            writer.event("alert", **alert.as_event_fields())
        state = ctx.metrics.state()
        writer.event("metrics-snapshot", metrics=state)
        writer.event(
            "worker-heartbeat", status="end", task_kind=task.kind,
            pid=os.getpid(), seconds=round(seconds, 6),
            alerts=len(ctx.diagnostics.alerts),
        )
        return result, seconds, state
    finally:
        if tracer is not None:
            trace_dir = Path(bus_dir) / "traces"
            trace_dir.mkdir(parents=True, exist_ok=True)
            tracer.save_jsonl(trace_dir / f"{trace_ref}.trace.jsonl")
        if ledger is not None:
            ledger.close()
        writer.close()


def _engine_worker_init(blas_threads: int | None) -> None:
    """Per-worker initializer of the persistent pool: pin BLAS pools
    once at spawn so K workers x 1 BLAS thread never oversubscribe."""
    if blas_threads is not None:
        from repro.parallel.pinning import limit_blas_threads

        limit_blas_threads(blas_threads)


def _shutdown_pool_holder(holder: dict) -> None:
    """Weakref finalizer target — must not reference the engine."""
    pool = holder.pop("pool", None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


class ExperimentEngine:
    """Runs :class:`TaskSpec` grids, optionally in parallel and cached.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs every task inline in the
        calling process — exactly the serial code path.  Because every
        task seeds its own RNGs, ``jobs`` never changes results, only
        wall-clock (covered by the ``-m determinism`` test suite).
    cache:
        A :class:`ResultCache`, or ``None`` to always recompute.
    telemetry:
        A :class:`~repro.telemetry.context.RunContext`; the engine emits
        an ``engine.run`` span, one ``engine.task`` span per task, cache
        hit/miss counters, and an ``engine.task_seconds`` histogram.
    root_seed:
        Root of the ``SeedSequence.spawn`` plan filling in ``seed=None``
        tasks (see :func:`derive_task_seeds`).
    bus_dir:
        Event-bus directory.  When set, every executed task runs with a
        per-worker telemetry context whose events (worker heartbeats,
        diagnostics alerts, metrics snapshots) stream to
        ``<bus_dir>/task-NNNN.jsonl``; after each :meth:`run` the streams
        are merged into one ordered ``timeline.jsonl`` and the workers'
        metrics registries are folded into this engine's ``telemetry``
        registry via ``merge()``.  The supervisor writes its own
        ``task-failed``/``task-retried``/``pool-rebuilt`` events to an
        ``engine`` stream.
    task_retries:
        How many times a failed/crashed/timed-out task is re-dispatched
        before quarantine (total attempts = ``task_retries + 1``).
        Retries are bit-identical science: every task's result is a pure
        function of its seeded parameters.
    task_timeout:
        Hard per-task deadline in seconds; a worker running longer is
        SIGKILLed and the task charged a timed-out attempt.  ``None``
        (default) derives the deadline from ``timeout_multiple`` × the
        EWMA of per-kind durations (floor 30s) once a kind has completed
        at least once — before that, tasks may run unbounded.
    timeout_multiple:
        EWMA multiplier for the derived deadline.
    failure_mode:
        ``"strict"`` (default) completes the grid, then raises
        :class:`EngineTaskError` if any task was quarantined;
        ``"lenient"`` returns ``None`` in the failed slots instead.
    chaos:
        A :class:`repro.faults.WorkerChaos` worker-kill schedule (tests
        and CI soak only).  Requires ``jobs >= 2`` — an inline worker
        killing itself would take the parent with it.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        telemetry: RunContext = NULL_CONTEXT,
        root_seed: int = 0,
        bus_dir: str | Path | None = None,
        task_retries: int = 2,
        task_timeout: float | None = None,
        timeout_multiple: float = 8.0,
        failure_mode: str = "strict",
        chaos=None,
        blas_threads: int | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if task_retries < 0:
            raise ValueError(f"task_retries must be >= 0, got {task_retries}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        if failure_mode not in ("strict", "lenient"):
            raise ValueError(
                f"failure_mode must be 'strict' or 'lenient',"
                f" got {failure_mode!r}"
            )
        if chaos is not None and jobs < 2:
            raise ValueError(
                "chaos requires jobs >= 2: an inline worker SIGKILLing "
                "itself would kill the parent process"
            )
        self.jobs = jobs
        self.cache = cache
        self.telemetry = telemetry
        self.root_seed = root_seed
        self.bus_dir = Path(bus_dir) if bus_dir is not None else None
        self.task_retries = task_retries
        self.task_timeout = task_timeout
        self.timeout_multiple = timeout_multiple
        self.failure_mode = failure_mode
        self.chaos = chaos
        #: BLAS thread cap applied in each pool worker's initializer
        #: (None = leave the worker's BLAS pools alone)
        self.blas_threads = blas_threads
        # Persistent worker pool: created on first pooled run, reused
        # across rounds and run() calls (amortizing interpreter spawn),
        # discarded+rebuilt only after a crash/reap broke it.  The
        # holder indirection lets a weakref finalizer shut the pool down
        # when the engine is garbage-collected without keeping the
        # engine alive.
        self._pool_holder: dict[str, ProcessPoolExecutor] = {}
        self._pool_finalizer = weakref.finalize(
            self, _shutdown_pool_holder, self._pool_holder
        )
        self.stats = EngineStats()
        #: quarantined :class:`TaskFailure` records across run() calls
        self.failures: list[TaskFailure] = []
        self._kind_ewma: dict[str, float] = {}
        self._bus = None
        self._run_failures: list[TaskFailure] = []
        self._traced_indices: set[int] = set()
        # Stitch-trace state (bus mode): one tracer per engine so every
        # run() of a report shares the grid's trace id; refs are scoped
        # by a run ordinal so task indices never collide across runs.
        self._stitch = None
        self._stitch_run = None
        self._runs = 0
        self._run_tag = ""

    # ------------------------------------------------------------- helpers

    def _resolve_seeds(self, tasks: Sequence[TaskSpec]) -> list[TaskSpec]:
        """Fill ``seed=None`` params from the deterministic seed plan."""
        if not any(t.params.get("seed") is None for t in tasks):
            return list(tasks)
        plan = derive_task_seeds(self.root_seed, tasks)
        resolved = []
        for task, seed in zip(tasks, plan):
            if task.params.get("seed") is None:
                resolved.append(
                    TaskSpec(task.kind, {**task.params, "seed": seed})
                )
            else:
                resolved.append(task)
        return resolved

    def _record_task(self, task: TaskSpec, cached: bool,
                     compute_s: float, index: int | None = None) -> None:
        t = self.telemetry
        status = "hit" if cached else "miss"
        with t.span("engine.task", kind=task.kind, cache=status) as span:
            span.set_attr("compute_s", round(compute_s, 6))
        if t.ledger.enabled:
            # Parent-side cost accounting: executed tasks charge their
            # worker-measured compute; cache hits charge zero and record
            # the estimated avoided cost (per-kind EWMA) instead.
            t.ledger.charge(
                "task", float(compute_s), phase="engine",
                kind=task.kind, cache=status, index=index,
            )
            if cached:
                t.ledger.counterfactual(
                    "cache_saving",
                    float(self._kind_ewma.get(task.kind, 0.0)),
                    phase="engine", kind=task.kind, index=index,
                )
        if self._stitch is not None:
            self._stitch.record_span(
                "engine.task",
                start_wall=time.time() - compute_s,
                duration_s=compute_s,
                parent=self._stitch_run,
                ref=(
                    f"{self._run_tag}-task-{index:04d}"
                    if index is not None else None
                ),
                kind=task.kind,
                cache=status,
            )
        t.count("engine.tasks_total", help="engine tasks by kind and cache "
                "status", kind=task.kind, cache=status)
        if cached:
            t.count("engine.cache_hits_total", help="task results served "
                    "from the on-disk cache")
        else:
            t.count("engine.cache_misses_total", help="task results "
                    "computed because the cache had no entry")
            t.observe("engine.task_seconds", compute_s,
                      help="worker-measured task compute time",
                      kind=task.kind)

    # ---------------------------------------------------- supervision

    #: floor for EWMA-derived deadlines — never reap a kind faster than
    #: this just because its first completion was quick
    _TIMEOUT_FLOOR_S = 30.0
    #: pool polling interval; also bounds deadline-detection latency
    _POLL_S = 0.25
    _EWMA_ALPHA = 0.3

    def _deadline_for(self, kind: str) -> float | None:
        if self.task_timeout is not None:
            return self.task_timeout
        ewma = self._kind_ewma.get(kind)
        if ewma is None:
            return None  # no completion observed yet: run unbounded
        return max(self.timeout_multiple * ewma, self._TIMEOUT_FLOOR_S)

    def _note_duration(self, kind: str, seconds: float) -> None:
        prev = self._kind_ewma.get(kind)
        self._kind_ewma[kind] = (
            seconds if prev is None
            else (1.0 - self._EWMA_ALPHA) * prev + self._EWMA_ALPHA * seconds
        )

    def _event(self, kind: str, **fields: Any) -> None:
        """Emit a supervisor event to telemetry and, in bus mode, to the
        parent's own ``engine`` bus stream."""
        self.telemetry.event(kind, **fields)
        if self._bus is not None:
            self._bus.event(kind, **fields)

    def _handle_failure(self, failure: TaskFailure) -> bool:
        """Record one failed attempt; returns True when the task should
        be re-dispatched, False when it is quarantined."""
        self.stats.task_failures += 1
        t = self.telemetry
        t.count("engine.task_failures_total",
                help="task attempts that ended in a failure",
                kind=failure.kind, exc=failure.exc_type)
        if failure.timed_out:
            self.stats.task_timeouts += 1
            t.count("engine.task_timeouts_total",
                    help="hung workers reaped by the per-task deadline",
                    kind=failure.kind)
        self._event(
            "task-failed", task_kind=failure.kind, index=failure.index,
            attempt=failure.attempts, exc_type=failure.exc_type,
            message=failure.message, worker_crash=failure.worker_crash,
            timed_out=failure.timed_out,
        )
        print(f"engine: {failure.summary()}", file=sys.stderr)
        if failure.traceback and failure.index not in self._traced_indices:
            # The remote traceback, once per task — retries of the same
            # cell fail identically and only add noise.
            self._traced_indices.add(failure.index)
            print(failure.traceback.rstrip(), file=sys.stderr)
        retry = failure.attempts <= self.task_retries and _retryable(failure)
        if retry:
            self.stats.task_retries += 1
            t.count("engine.task_retries_total",
                    help="failed tasks re-dispatched", kind=failure.kind)
            self._event("task-retried", task_kind=failure.kind,
                        index=failure.index, attempt=failure.attempts)
        else:
            self.stats.quarantined_tasks += 1
            t.count("engine.quarantined_tasks_total",
                    help="tasks that exhausted their retry budget",
                    kind=failure.kind)
            self.failures.append(failure)
            self._run_failures.append(failure)
        return retry

    @staticmethod
    def _kill_workers(pool: ProcessPoolExecutor) -> None:
        """SIGKILL every live worker of a pool (deadline reap).  The
        broken pool then fails all outstanding futures and the
        supervisor rebuilds it for the incomplete tasks."""
        procs = getattr(pool, "_processes", None) or {}
        for proc in list(procs.values()):
            try:
                proc.kill()
            except (OSError, AttributeError):  # pragma: no cover - racing
                pass

    def failure_report(self) -> dict[str, Any]:
        """Ranked report of quarantined tasks plus supervisor counters
        (most attempts first — the cells that fought hardest lead)."""
        ranked = sorted(
            self.failures,
            key=lambda f: (-f.attempts, f.kind, f.index),
        )
        return {
            "schema": "engine-failure-report-v1",
            "healthy": not self.failures,
            "quarantined": [f.as_dict() for f in ranked],
            "counters": {
                "task_failures": self.stats.task_failures,
                "task_retries": self.stats.task_retries,
                "task_timeouts": self.stats.task_timeouts,
                "pool_rebuilds": self.stats.pool_rebuilds,
                "quarantined_tasks": self.stats.quarantined_tasks,
                "cache_corrupt": self.stats.cache_corrupt,
            },
        }

    # ----------------------------------------------------------------- run

    def run(self, tasks: Sequence[TaskSpec]) -> list[Any]:
        """Execute ``tasks``; results are returned in submission order
        regardless of ``jobs`` or completion order.

        Worker failures are supervised: failed tasks are retried up to
        ``task_retries`` times (bit-identically — tasks are pure
        functions of their seeded parameters), crashed pools are rebuilt
        and only incomplete tasks re-dispatched, and hung workers are
        reaped against the per-task deadline.  Tasks that exhaust their
        budget leave ``None`` in their slot; in ``strict`` mode (the
        default) :class:`EngineTaskError` is raised *after* the rest of
        the grid completed and was cached.
        """
        tasks = self._resolve_seeds(tasks)
        n = len(tasks)
        results: list[Any] = [None] * n
        t_run0 = time.perf_counter()
        self.telemetry.gauge_set("engine.jobs", self.jobs,
                                 help="configured worker processes")
        compute_s = 0.0
        pending: list[int] = []
        self._run_failures = []
        corrupt0 = self.cache.corrupt_entries if self.cache else 0
        if self.bus_dir is not None:
            from repro.telemetry.bus import BusWriter
            from repro.telemetry.tracing import Tracer

            if self._stitch is None:
                parent_id = getattr(self.telemetry.tracer, "trace_id", "")
                self._stitch = Tracer(trace_id=parent_id or None)
            self._run_tag = f"r{self._runs}"
            self._runs += 1
            self._bus = BusWriter(
                self.bus_dir, "engine", trace_id=self._stitch.trace_id
            )
            self._stitch_run = self._stitch.record_span(
                "engine.run", start_wall=time.time(), duration_s=0.0,
                ref=f"{self._run_tag}.run", tasks=n, jobs=self.jobs,
            )
        try:
            with self.telemetry.phase("engine.dispatch"), \
                    self.telemetry.span("engine.run", tasks=n,
                                        jobs=self.jobs):
                for task in tasks:
                    if task.kind not in _TASK_KINDS:
                        raise KeyError(
                            f"unknown task kind {task.kind!r};"
                            f" have {sorted(_TASK_KINDS)}"
                        )
                for i, task in enumerate(tasks):
                    hit = self.cache.load(task) if self.cache else _MISS
                    if not ResultCache.is_miss(hit):
                        results[i] = hit
                        self.stats.cache_hits += 1
                        self._record_task(task, cached=True, compute_s=0.0,
                                          index=i)
                    else:
                        pending.append(i)
                if self.cache is not None:
                    corrupt = self.cache.corrupt_entries - corrupt0
                    if corrupt:
                        self.stats.cache_corrupt += corrupt
                        self.telemetry.count(
                            "engine.cache_corrupt_total", corrupt,
                            help="cache entries that failed integrity "
                                 "checks and were quarantined",
                        )
                        self._event(
                            "cache-quarantined", count=corrupt,
                            quarantine_dir=str(self.cache.quarantine_dir),
                        )
                # Chaos and explicit deadlines need process isolation:
                # with them armed, even a single pending task goes to
                # the pool so SIGKILL never lands on the parent.
                force_pool = (
                    self.chaos is not None or self.task_timeout is not None
                )
                if self.jobs == 1 or (len(pending) <= 1 and not force_pool):
                    compute_s = self._run_inline(tasks, pending, results)
                else:
                    compute_s = self._run_pool(tasks, pending, results)
                if self.bus_dir is not None and pending:
                    from repro.telemetry.bus import merge_timeline

                    merge_timeline(self.bus_dir)
                    self._absorb_worker_ledgers(pending)
        finally:
            if self._stitch is not None:
                if self._stitch_run is not None:
                    self._stitch_run.duration_s = (
                        time.perf_counter() - t_run0
                    )
                    self._stitch_run = None
                trace_dir = self.bus_dir / "traces"
                trace_dir.mkdir(parents=True, exist_ok=True)
                self._stitch.save_jsonl(trace_dir / "engine.trace.jsonl")
            if self._bus is not None:
                self._bus.close()
                self._bus = None
        wall = time.perf_counter() - t_run0
        effective = min(self.jobs, max(1, len(pending)))
        self.stats.tasks += n
        self.stats.wall_seconds += wall
        self.stats.compute_seconds += compute_s
        # Approximate: assumes executed tasks overlapped perfectly across
        # the workers actually used; the remainder is scheduling,
        # serialization, and cache I/O.
        self.stats.overhead_seconds += max(0.0, wall - compute_s / effective)
        self.telemetry.gauge_set(
            "engine.scheduler_overhead_seconds", self.stats.overhead_seconds,
            help="run() wall-clock not covered by parallel-adjusted compute",
        )
        if self._run_failures and self.failure_mode == "strict":
            raise EngineTaskError(self._run_failures, self.failure_report())
        return results

    def _run_inline(self, tasks: Sequence[TaskSpec], pending: list[int],
                    results: list[Any]) -> float:
        """Inline dispatch (jobs=1): the exact serial code path, now with
        supervised per-task retries.  Seed-differing DeepCAT cells are
        batched into lockstep populations (bit-identical per cell, so the
        cache sees ordinary scalar results); bus mode keeps per-task
        workers for stream attribution; a failing population group is
        dissolved and its cells retried individually."""
        compute_s = 0.0
        handled: set[int] = set()
        if self.bus_dir is None:
            for idxs in _population_groups(tasks, pending):
                t0 = time.perf_counter()
                try:
                    sessions = _run_online_population(
                        [tasks[i].params for i in idxs]
                    )
                except Exception as exc:
                    print(
                        f"engine: population group of {len(idxs)} cell(s) "
                        f"failed ({type(exc).__name__}: {exc}); retrying "
                        "the cells individually", file=sys.stderr,
                    )
                    continue
                seconds = (time.perf_counter() - t0) / len(idxs)
                for i, session in zip(idxs, sessions):
                    compute_s += seconds
                    self._note_duration(tasks[i].kind, seconds)
                    self._finish(tasks[i], i, session, seconds, results)
                    handled.add(i)
        bus_dir = str(self.bus_dir) if self.bus_dir is not None else None
        for i in pending:
            if i in handled:
                continue
            attempt = 0
            while True:
                attempt += 1
                result, seconds, state = _supervised_task(
                    tasks[i], i, attempt, bus_dir=bus_dir,
                    source=f"task-{i:04d}" if bus_dir else None,
                    trace=self._task_trace(i) if bus_dir else None,
                )
                if isinstance(result, TaskFailure):
                    if self._handle_failure(result):
                        continue
                    break
                if state is not None:
                    self._merge_worker_state(state)
                compute_s += seconds
                self._note_duration(tasks[i].kind, seconds)
                self._finish(tasks[i], i, result, seconds, results)
                break
        return compute_s

    def _run_pool(self, tasks: Sequence[TaskSpec], pending: list[int],
                  results: list[Any]) -> float:
        """Supervised process-pool dispatch.

        Runs rounds until every task either finished or was quarantined:
        each round builds a fresh pool for the still-incomplete tasks
        and drains it, surviving ``BrokenProcessPool``.  Attempt
        accounting on a broken pool uses the spool markers written by
        :func:`_supervised_task`: when the supervisor itself killed the
        pool to reap a hung task, only the reaped task is charged; when
        a worker died unexpectedly, every task that had *started* an
        attempt is charged and queued bystanders are re-dispatched free.
        """
        compute_s = 0.0
        attempts = {i: 0 for i in pending}
        todo = set(pending)
        bus_dir = str(self.bus_dir) if self.bus_dir is not None else None
        spool = Path(tempfile.mkdtemp(prefix="repro-engine-spool-"))
        try:
            while todo:
                batch = sorted(todo)
                pool = self._ensure_pool()
                broke = False
                reaped: set[int] = set()
                futures: dict[Future, int] = {}
                try:
                    for i in batch:
                        attempts[i] += 1
                        try:
                            fut = pool.submit(
                                _supervised_task, tasks[i], i, attempts[i],
                                self.chaos, str(spool), bus_dir,
                                f"task-{i:04d}" if bus_dir else None,
                                self._task_trace(i) if bus_dir else None,
                            )
                        except BrokenExecutor:
                            attempts[i] -= 1
                            broke = True
                            break
                        futures[fut] = i
                    outstanding = set(futures)
                    running_since: dict[Future, float] = {}
                    while outstanding:
                        done, outstanding = wait(
                            outstanding, timeout=self._POLL_S,
                            return_when=FIRST_COMPLETED,
                        )
                        now = time.monotonic()
                        for fut in outstanding:
                            if fut not in running_since and fut.running():
                                running_since[fut] = now
                        overdue = [
                            fut for fut, since in running_since.items()
                            if fut in outstanding
                            and (limit := self._deadline_for(
                                tasks[futures[fut]].kind)) is not None
                            and now - since > limit
                        ]
                        if overdue:
                            reaped.update(futures[fut] for fut in overdue)
                            self._kill_workers(pool)
                        for fut in done:
                            i = futures[fut]
                            seconds, finished, fut_broke = (
                                self._dispose_future(
                                    fut, tasks[i], i, attempts, reaped,
                                    spool, results,
                                )
                            )
                            compute_s += seconds
                            broke = broke or fut_broke
                            if finished:
                                todo.discard(i)
                finally:
                    # The pool persists across rounds and run() calls;
                    # it is discarded only when broken (below) or via
                    # close().  Crashed submissions were already
                    # disposed, so nothing needs cancelling here.
                    pass
                if broke:
                    # A crash/reap poisoned the executor: discard it so
                    # the next round (or next run) starts from healthy
                    # workers.  The rebuild counter keeps its original
                    # meaning — rebuilds needed to *finish this run*.
                    self._discard_pool()
                    if todo:
                        self.stats.pool_rebuilds += 1
                        self.telemetry.count(
                            "engine.pool_rebuilds_total",
                            help="worker pools rebuilt after a crash "
                                 "or reap",
                        )
                        self._event("pool-rebuilt", incomplete=len(todo))
        finally:
            shutil.rmtree(spool, ignore_errors=True)
        return compute_s

    # ------------------------------------------------- persistent pool

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The live worker pool, spawning it on first use.

        Workers are sized to ``jobs`` (not the current batch) because
        they outlive any one round; each runs :func:`_engine_worker_init`
        once to pin its BLAS thread pools.
        """
        pool = self._pool_holder.get("pool")
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_engine_worker_init,
                initargs=(self.blas_threads,),
            )
            self._pool_holder["pool"] = pool
        return pool

    def _discard_pool(self) -> None:
        pool = self._pool_holder.pop("pool", None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        self._discard_pool()

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _dispose_future(self, fut: Future, task: TaskSpec, i: int,
                        attempts: dict[int, int], reaped: set[int],
                        spool: Path, results: list[Any]
                        ) -> tuple[float, bool, bool]:
        """Settle one completed future.

        Returns ``(seconds, finished, pool_broken)``: ``finished`` is
        True when the task is done (success or quarantine), False when
        it will be re-dispatched; ``pool_broken`` is True when the pool
        broke underneath this future and the round must rebuild.
        """
        try:
            result, seconds, state = fut.result()
        except BrokenExecutor as exc:
            started = (spool / f"{i}.{attempts[i]}").exists()
            if i in reaped:
                deadline = self._deadline_for(task.kind) or 0.0
                failure = TaskFailure(
                    kind=task.kind, index=i, key=task.canonical_key(),
                    exc_type="TaskTimeout",
                    message=(
                        f"exceeded the {deadline:.1f}s task deadline; "
                        "worker killed"
                    ),
                    traceback="", attempts=attempts[i],
                    worker_crash=True, timed_out=True,
                )
                return 0.0, not self._handle_failure(failure), True
            if reaped or not started:
                # Bystander of a deliberate reap, or still queued when a
                # sibling broke the pool: re-dispatch without charging.
                attempts[i] -= 1
                return 0.0, False, True
            if self.chaos is not None and not self.chaos.should_kill(
                task.canonical_key(), attempts[i]
            ):
                # Chaos runs can attribute exactly: the parent knows the
                # deterministic kill schedule, so a started task whose
                # attempt was *not* scheduled died as a bystander of a
                # sibling's kill — refund it, or heavy soaks would burn
                # innocent tasks' retry budgets into quarantine.
                attempts[i] -= 1
                return 0.0, False, True
            failure = TaskFailure(
                kind=task.kind, index=i, key=task.canonical_key(),
                exc_type="WorkerCrash",
                message=f"worker process died mid-task ({exc})",
                traceback="", attempts=attempts[i], worker_crash=True,
            )
            return 0.0, not self._handle_failure(failure), True
        except Exception as exc:
            # Submission-side faults (e.g. an unpicklable result).
            failure = TaskFailure(
                kind=task.kind, index=i, key=task.canonical_key(),
                exc_type=type(exc).__name__, message=str(exc),
                traceback=traceback_module.format_exc(),
                attempts=attempts[i],
            )
            return 0.0, not self._handle_failure(failure), False
        if isinstance(result, TaskFailure):
            result.attempts = attempts[i]
            return 0.0, not self._handle_failure(result), False
        if state is not None:
            self._merge_worker_state(state)
        self._note_duration(task.kind, seconds)
        self._finish(task, i, result, seconds, results)
        return seconds, True, False

    def _task_trace(self, index: int) -> tuple[str, str] | None:
        """The (trace_id, parent ref) context shipped to a bus worker."""
        if self._stitch is None:
            return None
        return (self._stitch.trace_id, f"{self._run_tag}-task-{index:04d}")

    def _absorb_worker_ledgers(self, pending: list[int]) -> None:
        """Fold this run's per-task worker ledgers into the parent's.

        Entries keep their worker-side source/step/member attribution;
        only ``seq`` is re-assigned.  No-op when the parent has no live
        ledger — the worker files remain on disk either way for
        ``repro explain`` to read directly.
        """
        led = self.telemetry.ledger
        if not led.enabled:
            return
        from repro.telemetry.ledger import load_ledger

        ldir = self.bus_dir / "ledgers"
        for i in pending:
            path = ldir / f"{self._run_tag}-task-{i:04d}.ledger.jsonl"
            if path.is_file():
                led.absorb(load_ledger(path).entries)

    def _merge_worker_state(self, state: dict[str, Any]) -> None:
        """Fold a worker's metrics-registry snapshot into the engine's
        registry (counters add, gauges take incoming, histograms pool)."""
        metrics = self.telemetry.metrics
        if hasattr(metrics, "merge"):
            metrics.merge(state)

    def _finish(self, task: TaskSpec, index: int, result: Any,
                seconds: float, results: list[Any]) -> None:
        results[index] = result
        self.stats.cache_misses += 1
        self.stats.executed += 1
        self._record_task(task, cached=False, compute_s=seconds,
                          index=index)
        if self.cache is not None:
            self.cache.store(task, result)


#: module-private shared default used when callers pass ``engine=None``
_INLINE = ExperimentEngine()


def default_engine(engine: ExperimentEngine | None) -> ExperimentEngine:
    """The engine to use when a figure was not handed one: inline
    (jobs=1), uncached — today's serial behaviour."""
    return engine if engine is not None else _INLINE
