"""Parallel experiment execution engine with an on-disk result cache.

Every figure reduces to a grid of independent *tasks* — one
``(workload, dataset, tuner, seed, ...)`` cell each — whose results are
pure functions of their parameters (the library seeds every stochastic
component explicitly, see :mod:`repro.utils.rng`).  This module exploits
that purity three ways:

* **Sharding** — :class:`ExperimentEngine` decomposes a grid into
  :class:`TaskSpec` cells and runs them on a
  :class:`concurrent.futures.ProcessPoolExecutor` (``jobs > 1``) or
  inline (``jobs=1``, the default, which preserves the serial code path
  bit-for-bit).  Results are always assembled in submission order, so
  parallelism can never change the science.
* **Seeding** — tasks carry explicit integer seeds; a task submitted
  with ``seed=None`` receives a deterministic child seed derived from
  :meth:`numpy.random.SeedSequence.spawn` in canonical task order
  (:func:`derive_task_seeds`), independent of ``jobs`` and of worker
  scheduling.
* **Caching** — :class:`ResultCache` persists each task's result under a
  content-addressed key: the SHA-256 of the task kind, its full
  parameters (cluster *specs* expanded field-by-field, not just named),
  and a code-version salt (:data:`CACHE_VERSION`).  Repeated
  ``repro report`` invocations are incremental; editing the simulator's
  physics must be accompanied by a salt bump (the golden-file tests
  under ``tests/golden/`` catch silent drift).

Telemetry (PR 1) is integrated throughout: a span per task, cache
hit/miss counters, and a scheduler-overhead breakdown
(:class:`EngineStats`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.cluster.hardware import CLUSTER_A, CLUSTER_B, ClusterSpec
from repro.experiments.common import (
    ExperimentScale,
    fork_tuner,
    get_scale,
    online_env,
    train_cdbtune,
    train_deepcat,
    train_ottertune,
)
from repro.telemetry.context import NULL_CONTEXT, RunContext

__all__ = [
    "CACHE_VERSION",
    "TaskSpec",
    "task_kind",
    "session_task",
    "policy_quality_task",
    "offline_trend_task",
    "random_cdf_task",
    "derive_task_seeds",
    "ResultCache",
    "EngineStats",
    "ExperimentEngine",
]

#: Code-version salt folded into every cache key.  Bump whenever a change
#: alters what any task computes (simulator physics, tuner semantics,
#: reward shaping, ...) so stale on-disk results can never be served.
#: v2: online-session tasks gained fault_profile/resilience parameters —
#: v1 keys never encoded the chaos setting, so any v1 entry is ambiguous.
CACHE_VERSION = "deepcat-engine-v2"

_CLUSTERS: dict[str, ClusterSpec] = {
    "cluster-a": CLUSTER_A,
    "cluster-b": CLUSTER_B,
}


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-stable structure (sorted keys, no sets,
    numpy scalars unboxed) so equal parameters always hash equally."""
    if isinstance(obj, Mapping):
        return {str(k): _canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _canonical(dataclasses.asdict(obj))
    if isinstance(obj, np.generic):
        return obj.item()
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for hashing")


@dataclass(frozen=True)
class TaskSpec:
    """One independent unit of experiment work.

    ``kind`` names a registered task function; ``params`` are its keyword
    arguments and must be JSON-canonicalizable (the cache key is derived
    from them).
    """

    kind: str
    params: dict[str, Any]

    def canonical_key(self) -> str:
        """Deterministic JSON identity of this task (no salt)."""
        return json.dumps(
            {"kind": self.kind, "params": _canonical(self.params)},
            sort_keys=True, separators=(",", ":"),
        )

    def cache_payload(self) -> str:
        """Like :meth:`canonical_key` but with cluster *names* expanded to
        their full hardware specs and fault-profile names to their full
        rate/factor presets, so editing either invalidates keys."""
        from repro.faults import PROFILES

        params = dict(self.params)
        for key in ("cluster", "train_cluster"):
            name = params.get(key)
            if isinstance(name, str) and name in _CLUSTERS:
                spec = _canonical(_CLUSTERS[name])
                spec["name"] = name
                params[key] = spec
        profile = params.get("fault_profile")
        if isinstance(profile, str) and profile in PROFILES:
            params["fault_profile"] = _canonical(PROFILES[profile])
        return json.dumps(
            {"kind": self.kind, "params": _canonical(params)},
            sort_keys=True, separators=(",", ":"),
        )


# ------------------------------------------------------------- task kinds

_TASK_KINDS: dict[str, Callable[..., Any]] = {}


def task_kind(name: str):
    """Register a module-level function as an executable task kind.

    Registered functions must be importable from workers (defined at
    module scope) and accept only keyword arguments.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        _TASK_KINDS[name] = fn
        return fn

    return decorate


def _scale_params(scale: str | ExperimentScale) -> dict[str, int]:
    """The budget fields of a scale — everything a task needs; the name
    and seed list stay out so equal budgets share cache entries."""
    sc = get_scale(scale)
    return {
        "offline_iterations": sc.offline_iterations,
        "ottertune_samples": sc.ottertune_samples,
        "online_steps": sc.online_steps,
    }


def _budget_scale(seed: int, *, offline_iterations: int,
                  ottertune_samples: int, online_steps: int) -> ExperimentScale:
    return ExperimentScale(
        name="engine-task",
        offline_iterations=offline_iterations,
        ottertune_samples=ottertune_samples,
        seeds=(seed,),
        online_steps=online_steps,
    )


@task_kind("online-session")
def _run_online_session(
    *,
    workload: str,
    dataset: str,
    tuner: str,
    seed: int,
    offline_iterations: int,
    ottertune_samples: int,
    online_steps: int,
    cluster: str = "cluster-a",
    train_workload: str | None = None,
    train_dataset: str | None = None,
    train_cluster: str = "cluster-a",
    overrides: dict[str, Any] | None = None,
    tuner_attrs: dict[str, Any] | None = None,
    fault_profile: str = "none",
    resilience: bool = False,
    telemetry=None,
):
    """Train one tuner and serve one online request — one grid cell.

    ``train_workload``/``train_dataset`` allow transfer cells (Figure 9:
    train on WC, tune PR); ``train_cluster``/``cluster`` allow hardware
    transfer (Figure 10); ``overrides`` are DeepCAT construction
    hyper-parameters (Figure 11's β); ``tuner_attrs`` are set on the
    forked tuner before tuning (Figure 12's ``q_threshold``, Figure 5's
    ``use_twin_q``).  ``fault_profile`` injects chaos into the *online*
    evaluations only (offline training stays clean — the model is a
    shared artifact); ``resilience`` enables the default
    retry/watchdog/guard policy during tuning (fault-sweep cells).

    ``telemetry`` is a per-worker :class:`RunContext` injected by the
    engine's bus mode (never part of ``params``, so cache keys are
    unaffected); it observes the *online* stage only — offline training
    is a shared, cacheable artifact and stays clean.
    """
    t, env, res, steps = _prepare_online_session(
        workload=workload, dataset=dataset, tuner=tuner, seed=seed,
        offline_iterations=offline_iterations,
        ottertune_samples=ottertune_samples, online_steps=online_steps,
        cluster=cluster, train_workload=train_workload,
        train_dataset=train_dataset, train_cluster=train_cluster,
        overrides=overrides, tuner_attrs=tuner_attrs,
        fault_profile=fault_profile, resilience=resilience,
    )
    tune_kwargs: dict[str, Any] = {}
    if telemetry is not None:
        # Baselines like OtterTune predate the telemetry kwarg; only
        # inject it where the tuner's tune_online accepts it.
        if "telemetry" in inspect.signature(t.tune_online).parameters:
            tune_kwargs["telemetry"] = telemetry
    if res is not None:
        tune_kwargs["resilience"] = res
    return t.tune_online(env, steps=steps, **tune_kwargs)


def _prepare_online_session(
    *,
    workload: str,
    dataset: str,
    tuner: str,
    seed: int,
    offline_iterations: int,
    ottertune_samples: int,
    online_steps: int,
    cluster: str = "cluster-a",
    train_workload: str | None = None,
    train_dataset: str | None = None,
    train_cluster: str = "cluster-a",
    overrides: dict[str, Any] | None = None,
    tuner_attrs: dict[str, Any] | None = None,
    fault_profile: str = "none",
    resilience: bool = False,
):
    """Train/fork the tuner and build the environment for one
    ``online-session`` cell; returns ``(tuner, env, resilience, steps)``.

    Shared by the scalar task and the population grouping — both produce
    exactly the objects ``tune_online`` would act on, so the lockstep
    population starts from bit-identical member state.
    """
    sc = _budget_scale(
        seed, offline_iterations=offline_iterations,
        ottertune_samples=ottertune_samples, online_steps=online_steps,
    )
    t_w = train_workload if train_workload is not None else workload
    t_d = train_dataset if train_dataset is not None else dataset
    t_cluster = _CLUSTERS[train_cluster]
    if tuner == "DeepCAT":
        base = train_deepcat(t_w, t_d, seed, sc, cluster=t_cluster,
                             **(overrides or {}))
    elif tuner == "CDBTune":
        if overrides:
            raise ValueError("overrides are DeepCAT-only")
        base = train_cdbtune(t_w, t_d, seed, sc, cluster=t_cluster)
    elif tuner == "OtterTune":
        if overrides:
            raise ValueError("overrides are DeepCAT-only")
        base = train_ottertune(t_w, t_d, seed, sc, cluster=t_cluster)
    else:
        raise ValueError(f"unknown tuner {tuner!r}")
    t = fork_tuner(base)
    for attr, value in (tuner_attrs or {}).items():
        if not hasattr(t, attr):
            raise AttributeError(f"{tuner} has no attribute {attr!r}")
        setattr(t, attr, value)
    env = online_env(workload, dataset, seed, cluster=_CLUSTERS[cluster],
                     fault_profile=fault_profile)
    res = None
    if resilience:
        if tuner != "DeepCAT":
            raise ValueError("resilience cells are DeepCAT-only")
        from repro.core.resilience import ResiliencePolicy

        res = ResiliencePolicy.default(seed=seed)
    return t, env, res, sc.online_steps


def _population_groups(tasks, pending: list[int]) -> list[list[int]]:
    """Cache-missed ``online-session`` DeepCAT cells that differ only in
    ``seed``, grouped for lockstep population stepping (>= 2 members).
    """
    groups: dict[tuple, list[int]] = {}
    for i in pending:
        task = tasks[i]
        if task.kind != "online-session":
            continue
        if task.params.get("tuner") != "DeepCAT":
            continue
        key = tuple(
            sorted(
                (k, repr(v)) for k, v in task.params.items() if k != "seed"
            )
        )
        groups.setdefault(key, []).append(i)
    return [idxs for idxs in groups.values() if len(idxs) >= 2]


def _run_online_population(params_list: list[dict[str, Any]]):
    """Run a seed-differing group of DeepCAT ``online-session`` cells as
    one lockstep population; per-cell sessions (input order) are
    bit-identical to running each cell alone, so cached results are
    interchangeable with scalar ones and ``CACHE_VERSION`` is unchanged.
    """
    from repro.core.population import PopulationTuner

    tuners, envs, resiliences = [], [], []
    steps = None
    for params in params_list:
        t, env, res, online_steps = _prepare_online_session(**params)
        tuners.append(t)
        envs.append(env)
        resiliences.append(res)
        steps = online_steps
    population = PopulationTuner.from_deepcat(
        tuners, envs, resiliences=resiliences
    )
    return population.tune(steps=steps)


@task_kind("policy-quality")
def _run_policy_quality(
    *,
    workload: str,
    dataset: str,
    seed: int,
    iterations: int,
    use_rdper: bool = True,
    policy_evals: int = 3,
):
    """Mean evaluated duration of a trained DeepCAT greedy policy
    (Figure 4's low-variance convergence metric)."""
    from repro.sim.faults import FAILURE_PERF_FACTOR

    sc = _budget_scale(
        seed, offline_iterations=iterations, ottertune_samples=1,
        online_steps=1,
    )
    kwargs = {} if use_rdper else {"use_rdper": False}
    t = train_deepcat(workload, dataset, seed, sc, iterations=iterations,
                      **kwargs)
    env = online_env(workload, dataset, seed)
    durations = []
    for _ in range(policy_evals):
        outcome = env.step(t.agent.act(env.state, explore=False))
        durations.append(
            outcome.duration_s if outcome.success
            else FAILURE_PERF_FACTOR * env.default_duration
        )
    return float(np.mean(durations))


@task_kind("offline-trend")
def _run_offline_trend(
    *,
    workload: str,
    dataset: str,
    seed: int,
    offline_iterations: int,
):
    """Offline-training series for Figure 3: min twin-Q and real reward
    per iteration, plus the agent's warmup length."""
    sc = _budget_scale(
        seed, offline_iterations=offline_iterations, ottertune_samples=1,
        online_steps=1,
    )
    t = train_deepcat(workload, dataset, seed, sc)
    log = t.offline_log
    if log is None:
        raise RuntimeError("offline log missing")
    return {
        "min_q": np.asarray(log.min_q, dtype=float),
        "rewards": np.asarray(log.rewards, dtype=float),
        "warmup_steps": int(t.agent.hp.warmup_steps),
    }


@task_kind("random-cdf")
def _run_random_cdf(
    *,
    workload: str,
    dataset: str,
    n_samples: int,
    seed: int,
):
    """Figure 2's raw material: durations of random configurations
    (failures charged at the failure performance factor)."""
    from repro.factory import make_env
    from repro.sim.faults import FAILURE_PERF_FACTOR

    env = make_env(workload, dataset, seed=seed)
    rng = np.random.default_rng(seed + 77)
    # One vectorized draw plus one batched evaluation — bit-identical to
    # the per-step loop: uniform rows come off the same stream in the
    # same order, and step_batch reproduces step's RNG schedule.
    vectors = env.space.sample_vectors(rng, n_samples)
    durations, n_failed = [], 0
    for outcome in env.step_batch(vectors):
        if outcome.success:
            durations.append(outcome.duration_s)
        else:
            n_failed += 1
            durations.append(FAILURE_PERF_FACTOR * env.default_duration)
    return {
        "durations": np.asarray(durations, dtype=float),
        "n_failed": n_failed,
        "default_duration": float(env.default_duration),
    }


def session_task(
    *,
    workload: str,
    dataset: str,
    tuner: str,
    seed: int | None,
    scale: str | ExperimentScale,
    cluster: str = "cluster-a",
    train_workload: str | None = None,
    train_dataset: str | None = None,
    train_cluster: str = "cluster-a",
    overrides: Mapping[str, Any] | None = None,
    tuner_attrs: Mapping[str, Any] | None = None,
    fault_profile: str = "none",
    resilience: bool = False,
) -> TaskSpec:
    """Build the :class:`TaskSpec` for one online-session grid cell.

    ``fault_profile``/``resilience`` always enter the params — and hence
    the cache key — even at their defaults: a cached chaos run must never
    be served for a clean cell or vice versa.
    """
    params: dict[str, Any] = {
        "workload": workload,
        "dataset": dataset,
        "tuner": tuner,
        "seed": seed,
        **_scale_params(scale),
        "cluster": cluster,
        "train_cluster": train_cluster,
        "fault_profile": fault_profile,
        "resilience": resilience,
    }
    if train_workload is not None:
        params["train_workload"] = train_workload
    if train_dataset is not None:
        params["train_dataset"] = train_dataset
    if overrides:
        params["overrides"] = dict(overrides)
    if tuner_attrs:
        params["tuner_attrs"] = dict(tuner_attrs)
    return TaskSpec(kind="online-session", params=params)


def policy_quality_task(
    *, workload: str, dataset: str, seed: int | None, iterations: int,
    use_rdper: bool = True, policy_evals: int = 3,
) -> TaskSpec:
    return TaskSpec(kind="policy-quality", params={
        "workload": workload, "dataset": dataset, "seed": seed,
        "iterations": iterations, "use_rdper": use_rdper,
        "policy_evals": policy_evals,
    })


def offline_trend_task(
    *, workload: str, dataset: str, seed: int | None,
    scale: str | ExperimentScale,
) -> TaskSpec:
    return TaskSpec(kind="offline-trend", params={
        "workload": workload, "dataset": dataset, "seed": seed,
        "offline_iterations": get_scale(scale).offline_iterations,
    })


def random_cdf_task(
    *, workload: str, dataset: str, n_samples: int, seed: int | None,
) -> TaskSpec:
    return TaskSpec(kind="random-cdf", params={
        "workload": workload, "dataset": dataset,
        "n_samples": n_samples, "seed": seed,
    })


# -------------------------------------------------------------- seed plan


def derive_task_seeds(
    root_seed: int, tasks: Sequence[TaskSpec]
) -> list[int]:
    """One deterministic integer seed per task via ``SeedSequence.spawn``.

    Children of ``SeedSequence(root_seed)`` are assigned in canonical
    task order (sorted by :meth:`TaskSpec.canonical_key`, ties broken by
    submission position), so the mapping depends only on the task list —
    never on ``jobs``, worker scheduling, or completion order.  Identical
    replicate specs receive *distinct* children (by position), which is
    what makes seedless replicate sweeps statistically independent.
    """
    if not tasks:
        return []
    order = sorted(range(len(tasks)),
                   key=lambda i: (tasks[i].canonical_key(), i))
    children = np.random.SeedSequence(root_seed).spawn(len(tasks))
    seeds = [0] * len(tasks)
    for child, i in zip(children, order):
        seeds[i] = int(child.generate_state(1, dtype=np.uint32)[0])
    return seeds


# ------------------------------------------------------------------ cache

#: sentinel distinguishing "cache miss" from a cached ``None``
_MISS = object()


class ResultCache:
    """Content-addressed on-disk store for task results.

    Layout: ``<root>/<key[:2]>/<key>.pkl`` where ``key`` is the SHA-256
    of the task's :meth:`~TaskSpec.cache_payload` plus ``salt``.  Each
    entry stores the payload alongside the pickled result; a payload
    mismatch on load (hash collision, salt bug) is treated as a miss.
    Writes are atomic (temp file + :func:`os.replace`), so a crashed run
    never leaves a truncated entry behind.
    """

    def __init__(self, root: str | Path, salt: str = CACHE_VERSION):
        self.root = Path(root)
        self.salt = salt

    def key_for(self, task: TaskSpec) -> str:
        payload = f"{self.salt}\n{task.cache_payload()}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def load(self, task: TaskSpec):
        """Return the cached result, or the module-private miss sentinel."""
        path = self._path(self.key_for(task))
        if not path.is_file():
            return _MISS
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return _MISS  # corrupt/foreign entry: recompute and overwrite
        if entry.get("payload") != task.cache_payload():
            return _MISS
        return entry["result"]

    def store(self, task: TaskSpec, result: Any) -> Path:
        key = self.key_for(task)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(
                {
                    "salt": self.salt,
                    "kind": task.kind,
                    "payload": task.cache_payload(),
                    "result": result,
                },
                fh,
            )
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    @staticmethod
    def is_miss(value: Any) -> bool:
        return value is _MISS


# ----------------------------------------------------------------- engine


@dataclass
class EngineStats:
    """Counters accumulated across :meth:`ExperimentEngine.run` calls."""

    tasks: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    #: worker-measured seconds actually spent computing tasks
    compute_seconds: float = 0.0
    #: wall-clock of the ``run()`` calls themselves
    wall_seconds: float = 0.0
    #: wall-clock not covered by (parallel-adjusted) compute: scheduling,
    #: serialization, and cache I/O
    overhead_seconds: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.tasks} task(s): {self.cache_hits} cache hit(s), "
            f"{self.executed} executed in {self.compute_seconds:.1f}s "
            f"compute / {self.wall_seconds:.1f}s wall "
            f"(scheduler overhead {self.overhead_seconds:.2f}s)"
        )


def _execute_task(task: TaskSpec) -> tuple[Any, float]:
    """Worker entry point: run the task, return (result, compute seconds)."""
    fn = _TASK_KINDS.get(task.kind)
    if fn is None:
        raise KeyError(
            f"unknown task kind {task.kind!r}; have {sorted(_TASK_KINDS)}"
        )
    t0 = time.perf_counter()
    result = fn(**task.params)
    return result, time.perf_counter() - t0


_ACCEPTS_TELEMETRY: dict[str, bool] = {}


def _accepts_telemetry(kind: str) -> bool:
    """Whether a task kind takes the engine-injected ``telemetry`` kwarg
    (cached per kind — signature inspection is not free)."""
    cached = _ACCEPTS_TELEMETRY.get(kind)
    if cached is None:
        fn = _TASK_KINDS[kind]
        try:
            params = inspect.signature(fn).parameters
        except (TypeError, ValueError):  # pragma: no cover - builtins only
            params = {}
        cached = _ACCEPTS_TELEMETRY[kind] = "telemetry" in params
    return cached


def _execute_task_bus(
    task: TaskSpec, bus_dir: str, source: str
) -> tuple[Any, float, dict[str, Any]]:
    """Bus-mode worker entry point.

    Wraps :func:`_execute_task` with a per-worker telemetry context whose
    events land on this worker's bus stream: a ``worker-heartbeat`` pair
    bracketing the task, live diagnostics ``alert`` events, and a final
    ``metrics-snapshot`` carrying the picklable registry ``state()`` —
    which is also returned so the parent can ``merge()`` it without
    re-reading the stream.
    """
    from repro.telemetry.bus import BusWriter
    from repro.telemetry.diagnostics import DiagnosticsEngine
    from repro.telemetry.metrics import MetricsRegistry

    fn = _TASK_KINDS.get(task.kind)
    if fn is None:
        raise KeyError(
            f"unknown task kind {task.kind!r}; have {sorted(_TASK_KINDS)}"
        )
    writer = BusWriter(bus_dir, source)
    ctx = RunContext(
        logger=writer,
        metrics=MetricsRegistry(),
        diagnostics=DiagnosticsEngine(),
    )
    try:
        writer.event(
            "worker-heartbeat", status="start", task_kind=task.kind,
            pid=os.getpid(),
        )
        kwargs = dict(task.params)
        if _accepts_telemetry(task.kind):
            kwargs["telemetry"] = ctx
        t0 = time.perf_counter()
        result = fn(**kwargs)
        seconds = time.perf_counter() - t0
        # Anything raised but not yet drained by the instrumented loops.
        for alert in ctx.diagnostics.drain_alerts():
            writer.event("alert", **alert.as_event_fields())
        state = ctx.metrics.state()
        writer.event("metrics-snapshot", metrics=state)
        writer.event(
            "worker-heartbeat", status="end", task_kind=task.kind,
            pid=os.getpid(), seconds=round(seconds, 6),
            alerts=len(ctx.diagnostics.alerts),
        )
        return result, seconds, state
    finally:
        writer.close()


class ExperimentEngine:
    """Runs :class:`TaskSpec` grids, optionally in parallel and cached.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs every task inline in the
        calling process — exactly the serial code path.  Because every
        task seeds its own RNGs, ``jobs`` never changes results, only
        wall-clock (covered by the ``-m determinism`` test suite).
    cache:
        A :class:`ResultCache`, or ``None`` to always recompute.
    telemetry:
        A :class:`~repro.telemetry.context.RunContext`; the engine emits
        an ``engine.run`` span, one ``engine.task`` span per task, cache
        hit/miss counters, and an ``engine.task_seconds`` histogram.
    root_seed:
        Root of the ``SeedSequence.spawn`` plan filling in ``seed=None``
        tasks (see :func:`derive_task_seeds`).
    bus_dir:
        Event-bus directory.  When set, every executed task runs with a
        per-worker telemetry context whose events (worker heartbeats,
        diagnostics alerts, metrics snapshots) stream to
        ``<bus_dir>/task-NNNN.jsonl``; after each :meth:`run` the streams
        are merged into one ordered ``timeline.jsonl`` and the workers'
        metrics registries are folded into this engine's ``telemetry``
        registry via ``merge()``.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        telemetry: RunContext = NULL_CONTEXT,
        root_seed: int = 0,
        bus_dir: str | Path | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.telemetry = telemetry
        self.root_seed = root_seed
        self.bus_dir = Path(bus_dir) if bus_dir is not None else None
        self.stats = EngineStats()

    # ------------------------------------------------------------- helpers

    def _resolve_seeds(self, tasks: Sequence[TaskSpec]) -> list[TaskSpec]:
        """Fill ``seed=None`` params from the deterministic seed plan."""
        if not any(t.params.get("seed") is None for t in tasks):
            return list(tasks)
        plan = derive_task_seeds(self.root_seed, tasks)
        resolved = []
        for task, seed in zip(tasks, plan):
            if task.params.get("seed") is None:
                resolved.append(
                    TaskSpec(task.kind, {**task.params, "seed": seed})
                )
            else:
                resolved.append(task)
        return resolved

    def _record_task(self, task: TaskSpec, cached: bool,
                     compute_s: float) -> None:
        t = self.telemetry
        status = "hit" if cached else "miss"
        with t.span("engine.task", kind=task.kind, cache=status) as span:
            span.set_attr("compute_s", round(compute_s, 6))
        t.count("engine.tasks_total", help="engine tasks by kind and cache "
                "status", kind=task.kind, cache=status)
        if cached:
            t.count("engine.cache_hits_total", help="task results served "
                    "from the on-disk cache")
        else:
            t.count("engine.cache_misses_total", help="task results "
                    "computed because the cache had no entry")
            t.observe("engine.task_seconds", compute_s,
                      help="worker-measured task compute time",
                      kind=task.kind)

    # ----------------------------------------------------------------- run

    def run(self, tasks: Sequence[TaskSpec]) -> list[Any]:
        """Execute ``tasks``; results are returned in submission order
        regardless of ``jobs`` or completion order."""
        tasks = self._resolve_seeds(tasks)
        n = len(tasks)
        results: list[Any] = [None] * n
        t_run0 = time.perf_counter()
        self.telemetry.gauge_set("engine.jobs", self.jobs,
                                 help="configured worker processes")
        compute_s = 0.0
        pending: list[int] = []
        with self.telemetry.phase("engine.dispatch"), self.telemetry.span(
            "engine.run", tasks=n, jobs=self.jobs
        ):
            for i, task in enumerate(tasks):
                hit = self.cache.load(task) if self.cache else _MISS
                if not ResultCache.is_miss(hit):
                    results[i] = hit
                    self.stats.cache_hits += 1
                    self._record_task(task, cached=True, compute_s=0.0)
                else:
                    pending.append(i)
            if self.jobs == 1 or len(pending) <= 1:
                # Inline dispatch can batch seed-differing DeepCAT cells
                # into lockstep populations (bit-identical per cell, so
                # the cache sees ordinary scalar results).  Bus mode
                # keeps per-task workers for stream attribution.
                handled: set[int] = set()
                if self.bus_dir is None:
                    for idxs in _population_groups(tasks, pending):
                        t0 = time.perf_counter()
                        sessions = _run_online_population(
                            [tasks[i].params for i in idxs]
                        )
                        seconds = (time.perf_counter() - t0) / len(idxs)
                        for i, session in zip(idxs, sessions):
                            compute_s += seconds
                            self._finish(tasks[i], i, session, seconds,
                                         results)
                            handled.add(i)
                for i in pending:
                    if i in handled:
                        continue
                    if self.bus_dir is not None:
                        result, seconds, state = _execute_task_bus(
                            tasks[i], str(self.bus_dir), f"task-{i:04d}"
                        )
                        self._merge_worker_state(state)
                    else:
                        result, seconds = _execute_task(tasks[i])
                    compute_s += seconds
                    self._finish(tasks[i], i, result, seconds, results)
            else:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    if self.bus_dir is not None:
                        futures = {
                            pool.submit(
                                _execute_task_bus, tasks[i],
                                str(self.bus_dir), f"task-{i:04d}",
                            ): i
                            for i in pending
                        }
                    else:
                        futures = {
                            pool.submit(_execute_task, tasks[i]): i
                            for i in pending
                        }
                    outstanding = set(futures)
                    while outstanding:
                        done, outstanding = wait(
                            outstanding, return_when=FIRST_COMPLETED
                        )
                        for fut in done:
                            i = futures[fut]
                            if self.bus_dir is not None:
                                result, seconds, state = fut.result()
                                self._merge_worker_state(state)
                            else:
                                result, seconds = fut.result()
                            compute_s += seconds
                            self._finish(tasks[i], i, result, seconds,
                                         results)
            if self.bus_dir is not None and pending:
                from repro.telemetry.bus import merge_timeline

                merge_timeline(self.bus_dir)
        wall = time.perf_counter() - t_run0
        effective = min(self.jobs, max(1, len(pending)))
        self.stats.tasks += n
        self.stats.wall_seconds += wall
        self.stats.compute_seconds += compute_s
        # Approximate: assumes executed tasks overlapped perfectly across
        # the workers actually used; the remainder is scheduling,
        # serialization, and cache I/O.
        self.stats.overhead_seconds += max(0.0, wall - compute_s / effective)
        self.telemetry.gauge_set(
            "engine.scheduler_overhead_seconds", self.stats.overhead_seconds,
            help="run() wall-clock not covered by parallel-adjusted compute",
        )
        return results

    def _merge_worker_state(self, state: dict[str, Any]) -> None:
        """Fold a worker's metrics-registry snapshot into the engine's
        registry (counters add, gauges take incoming, histograms pool)."""
        metrics = self.telemetry.metrics
        if hasattr(metrics, "merge"):
            metrics.merge(state)

    def _finish(self, task: TaskSpec, index: int, result: Any,
                seconds: float, results: list[Any]) -> None:
        results[index] = result
        self.stats.cache_misses += 1
        self.stats.executed += 1
        self._record_task(task, cached=False, compute_s=seconds)
        if self.cache is not None:
            self.cache.store(task, result)


#: module-private shared default used when callers pass ``engine=None``
_INLINE = ExperimentEngine()


def default_engine(engine: ExperimentEngine | None) -> ExperimentEngine:
    """The engine to use when a figure was not handed one: inline
    (jobs=1), uncached — today's serial behaviour."""
    return engine if engine is not None else _INLINE
