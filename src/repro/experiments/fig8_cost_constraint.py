"""Figure 8: best-so-far execution time and accumulated tuning cost
per online step.

For each pair and tuner, the execution time of the current best
configuration after each of the 5 steps, alongside the accumulated
tuning cost — the paper's evidence that DeepCAT reaches a better
configuration earlier and cheaper, so under any tuning-cost constraint it
wins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.sessions import TUNERS, SessionGrid, comparison_grid
from repro.utils.tables import format_table

__all__ = ["Fig8Result", "run", "format_result"]


@dataclass(frozen=True)
class Fig8Result:
    grid: SessionGrid

    def series(
        self, tuner: str, workload: str, dataset: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """(best-so-far, accumulated cost), seed-averaged, per step."""
        ss = self.grid.sessions[(tuner, workload, dataset)]
        best = np.mean([s.best_so_far() for s in ss], axis=0)
        cost = np.mean([s.accumulated_cost() for s in ss], axis=0)
        return best, cost

    def final_cost(self, tuner: str, workload: str, dataset: str) -> float:
        return float(self.series(tuner, workload, dataset)[1][-1])


def run(scale: str = "quick", pairs=None, *, engine=None) -> Fig8Result:
    return Fig8Result(grid=comparison_grid(scale, pairs, engine=engine))


def format_result(r: Fig8Result) -> str:
    blocks = []
    for w, d in r.grid.pairs:
        rows = []
        for step in range(len(r.series("DeepCAT", w, d)[0])):
            row = [step + 1]
            for t in TUNERS:
                best, cost = r.series(t, w, d)
                row.append(f"{best[step]:.1f}/{cost[step]:.0f}")
            rows.append(tuple(row))
        blocks.append(
            format_table(
                headers=("step", *(f"{t} best/cost" for t in TUNERS)),
                rows=rows,
                title=f"Figure 8 [{w}-{d}]: best-so-far (s) / accumulated cost (s)",
            )
        )
    return "\n\n".join(blocks)
