"""Figure 5: Twin-Q Optimizer ablation.

Run the online tuning phase twice from the *same* offline model — once
with the Twin-Q Optimizer, once without — and compare the per-step
execution times, the total 5-step cost, and the best configuration.
The paper reports a 19.29% total-cost reduction and a 7.29% better best
configuration for TeraSort-D1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import get_scale
from repro.experiments.engine import default_engine, session_task
from repro.utils.tables import format_table

__all__ = ["Fig5Result", "run", "format_result"]


@dataclass(frozen=True)
class Fig5Result:
    steps_with: tuple[float, ...]  # per-step execution time, averaged
    steps_without: tuple[float, ...]
    total_with: float
    total_without: float
    best_with: float
    best_without: float

    @property
    def total_reduction_pct(self) -> float:
        return 100.0 * (1.0 - self.total_with / self.total_without)

    @property
    def best_improvement_pct(self) -> float:
        return 100.0 * (1.0 - self.best_with / self.best_without)


def run(
    scale: str = "quick",
    workload: str = "TS",
    dataset: str = "D1",
    seeds: tuple[int, ...] | None = None,
    *,
    engine=None,
) -> Fig5Result:
    sc = get_scale(scale)
    # The with/without comparison is paired but still exposed to
    # evaluation noise, so it averages more seeds than the scale default.
    seeds = seeds if seeds is not None else tuple(range(max(3, len(sc.seeds))))
    cells = [(seed, use) for seed in seeds for use in (True, False)]
    tasks = [
        session_task(
            workload=workload, dataset=dataset, tuner="DeepCAT", seed=seed,
            scale=sc, tuner_attrs={"use_twin_q": use},
        )
        for seed, use in cells
    ]
    sessions = dict(zip(cells, default_engine(engine).run(tasks)))
    with_steps = np.zeros(sc.online_steps)
    without_steps = np.zeros(sc.online_steps)
    best_w, best_wo = [], []
    for seed in seeds:
        s_with = sessions[(seed, True)]
        s_without = sessions[(seed, False)]
        with_steps += np.array([s.duration_s for s in s_with.steps])
        without_steps += np.array([s.duration_s for s in s_without.steps])
        best_w.append(s_with.best_duration_s)
        best_wo.append(s_without.best_duration_s)
    n = len(seeds)
    with_steps /= n
    without_steps /= n
    return Fig5Result(
        steps_with=tuple(float(x) for x in with_steps),
        steps_without=tuple(float(x) for x in without_steps),
        total_with=float(with_steps.sum()),
        total_without=float(without_steps.sum()),
        best_with=float(np.mean(best_w)),
        best_without=float(np.mean(best_wo)),
    )


def format_result(r: Fig5Result) -> str:
    rows = [
        (i + 1, w, wo)
        for i, (w, wo) in enumerate(zip(r.steps_with, r.steps_without))
    ]
    rows.append(("total", r.total_with, r.total_without))
    rows.append(("best", r.best_with, r.best_without))
    return format_table(
        headers=("online step", "with Twin-Q (s)", "without Twin-Q (s)"),
        rows=rows,
        title=(
            "Figure 5: Twin-Q Optimizer ablation "
            f"(total-cost reduction {r.total_reduction_pct:+.1f}%, "
            f"best-config improvement {r.best_improvement_pct:+.1f}%)"
        ),
    )
