"""Figure 4: RDPER ablation — convergence of offline training.

Train TD3 with conventional (uniform) replay and with RDPER on the same
budget schedule and compare the quality of the offline model at each
budget.  The paper's claims: TD3+RDPER converges ~1.6x faster and lands
on a better configuration.

Measurement note: the paper scores each budget by a 5-step online
session's best execution time.  A best-of-5 under multiplicative
evaluation noise is a min-statistic whose spread (~±10%) swamps the
few-percent RDPER effect at practical seed counts, so this experiment
scores each budget by the *greedy policy's* configuration evaluated
``POLICY_EVALS`` times and averaged — the same underlying quantity
(offline-model quality) with far less variance.  The online-session
protocol itself is exercised by Figures 5-8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.common import get_scale
from repro.experiments.engine import default_engine, policy_quality_task
from repro.utils.tables import format_table

__all__ = ["Fig4Result", "run", "format_result", "POLICY_EVALS"]

#: noisy evaluations averaged per policy measurement
POLICY_EVALS = 3


@dataclass(frozen=True)
class Fig4Result:
    iterations: tuple[int, ...]
    best_with_rdper: tuple[float, ...]  # seconds, averaged over seeds
    best_without_rdper: tuple[float, ...]
    seeds: tuple[int, ...] = field(default=(0,))

    def convergence_speedup(self) -> float:
        """The paper's Figure-4 metric: the iteration budget at which
        uniform replay first reaches its own final level, divided by the
        budget at which RDPER reaches that same level (their "converge
        faster by a factor of 1.60 (2000 v.s. 3200)").

        Both curves are made monotone (running minimum over budgets)
        first: a longer-trained model has, information-wise, strictly
        more than a shorter one, so upticks in the raw curves are
        evaluation noise.
        """
        rdper = np.minimum.accumulate(self.best_with_rdper)
        plain = np.minimum.accumulate(self.best_without_rdper)
        # 10% tolerance: the paper treats configurations ~12% apart as
        # "extremely close" when making the same comparison (§5.1.1)
        target = plain[-1] * 1.10
        it_plain = next(
            it for it, b in zip(self.iterations, plain) if b <= target
        )
        it_rdper = next(
            (it for it, b in zip(self.iterations, rdper) if b <= target),
            self.iterations[-1],
        )
        return it_plain / max(it_rdper, 1)


def run(
    scale: str = "quick",
    workload: str = "TS",
    dataset: str = "D1",
    iteration_grid: tuple[int, ...] | None = None,
    seeds: tuple[int, ...] | None = None,
    *,
    engine=None,
) -> Fig4Result:
    sc = get_scale(scale)
    seeds = seeds if seeds is not None else tuple(range(max(4, len(sc.seeds))))
    if iteration_grid is None:
        top = sc.offline_iterations
        iteration_grid = tuple(
            int(x) for x in np.linspace(top // 6, top, 6)
        )
    cells = [
        (iters, seed, use_rdper)
        for iters in iteration_grid
        for seed in seeds
        for use_rdper in (True, False)
    ]
    tasks = [
        policy_quality_task(
            workload=workload, dataset=dataset, seed=seed, iterations=iters,
            use_rdper=use_rdper, policy_evals=POLICY_EVALS,
        )
        for iters, seed, use_rdper in cells
    ]
    quality = dict(zip(cells, default_engine(engine).run(tasks)))
    rdper_rows = [
        float(np.mean([quality[(iters, seed, True)] for seed in seeds]))
        for iters in iteration_grid
    ]
    plain_rows = [
        float(np.mean([quality[(iters, seed, False)] for seed in seeds]))
        for iters in iteration_grid
    ]
    return Fig4Result(
        iterations=tuple(iteration_grid),
        best_with_rdper=tuple(rdper_rows),
        best_without_rdper=tuple(plain_rows),
        seeds=tuple(seeds),
    )


def format_result(r: Fig4Result) -> str:
    from repro.utils.ascii_plot import line_plot

    rows = [
        (it, w, wo)
        for it, w, wo in zip(
            r.iterations, r.best_with_rdper, r.best_without_rdper
        )
    ]
    table = format_table(
        headers=("offline iterations", "TD3+RDPER policy (s)",
                 "TD3 policy (s)"),
        rows=rows,
        title=(
            "Figure 4: RDPER convergence "
            f"(convergence speedup {r.convergence_speedup():.2f}x)"
        ),
    )
    plot = line_plot(
        {"TD3+RDPER": r.best_with_rdper, "TD3": r.best_without_rdper},
        x=r.iterations, height=12, width=56,
        y_label="policy (s)",
    )
    return table + "\n\n" + plot
