"""EXPERIMENTS.md generator: paper-vs-measured for every artifact.

``build_report(scale)`` runs the full experiment suite at the given scale
and renders a markdown report with the paper's numbers next to ours.
The repository's checked-in ``EXPERIMENTS.md`` is produced by::

    python -m repro.experiments.report --scale standard

Generation is sharded through the experiment engine: ``jobs`` fans the
grid cells out over worker processes and ``cache_dir`` makes repeated
invocations incremental (only tasks whose parameters — or the code salt
— changed are recomputed).  Parallelism and caching never change the
report's science; see ``docs/experiments.md``.
"""

from __future__ import annotations

import argparse
import io
import sys

import numpy as np

from repro.experiments import (
    cost_breakdown,
    fault_sweep,
    fig2_cdf,
    fig3_twinq_trend,
    fig4_rdper,
    fig5_twinq_ablation,
    fig6_speedup,
    fig7_tuning_cost,
    fig8_cost_constraint,
    fig9_workload_adapt,
    fig10_hardware_adapt,
    fig11_beta,
    fig12_qth,
    tables,
)
from repro.experiments.common import get_scale
from repro.experiments.engine import ExperimentEngine, ResultCache

__all__ = [
    "build_report",
    "make_engine",
    "add_engine_arguments",
    "engine_from_args",
    "write_failure_report",
]


def _block(text: str) -> str:
    return f"```\n{text}\n```\n"


def make_engine(
    jobs: int = 1,
    cache_dir: str | None = None,
    telemetry=None,
    bus_dir: str | None = None,
    task_retries: int = 2,
    task_timeout: float | None = None,
    failure_mode: str = "strict",
    chaos=None,
) -> ExperimentEngine:
    """The engine a report run shares across all figure modules."""
    from repro.telemetry import NULL_CONTEXT

    return ExperimentEngine(
        jobs=jobs,
        cache=ResultCache(cache_dir) if cache_dir else None,
        telemetry=telemetry if telemetry is not None else NULL_CONTEXT,
        bus_dir=bus_dir,
        task_retries=task_retries,
        task_timeout=task_timeout,
        failure_mode=failure_mode,
        chaos=chaos,
    )


def build_report(
    scale: str = "quick",
    *,
    jobs: int = 1,
    cache_dir: str | None = None,
    engine: ExperimentEngine | None = None,
) -> str:
    """Run every experiment and render the markdown report.

    ``jobs``/``cache_dir`` build a fresh engine; pass ``engine`` instead
    to share one (and its telemetry/statistics) with the caller.
    """
    if engine is None:
        engine = make_engine(jobs=jobs, cache_dir=cache_dir)
    sc = get_scale(scale)
    out = io.StringIO()
    w = out.write

    w("# EXPERIMENTS — paper vs measured\n\n")
    w(
        "All measurements come from the simulated 3-node Spark cluster "
        "(see DESIGN.md §2 for the substitution rationale), at the "
        f"`{sc.name}` experiment scale ({sc.offline_iterations} offline "
        f"iterations, seeds {list(sc.seeds)}, {sc.online_steps} online "
        "steps).  Absolute numbers are not expected to match the paper's "
        "physical testbed; the *shape* — who wins, by roughly what "
        "factor, where the trade-offs fall — is the reproduction "
        "target.\n\n"
    )

    w("## Tables 1 and 2 — experimental setup\n\n")
    w(_block(tables.table1()))
    w(_block(tables.table2()))
    w(
        "\nBoth match the paper exactly by construction: the same 12 "
        "workload-input pairs and the same 20/7/5 parameter split.\n\n"
    )

    w("## Figure 2 — CDF of 200 random configurations (TeraSort D1)\n\n")
    r2 = fig2_cdf.run(scale, engine=engine)
    w(_block(fig2_cdf.format_result(r2)))
    w(
        "\n**Paper:** easy to beat the default, but close-to-optimal "
        "configurations are far fewer than sub-optimal ones.  "
        f"**Measured:** {r2.prob_within(1.2) * 100:.1f}% of random "
        "configurations land within 1.2x of the found optimum while "
        "most beat the default — the same sparse-optimum shape.\n\n"
    )

    w("## Figure 3 — twin-Q vs real reward during offline training\n\n")
    r3 = fig3_twinq_trend.run(scale, engine=engine)
    w(_block(fig3_twinq_trend.format_result(r3)))
    w(
        "\n**Paper:** min(Q1, Q2) shares the real reward's trend, "
        "justifying the Twin-Q indicator.  **Measured:** post-warmup "
        f"correlation {r3.correlation:.2f}.\n\n"
    )

    w("## Figure 4 — RDPER vs conventional replay\n\n")
    r4 = fig4_rdper.run(scale, engine=engine)
    w(_block(fig4_rdper.format_result(r4)))
    w(
        "\n**Paper:** TD3+RDPER converges 1.60x faster and finds a "
        "12.11% better configuration.  **Measured:** convergence "
        f"speedup {r4.convergence_speedup():.2f}x; final best "
        f"{r4.best_with_rdper[-1]:.1f}s vs "
        f"{r4.best_without_rdper[-1]:.1f}s ("
        f"{(1 - r4.best_with_rdper[-1] / r4.best_without_rdper[-1]) * 100:+.1f}%"
        " for RDPER).\n\n"
    )

    w("## Figure 5 — Twin-Q Optimizer ablation\n\n")
    r5 = fig5_twinq_ablation.run(scale, engine=engine)
    w(_block(fig5_twinq_ablation.format_result(r5)))
    w(
        "\n**Paper:** -19.29% total 5-step cost, 7.29% better best "
        f"configuration.  **Measured:** {r5.total_reduction_pct:+.1f}% "
        f"total cost, {r5.best_improvement_pct:+.1f}% best "
        "configuration.  This is the weakest-reproducing effect: our "
        "offline policies converge well enough on the simulator that "
        "online recommendations are rarely deeply sub-optimal, so the "
        "screening mostly prevents failures and marginal steps rather "
        "than saving the paper's ~20% (see the Q_th discussion under "
        "Figure 12).\n\n"
    )

    w("## Figures 6-8 — comparison with CDBTune and OtterTune\n\n")
    r6 = fig6_speedup.run(scale, engine=engine)
    w(_block(fig6_speedup.format_result(r6)))
    avg = r6.average_speedups()
    w(
        "\n**Paper:** average speedups 4.66x (DeepCAT), 3.21x (CDBTune), "
        "2.82x (OtterTune) => DeepCAT leads 1.45x / 1.65x.  "
        f"**Measured:** {avg['DeepCAT']:.2f}x / {avg['CDBTune']:.2f}x / "
        f"{avg['OtterTune']:.2f}x => DeepCAT leads "
        f"{r6.relative_speedup('CDBTune'):.2f}x / "
        f"{r6.relative_speedup('OtterTune'):.2f}x.  The KMeans pairs "
        "show the largest DeepCAT margin, as in the paper (§5.2.1).\n\n"
    )

    r7 = fig7_tuning_cost.run(scale, engine=engine)
    w(_block(fig7_tuning_cost.format_result(r7)))
    avg_c, max_c = r7.reduction_vs_cdbtune()
    avg_o, max_o = r7.reduction_vs_ottertune()
    w(
        "\n**Paper:** total online tuning time -24.64% avg / -50.08% max "
        "vs CDBTune and -39.71% avg / -53.39% max vs OtterTune; DRL "
        "recommendation time is sub-second while OtterTune's GP "
        f"retraining is noticeable.  **Measured:** {-avg_c:+.1f}% avg / "
        f"{-max_c:+.1f}% max vs CDBTune and {-avg_o:+.1f}% avg / "
        f"{-max_o:+.1f}% max vs OtterTune (negative = DeepCAT cheaper); "
        "recommendation-time breakdown shows the same orders of "
        "magnitude (milliseconds for the DRL tuners, a GP fit per step "
        "for OtterTune).\n\n"
    )

    r8 = fig8_cost_constraint.run(scale, engine=engine)
    w(_block(fig8_cost_constraint.format_result(r8)))
    w(
        "\n**Paper:** DeepCAT reaches a better configuration with less "
        "accumulated cost at every step, so it wins under any tuning "
        "cost constraint.  **Measured:** the per-step series above "
        "(best-so-far / accumulated cost per tuner).\n\n"
    )

    w("## Figure 9 — workload adaptability (PageRank D1)\n\n")
    r9 = fig9_workload_adapt.run(scale, engine=engine)
    w(_block(fig9_workload_adapt.format_result(r9)))
    w(
        "\n**Paper:** transferred DeepCAT models land within 11.22-19.44% "
        "of the natively trained model and beat both baselines; "
        "M_TS->PR transfers worst.  **Measured:** transfer penalties "
        + ", ".join(
            f"M_{s}->PR {r9.transfer_penalty_pct(s):+.1f}%"
            for s in ("WC", "TS", "KM")
        )
        + ".  Transfer penalties run higher and noisier than the "
        "paper's: our load-average state carries little workload "
        "signal during single-workload offline training, so a "
        "transferred policy leans on its source workload's optimum "
        "plus online fine-tuning, and the simulator's per-workload "
        "optima differ more than the testbed's apparently did.  The "
        "qualitative claim that transferred models remain usable (all "
        "beat the default comfortably) holds.\n\n"
    )

    w("## Figure 10 — hardware adaptability (Cluster-A -> Cluster-B)\n\n")
    r10 = fig10_hardware_adapt.run(scale, engine=engine)
    w(_block(fig10_hardware_adapt.format_result(r10)))
    w(
        "\n**Paper:** on Cluster-B, speedups 1.68/1.30/1.17x (WC) and "
        "1.42/1.25/1.09x (PR) for DeepCAT/CDBTune/OtterTune.  "
        "**Measured:** see table; all tuners beat Cluster-B's default "
        "from A-trained models, with DeepCAT leading on average.\n\n"
    )

    w("## Figure 11 — RDPER ratio beta\n\n")
    r11 = fig11_beta.run(scale, engine=engine)
    w(_block(fig11_beta.format_result(r11)))
    w(
        "\n**Paper:** U-shaped; beta in [0.4, 0.7] works best, 0.6 "
        f"chosen.  **Measured:** best beta {r11.best_beta():.1f}; the "
        "library default is the paper's 0.6.\n\n"
    )

    w("## Figure 12 — Q-value threshold\n\n")
    r12 = fig12_qth.run(scale, engine=engine)
    w(_block(fig12_qth.format_result(r12)))
    best_qth = r12.thresholds[
        int(np.argmin(r12.best))
    ]
    w(
        "\n**Paper:** Q_th = 0.5 finds the best configuration but costs "
        "the most; 0.3 is the cost sweet spot (2.54s worse best).  "
        f"**Measured:** best configuration at Q_th = {best_qth:.1f}, "
        f"cheapest session at Q_th = {r12.cheapest_threshold():.1f}.  "
        "Absolute Q values are implementation-specific (they depend on "
        "gamma and the reward scale), so the paper's §5.4.2 selection "
        "rule — not its constant — is what this library applies; the "
        "shipped default Q_th = 0.4 was chosen by that rule on this "
        "implementation's Q scale.\n\n"
    )

    w("## Robustness — fault sweep (extension)\n\n")
    rfs = fault_sweep.run(scale, engine=engine)
    w(_block(fault_sweep.format_result(rfs)))
    w(
        "\nNot a paper artifact: each column injects one chaos preset "
        "(stragglers, executor loss, crashes, hangs, metric dropout — "
        "see `docs/robustness.md`) into the online evaluations while the "
        "default retry/watchdog/safety-guard policy defends the session. "
        "**Measured:** final best configuration degrades "
        + ", ".join(
            f"{p} {rfs.degradation_pct(p):+.1f}%"
            for p in rfs.profiles if p != "none"
        )
        + " vs the clean arm — quality decays gracefully rather than "
        "collapsing, at the price of the extra attempts/step shown.\n\n"
    )

    w("## Telemetry — cost breakdown of an instrumented session\n\n")
    rcb = cost_breakdown.run(scale)
    w(_block(cost_breakdown.format_result(rcb)))
    w(
        "\nEvery run can emit this breakdown (`repro train/tune --trace "
        "... --metrics-out ...` or `RunContext` in code): wall-clock per "
        "pipeline stage, Twin-Q screening counters, and RDPER pool "
        "gauges.  The recommendation share above is the tuner's own "
        "overhead — the paper's claim that DRL recommendation time is "
        "negligible next to evaluation time, measured live "
        f"({rcb.recommendation_share * 100:.2f}% of online wall-clock "
        "in this session).\n\n"
    )

    return out.getvalue()


def add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """The engine flags shared by this module's CLI and ``repro report``."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the experiment grid (1 = serial, "
             "bit-for-bit the historical code path)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="on-disk result cache; repeated runs only recompute tasks "
             "whose parameters or code salt changed",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk cache (always recompute)",
    )
    parser.add_argument(
        "--bus-dir", default=None, metavar="DIR",
        help="event-bus directory: stream per-worker heartbeats, "
             "diagnostics alerts, and metrics snapshots to "
             "DIR/task-NNNN.jsonl and merge them into DIR/timeline.jsonl",
    )
    parser.add_argument(
        "--task-retries", type=int, default=2, metavar="N",
        help="re-dispatch a failed, crashed, or timed-out task up to N "
             "times before quarantining it (retries are bit-identical: "
             "tasks are pure functions of their seeded parameters)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="hard per-task deadline; hung workers are killed and the "
             "task retried (default: 8x the per-kind duration EWMA, "
             "floor 30s, once a kind has completed at least once)",
    )
    parser.add_argument(
        "--lenient", action="store_true",
        help="complete the grid with partial results when tasks fail "
             "permanently (default strict: non-zero exit plus a ranked "
             "failure report; completed cells stay cached either way)",
    )
    parser.add_argument(
        "--failure-report", default=None, metavar="PATH",
        help="write the JSON engine failure report here after the run "
             "(written on success too, with healthy=true)",
    )
    parser.add_argument(
        "--chaos-kill-rate", type=float, default=0.0, metavar="P",
        help="chaos harness: SIGKILL the workers of roughly this "
             "fraction of tasks on their first attempt (seeded, "
             "deterministic; requires --jobs >= 2; CI soak only)",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="seed of the worker-kill schedule (--chaos-kill-rate)",
    )


def engine_from_args(args: argparse.Namespace, telemetry=None
                     ) -> ExperimentEngine:
    """Build the engine from :func:`add_engine_arguments` flags."""
    chaos = None
    if args.chaos_kill_rate > 0.0:
        from repro.faults import WorkerChaos

        chaos = WorkerChaos(seed=args.chaos_seed,
                            kill_rate=args.chaos_kill_rate)
    return make_engine(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        telemetry=telemetry,
        bus_dir=args.bus_dir,
        task_retries=args.task_retries,
        task_timeout=args.task_timeout,
        failure_mode="lenient" if args.lenient else "strict",
        chaos=chaos,
    )


def write_failure_report(engine: ExperimentEngine,
                         path: str | None) -> None:
    """Dump the engine's JSON failure report (the CI soak artifact)."""
    if not path:
        return
    import json

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(engine.failure_report(), fh, indent=2)
    print(f"wrote failure report {path}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="quick",
                        choices=("quick", "standard", "full"))
    parser.add_argument("--output", default="EXPERIMENTS.md")
    add_engine_arguments(parser)
    args = parser.parse_args()
    engine = engine_from_args(args)
    from repro.experiments.engine import (
        EngineTaskError,
        render_failure_report,
    )

    try:
        report = build_report(args.scale, engine=engine)
    except EngineTaskError as exc:
        print(render_failure_report(exc.report), file=sys.stderr)
        write_failure_report(engine, args.failure_report)
        raise SystemExit(1)
    with open(args.output, "w") as fh:
        fh.write(report)
    print(f"wrote {args.output} at scale {args.scale!r}")
    print(f"engine: {engine.stats.summary()}")
    write_failure_report(engine, args.failure_report)


if __name__ == "__main__":
    main()
