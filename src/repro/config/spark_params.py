"""The 20 tuned Spark parameters (including Spark-on-YARN connector knobs).

Ranges and defaults follow Apache Spark 2.2 documentation and the paper's
experimental platform (3 nodes, 16 cores / 16 GB each).  Memory values are
in MB, buffer sizes in KB unless the unit says otherwise.
"""

from __future__ import annotations

from repro.config.parameter import (
    BoolParameter,
    CategoricalParameter,
    FloatParameter,
    IntParameter,
    Parameter,
)

__all__ = ["spark_parameters"]


def spark_parameters() -> list[Parameter]:
    """Return the 20 Spark parameter definitions in a stable order."""
    c = "spark"
    return [
        IntParameter(
            "spark.executor.cores", c, default=1, low=1, high=8,
            description="CPU cores per executor", unit="cores",
        ),
        IntParameter(
            "spark.executor.memory", c, default=1024, low=1024, high=8192,
            log=True, description="Heap size per executor", unit="MB",
        ),
        IntParameter(
            "spark.executor.instances", c, default=2, low=1, high=12,
            description="Requested executor count (YARN connector)",
        ),
        IntParameter(
            "spark.executor.memoryOverhead", c, default=384, low=384, high=2048,
            log=True, description="Off-heap overhead per executor (YARN)",
            unit="MB",
        ),
        IntParameter(
            "spark.driver.memory", c, default=1024, low=1024, high=8192,
            log=True, description="Driver heap size", unit="MB",
        ),
        IntParameter(
            "spark.driver.cores", c, default=1, low=1, high=4,
            description="Driver CPU cores", unit="cores",
        ),
        IntParameter(
            "spark.default.parallelism", c, default=24, low=8, high=400,
            log=True,
            description="Default number of partitions for shuffles/joins",
        ),
        FloatParameter(
            "spark.memory.fraction", c, default=0.6, low=0.3, high=0.9,
            description="Fraction of heap for execution+storage",
        ),
        FloatParameter(
            "spark.memory.storageFraction", c, default=0.5, low=0.1, high=0.9,
            description="Storage share of the unified memory region",
        ),
        BoolParameter(
            "spark.shuffle.compress", c, default=True,
            description="Compress map output files",
        ),
        BoolParameter(
            "spark.shuffle.spill.compress", c, default=True,
            description="Compress data spilled during shuffles",
        ),
        BoolParameter(
            "spark.rdd.compress", c, default=False,
            description="Compress serialized cached RDD partitions",
        ),
        CategoricalParameter(
            "spark.io.compression.codec", c, default="lz4",
            choices=("lz4", "snappy", "zstd"),
            description="Codec for internal data (shuffle, spill, RDD)",
        ),
        CategoricalParameter(
            "spark.serializer", c, default="java",
            choices=("java", "kryo"),
            description="Serializer for shuffled/cached data",
        ),
        IntParameter(
            "spark.shuffle.file.buffer", c, default=32, low=16, high=512,
            log=True, description="In-memory buffer per shuffle file stream",
            unit="KB",
        ),
        IntParameter(
            "spark.reducer.maxSizeInFlight", c, default=48, low=8, high=128,
            log=True, description="Max shuffle data fetched concurrently",
            unit="MB",
        ),
        IntParameter(
            "spark.shuffle.sort.bypassMergeThreshold", c, default=200,
            low=50, high=800,
            description="Reducer count below which sort-merge is bypassed",
        ),
        BoolParameter(
            "spark.speculation", c, default=False,
            description="Re-launch slow tasks speculatively",
        ),
        FloatParameter(
            "spark.locality.wait", c, default=3.0, low=0.0, high=10.0,
            description="Wait before giving up on data-local scheduling",
            unit="s",
        ),
        IntParameter(
            "spark.broadcast.blockSize", c, default=4, low=1, high=16,
            description="Block size for TorrentBroadcast", unit="MB",
        ),
    ]
