"""Typed configuration parameters with normalized [0,1] encodings.

Each dimension of the DRL action vector corresponds to one parameter
(§3.1 of the paper: "each dimension in a_t is normalized to [0,1] to
tackle with the different categories ... as well as various value scales").
Numeric parameters may use a log scale so that e.g. block sizes spanning
32 MB–512 MB get uniform tuning resolution per octave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

__all__ = [
    "Parameter",
    "IntParameter",
    "FloatParameter",
    "BoolParameter",
    "CategoricalParameter",
]


@dataclass(frozen=True)
class Parameter:
    """Base class: a named, documented knob belonging to a component."""

    name: str
    component: str  # "spark" | "yarn" | "hdfs"
    default: Any
    description: str = ""
    unit: str = ""

    def encode(self, value: Any) -> float:
        """Map a concrete value to u ∈ [0,1]."""
        raise NotImplementedError

    def decode(self, u: float) -> Any:
        """Map u ∈ [0,1] to a concrete value (inverse of :meth:`encode`)."""
        raise NotImplementedError

    def clip(self, value: Any) -> Any:
        """Clamp a concrete value into this parameter's legal range."""
        raise NotImplementedError

    def validate(self, value: Any) -> bool:
        """True iff ``value`` is legal for this parameter."""
        try:
            return self.clip(value) == value
        except (TypeError, ValueError):
            return False


def _check_unit_interval(u: float) -> float:
    u = float(u)
    if not 0.0 <= u <= 1.0:
        raise ValueError(f"encoded value must lie in [0,1], got {u}")
    return u


@dataclass(frozen=True)
class FloatParameter(Parameter):
    """Continuous numeric parameter on a linear or log scale."""

    low: float = 0.0
    high: float = 1.0
    log: bool = False

    def __post_init__(self):
        if not self.low < self.high:
            raise ValueError(f"{self.name}: low must be < high")
        if self.log and self.low <= 0:
            raise ValueError(f"{self.name}: log scale requires low > 0")
        if not self.low <= self.default <= self.high:
            raise ValueError(f"{self.name}: default outside [low, high]")

    def encode(self, value: Any) -> float:
        v = float(np.clip(value, self.low, self.high))
        if self.log:
            return float(
                (np.log(v) - np.log(self.low))
                / (np.log(self.high) - np.log(self.low))
            )
        return (v - self.low) / (self.high - self.low)

    def decode(self, u: float) -> float:
        u = _check_unit_interval(u)
        if self.log:
            return float(
                np.exp(np.log(self.low) + u * (np.log(self.high) - np.log(self.low)))
            )
        return self.low + u * (self.high - self.low)

    def clip(self, value: Any) -> float:
        return float(np.clip(float(value), self.low, self.high))


@dataclass(frozen=True)
class IntParameter(Parameter):
    """Integer numeric parameter; decode rounds to the nearest integer."""

    low: int = 0
    high: int = 1
    log: bool = False

    def __post_init__(self):
        if not self.low < self.high:
            raise ValueError(f"{self.name}: low must be < high")
        if self.log and self.low <= 0:
            raise ValueError(f"{self.name}: log scale requires low > 0")
        if not self.low <= self.default <= self.high:
            raise ValueError(f"{self.name}: default outside [low, high]")

    def encode(self, value: Any) -> float:
        v = float(np.clip(int(round(float(value))), self.low, self.high))
        if self.log:
            return float(
                (np.log(v) - np.log(self.low))
                / (np.log(self.high) - np.log(self.low))
            )
        return (v - self.low) / (self.high - self.low)

    def decode(self, u: float) -> int:
        u = _check_unit_interval(u)
        if self.log:
            raw = np.exp(
                np.log(self.low) + u * (np.log(self.high) - np.log(self.low))
            )
        else:
            raw = self.low + u * (self.high - self.low)
        return int(np.clip(int(round(float(raw))), self.low, self.high))

    def clip(self, value: Any) -> int:
        return int(np.clip(int(round(float(value))), self.low, self.high))


@dataclass(frozen=True)
class BoolParameter(Parameter):
    """Boolean flag; u >= 0.5 decodes to True."""

    def encode(self, value: Any) -> float:
        return 1.0 if bool(value) else 0.0

    def decode(self, u: float) -> bool:
        return _check_unit_interval(u) >= 0.5

    def clip(self, value: Any) -> bool:
        return bool(value)


@dataclass(frozen=True)
class CategoricalParameter(Parameter):
    """Unordered choice over a fixed list; [0,1] is split into equal bins."""

    choices: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "choices", tuple(self.choices))
        if len(self.choices) < 2:
            raise ValueError(f"{self.name}: need at least 2 choices")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(f"{self.name}: duplicate choices")
        if self.default not in self.choices:
            raise ValueError(f"{self.name}: default not among choices")

    def encode(self, value: Any) -> float:
        try:
            idx = self.choices.index(value)
        except ValueError:
            raise ValueError(
                f"{self.name}: {value!r} not in {self.choices}"
            ) from None
        # Bin centres, so encode/decode round-trips exactly.
        return (idx + 0.5) / len(self.choices)

    def decode(self, u: float) -> str:
        u = _check_unit_interval(u)
        idx = min(int(u * len(self.choices)), len(self.choices) - 1)
        return self.choices[idx]

    def clip(self, value: Any) -> str:
        if value in self.choices:
            return value
        raise ValueError(f"{self.name}: {value!r} not in {self.choices}")
