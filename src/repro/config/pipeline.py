"""Assembly of the full 32-parameter pipeline configuration space."""

from __future__ import annotations

from repro.config.hdfs_params import hdfs_parameters
from repro.config.space import ConfigurationSpace
from repro.config.spark_params import spark_parameters
from repro.config.yarn_params import yarn_parameters

__all__ = ["build_pipeline_space"]


def build_pipeline_space() -> ConfigurationSpace:
    """The paper's tuning space: 20 Spark + 7 YARN + 5 HDFS parameters.

    Order is stable (Spark, YARN, HDFS) so that encoded action vectors are
    comparable across models and sessions.
    """
    return ConfigurationSpace(
        [*spark_parameters(), *yarn_parameters(), *hdfs_parameters()]
    )
