"""Configuration parameter space for the HDFS + YARN + Spark pipeline.

The paper tunes 32 performance-critical parameters (Table 2): 20 from
Spark (including Spark-on-YARN connector parameters), 7 from YARN and 5
from HDFS.  Actions in the DRL formulation are points in the normalized
cube [0,1]^32; this package owns the bidirectional mapping between that
cube and concrete parameter dictionaries.
"""

from repro.config.parameter import (
    BoolParameter,
    CategoricalParameter,
    FloatParameter,
    IntParameter,
    Parameter,
)
from repro.config.pipeline import build_pipeline_space
from repro.config.space import ConfigurationSpace

__all__ = [
    "Parameter",
    "IntParameter",
    "FloatParameter",
    "BoolParameter",
    "CategoricalParameter",
    "ConfigurationSpace",
    "build_pipeline_space",
]
