"""Reduced configuration spaces: tune only the knobs that matter.

The paper's future work points to white-box analyses (LOCAT, LITE) that
shrink the tuning problem.  A :class:`ReducedConfigurationSpace` exposes
only a chosen subset of parameters as action dimensions while pinning
the rest to fixed values — the environment and agents work unchanged on
the smaller cube, and every decoded configuration is still complete.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

from repro.config.space import ConfigurationSpace

__all__ = ["ReducedConfigurationSpace"]


class ReducedConfigurationSpace(ConfigurationSpace):
    """A view of a full space with most parameters pinned.

    Parameters
    ----------
    full_space:
        The complete pipeline space.
    free:
        Names of the parameters exposed as action dimensions (order is
        taken from the full space for stability).
    pinned_values:
        Concrete values for the remaining parameters; anything not given
        pins to the full space's default.
    """

    def __init__(
        self,
        full_space: ConfigurationSpace,
        free: Iterable[str],
        pinned_values: Mapping[str, Any] | None = None,
    ):
        free_set = set(free)
        unknown = free_set - set(full_space.names)
        if unknown:
            raise KeyError(f"unknown parameters: {sorted(unknown)}")
        if not free_set:
            raise ValueError("need at least one free parameter")
        free_params = [p for p in full_space if p.name in free_set]
        super().__init__(free_params)
        self.full_space = full_space
        pinned = {
            p.name: p.default
            for p in full_space
            if p.name not in free_set
        }
        if pinned_values:
            stray = set(pinned_values) - set(pinned)
            overlap = stray & free_set
            if overlap:
                raise ValueError(
                    f"cannot pin free parameters: {sorted(overlap)}"
                )
            if stray - free_set:
                raise KeyError(
                    f"unknown pinned parameters: {sorted(stray - free_set)}"
                )
            for name, value in pinned_values.items():
                pinned[name] = full_space[name].clip(value)
        self.pinned = pinned

    # -- dict <-> vector over the *reduced* cube, yielding full configs ----

    def decode(self, vector: np.ndarray) -> dict[str, Any]:
        """Decode a reduced vector into a COMPLETE configuration dict."""
        free_config = super().decode(vector)
        return {**self.pinned, **free_config}

    def encode(self, config: Mapping[str, Any]) -> np.ndarray:
        """Encode a complete (or free-only) configuration's free part."""
        free_only = {
            name: config[name] for name in self.names if name in config
        }
        missing = set(self.names) - set(free_only)
        if missing:
            raise KeyError(f"missing parameters: {sorted(missing)}")
        return super().encode(free_only)

    def defaults(self) -> dict[str, Any]:
        """Complete defaults: free defaults merged over pinned values."""
        free_defaults = {p.name: p.default for p in self.parameters}
        return {**self.pinned, **free_defaults}

    def clip_config(self, config: Mapping[str, Any]) -> dict[str, Any]:
        """Clip a complete configuration (free parts clipped, pinned kept)."""
        out = dict(self.pinned)
        for p in self.parameters:
            out[p.name] = p.clip(config[p.name])
        return out
