"""The configuration space: a vectorized view over a list of parameters.

Encoding and decoding are the innermost operations of every search loop
(LHS warmup, baseline sweeps, Twin-Q screening), so the space precomputes
columnar transform tables at construction time: per-parameter bounds,
log-scale coefficients, categorical index maps and integer-rounding
masks.  The scalar :meth:`encode`/:meth:`decode` are thin views over
those tables — bit-identical to the per-parameter path — and the batch
variants (:meth:`encode_batch`, :meth:`decode_batch`,
:meth:`decode_columns`) apply the same tables across the candidate axis
in a handful of numpy operations.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.config.parameter import (
    BoolParameter,
    CategoricalParameter,
    FloatParameter,
    IntParameter,
    Parameter,
)

__all__ = ["ConfigurationSpace"]

# The four parameter kinds with table-backed fast paths.  A space built
# from anything else (a user-defined Parameter subclass with its own
# encode/decode) transparently falls back to the per-parameter methods.
_TABLE_KINDS = (FloatParameter, IntParameter, BoolParameter, CategoricalParameter)


def _categorical_encoder(p: CategoricalParameter) -> Callable[[Any], float]:
    codes = {c: (i + 0.5) / len(p.choices) for i, c in enumerate(p.choices)}

    def enc(value: Any) -> float:
        try:
            return codes[value]
        except (KeyError, TypeError):
            raise ValueError(f"{p.name}: {value!r} not in {p.choices}") from None

    return enc


def _int_encoder(value: Any) -> float:
    return float(int(round(float(value))))


def _bool_encoder(value: Any) -> float:
    return 1.0 if value else 0.0


def _make_extractor(p: Parameter) -> Callable[[Any], float]:
    """Raw-value extractor: config value -> pre-normalization float.

    Numeric parameters yield the (rounded) raw value — clipping and
    normalization happen vectorized over the whole vector afterwards.
    Bool/categorical parameters yield the final encoded coordinate.
    """
    if type(p) is FloatParameter:
        return float
    if type(p) is IntParameter:
        return _int_encoder
    if type(p) is BoolParameter:
        return _bool_encoder
    return _categorical_encoder(p)


def _make_assembler(p: Parameter) -> Callable[[np.floating], Any]:
    """Native-value assembler: linearized coordinate -> concrete value.

    The input is the affine transform ``a * u + b`` of the normalized
    coordinate (exponentiated already for log-scale parameters), i.e.
    the raw decoded value for numerics, ``u`` itself for bools, and
    ``u * n_choices`` for categoricals.
    """
    if type(p) is FloatParameter:
        return float
    if type(p) is IntParameter:
        lo, hi = p.low, p.high

        def dec_int(x: np.floating) -> int:
            return min(max(int(round(float(x))), lo), hi)

        return dec_int
    if type(p) is BoolParameter:
        return lambda x: bool(x >= 0.5)
    choices, n = p.choices, len(p.choices)
    return lambda x: choices[min(int(x), n - 1)]


class ConfigurationSpace:
    """An ordered collection of parameters with [0,1]^d vector semantics.

    The DRL agents act in the normalized cube; the simulator consumes
    concrete parameter dictionaries.  This class owns both directions plus
    sampling, clipping and component filtering.
    """

    def __init__(self, parameters: Sequence[Parameter]):
        if not parameters:
            raise ValueError("configuration space cannot be empty")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate parameter names: {dupes}")
        self._params = tuple(parameters)
        self._index = {p.name: i for i, p in enumerate(self._params)}
        self._names = tuple(names)
        self._name_set = frozenset(names)
        self._build_tables()
        self._defaults = {p.name: p.default for p in self._params}
        self._default_vector = self.encode(self._defaults)
        self._default_vector.setflags(write=False)

    # -- transform tables ----------------------------------------------------

    def _build_tables(self) -> None:
        """Precompute the columnar encode/decode transform tables."""
        self._fast = all(type(p) in _TABLE_KINDS for p in self._params)
        if not self._fast:
            return
        d = len(self._params)
        # Decode: value = a * u + b per column, then exp() on log columns.
        dec_a = np.empty(d, dtype=np.float64)
        dec_b = np.empty(d, dtype=np.float64)
        log_cols: list[int] = []
        lin_cols: list[int] = []  # numeric linear-scale columns
        for i, p in enumerate(self._params):
            if isinstance(p, (FloatParameter, IntParameter)):
                if p.log:
                    log_lo = float(np.log(p.low))
                    log_span = float(np.log(p.high) - np.log(p.low))
                    dec_a[i], dec_b[i] = log_span, log_lo
                    log_cols.append(i)
                else:
                    dec_a[i], dec_b[i] = p.high - p.low, float(p.low)
                    lin_cols.append(i)
            elif isinstance(p, BoolParameter):
                dec_a[i], dec_b[i] = 1.0, 0.0
            else:  # CategoricalParameter: u * n truncates into a bin index
                dec_a[i], dec_b[i] = float(len(p.choices)), 0.0
        self._dec_a, self._dec_b = dec_a, dec_b
        self._log_cols = np.array(log_cols, dtype=np.intp)
        # Encode: clip raw values, then normalize per scale.
        self._lin_cols = np.array(lin_cols, dtype=np.intp)
        self._lin_low = np.array(
            [float(self._params[i].low) for i in lin_cols], dtype=np.float64
        )
        self._lin_high = np.array(
            [float(self._params[i].high) for i in lin_cols], dtype=np.float64
        )
        self._lin_span = self._lin_high - self._lin_low
        self._log_low = np.array(
            [float(self._params[i].low) for i in log_cols], dtype=np.float64
        )
        self._log_high = np.array(
            [float(self._params[i].high) for i in log_cols], dtype=np.float64
        )
        self._log_log_low = np.log(self._log_low)
        self._log_denom = np.log(self._log_high) - self._log_log_low
        self._extractors = tuple(
            (p.name, _make_extractor(p)) for p in self._params
        )
        self._assemblers = tuple(
            (p.name, _make_assembler(p)) for p in self._params
        )
        # Per-kind column tables for the fully columnar decode paths:
        # decode_batch/decode_columns dispatch per *kind* once per call
        # instead of per cell, using these precomputed index sets.
        self._dec_float: list[tuple[int, str]] = []
        self._dec_bool: list[tuple[int, str]] = []
        self._dec_cat: list[tuple[int, str, tuple, int, np.ndarray]] = []
        int_cols: list[int] = []
        self._dec_int_names: list[str] = []
        for i, p in enumerate(self._params):
            if type(p) is FloatParameter:
                self._dec_float.append((i, p.name))
            elif type(p) is IntParameter:
                int_cols.append(i)
                self._dec_int_names.append(p.name)
            elif type(p) is BoolParameter:
                self._dec_bool.append((i, p.name))
            else:
                self._dec_cat.append(
                    (i, p.name, p.choices, len(p.choices) - 1,
                     np.asarray(p.choices))
                )
        self._dec_int_idx = np.array(int_cols, dtype=np.intp)
        self._dec_int_lo = np.array(
            [float(self._params[i].low) for i in int_cols], dtype=np.float64
        )
        self._dec_int_hi = np.array(
            [float(self._params[i].high) for i in int_cols], dtype=np.float64
        )

    # -- pickling ------------------------------------------------------------

    def __getstate__(self):
        # The transform tables hold per-parameter closures pickle can't
        # serialize; everything is derived from the parameter tuple, so
        # persist only that and rebuild on load (checkpoints pickle the
        # env, which owns the space).
        return {"_params": self._params}

    def __setstate__(self, state):
        self.__init__(state["_params"])

    # -- basic introspection -------------------------------------------------

    @property
    def dim(self) -> int:
        return len(self._params)

    @property
    def parameters(self) -> tuple[Parameter, ...]:
        return self._params

    @property
    def names(self) -> list[str]:
        return list(self._names)

    def __len__(self) -> int:
        return self.dim

    def __iter__(self):
        return iter(self._params)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Parameter:
        try:
            return self._params[self._index[name]]
        except KeyError:
            raise KeyError(f"unknown parameter {name!r}") from None

    def component_counts(self) -> dict[str, int]:
        """Number of parameters per component (the paper's Table 2)."""
        counts: dict[str, int] = {}
        for p in self._params:
            counts[p.component] = counts.get(p.component, 0) + 1
        return counts

    def subset(self, components: Iterable[str]) -> "ConfigurationSpace":
        """A new space containing only the given components' parameters."""
        wanted = set(components)
        params = [p for p in self._params if p.component in wanted]
        if not params:
            raise ValueError(f"no parameters for components {sorted(wanted)}")
        return ConfigurationSpace(params)

    # -- dict <-> vector -----------------------------------------------------

    def defaults(self) -> dict[str, Any]:
        """The framework-default configuration as a dict."""
        return dict(self._defaults)

    def default_vector(self) -> np.ndarray:
        """The default configuration encoded into [0,1]^d."""
        return self._default_vector.copy()

    def _check_keys(self, config: Mapping[str, Any]) -> None:
        unknown = set(config) - self._name_set
        if unknown:
            raise KeyError(f"unknown parameters: {sorted(unknown)}")
        missing = self._name_set - set(config)
        if missing:
            raise KeyError(f"missing parameters: {sorted(missing)}")

    def _check_unit_cube(self, mat: np.ndarray) -> None:
        """Reject coordinates outside [0,1] with the scalar path's error."""
        bad = ~((mat >= 0.0) & (mat <= 1.0))
        if bad.any():
            first = float(mat.ravel()[int(np.argmax(bad.ravel()))])
            raise ValueError(f"encoded value must lie in [0,1], got {first}")

    def _normalize(self, out: np.ndarray) -> np.ndarray:
        """In-place: raw numeric columns of ``out`` -> [0,1] coordinates."""
        lc = self._lin_cols
        if lc.size:
            v = np.clip(out[..., lc], self._lin_low, self._lin_high)
            out[..., lc] = (v - self._lin_low) / self._lin_span
        gc = self._log_cols
        if gc.size:
            v = np.clip(out[..., gc], self._log_low, self._log_high)
            out[..., gc] = (np.log(v) - self._log_log_low) / self._log_denom
        return out

    def _linearize(self, mat: np.ndarray) -> np.ndarray:
        """[0,1] coordinates -> raw decoded values (affine + exp on logs)."""
        lin = self._dec_a * mat + self._dec_b
        gc = self._log_cols
        if gc.size:
            lin[..., gc] = np.exp(lin[..., gc])
        return lin

    def encode(self, config: Mapping[str, Any]) -> np.ndarray:
        """Encode a full configuration dict into the normalized cube.

        Missing keys raise; unknown keys raise — silent drift between the
        tuner's view and the cluster's view is a classic config-tuning bug.
        """
        self._check_keys(config)
        if not self._fast:
            return np.array(
                [p.encode(config[p.name]) for p in self._params],
                dtype=np.float64,
            )
        out = np.empty(self.dim, dtype=np.float64)
        i = 0
        for name, extract in self._extractors:
            out[i] = extract(config[name])
            i += 1
        return self._normalize(out)

    def encode_batch(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Encode ``n`` configuration dicts into an ``(n, dim)`` matrix.

        Row ``i`` is bit-identical to ``encode(configs[i])``.
        """
        n = len(configs)
        if not self._fast:
            return np.array(
                [self.encode(c) for c in configs], dtype=np.float64
            ).reshape(n, self.dim)
        out = np.empty((n, self.dim), dtype=np.float64)
        for r, config in enumerate(configs):
            self._check_keys(config)
            row = out[r]
            i = 0
            for name, extract in self._extractors:
                row[i] = extract(config[name])
                i += 1
        return self._normalize(out)

    def decode(self, vector: np.ndarray) -> dict[str, Any]:
        """Decode a [0,1]^d vector into a concrete configuration dict."""
        vec = np.asarray(vector, dtype=np.float64)
        if vec.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {vec.shape}")
        if not self._fast:
            return {p.name: p.decode(u) for p, u in zip(self._params, vec)}
        self._check_unit_cube(vec)
        lin = self._linearize(vec)
        return {
            name: assemble(x)
            for (name, assemble), x in zip(self._assemblers, lin)
        }

    def decode_batch(self, vectors: np.ndarray) -> list[dict[str, Any]]:
        """Decode an ``(n, dim)`` matrix into ``n`` configuration dicts.

        Entry ``i`` equals ``decode(vectors[i])`` exactly.  Assembly is
        columnar: each parameter *kind* is converted in one vectorized
        pass over its cached column set (``np.rint`` matches Python's
        banker's ``round``, ``astype(int64)`` matches ``int()``'s
        truncation on the non-negative categorical bins), then the rows
        are zipped back into dicts — ~d·n fewer interpreter calls than
        assembling per cell.
        """
        mat = self._check_matrix(vectors)
        if not self._fast:
            return [self.decode(row) for row in mat]
        lin = self._linearize(mat)
        columns: list[list] = [None] * self.dim  # type: ignore[list-item]
        for c, _ in self._dec_float:
            columns[c] = lin[:, c].tolist()
        if self._dec_int_idx.size:
            ints = np.clip(
                np.rint(lin[:, self._dec_int_idx]),
                self._dec_int_lo,
                self._dec_int_hi,
            ).astype(np.int64)
            for j, c in enumerate(self._dec_int_idx):
                columns[c] = ints[:, j].tolist()
        for c, _ in self._dec_bool:
            columns[c] = (lin[:, c] >= 0.5).tolist()
        for c, _, choices, last, _arr in self._dec_cat:
            idx = np.minimum(lin[:, c].astype(np.int64), last)
            columns[c] = [choices[k] for k in idx.tolist()]
        names = self._names
        return [dict(zip(names, row)) for row in zip(*columns)]

    def decode_columns(self, vectors: np.ndarray) -> dict[str, np.ndarray]:
        """Decode an ``(n, dim)`` matrix into typed per-parameter columns.

        Stays fully in numpy — no per-row dicts — for consumers that only
        need columns: float64 for floats, int64 for ints, bool for flags,
        unicode for categoricals.  Column values match :meth:`decode`.
        """
        mat = self._check_matrix(vectors)
        if not self._fast:
            rows = [self.decode(row) for row in mat]
            return {
                p.name: np.array([r[p.name] for r in rows])
                for p in self._params
            }
        lin = self._linearize(mat)
        cols: dict[str, np.ndarray] = {}
        for c, name in self._dec_float:
            cols[name] = lin[:, c].copy()
        if self._dec_int_idx.size:
            ints = np.clip(
                np.rint(lin[:, self._dec_int_idx]),
                self._dec_int_lo,
                self._dec_int_hi,
            ).astype(np.int64)
            for j, name in enumerate(self._dec_int_names):
                cols[name] = ints[:, j]
        for c, name in self._dec_bool:
            cols[name] = lin[:, c] >= 0.5
        for c, name, _choices, last, arr in self._dec_cat:
            idx = np.minimum(lin[:, c].astype(np.int64), last)
            cols[name] = arr[idx]
        return cols

    def _check_matrix(self, vectors: np.ndarray) -> np.ndarray:
        mat = np.asarray(vectors, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[1] != self.dim:
            raise ValueError(
                f"expected shape (n, {self.dim}), got {mat.shape}"
            )
        self._check_unit_cube(mat)
        return mat

    def clip_vector(self, vector: np.ndarray) -> np.ndarray:
        """Clamp a raw action into [0,1]^d (out-of-range explorations)."""
        vec = np.asarray(vector, dtype=np.float64)
        if vec.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {vec.shape}")
        return np.clip(vec, 0.0, 1.0)

    def clip_config(self, config: Mapping[str, Any]) -> dict[str, Any]:
        """Clamp each concrete value into its legal range.

        Used for hardware adaptability (§5.3.2): a model trained on a
        larger cluster may recommend values outside the new environment's
        scope, which must be clipped to the boundary.
        """
        return {p.name: p.clip(config[p.name]) for p in self._params}

    # -- sampling ------------------------------------------------------------

    def sample_vector(self, rng: np.random.Generator) -> np.ndarray:
        """One uniform sample from the normalized cube."""
        return rng.uniform(0.0, 1.0, size=self.dim)

    def sample_vectors(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` uniform samples, shape ``(n, dim)``."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return rng.uniform(0.0, 1.0, size=(n, self.dim))

    def sample_config(self, rng: np.random.Generator) -> dict[str, Any]:
        """One uniform concrete configuration."""
        return self.decode(self.sample_vector(rng))

    def latin_hypercube(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Latin-hypercube sample of ``n`` vectors — space-filling starts
        for OtterTune's GP and for the BestConfig-style baseline."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        u = (rng.permuted(
            np.tile(np.arange(n, dtype=np.float64)[:, None], (1, self.dim)),
            axis=0,
        ) + rng.uniform(0.0, 1.0, size=(n, self.dim))) / n
        return u
