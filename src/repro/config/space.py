"""The configuration space: a vectorized view over a list of parameters."""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.config.parameter import Parameter

__all__ = ["ConfigurationSpace"]


class ConfigurationSpace:
    """An ordered collection of parameters with [0,1]^d vector semantics.

    The DRL agents act in the normalized cube; the simulator consumes
    concrete parameter dictionaries.  This class owns both directions plus
    sampling, clipping and component filtering.
    """

    def __init__(self, parameters: Sequence[Parameter]):
        if not parameters:
            raise ValueError("configuration space cannot be empty")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate parameter names: {dupes}")
        self._params = tuple(parameters)
        self._index = {p.name: i for i, p in enumerate(self._params)}

    # -- basic introspection -------------------------------------------------

    @property
    def dim(self) -> int:
        return len(self._params)

    @property
    def parameters(self) -> tuple[Parameter, ...]:
        return self._params

    @property
    def names(self) -> list[str]:
        return [p.name for p in self._params]

    def __len__(self) -> int:
        return self.dim

    def __iter__(self):
        return iter(self._params)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Parameter:
        try:
            return self._params[self._index[name]]
        except KeyError:
            raise KeyError(f"unknown parameter {name!r}") from None

    def component_counts(self) -> dict[str, int]:
        """Number of parameters per component (the paper's Table 2)."""
        counts: dict[str, int] = {}
        for p in self._params:
            counts[p.component] = counts.get(p.component, 0) + 1
        return counts

    def subset(self, components: Iterable[str]) -> "ConfigurationSpace":
        """A new space containing only the given components' parameters."""
        wanted = set(components)
        params = [p for p in self._params if p.component in wanted]
        if not params:
            raise ValueError(f"no parameters for components {sorted(wanted)}")
        return ConfigurationSpace(params)

    # -- dict <-> vector -----------------------------------------------------

    def defaults(self) -> dict[str, Any]:
        """The framework-default configuration as a dict."""
        return {p.name: p.default for p in self._params}

    def default_vector(self) -> np.ndarray:
        """The default configuration encoded into [0,1]^d."""
        return self.encode(self.defaults())

    def encode(self, config: Mapping[str, Any]) -> np.ndarray:
        """Encode a full configuration dict into the normalized cube.

        Missing keys raise; unknown keys raise — silent drift between the
        tuner's view and the cluster's view is a classic config-tuning bug.
        """
        unknown = set(config) - set(self._index)
        if unknown:
            raise KeyError(f"unknown parameters: {sorted(unknown)}")
        missing = set(self._index) - set(config)
        if missing:
            raise KeyError(f"missing parameters: {sorted(missing)}")
        return np.array(
            [p.encode(config[p.name]) for p in self._params], dtype=np.float64
        )

    def decode(self, vector: np.ndarray) -> dict[str, Any]:
        """Decode a [0,1]^d vector into a concrete configuration dict."""
        vec = np.asarray(vector, dtype=np.float64)
        if vec.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {vec.shape}")
        return {p.name: p.decode(u) for p, u in zip(self._params, vec)}

    def clip_vector(self, vector: np.ndarray) -> np.ndarray:
        """Clamp a raw action into [0,1]^d (out-of-range explorations)."""
        vec = np.asarray(vector, dtype=np.float64)
        if vec.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {vec.shape}")
        return np.clip(vec, 0.0, 1.0)

    def clip_config(self, config: Mapping[str, Any]) -> dict[str, Any]:
        """Clamp each concrete value into its legal range.

        Used for hardware adaptability (§5.3.2): a model trained on a
        larger cluster may recommend values outside the new environment's
        scope, which must be clipped to the boundary.
        """
        return {p.name: p.clip(config[p.name]) for p in self._params}

    # -- sampling ------------------------------------------------------------

    def sample_vector(self, rng: np.random.Generator) -> np.ndarray:
        """One uniform sample from the normalized cube."""
        return rng.uniform(0.0, 1.0, size=self.dim)

    def sample_vectors(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` uniform samples, shape ``(n, dim)``."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return rng.uniform(0.0, 1.0, size=(n, self.dim))

    def sample_config(self, rng: np.random.Generator) -> dict[str, Any]:
        """One uniform concrete configuration."""
        return self.decode(self.sample_vector(rng))

    def latin_hypercube(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Latin-hypercube sample of ``n`` vectors — space-filling starts
        for OtterTune's GP and for the BestConfig-style baseline."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        u = (rng.permuted(
            np.tile(np.arange(n, dtype=np.float64)[:, None], (1, self.dim)),
            axis=0,
        ) + rng.uniform(0.0, 1.0, size=(n, self.dim))) / n
        return u
