"""The 5 tuned HDFS parameters.

HDFS knobs chiefly influence read/write throughput and the number of map
tasks (via the block size).  ``io.file.buffer.size`` lives in core-site
but the paper counts it with HDFS.
"""

from __future__ import annotations

from repro.config.parameter import IntParameter, Parameter

__all__ = ["hdfs_parameters"]


def hdfs_parameters() -> list[Parameter]:
    """Return the 5 HDFS parameter definitions in a stable order."""
    c = "hdfs"
    return [
        IntParameter(
            "dfs.blocksize", c, default=128, low=32, high=512, log=True,
            description="HDFS block size (drives input-split count)",
            unit="MB",
        ),
        IntParameter(
            "dfs.replication", c, default=3, low=1, high=3,
            description="Replicas per block (write amplification)",
        ),
        IntParameter(
            "dfs.namenode.handler.count", c, default=10, low=10, high=200,
            log=True,
            description="NameNode RPC handler threads",
        ),
        IntParameter(
            "dfs.datanode.handler.count", c, default=10, low=10, high=100,
            log=True,
            description="DataNode RPC handler threads",
        ),
        IntParameter(
            "io.file.buffer.size", c, default=64, low=4, high=1024, log=True,
            description="Buffer for sequence-file and stream I/O",
            unit="KB",
        ),
    ]
