"""The 7 tuned YARN parameters.

These govern how many executor containers the cluster can actually host —
in a real Spark-on-YARN deployment the interplay between
``yarn.nodemanager.resource.*`` and the per-container allocation bounds is
what decides whether a requested executor fits at all.
"""

from __future__ import annotations

from repro.config.parameter import FloatParameter, IntParameter, Parameter

__all__ = ["yarn_parameters"]


def yarn_parameters() -> list[Parameter]:
    """Return the 7 YARN parameter definitions in a stable order."""
    c = "yarn"
    return [
        IntParameter(
            "yarn.nodemanager.resource.memory-mb", c, default=8192,
            low=4096, high=14336, log=True,
            description="Memory a NodeManager offers to containers",
            unit="MB",
        ),
        IntParameter(
            "yarn.nodemanager.resource.cpu-vcores", c, default=8,
            low=4, high=16,
            description="Vcores a NodeManager offers to containers",
        ),
        IntParameter(
            "yarn.scheduler.minimum-allocation-mb", c, default=1024,
            low=256, high=2048, log=True,
            description="Container memory requests round up to this",
            unit="MB",
        ),
        IntParameter(
            "yarn.scheduler.maximum-allocation-mb", c, default=8192,
            low=6144, high=14336, log=True,
            description="Largest container the scheduler will grant",
            unit="MB",
        ),
        IntParameter(
            "yarn.scheduler.maximum-allocation-vcores", c, default=8,
            low=6, high=16,
            description="Largest vcore count per container",
        ),
        FloatParameter(
            "yarn.nodemanager.vmem-pmem-ratio", c, default=2.1,
            low=1.0, high=5.0,
            description="Virtual/physical memory ratio before kill",
        ),
        IntParameter(
            "yarn.nodemanager.resource.percentage-physical-cpu-limit", c,
            default=100, low=50, high=100,
            description="Percent of node CPU usable by containers",
            unit="%",
        ),
    ]
