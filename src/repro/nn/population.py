"""Stacked forward passes over N same-architecture networks.

:class:`StackedSequential` adopts the parameters of N
:class:`~repro.nn.network.Sequential` instances into one contiguous
``(N, in, out)`` tensor per Linear layer and rebinds each network's
:class:`~repro.nn.network.Parameter.data` as a row view into it.  A
single 3-D ``np.matmul`` then runs all N networks' forwards at once.

Two facts make this safe and bit-identical:

* every in-repo parameter mutation is **in-place** (`Adam`'s
  ``p.data -= a``, Polyak's ``tp.data *= ..; tp.data += ..``,
  ``load_state_dict``/``copy_from``'s ``p.data[...] =``) — only
  ``Parameter.__init__`` rebinds ``data`` — so scalar per-session
  updates write straight through the views into the stacked storage
  with no refresh step;
* numpy evaluates a stacked ``(N, R, in) @ (N, in, out)`` matmul
  slice-by-slice with the same kernel as the 2-D case, and the
  elementwise activations (`maximum`, `tanh`, the sign-split sigmoid)
  are value-wise functions — so row ``i`` of the stacked forward is
  bit-identical to network ``i``'s own ``forward(x_i, cache=False)``.

Outputs use pooled per-row-count workspaces, mirroring the scalar
layers' allocation policy; the same ownership rule applies (a returned
array is valid until the next forward with the same row count).

Pickling a view-backed parameter materializes a copy, so adoption does
not survive checkpoint round-trips — re-adopt after a restore (building
a fresh :class:`StackedSequential` is exactly that and is idempotent).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers import Linear, ReLU, Sigmoid, Tanh
from repro.nn.network import Sequential

__all__ = ["StackedSequential"]


def _workspace3(
    pool: dict[int, np.ndarray], n: int, rows: int, cols: int
) -> np.ndarray:
    """Fetch (or create) the pooled ``(n, rows, cols)`` buffer."""
    buf = pool.get(rows)
    if buf is None:
        buf = pool[rows] = np.empty((n, rows, cols), dtype=np.float64)
    return buf


class _StackedLinear:
    """N affine layers as one ``(N, in, out)`` weight tensor.

    Adopts the scalar layers' parameters: after construction each
    ``layers[i].weight.data`` is the contiguous view ``w[i]`` and
    ``layers[i].bias.data`` is ``b[i, 0]``, so in-place scalar updates
    and the stacked forward always see the same storage.
    """

    def __init__(self, layers: Sequence[Linear], allocator=None):
        shape = layers[0].weight.data.shape
        for lay in layers:
            if lay.weight.data.shape != shape:
                raise ValueError(
                    f"layer shape mismatch: {lay.weight.data.shape} "
                    f"!= {shape}"
                )
        n = len(layers)
        alloc = np.empty if allocator is None else allocator
        self.w = alloc((n, *shape), dtype=np.float64)
        self.b = alloc((n, 1, shape[1]), dtype=np.float64)
        for arr, want in ((self.w, (n, *shape)), (self.b, (n, 1, shape[1]))):
            if arr.shape != want or arr.dtype != np.float64:
                raise ValueError(
                    f"allocator returned {arr.shape} {arr.dtype}, "
                    f"wanted {want} float64"
                )
        for i, lay in enumerate(layers):
            self.w[i] = lay.weight.data
            self.b[i, 0] = lay.bias.data
            lay.weight.data = self.w[i]
            lay.bias.data = self.b[i, 0]
        self._fwd: dict[int, np.ndarray] = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = _workspace3(self._fwd, x.shape[0], x.shape[1], self.w.shape[2])
        np.matmul(x, self.w, out=out)
        out += self.b
        return out


class _StackedReLU:
    def __init__(self):
        self._fwd: dict[int, np.ndarray] = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = _workspace3(self._fwd, x.shape[0], x.shape[1], x.shape[2])
        np.maximum(x, 0.0, out=out)
        return out


class _StackedTanh:
    def __init__(self):
        self._fwd: dict[int, np.ndarray] = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = _workspace3(self._fwd, x.shape[0], x.shape[1], x.shape[2])
        np.tanh(x, out=out)
        return out


class _StackedSigmoid:
    def __init__(self):
        self._fwd: dict[int, np.ndarray] = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Numerically stable split on sign, exactly as the scalar layer.
        out = _workspace3(self._fwd, x.shape[0], x.shape[1], x.shape[2])
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out


_STACKED_ACTIVATIONS = {
    ReLU: _StackedReLU,
    Tanh: _StackedTanh,
    Sigmoid: _StackedSigmoid,
}


class StackedSequential:
    """Lockstep inference over N same-architecture Sequentials.

    ``forward`` takes ``(N, rows, in_dim)`` and returns
    ``(N, rows, out_dim)``, where slice ``i`` equals
    ``nets[i].forward(x[i], cache=False)`` bit-for-bit.
    """

    def __init__(self, nets: Sequence[Sequential], allocator=None):
        nets = list(nets)
        if not nets:
            raise ValueError("need at least one network")
        if len({id(net) for net in nets}) != len(nets):
            raise ValueError("stacked networks must be distinct objects")
        n_layers = len(nets[0].layers)
        for net in nets:
            if len(net.layers) != n_layers:
                raise ValueError("networks must share an architecture")
        self.n = len(nets)
        self._ops = []
        for layers in zip(*(net.layers for net in nets)):
            kind = type(layers[0])
            if any(type(lay) is not kind for lay in layers):
                raise ValueError("networks must share an architecture")
            if kind is Linear:
                self._ops.append(_StackedLinear(layers, allocator))
            elif kind in _STACKED_ACTIVATIONS:
                self._ops.append(_STACKED_ACTIVATIONS[kind]())
            else:
                raise TypeError(f"cannot stack layer type {kind.__name__}")

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        if out.ndim != 3 or out.shape[0] != self.n:
            raise ValueError(
                f"expected shape ({self.n}, rows, in_dim), got {out.shape}"
            )
        for op in self._ops:
            out = op.forward(out)
        return out

    def members_finite(self) -> np.ndarray:
        """Boolean mask over members: ``True`` where every parameter of
        member ``i``'s net is finite.  Pure observation (no RNG, no
        writes), used to quarantine diverged members before their NaNs
        can reach the shared lockstep tensors."""
        ok = np.ones(self.n, dtype=bool)
        for op in self._ops:
            if isinstance(op, _StackedLinear):
                ok &= np.isfinite(op.w).all(axis=(1, 2))
                ok &= np.isfinite(op.b).all(axis=(1, 2))
        return ok
