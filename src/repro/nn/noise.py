"""Exploration noise processes."""

from __future__ import annotations

import numpy as np

__all__ = ["GaussianNoise", "OrnsteinUhlenbeckNoise"]


class GaussianNoise:
    """I.i.d. Gaussian exploration noise, optionally decayed per call.

    TD3's exploration and the Twin-Q Optimizer's action perturbation both
    use zero-mean Gaussian noise; the optimizer draws fresh noise per
    retry, the explorer decays sigma over training.
    """

    def __init__(
        self,
        dim: int,
        sigma: float,
        rng: np.random.Generator,
        sigma_min: float = 0.0,
        decay: float = 1.0,
    ):
        if sigma < 0 or sigma_min < 0:
            raise ValueError("sigma values must be non-negative")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.dim = dim
        self.sigma = sigma
        self.sigma_min = sigma_min
        self.decay = decay
        self._rng = rng

    def sample(self) -> np.ndarray:
        noise = self._rng.normal(0.0, self.sigma, size=self.dim)
        self.sigma = max(self.sigma_min, self.sigma * self.decay)
        return noise

    def reset(self, sigma: float | None = None) -> None:
        if sigma is not None:
            self.sigma = sigma


class OrnsteinUhlenbeckNoise:
    """Temporally correlated OU noise (the classic DDPG explorer)."""

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        mu: float = 0.0,
        theta: float = 0.15,
        sigma: float = 0.2,
        dt: float = 1.0,
    ):
        if sigma < 0 or theta < 0 or dt <= 0:
            raise ValueError("invalid OU parameters")
        self.dim = dim
        self.mu = mu
        self.theta = theta
        self.sigma = sigma
        self.dt = dt
        self._rng = rng
        self._state = np.full(dim, mu, dtype=np.float64)

    def sample(self) -> np.ndarray:
        drift = self.theta * (self.mu - self._state) * self.dt
        diffusion = self.sigma * np.sqrt(self.dt) * self._rng.normal(size=self.dim)
        self._state = self._state + drift + diffusion
        return self._state.copy()

    def reset(self) -> None:
        self._state[...] = self.mu
