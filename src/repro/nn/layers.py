"""Layers with explicit forward/backward passes.

Every layer implements:

* ``forward(x, cache=True)`` — compute output; stash what backward needs.
* ``backward(grad_out)`` — given dLoss/dOutput, accumulate parameter
  gradients and return dLoss/dInput.
* ``parameters()`` — trainable :class:`~repro.nn.network.Parameter` list.

Shapes are always ``(batch, features)``; all math is vectorized over the
batch dimension (no Python loops per sample).
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import he_uniform, uniform_init, xavier_uniform

__all__ = ["Layer", "Linear", "ReLU", "Tanh", "Sigmoid", "make_activation"]


class Layer:
    """Base class; stateless layers only override forward/backward."""

    def forward(self, x: np.ndarray, cache: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list:
        return []


class Linear(Layer):
    """Affine layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        init: str = "he",
        final_init_limit: float | None = None,
        name: str = "",
    ):
        from repro.nn.network import Parameter  # local import avoids cycle

        if in_dim <= 0 or out_dim <= 0:
            raise ValueError(f"invalid layer dims ({in_dim}, {out_dim})")
        if final_init_limit is not None:
            w = uniform_init(rng, in_dim, out_dim, final_init_limit)
        elif init == "he":
            w = he_uniform(rng, in_dim, out_dim)
        elif init == "xavier":
            w = xavier_uniform(rng, in_dim, out_dim)
        else:
            raise ValueError(f"unknown init {init!r}")
        self.weight = Parameter(w, name=f"{name}.weight")
        self.bias = Parameter(np.zeros(out_dim), name=f"{name}.bias")
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, cache: bool = True) -> np.ndarray:
        if cache:
            self._x = x
        return x @ self.weight.data + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before a cached forward")
        self.weight.grad += self._x.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.data.T

    def parameters(self) -> list:
        return [self.weight, self.bias]


class ReLU(Layer):
    def __init__(self):
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, cache: bool = True) -> np.ndarray:
        out = np.maximum(x, 0.0)
        if cache:
            self._mask = x > 0.0
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a cached forward")
        return grad_out * self._mask


class Tanh(Layer):
    def __init__(self):
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, cache: bool = True) -> np.ndarray:
        out = np.tanh(x)
        if cache:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before a cached forward")
        return grad_out * (1.0 - self._out**2)


class Sigmoid(Layer):
    def __init__(self):
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, cache: bool = True) -> np.ndarray:
        # Numerically stable split on sign.
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        if cache:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before a cached forward")
        return grad_out * self._out * (1.0 - self._out)


_ACTIVATIONS = {"relu": ReLU, "tanh": Tanh, "sigmoid": Sigmoid}


def make_activation(name: str) -> Layer:
    """Instantiate an activation layer by name."""
    try:
        return _ACTIVATIONS[name]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}"
        ) from None
