"""Layers with explicit forward/backward passes.

Every layer implements:

* ``forward(x, cache=True)`` — compute output; stash what backward needs.
* ``backward(grad_out)`` — given dLoss/dOutput, accumulate parameter
  gradients and return dLoss/dInput.
* ``parameters()`` — trainable :class:`~repro.nn.network.Parameter` list.

Shapes are always ``(batch, features)``; all math is vectorized over the
batch dimension (no Python loops per sample).

Hot-loop allocation policy: each layer owns reusable output/gradient
workspaces keyed by batch size, written through ``out=`` ufunc/matmul
arguments, so steady-state training allocates nothing per step.  The
results are bit-identical to the allocating expressions (same kernels,
different destination).  Ownership rule: an array returned by
``forward``/``backward`` is valid until the *next* ``forward``/
``backward`` of the same layer with the same batch size — consume or
copy it before then (every in-repo caller does).
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import he_uniform, uniform_init, xavier_uniform

__all__ = ["Layer", "Linear", "ReLU", "Tanh", "Sigmoid", "make_activation"]


def _workspace(
    pool: dict[int, np.ndarray],
    n_rows: int,
    n_cols: int,
    dtype=np.float64,
) -> np.ndarray:
    """Fetch (or create) the pooled ``(n_rows, n_cols)`` buffer."""
    buf = pool.get(n_rows)
    if buf is None:
        buf = pool[n_rows] = np.empty((n_rows, n_cols), dtype=dtype)
    return buf


class Layer:
    """Base class; stateless layers only override forward/backward."""

    def forward(self, x: np.ndarray, cache: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list:
        return []


class Linear(Layer):
    """Affine layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        init: str = "he",
        final_init_limit: float | None = None,
        name: str = "",
    ):
        from repro.nn.network import Parameter  # local import avoids cycle

        if in_dim <= 0 or out_dim <= 0:
            raise ValueError(f"invalid layer dims ({in_dim}, {out_dim})")
        if final_init_limit is not None:
            w = uniform_init(rng, in_dim, out_dim, final_init_limit)
        elif init == "he":
            w = he_uniform(rng, in_dim, out_dim)
        elif init == "xavier":
            w = xavier_uniform(rng, in_dim, out_dim)
        else:
            raise ValueError(f"unknown init {init!r}")
        self.weight = Parameter(w, name=f"{name}.weight")
        self.bias = Parameter(np.zeros(out_dim), name=f"{name}.bias")
        self._x: np.ndarray | None = None
        self._fwd: dict[int, np.ndarray] = {}
        self._fwd_nc: dict[int, np.ndarray] = {}
        self._bwd: dict[int, np.ndarray] = {}
        self._grad_w: np.ndarray | None = None
        self._grad_b: np.ndarray | None = None

    def forward(self, x: np.ndarray, cache: bool = True) -> np.ndarray:
        if cache:
            self._x = x
        # Uncached (inference) forwards use a separate pool so they never
        # clobber activations a pending backward still needs.
        pool = self._fwd if cache else self._fwd_nc
        out = _workspace(pool, x.shape[0], self.weight.data.shape[1])
        if out is x:  # a Linear fed its own output; don't alias matmul
            out = np.empty_like(out)
        np.matmul(x, self.weight.data, out=out)
        out += self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before a cached forward")
        if self._grad_w is None:
            self._grad_w = np.empty_like(self.weight.data)
            self._grad_b = np.empty_like(self.bias.data)
        np.matmul(self._x.T, grad_out, out=self._grad_w)
        self.weight.grad += self._grad_w
        # np.add.reduce is np.sum's kernel without the dispatch wrapper —
        # same pairwise summation, so bit-identical, measurably cheaper
        # at this call frequency.
        np.add.reduce(grad_out, axis=0, out=self._grad_b)
        self.bias.grad += self._grad_b
        grad_in = _workspace(
            self._bwd, grad_out.shape[0], self.weight.data.shape[0]
        )
        np.matmul(grad_out, self.weight.data.T, out=grad_in)
        return grad_in

    def parameters(self) -> list:
        return [self.weight, self.bias]


class ReLU(Layer):
    def __init__(self):
        self._mask: np.ndarray | None = None
        self._fwd: dict[int, np.ndarray] = {}
        self._fwd_nc: dict[int, np.ndarray] = {}
        self._masks: dict[int, np.ndarray] = {}
        self._bwd: dict[int, np.ndarray] = {}

    def forward(self, x: np.ndarray, cache: bool = True) -> np.ndarray:
        out = _workspace(self._fwd if cache else self._fwd_nc,
                         x.shape[0], x.shape[1])
        np.maximum(x, 0.0, out=out)
        if cache:
            mask = _workspace(self._masks, x.shape[0], x.shape[1], dtype=bool)
            np.greater(x, 0.0, out=mask)
            self._mask = mask
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a cached forward")
        grad_in = _workspace(
            self._bwd, grad_out.shape[0], grad_out.shape[1]
        )
        np.multiply(grad_out, self._mask, out=grad_in)
        return grad_in


class Tanh(Layer):
    def __init__(self):
        self._out: np.ndarray | None = None
        self._fwd: dict[int, np.ndarray] = {}
        self._fwd_nc: dict[int, np.ndarray] = {}
        self._bwd: dict[int, np.ndarray] = {}

    def forward(self, x: np.ndarray, cache: bool = True) -> np.ndarray:
        out = _workspace(self._fwd if cache else self._fwd_nc,
                         x.shape[0], x.shape[1])
        np.tanh(x, out=out)
        if cache:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before a cached forward")
        grad_in = _workspace(
            self._bwd, grad_out.shape[0], grad_out.shape[1]
        )
        # grad_out * (1 - out^2), evaluated in the scalar path's op order
        np.multiply(self._out, self._out, out=grad_in)
        np.subtract(1.0, grad_in, out=grad_in)
        np.multiply(grad_out, grad_in, out=grad_in)
        return grad_in


class Sigmoid(Layer):
    def __init__(self):
        self._out: np.ndarray | None = None
        self._fwd: dict[int, np.ndarray] = {}
        self._fwd_nc: dict[int, np.ndarray] = {}
        self._bwd: dict[int, np.ndarray] = {}
        self._bwd2: dict[int, np.ndarray] = {}

    def forward(self, x: np.ndarray, cache: bool = True) -> np.ndarray:
        # Numerically stable split on sign.
        out = _workspace(self._fwd if cache else self._fwd_nc,
                         x.shape[0], x.shape[1])
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        if cache:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before a cached forward")
        grad_in = _workspace(
            self._bwd, grad_out.shape[0], grad_out.shape[1]
        )
        scratch = _workspace(
            self._bwd2, grad_out.shape[0], grad_out.shape[1]
        )
        # (grad_out * out) * (1 - out), the scalar path's op order
        np.multiply(grad_out, self._out, out=grad_in)
        np.subtract(1.0, self._out, out=scratch)
        np.multiply(grad_in, scratch, out=grad_in)
        return grad_in


_ACTIVATIONS = {"relu": ReLU, "tanh": Tanh, "sigmoid": Sigmoid}


def make_activation(name: str) -> Layer:
    """Instantiate an activation layer by name."""
    try:
        return _ACTIVATIONS[name]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}"
        ) from None
