"""Target-network synchronization helpers."""

from __future__ import annotations

import numpy as np

from repro.nn.network import Sequential

__all__ = ["soft_update", "hard_update"]

# Pooled scratch per parameter shape: Polyak averaging runs every agent
# update on every target parameter, so the τθ product writes into a
# reusable buffer instead of a fresh allocation (bit-identical — scalar
# multiplication is commutative at the element level).
_scratch: dict[tuple[int, ...], np.ndarray] = {}


def soft_update(target: Sequential, source: Sequential, tau: float) -> None:
    """Polyak averaging: ``θ' ← τ θ + (1 − τ) θ'`` (in place)."""
    if not 0.0 < tau <= 1.0:
        raise ValueError(f"tau must be in (0, 1], got {tau}")
    t_params, s_params = target.parameters(), source.parameters()
    if len(t_params) != len(s_params):
        raise ValueError("target/source architectures differ")
    for tp, sp in zip(t_params, s_params):
        buf = _scratch.get(sp.data.shape)
        if buf is None:
            buf = _scratch[sp.data.shape] = np.empty_like(sp.data)
        tp.data *= 1.0 - tau
        np.multiply(sp.data, tau, out=buf)
        tp.data += buf


def hard_update(target: Sequential, source: Sequential) -> None:
    """Copy source parameters into the target network."""
    target.copy_from(source)
