"""Target-network synchronization helpers."""

from __future__ import annotations

from repro.nn.network import Sequential

__all__ = ["soft_update", "hard_update"]


def soft_update(target: Sequential, source: Sequential, tau: float) -> None:
    """Polyak averaging: ``θ' ← τ θ + (1 − τ) θ'`` (in place)."""
    if not 0.0 < tau <= 1.0:
        raise ValueError(f"tau must be in (0, 1], got {tau}")
    t_params, s_params = target.parameters(), source.parameters()
    if len(t_params) != len(s_params):
        raise ValueError("target/source architectures differ")
    for tp, sp in zip(t_params, s_params):
        tp.data *= 1.0 - tau
        tp.data += tau * sp.data


def hard_update(target: Sequential, source: Sequential) -> None:
    """Copy source parameters into the target network."""
    target.copy_from(source)
