"""A from-scratch numpy neural-network library.

The paper implements DDPG/TD3 with PyTorch; this substrate provides the
minimal equivalent machinery — fully-connected layers with manual
backpropagation (including gradients with respect to *inputs*, needed for
the deterministic policy gradient dQ/da), Adam/SGD optimizers, soft target
updates and exploration noise — using vectorized numpy only.
"""

from repro.nn.init import he_uniform, uniform_init, xavier_uniform
from repro.nn.layers import Linear, ReLU, Sigmoid, Tanh
from repro.nn.losses import mse_loss
from repro.nn.network import MLP, Parameter, Sequential
from repro.nn.noise import GaussianNoise, OrnsteinUhlenbeckNoise
from repro.nn.optim import SGD, Adam
from repro.nn.target import hard_update, soft_update

__all__ = [
    "xavier_uniform",
    "he_uniform",
    "uniform_init",
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "mse_loss",
    "Parameter",
    "Sequential",
    "MLP",
    "GaussianNoise",
    "OrnsteinUhlenbeckNoise",
    "SGD",
    "Adam",
    "soft_update",
    "hard_update",
]
