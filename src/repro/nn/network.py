"""Parameter container and sequential network with manual backprop."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers import Layer, Linear, make_activation
from repro.telemetry.profiling import phase as _profile_phase

__all__ = ["Parameter", "Sequential", "MLP"]


class Parameter:
    """A trainable tensor with an accumulated gradient.

    ``data`` and ``grad`` are plain numpy arrays; optimizers update
    ``data`` in place (views, not copies — see the hpc guides) and layers
    accumulate into ``grad`` during :meth:`Sequential.backward`.
    """

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.shape})"


class Sequential:
    """A stack of layers with forward/backward passes.

    Supports three gradient flows needed by actor-critic methods:

    * parameter gradients (for optimizer steps),
    * gradients w.r.t. the network *input* (returned by :meth:`backward`),
      which implement the deterministic policy gradient's dQ/da term,
    * pure inference via :meth:`forward` with ``cache=False``.
    """

    def __init__(self, layers: Sequence[Layer]):
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray, cache: bool = True) -> np.ndarray:
        """Run the network; ``cache=True`` stores activations for backward."""
        # The nn layer carries no RunContext (pure math), so its phases
        # resolve through the process-wide active profiler — a shared
        # no-op unless ``repro.telemetry.profiling.activate`` ran.
        with _profile_phase("nn.forward"):
            out = np.asarray(x, dtype=np.float64)
            if out.ndim == 1:
                out = out[None, :]
            for layer in self.layers:
                out = layer.forward(out, cache=cache)
            return out

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_out`` (dLoss/dOutput); return dLoss/dInput.

        Parameter gradients are *accumulated*; call :meth:`zero_grad`
        before each optimizer step.
        """
        with _profile_phase("nn.backward"):
            grad = np.asarray(grad_out, dtype=np.float64)
            if grad.ndim == 1:
                grad = grad[None, :]
            for layer in reversed(self.layers):
                grad = layer.backward(grad)
            return grad

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by ``<index>.<name>``."""
        return {
            f"{i}.{p.name or 'param'}": p.data.copy()
            for i, p in enumerate(self.parameters())
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} tensors, network has {len(params)}"
            )
        for (key, value), p in zip(state.items(), params):
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {key}: {value.shape} vs {p.data.shape}"
                )
            p.data[...] = value

    def copy_from(self, other: "Sequential") -> None:
        """Hard-copy parameters from a same-architecture network."""
        mine, theirs = self.parameters(), other.parameters()
        if len(mine) != len(theirs):
            raise ValueError("architectures differ")
        for p, q in zip(mine, theirs):
            p.data[...] = q.data


class MLP(Sequential):
    """Fully-connected network builder.

    Parameters
    ----------
    in_dim, out_dim:
        Input/output widths.
    hidden:
        Hidden layer widths, e.g. ``(64, 64)``.
    activation:
        Hidden activation name: ``"relu"`` or ``"tanh"``.
    out_activation:
        Optional output activation (``"tanh"``, ``"sigmoid"``, or ``None``
        for a linear head — critics use linear, actors use sigmoid to land
        in the normalized [0,1] configuration cube).
    rng:
        Generator for weight init.
    final_init_limit:
        If set, the last Linear layer uses small-uniform init (DDPG §7).
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        hidden: Sequence[int] = (64, 64),
        activation: str = "relu",
        out_activation: str | None = None,
        rng: np.random.Generator | None = None,
        final_init_limit: float | None = 3e-3,
    ):
        rng = rng if rng is not None else np.random.default_rng()
        dims = [in_dim, *hidden, out_dim]
        layers: list[Layer] = []
        for i in range(len(dims) - 1):
            is_last = i == len(dims) - 2
            layers.append(
                Linear(
                    dims[i],
                    dims[i + 1],
                    rng=rng,
                    init="he" if activation == "relu" else "xavier",
                    final_init_limit=final_init_limit if is_last else None,
                    name=f"fc{i}",
                )
            )
            if not is_last:
                layers.append(make_activation(activation))
            elif out_activation is not None:
                layers.append(make_activation(out_activation))
        super().__init__(layers)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.hidden = tuple(hidden)
