"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so that
network construction is reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "he_uniform", "uniform_init"]


def xavier_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform init — the right default for tanh networks."""
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He uniform init — the right default for ReLU networks."""
    limit = float(np.sqrt(6.0 / fan_in))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def uniform_init(
    rng: np.random.Generator, fan_in: int, fan_out: int, limit: float = 3e-3
) -> np.ndarray:
    """Small-uniform init for final actor/critic layers.

    DDPG (Lillicrap et al. 2015, §7) initializes the output layers from
    U(-3e-3, 3e-3) so that initial actions/Q-values are near zero.
    """
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))
