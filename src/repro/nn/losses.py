"""Loss functions returning (value, gradient) pairs."""

from __future__ import annotations

import numpy as np

__all__ = ["mse_loss"]


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. ``pred``.

    Both the critic TD losses of DDPG (Eq. 3) and TD3 use this.  The
    gradient is ``2 (pred - target) / N`` where ``N`` is the batch size, so
    feeding it straight into :meth:`Sequential.backward` yields gradients
    of the *mean* loss.
    """
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    n = pred.shape[0] if pred.ndim else 1
    loss = float(np.mean(diff**2))
    return loss, (2.0 / n) * diff
