"""Optimizers operating in place on :class:`~repro.nn.network.Parameter`s."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["SGD", "Adam"]


class SGD:
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(
        self,
        params: Sequence,
        lr: float = 1e-2,
        momentum: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0,1), got {momentum}")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam (Kingma & Ba 2015) with bias correction.

    State tensors are updated in place; no per-step allocations beyond the
    bias-corrected scalars.
    """

    def __init__(
        self,
        params: Sequence,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        max_grad_norm: float | None = None,
    ):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0,1), got {betas}")
        self.params = list(params)
        self.lr = lr
        self.b1, self.b2 = b1, b2
        self.eps = eps
        self.max_grad_norm = max_grad_norm
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0
        # Two scratch tensors per distinct parameter shape, reused every
        # step so the update allocates nothing.  Writing the same ops
        # through ``out=`` keeps the result bit-identical to the
        # allocating form.
        self._scratch: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray]] = {}

    def _workspaces(self, shape: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
        ws = self._scratch.get(shape)
        if ws is None:
            ws = self._scratch[shape] = (np.empty(shape), np.empty(shape))
        return ws

    def _clip_grads(self) -> None:
        if self.max_grad_norm is None:
            return
        sq_sum = 0.0
        for p in self.params:
            a, _ = self._workspaces(p.data.shape)
            np.multiply(p.grad, p.grad, out=a)
            # np.sum's kernel minus the dispatch wrapper (bit-identical).
            sq_sum += float(np.add.reduce(a, axis=None))
        total = float(np.sqrt(sq_sum))
        if total > self.max_grad_norm and total > 0.0:
            scale = self.max_grad_norm / total
            for p in self.params:
                p.grad *= scale

    def step(self) -> None:
        self._clip_grads()
        self._t += 1
        bc1 = 1.0 - self.b1**self._t
        bc2 = 1.0 - self.b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            a, b = self._workspaces(p.data.shape)
            m *= self.b1
            np.multiply(p.grad, 1.0 - self.b1, out=a)
            m += a
            v *= self.b2
            np.multiply(p.grad, p.grad, out=a)
            a *= 1.0 - self.b2
            v += a
            np.divide(m, bc1, out=a)
            a *= self.lr
            np.divide(v, bc2, out=b)
            np.sqrt(b, out=b)
            b += self.eps
            a /= b
            p.data -= a

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
