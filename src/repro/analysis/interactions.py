"""Pairwise knob interaction probe.

Measures how non-additive two knobs are: evaluate a 2D grid over the
pair (others fixed) and compare against the best additive approximation
``f(u, v) ≈ a(u) + b(v)``.  Large residuals mean the knobs interact —
e.g. ``spark.executor.memory`` and ``spark.memory.storageFraction``
jointly decide whether a cached dataset fits.
"""

from __future__ import annotations

import numpy as np

from repro.config.space import ConfigurationSpace
from repro.sim.engine import SparkSimulator
from repro.sim.faults import FAILURE_PERF_FACTOR

__all__ = ["interaction_strength"]


def interaction_strength(
    simulator: SparkSimulator,
    space: ConfigurationSpace,
    knob_a: str,
    knob_b: str,
    base_config: dict | None = None,
    n_points: int = 5,
) -> float:
    """Normalized interaction strength of two knobs in [0, ~1].

    0 means perfectly additive effects; larger values mean the response
    surface needs a joint term.  Computed as the RMS residual of the
    best additive fit (by alternating row/column means) over the grid,
    normalized by the grid's duration spread.
    """
    if knob_a == knob_b:
        raise ValueError("need two distinct knobs")
    for name in (knob_a, knob_b):
        if name not in space:
            raise KeyError(f"unknown knob {name!r}")
    if n_points < 2:
        raise ValueError("need at least 2 grid points")

    base = base_config if base_config is not None else space.defaults()
    base_vec = space.encode(base)
    ia, ib = space.names.index(knob_a), space.names.index(knob_b)
    penalty = FAILURE_PERF_FACTOR * simulator.default_duration(space)

    grid = np.linspace(0.0, 1.0, n_points)
    surface = np.empty((n_points, n_points))
    for i, u in enumerate(grid):
        for j, v in enumerate(grid):
            vec = base_vec.copy()
            vec[ia], vec[ib] = u, v
            res = simulator.evaluate(space.decode(vec))
            surface[i, j] = res.duration_s if res.success else penalty

    # Two-way ANOVA-style additive fit: grand mean + row + column effects.
    grand = surface.mean()
    row = surface.mean(axis=1, keepdims=True) - grand
    col = surface.mean(axis=0, keepdims=True) - grand
    residual = surface - (grand + row + col)
    spread = surface.max() - surface.min()
    if spread <= 1e-9:
        return 0.0
    return float(np.sqrt(np.mean(residual**2)) / spread)
