"""White-box analysis tools over the simulator.

The paper's future-work section points at white-box analyses (LOCAT,
LITE) to further cut tuning cost.  This package provides the building
blocks on top of the simulator: one-at-a-time knob sensitivity, pairwise
interaction probes, and resource-breakdown profiles of execution
results.
"""

from repro.analysis.breakdown import ResourceProfile, resource_profile
from repro.analysis.interactions import interaction_strength
from repro.analysis.sensitivity import KnobSensitivity, knob_sensitivity

__all__ = [
    "KnobSensitivity",
    "knob_sensitivity",
    "interaction_strength",
    "ResourceProfile",
    "resource_profile",
]
