"""One-at-a-time knob sensitivity analysis.

For each parameter, sweep its normalized encoding over a grid while
holding every other knob at a base configuration, and measure the spread
of execution times.  The resulting ranking is the simulator's ground
truth for "which knobs matter" — the quantity OtterTune's Lasso stage
estimates from samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.space import ConfigurationSpace
from repro.sim.engine import SparkSimulator
from repro.sim.faults import FAILURE_PERF_FACTOR

__all__ = ["KnobSensitivity", "knob_sensitivity"]


@dataclass(frozen=True)
class KnobSensitivity:
    """Sensitivity of one knob around a base configuration."""

    name: str
    grid: np.ndarray  # normalized sweep positions
    durations: np.ndarray  # seconds at each position (penalized failures)
    n_failures: int

    @property
    def spread_s(self) -> float:
        """max - min duration across the sweep (the impact range)."""
        return float(self.durations.max() - self.durations.min())

    @property
    def relative_spread(self) -> float:
        """Spread normalized by the sweep's minimum duration."""
        return self.spread_s / float(self.durations.min())

    @property
    def best_position(self) -> float:
        """Normalized position of the sweep's best duration."""
        return float(self.grid[int(np.argmin(self.durations))])


def knob_sensitivity(
    simulator: SparkSimulator,
    space: ConfigurationSpace,
    base_config: dict | None = None,
    n_points: int = 9,
    knobs: list[str] | None = None,
) -> list[KnobSensitivity]:
    """Sweep each knob one-at-a-time; return results sorted by impact.

    Failed evaluations are charged ``FAILURE_PERF_FACTOR`` x the default
    duration, so knobs whose extremes break the job rank as impactful.
    """
    if n_points < 2:
        raise ValueError("need at least 2 grid points")
    base = base_config if base_config is not None else space.defaults()
    base_vec = space.encode(base)
    default_s = simulator.default_duration(space)
    penalty = FAILURE_PERF_FACTOR * default_s
    names = knobs if knobs is not None else space.names
    unknown = [n for n in names if n not in space]
    if unknown:
        raise KeyError(f"unknown knobs: {unknown}")

    grid = np.linspace(0.0, 1.0, n_points)
    results = []
    for name in names:
        idx = space.names.index(name)
        durations = np.empty(n_points)
        failures = 0
        for j, u in enumerate(grid):
            vec = base_vec.copy()
            vec[idx] = u
            res = simulator.evaluate(space.decode(vec))
            if res.success:
                durations[j] = res.duration_s
            else:
                durations[j] = penalty
                failures += 1
        results.append(
            KnobSensitivity(
                name=name, grid=grid.copy(), durations=durations,
                n_failures=failures,
            )
        )
    results.sort(key=lambda r: r.spread_s, reverse=True)
    return results
