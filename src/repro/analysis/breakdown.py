"""Resource-breakdown profiles of execution results."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.result import ExecutionResult

__all__ = ["ResourceProfile", "resource_profile"]


@dataclass(frozen=True)
class ResourceProfile:
    """Where a job's time went, summed over stages (critical-path view)."""

    cpu_s: float
    disk_s: float
    network_s: float
    overhead_s: float

    @property
    def total_s(self) -> float:
        return self.cpu_s + self.disk_s + self.network_s + self.overhead_s

    @property
    def dominant(self) -> str:
        """The largest component's name (cpu/disk/network/overhead)."""
        parts = {
            "cpu": self.cpu_s,
            "disk": self.disk_s,
            "network": self.network_s,
            "overhead": self.overhead_s,
        }
        return max(parts, key=parts.get)

    def share(self, component: str) -> float:
        """Fraction of profiled time spent in ``component``."""
        value = getattr(self, f"{component}_s")
        total = self.total_s
        return value / total if total > 0 else 0.0


def resource_profile(result: ExecutionResult) -> ResourceProfile:
    """Aggregate a result's per-stage components into one profile.

    Components are the engine's *pre-overlap* resource times, so shares
    describe demand, not wall-clock (overlapped demand exceeds the job
    duration by design).
    """
    if not result.success:
        raise ValueError(
            f"cannot profile a failed run: {result.failure_reason}"
        )
    return ResourceProfile(
        cpu_s=float(sum(s.cpu_seconds for s in result.stages)),
        disk_s=float(sum(s.disk_seconds for s in result.stages)),
        network_s=float(sum(s.network_seconds for s in result.stages)),
        overhead_s=float(sum(s.overhead_seconds for s in result.stages)),
    )
