"""The benchmark suite: hot-path micro-benchmarks + pipeline macros.

Micro benchmarks isolate one hot operation each (the same regions the
profiler's phases cover); macro benchmarks run a short but complete
pipeline stage.  Everything is seeded, so two runs on the same machine
measure the same work — the only variable is the code under test.

Setup cost (building environments, pre-training models, filling replay
pools) happens in the factory, outside the timed region.  One repetition
loops ``items`` inner operations because the single operations run in
micro- to milliseconds, far below timer jitter.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import numpy as np

from repro.bench.registry import bench

_SEED = 1234


def _make_env(seed: int = _SEED):
    from repro.factory import make_env

    return make_env("WC", "D1", seed=seed)


def _trained_deepcat(iterations: int = 120):
    from repro.core.deepcat import DeepCAT

    env = _make_env()
    tuner = DeepCAT.from_env(env, seed=_SEED)
    tuner.train_offline(env, iterations)
    return tuner


def _fill_buffer(buffer, env, n: int) -> None:
    from repro.replay.base import Transition

    rng = np.random.default_rng(_SEED)
    dim = env.state.shape[0]
    act_dim = env.space.dim
    for _ in range(n):
        reward = float(rng.uniform(-1.0, 1.0))
        buffer.push(
            Transition(
                state=rng.uniform(0.0, 1.0, dim),
                action=rng.uniform(0.0, 1.0, act_dim),
                reward=reward,
                next_state=rng.uniform(0.0, 1.0, dim),
            )
        )


# ------------------------------------------------------------------ micro


@bench("sim.step", kind="micro", items=50,
       description="simulator evaluation of one configuration")
def _bench_sim_step():
    env = _make_env()
    rng = np.random.default_rng(_SEED)
    actions = [env.space.sample_vector(rng) for _ in range(50)]

    def run() -> None:
        for action in actions:
            env.step(action)

    return run


@bench("td3.update", kind="micro", items=25,
       description="one TD3 gradient update on a fixed batch")
def _bench_td3_update():
    from repro.core.deepcat import DeepCAT

    env = _make_env()
    tuner = DeepCAT.from_env(env, seed=_SEED)
    _fill_buffer(tuner.buffer, env, 256)
    batch = tuner.buffer.sample(tuner.agent.hp.batch_size)

    def run() -> None:
        for _ in range(25):
            tuner.agent.update(batch)

    return run


@bench("rdper.push", kind="micro", items=2000,
       description="RDPER transition routing into the dual pools")
def _bench_rdper_push():
    from repro.replay.base import Transition
    from repro.replay.rdper import RewardDrivenReplayBuffer

    env = _make_env()
    dim = env.state.shape[0]
    act_dim = env.space.dim
    rng = np.random.default_rng(_SEED)
    buffer = RewardDrivenReplayBuffer(
        capacity=4096, state_dim=dim, action_dim=act_dim, rng=rng
    )
    transitions = [
        Transition(
            state=rng.uniform(0.0, 1.0, dim),
            action=rng.uniform(0.0, 1.0, act_dim),
            reward=float(rng.uniform(-1.0, 1.0)),
            next_state=rng.uniform(0.0, 1.0, dim),
        )
        for _ in range(2000)
    ]

    def run() -> None:
        for tr in transitions:
            buffer.push(tr)

    return run


@bench("rdper.sample", kind="micro", items=500,
       description="RDPER dual-pool batch sampling (m=64)")
def _bench_rdper_sample():
    from repro.replay.rdper import RewardDrivenReplayBuffer

    env = _make_env()
    buffer = RewardDrivenReplayBuffer(
        capacity=4096,
        state_dim=env.state.shape[0],
        action_dim=env.space.dim,
        rng=np.random.default_rng(_SEED),
    )
    _fill_buffer(buffer, env, 1024)

    def run() -> None:
        for _ in range(500):
            buffer.sample(64)

    return run


@bench("twinq.accept", kind="micro", items=20,
       description="Twin-Q Optimizer accept loop on one recommendation")
def _bench_twinq_accept():
    from repro.core.twinq import twin_q_optimize

    tuner = _trained_deepcat(iterations=40)
    env = _make_env(seed=_SEED + 1)
    state = env.state
    rng = np.random.default_rng(_SEED)
    actions = [env.space.sample_vector(rng) for _ in range(20)]

    def run() -> None:
        for action in actions:
            twin_q_optimize(
                tuner.agent,
                state,
                action,
                q_threshold=0.3,
                noise_sigma=0.1,
                rng=rng,
            )

    return run


@bench("codec.roundtrip", kind="micro", items=500,
       description="configuration vector decode + dict encode round-trip")
def _bench_codec_roundtrip():
    from repro.config.pipeline import build_pipeline_space

    space = build_pipeline_space()
    rng = np.random.default_rng(_SEED)
    vectors = [space.sample_vector(rng) for _ in range(500)]

    def run() -> None:
        for vec in vectors:
            space.encode(space.decode(vec))

    return run


@bench("codec.batch", kind="micro", items=500,
       description="columnar decode_batch + encode_batch of 500 vectors")
def _bench_codec_batch():
    from repro.config.pipeline import build_pipeline_space

    space = build_pipeline_space()
    rng = np.random.default_rng(_SEED)
    vectors = space.sample_vectors(rng, 500)

    def run() -> None:
        space.encode_batch(space.decode_batch(vectors))

    return run


@bench("sim.batch", kind="micro", items=50,
       description="batched simulator evaluation of 50 configurations")
def _bench_sim_batch():
    env = _make_env()
    sim = env.runner.simulator
    rng = np.random.default_rng(_SEED)
    vectors = env.space.sample_vectors(rng, 50)

    def run() -> None:
        sim.evaluate_batch(vectors, env.space)

    return run


@bench("rdper.sample_batch", kind="micro", items=200,
       description="RDPER allocation-free sampling at m=256")
def _bench_rdper_sample_batch():
    from repro.replay.rdper import RewardDrivenReplayBuffer

    env = _make_env()
    buffer = RewardDrivenReplayBuffer(
        capacity=4096,
        state_dim=env.state.shape[0],
        action_dim=env.space.dim,
        rng=np.random.default_rng(_SEED),
    )
    _fill_buffer(buffer, env, 1024)

    def run() -> None:
        for _ in range(200):
            buffer.sample(256)

    return run


@bench("cache.roundtrip", kind="micro", items=50,
       description="ResultCache store + load of one pickled session")
def _bench_cache_roundtrip():
    from repro.experiments.engine import ResultCache, TaskSpec

    root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    cache = ResultCache(root)
    payload = {"rewards": list(range(100)), "best_s": 123.4}
    tasks = [
        TaskSpec(kind="bench-dummy", params={"i": i}) for i in range(50)
    ]

    def run() -> None:
        for task in tasks:
            cache.store(task, payload)
            cache.load(task)

    def cleanup() -> None:
        shutil.rmtree(root, ignore_errors=True)

    return run, cleanup


@bench("telemetry.diagnostics", kind="micro", items=1000,
       description="one full diagnostics observe cycle (step+update+rdper)")
def _bench_diagnostics():
    from repro.telemetry.diagnostics import DiagnosticsEngine

    engine = DiagnosticsEngine()
    rng = np.random.default_rng(_SEED)
    rewards = rng.uniform(-1.0, 1.0, 1000)
    losses = rng.uniform(0.0, 1.0, 1000)
    betas = rng.uniform(0.4, 0.8, 1000)

    def run() -> None:
        for i in range(1000):
            engine.observe_update(float(losses[i]), mean_q=0.5)
            engine.observe_rdper(
                realized_beta=float(betas[i]), beta=0.6,
                staleness=i % 50, high_size=64, low_size=256,
            )
            engine.observe_step(
                step=i, reward=float(rewards[i]), success=True,
                q_pred=0.4, sigma=0.3,
            )
            engine.drain_alerts()

    return run


@bench("telemetry.ledger", kind="micro", items=1000,
       description="one streamed charge + counterfactual ledger cycle")
def _bench_ledger():
    from repro.telemetry.ledger import CostLedger

    root = tempfile.mkdtemp(prefix="repro-bench-ledger-")
    config = {f"knob.{i}": i * 7 for i in range(12)}
    state = {"ledger": CostLedger(os.path.join(root, "bench.ledger.jsonl"))}

    def run() -> None:
        led = state["ledger"]
        for i in range(1000):
            led.charge(
                "evaluation", 80.0 + i, step=i, tuner="bench",
                success=True, attempts=1, config=config,
            )
            led.counterfactual(
                "screening", 0.5, step=i, original_q=0.1, final_q=0.4,
            )
        led.close()
        # each repetition streams a fresh file, like a fresh run would
        state["ledger"] = CostLedger(
            os.path.join(root, "bench.ledger.jsonl")
        )

    def cleanup() -> None:
        state["ledger"].close()
        shutil.rmtree(root, ignore_errors=True)

    return run, cleanup


# ------------------------------------------------------------------ macro


@bench("pipeline.offline_train", kind="macro", items=80,
       description="short offline training run (fresh model, 80 steps)")
def _bench_offline_train():
    from repro.core.deepcat import DeepCAT

    def run() -> None:
        env = _make_env()
        tuner = DeepCAT.from_env(env, seed=_SEED)
        tuner.train_offline(env, 80)

    return run


@bench("pipeline.online_tune", kind="macro", items=5,
       description="5-step online tuning session from a pre-trained model")
def _bench_online_tune():
    import copy

    tuner = _trained_deepcat(iterations=120)

    def run() -> None:
        env = _make_env(seed=_SEED + 7)
        copy.deepcopy(tuner).tune_online(env, steps=5)

    return run


# ------------------------------------------------------- population

_POP_N = 64
_POP_STEPS = 5

#: shard count for ``pipeline.population`` (set via ``bench run
#: --shards``); 1 = the single-process lockstep
_POP_SHARDS = 1


def set_population_shards(shards: int) -> None:
    """Route ``pipeline.population`` through ``shards`` worker processes
    (1 restores the single-process lockstep).  The resulting record
    carries ``shards`` plus the barrier/tail split so speedup numbers
    are attributable."""
    global _POP_SHARDS
    if shards < 1:
        raise ValueError("shards must be >= 1")
    _POP_SHARDS = shards


def _population_tuner_proto():
    """One trained DeepCAT to deep-copy per population member.

    A small replay buffer keeps the per-member deepcopy cheap so the
    timed region is dominated by stepping, not construction.
    """
    from repro.core.deepcat import DeepCAT

    env = _make_env()
    tuner = DeepCAT.from_env(env, seed=_SEED, buffer_capacity=512)
    tuner.train_offline(env, 120)
    return tuner


def _population_members():
    import copy

    proto = _population_tuner_proto()
    tuners = [copy.deepcopy(proto) for _ in range(_POP_N)]
    envs = [_make_env(seed=_SEED + 7 + i) for i in range(_POP_N)]
    return tuners, envs


@bench("population.step", kind="micro", items=_POP_N * _POP_STEPS,
       description="vectorized lockstep of 64 environments x 5 steps")
def _bench_population_step():
    from repro.envs.population import VectorTuningEnv

    envs = [_make_env(seed=_SEED + 7 + i) for i in range(_POP_N)]
    venv = VectorTuningEnv(envs)
    rng = np.random.default_rng(_SEED)
    action_mats = [
        np.stack([env.space.sample_vector(rng) for env in envs])
        for _ in range(_POP_STEPS)
    ]

    def run() -> None:
        for actions in action_mats:
            venv.step(actions)

    return run


@bench("pipeline.population", kind="macro", items=_POP_N * _POP_STEPS,
       description="64 tuning sessions x 5 steps as one lockstep population")
def _bench_pipeline_population():
    from repro.core.population import PopulationTuner

    shards = _POP_SHARDS
    last: dict = {}

    def run() -> None:
        tuners, envs = _population_members()
        if shards > 1:
            from repro.parallel import ShardedPopulation

            population = ShardedPopulation(
                tuners, envs, shards=shards, fine_tune_updates=0
            )
            population.tune(steps=_POP_STEPS)
            last["stats"] = population.stats
        else:
            PopulationTuner.from_deepcat(
                tuners, envs, fine_tune_updates=0
            ).tune(steps=_POP_STEPS)

    def cleanup() -> None:
        pass

    def extras() -> dict:
        stats = last.get("stats")
        if stats is None:
            return {"shards": 1}
        # Timings are from the final repetition — the steady-state one.
        return {
            "shards": stats.shards,
            "barrier_s": round(stats.barrier_s, 6),
            "tail_s": round(stats.tail_s, 6),
            "max_round_s": round(stats.max_round_s, 6),
        }

    return run, cleanup, extras


@bench("pipeline.population_sequential", kind="macro",
       items=_POP_N * _POP_STEPS,
       description="the same 64 sessions x 5 steps as a sequential loop")
def _bench_pipeline_population_sequential():
    def run() -> None:
        tuners, envs = _population_members()
        for tuner, env in zip(tuners, envs):
            tuner.tune_online(env, steps=_POP_STEPS, fine_tune_updates=0)

    return run
