"""The BENCH_*.json document: schema version, provenance, validation.

A bench file is self-describing: schema version first (so ``compare``
can refuse files it does not understand instead of mis-reading them),
then provenance (git SHA, host specs, run configuration), then one
result record per benchmark.  Timing fields are seconds; ``p10``/``p90``
bound the repetition spread so a compare can tell a real regression from
run-to-run noise.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import platform
from pathlib import Path
from typing import Any

from repro.telemetry.manifest import git_sha

__all__ = [
    "SCHEMA_VERSION",
    "ACCEPTED_VERSIONS",
    "host_info",
    "make_doc",
    "load_doc",
    "validate_doc",
]

# v2 added host.blas_threads and config.shards so cross-host comparisons
# carry the parallelism that produced the numbers; v1 files (no
# multi-core provenance) remain loadable.
SCHEMA_VERSION = 2

#: schema versions ``load_doc``/``validate_doc`` accept
ACCEPTED_VERSIONS = (1, 2)

#: fields every result record must carry (validated on load)
RESULT_FIELDS = (
    "name",
    "kind",
    "items",
    "repetitions",
    "median_s",
    "p10_s",
    "p90_s",
    "throughput_per_s",
)


def host_info() -> dict[str, Any]:
    """Hardware/interpreter provenance for the bench document."""
    from repro.parallel.pinning import effective_blas_threads

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "blas_threads": effective_blas_threads(),
    }


def make_doc(
    results: list[dict[str, Any]], config: dict[str, Any]
) -> dict[str, Any]:
    """Assemble a schema-versioned bench document."""
    return {
        "schema_version": SCHEMA_VERSION,
        "created_at": _dt.datetime.now(_dt.timezone.utc).isoformat(),
        "git_sha": git_sha(),
        "host": host_info(),
        "config": config,
        "results": results,
    }


def validate_doc(doc: Any) -> list[str]:
    """Return every schema problem found (empty list == valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    version = doc.get("schema_version")
    if version not in ACCEPTED_VERSIONS:
        problems.append(
            f"schema_version is {version!r}, expected one of "
            f"{list(ACCEPTED_VERSIONS)}"
        )
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        problems.append("results is missing or empty")
        return problems
    seen: set[str] = set()
    for i, rec in enumerate(results):
        if not isinstance(rec, dict):
            problems.append(f"results[{i}] is not an object")
            continue
        missing = [f for f in RESULT_FIELDS if f not in rec]
        if missing:
            problems.append(
                f"results[{i}] ({rec.get('name', '?')}) missing "
                f"fields: {', '.join(missing)}"
            )
        name = rec.get("name")
        if isinstance(name, str):
            if name in seen:
                problems.append(f"duplicate benchmark name {name!r}")
            seen.add(name)
        if rec.get("kind") not in ("micro", "macro"):
            problems.append(
                f"results[{i}] kind is {rec.get('kind')!r}, expected "
                "'micro' or 'macro'"
            )
    return problems


def load_doc(path: str | Path) -> dict[str, Any]:
    """Load and validate a bench file; raises ``ValueError`` on problems."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ValueError(f"{path}: no such bench file") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from None
    problems = validate_doc(doc)
    if problems:
        detail = "; ".join(problems)
        raise ValueError(f"{path}: invalid bench document: {detail}")
    return doc
