"""Benchmark runner: warmup, timed repetitions, allocation pass.

Each benchmark runs in three stages:

1. **setup** — the factory builds all state (excluded from timing);
2. **timing** — ``warmup`` untimed calls, then ``repetitions`` timed
   ones (``time.perf_counter`` around the whole repetition);
3. **allocation** — one extra call under :mod:`tracemalloc` for the peak
   traced allocation.  A separate pass, because tracemalloc slows
   allocation-heavy code enough to poison the timing statistics.

Quantiles come from the timed repetitions only.  With small repetition
counts (CI smoke runs use 1) p10/p90 degenerate to min/max, which is
exactly what the compare tool expects: it gates on the median and uses
the spread only for context.
"""

from __future__ import annotations

import sys
import time
import tracemalloc
from typing import Any

from repro.bench.registry import Benchmark, iter_benchmarks
from repro.bench.schema import make_doc

__all__ = ["run_benchmarks", "peak_rss_kb"]


def peak_rss_kb() -> int | None:
    """Lifetime peak resident set size of this process, in KiB."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover
        peak //= 1024
    return int(peak)


def _quantile(sorted_vals: list[float], q: float) -> float:
    """Linear-interpolated quantile of an ascending list."""
    if len(sorted_vals) == 1:
        return sorted_vals[0]
    pos = q * (len(sorted_vals) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = pos - lo
    return sorted_vals[lo] * (1.0 - frac) + sorted_vals[hi] * frac


def run_one(
    benchmark: Benchmark,
    repetitions: int,
    warmup: int,
    track_alloc: bool = True,
) -> dict[str, Any]:
    """Measure one benchmark; returns its result record."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    run, cleanup, extras = benchmark.setup()
    try:
        for _ in range(warmup):
            run()
        samples: list[float] = []
        for _ in range(repetitions):
            t0 = time.perf_counter()
            run()
            samples.append(time.perf_counter() - t0)

        alloc_peak = None
        if track_alloc:
            was_tracing = tracemalloc.is_tracing()
            if not was_tracing:
                tracemalloc.start()
            tracemalloc.reset_peak()
            run()
            _, alloc_peak = tracemalloc.get_traced_memory()
            if not was_tracing:
                tracemalloc.stop()
    finally:
        if cleanup is not None:
            cleanup()

    ordered = sorted(samples)
    median = _quantile(ordered, 0.5)
    record = {
        "name": benchmark.name,
        "kind": benchmark.kind,
        "description": benchmark.description,
        "items": benchmark.items,
        "repetitions": repetitions,
        "warmup": warmup,
        "median_s": median,
        "p10_s": _quantile(ordered, 0.1),
        "p90_s": _quantile(ordered, 0.9),
        "min_s": ordered[0],
        "max_s": ordered[-1],
        "mean_s": sum(ordered) / len(ordered),
        "throughput_per_s": benchmark.items / median if median > 0 else None,
        "alloc_peak_bytes": alloc_peak,
        "peak_rss_kb": peak_rss_kb(),
    }
    if extras is not None:
        # Factory-provided measurement extras (e.g. the sharded
        # population's barrier/tail split) ride along in the record but
        # may not shadow the schema's own fields.
        for key, value in extras().items():
            record.setdefault(key, value)
    return record


def run_benchmarks(
    names: list[str] | None = None,
    kind: str | None = None,
    repetitions: int = 5,
    warmup: int = 1,
    track_alloc: bool = True,
    progress=None,
    extra_config: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Run a benchmark selection and return the bench document.

    ``names`` selects specific benchmarks (default: all), ``kind``
    filters to ``"micro"``/``"macro"``.  ``progress`` is an optional
    ``callable(benchmark)`` invoked before each measurement.
    ``extra_config`` entries (e.g. ``shards``) are merged into the
    document's ``config`` block for provenance.
    """
    if names:
        from repro.bench.registry import get_benchmark

        selected = [get_benchmark(n) for n in names]
        if kind is not None:
            selected = [b for b in selected if b.kind == kind]
    else:
        selected = iter_benchmarks(kind=kind)
    if not selected:
        raise ValueError("benchmark selection is empty")
    results = []
    for benchmark in selected:
        if progress is not None:
            progress(benchmark)
        results.append(
            run_one(
                benchmark,
                repetitions=repetitions,
                warmup=warmup,
                track_alloc=track_alloc,
            )
        )
    config = {
        "repetitions": repetitions,
        "warmup": warmup,
        "track_alloc": track_alloc,
        "kind_filter": kind,
    }
    if extra_config:
        config.update(extra_config)
    return make_doc(results, config=config)
