"""Benchmark registry: named micro/macro benchmarks with lazy setup.

A benchmark is a *factory*: calling it builds fresh state (environments,
trained agents, temp directories — all excluded from timing) and returns
the repetition callable.  The factory may instead return a ``(run,
cleanup)`` pair when it owns resources that outlive the measurement
(e.g. an on-disk cache directory).

``items`` is the number of inner operations one repetition performs;
the runner divides it by the median repetition time to report
throughput.  Batching matters: micro operations here run in micro- to
milliseconds, far below timer jitter, so a repetition must loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["Benchmark", "bench", "get_benchmark", "iter_benchmarks"]

#: factory return: one-repetition callable, optionally with a cleanup,
#: optionally with an extras callable (-> dict merged into the result
#: record after the timed repetitions, e.g. shard barrier/tail timings)
SetupResult = (
    Callable[[], None]
    | tuple[Callable[[], None], Callable[[], None]]
    | tuple[Callable[[], None], Callable[[], None], Callable[[], dict]]
)


@dataclass(frozen=True)
class Benchmark:
    name: str
    kind: str  # "micro" | "macro"
    items: int
    factory: Callable[[], SetupResult]
    description: str = ""

    def setup(
        self,
    ) -> tuple[
        Callable[[], None],
        Callable[[], None] | None,
        Callable[[], dict] | None,
    ]:
        """Build run state; returns ``(run, cleanup?, extras?)``."""
        built = self.factory()
        if isinstance(built, tuple):
            if len(built) == 3:
                run, cleanup, extras = built
                return run, cleanup, extras
            run, cleanup = built
            return run, cleanup, None
        return built, None, None


_REGISTRY: dict[str, Benchmark] = {}


def bench(name: str, kind: str, items: int, description: str = ""):
    """Decorator registering a benchmark factory under ``name``."""
    if kind not in ("micro", "macro"):
        raise ValueError(f"kind must be 'micro' or 'macro', got {kind!r}")
    if items < 1:
        raise ValueError("items must be >= 1")

    def decorate(factory: Callable[[], SetupResult]):
        if name in _REGISTRY:
            raise ValueError(f"benchmark {name!r} already registered")
        _REGISTRY[name] = Benchmark(
            name=name,
            kind=kind,
            items=items,
            factory=factory,
            description=description or (factory.__doc__ or "").strip(),
        )
        return factory

    return decorate


def _ensure_loaded() -> None:
    # Benchmark definitions live in repro.bench.benches; importing it
    # populates the registry exactly once.
    from repro.bench import benches  # noqa: F401


def get_benchmark(name: str) -> Benchmark:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown benchmark {name!r} (known: {known})") from None


def iter_benchmarks(kind: str | None = None) -> list[Benchmark]:
    """All registered benchmarks (optionally filtered), in name order."""
    _ensure_loaded()
    out = [
        b
        for b in _REGISTRY.values()
        if kind is None or b.kind == kind
    ]
    return sorted(out, key=lambda b: (b.kind, b.name))
