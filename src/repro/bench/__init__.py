"""Benchmark harness: registered micro/macro benchmarks, runner, gate.

* :mod:`repro.bench.registry` — named benchmarks with lazy setup;
* :mod:`repro.bench.benches` — the suite (simulator step, TD3 update,
  RDPER push/sample, Twin-Q accept loop, codec round-trip, cache
  round-trip, plus short offline-train / online-tune macros);
* :mod:`repro.bench.runner` — warmup + timed repetitions + allocation
  pass, emitting schema-versioned ``BENCH_*.json`` documents;
* :mod:`repro.bench.compare` — median-based regression gating between
  two bench documents (the ``repro bench compare`` exit code).
"""

from repro.bench.compare import (
    DEFAULT_THRESHOLD,
    BenchDelta,
    Comparison,
    compare_docs,
    render_comparison,
)
from repro.bench.registry import Benchmark, bench, get_benchmark, iter_benchmarks
from repro.bench.runner import run_benchmarks, run_one
from repro.bench.schema import (
    SCHEMA_VERSION,
    load_doc,
    make_doc,
    validate_doc,
)

__all__ = [
    "Benchmark",
    "bench",
    "get_benchmark",
    "iter_benchmarks",
    "run_benchmarks",
    "run_one",
    "SCHEMA_VERSION",
    "load_doc",
    "make_doc",
    "validate_doc",
    "BenchDelta",
    "Comparison",
    "compare_docs",
    "render_comparison",
    "DEFAULT_THRESHOLD",
]
