"""Regression gating: diff a candidate bench file against a baseline.

The gate is on the **median**: a benchmark regresses when its candidate
median exceeds the baseline median by more than ``threshold`` (default
25%).  The p10/p90 spread is shown for context so a reviewer can tell a
tight, reproducible regression from noise, but it never changes the
verdict — thresholds belong in one knob, not a statistical model.

Benchmarks present on only one side are reported but never fail the
gate: the CI smoke run measures a micro-only subset against the full
committed baseline, and a new benchmark has no baseline yet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["BenchDelta", "compare_docs", "render_comparison"]

DEFAULT_THRESHOLD = 0.25


@dataclass(frozen=True)
class BenchDelta:
    """Comparison of one benchmark across the two documents."""

    name: str
    kind: str
    baseline_median_s: float
    candidate_median_s: float
    ratio: float  # candidate / baseline; > 1 means slower
    regressed: bool

    @property
    def change_pct(self) -> float:
        return (self.ratio - 1.0) * 100.0


@dataclass(frozen=True)
class Comparison:
    deltas: list[BenchDelta]
    only_in_baseline: list[str]
    only_in_candidate: list[str]
    threshold: float

    @property
    def regressions(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_docs(
    candidate: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> Comparison:
    """Diff two valid bench documents (see :func:`~repro.bench.schema.load_doc`)."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    base = {r["name"]: r for r in baseline["results"]}
    cand = {r["name"]: r for r in candidate["results"]}
    deltas: list[BenchDelta] = []
    for name in sorted(set(base) & set(cand)):
        b, c = base[name], cand[name]
        b_med, c_med = float(b["median_s"]), float(c["median_s"])
        ratio = c_med / b_med if b_med > 0 else float("inf")
        deltas.append(
            BenchDelta(
                name=name,
                kind=c.get("kind", "?"),
                baseline_median_s=b_med,
                candidate_median_s=c_med,
                ratio=ratio,
                regressed=ratio > 1.0 + threshold,
            )
        )
    return Comparison(
        deltas=deltas,
        only_in_baseline=sorted(set(base) - set(cand)),
        only_in_candidate=sorted(set(cand) - set(base)),
        threshold=threshold,
    )


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    return f"{seconds * 1e3:8.3f}ms"


def render_comparison(cmp: Comparison) -> str:
    """Human-readable comparison table plus verdict line."""
    lines = [
        f"{'benchmark':<24} {'baseline':>10} {'candidate':>10} "
        f"{'change':>8}  verdict"
    ]
    for d in cmp.deltas:
        verdict = (
            "REGRESSED"
            if d.regressed
            else ("improved" if d.ratio < 1.0 else "ok")
        )
        lines.append(
            f"{d.name:<24} {_fmt_s(d.baseline_median_s):>10} "
            f"{_fmt_s(d.candidate_median_s):>10} {d.change_pct:>+7.1f}%  "
            f"{verdict}"
        )
    for name in cmp.only_in_baseline:
        lines.append(f"{name:<24} {'(not measured in candidate)':>30}")
    for name in cmp.only_in_candidate:
        lines.append(f"{name:<24} {'(new: no baseline entry)':>30}")
    n_reg = len(cmp.regressions)
    lines.append(
        f"-- {len(cmp.deltas)} compared, {n_reg} regression(s) at "
        f">{cmp.threshold * 100:.0f}% median slowdown"
    )
    return "\n".join(lines)
