"""White-box-assisted tuning (the paper's future-work direction).

Pipeline:

1. run a one-at-a-time sensitivity sweep on the simulator (the analytic
   stand-in for LOCAT/LITE's application analysis);
2. keep the ``top_k`` highest-impact knobs as the tunable action space
   and pin each remaining knob to the best value its own sweep found;
3. hand the resulting :class:`~repro.config.reduced.ReducedConfigurationSpace`
   to any tuner — a DeepCAT agent over 10-12 dimensions trains in far
   fewer evaluations than over the full 32.

The sensitivity sweep costs ``n_knobs x n_points`` evaluations once,
which is the same currency as offline training iterations, so the plan
reports its own probe cost for fair accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.sensitivity import KnobSensitivity, knob_sensitivity
from repro.config.reduced import ReducedConfigurationSpace
from repro.config.space import ConfigurationSpace
from repro.sim.engine import SparkSimulator

__all__ = ["WhiteBoxPlan", "build_whitebox_plan"]


@dataclass(frozen=True)
class WhiteBoxPlan:
    """Outcome of the white-box analysis."""

    reduced_space: ReducedConfigurationSpace
    sensitivities: tuple[KnobSensitivity, ...]
    probe_evaluations: int  # evaluations spent on the sweep

    @property
    def free_knobs(self) -> list[str]:
        return self.reduced_space.names

    @property
    def pinned_knobs(self) -> dict[str, object]:
        return dict(self.reduced_space.pinned)


#: a knob whose sweep moves the duration by less than this (relative)
#: is considered flat and pinned at its framework default — its "best"
#: sweep position is straggler noise, not signal
FLAT_SPREAD = 0.04


def _improved_base(
    space: ConfigurationSpace, results, top_k: int
) -> dict:
    """Assemble a base config from the top knobs' solo-best positions.

    Only the high-impact knobs move (their solo effects are real);
    everything else stays at defaults to avoid compounding noise.
    """
    vec = space.default_vector().copy()
    names = space.names
    for r in results[:top_k]:
        vec[names.index(r.name)] = r.best_position
    return space.decode(vec)


def build_whitebox_plan(
    simulator: SparkSimulator,
    space: ConfigurationSpace,
    top_k: int = 12,
    n_points: int = 7,
    base_config: dict | None = None,
) -> WhiteBoxPlan:
    """Run the two-pass analysis and build the reduced tuning space.

    Pass 1 sweeps around the default (or ``base_config``) to find the
    high-impact knobs; a provisional base applies their solo-best values
    so pass 2 measures sensitivities in a *usefully provisioned* regime
    (around the raw default, most knobs are masked by the two-executor
    bottleneck).  Pinned knobs take their pass-2 solo-best position when
    their sweep carries signal and the framework default otherwise.
    """
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    if top_k >= space.dim:
        raise ValueError("top_k must leave at least one knob pinned")

    pass1 = knob_sensitivity(
        simulator, space, base_config=base_config, n_points=n_points
    )
    base2 = _improved_base(space, pass1, top_k)
    if not simulator.evaluate(base2).success:
        base2 = base_config if base_config is not None else space.defaults()
    pass2 = knob_sensitivity(
        simulator, space, base_config=base2, n_points=n_points
    )

    free = [r.name for r in pass2[:top_k]]
    solo_pins = {}
    base2_vec = space.encode(base2)
    names = space.names
    for r in pass2[top_k:]:
        param = space[r.name]
        if r.relative_spread < FLAT_SPREAD:
            solo_pins[r.name] = param.default
        else:
            # solo-best around the provisioned base; the sweep held the
            # other knobs at base2, so re-decode in that context
            vec = base2_vec.copy()
            vec[names.index(r.name)] = r.best_position
            solo_pins[r.name] = space.decode(vec)[r.name]

    # Guard: solo-best pins are conditioned on base2's free-knob values
    # and can be jointly harmful once the free knobs move.  Evaluate both
    # pin strategies at their base and keep the better one.
    candidates = [
        ReducedConfigurationSpace(space, free, solo_pins),
        ReducedConfigurationSpace(space, free),  # all pins at defaults
    ]
    scores = []
    for cand in candidates:
        res = simulator.evaluate(cand.defaults())
        scores.append(res.duration_s if res.success else float("inf"))
    reduced = candidates[int(np.argmin(scores))]

    return WhiteBoxPlan(
        reduced_space=reduced,
        sensitivities=tuple(pass2),
        probe_evaluations=2 * space.dim * n_points + 3,
    )
