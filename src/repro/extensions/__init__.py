"""Extensions beyond the paper's published system.

The paper's conclusion names white-box analysis (LOCAT, LITE) as future
work for further cutting tuning cost.  :mod:`whitebox` implements that
direction on our stack: a sensitivity analysis over the simulator picks
the high-impact knobs, and DeepCAT then trains/tunes in the reduced
action space.
"""

from repro.extensions.whitebox import WhiteBoxPlan, build_whitebox_plan

__all__ = ["WhiteBoxPlan", "build_whitebox_plan"]
