"""Small statistics helpers shared across the simulator and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "RunningStats",
    "empirical_cdf",
    "geometric_mean",
    "lognormal_noise_factor",
    "saturating",
]


@dataclass
class RunningStats:
    """Online mean/variance via Welford's algorithm.

    Used by agents and experiments to track reward/performance streams
    without storing the full history.
    """

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    _min: float = field(default=float("inf"))
    _max: float = field(default=float("-inf"))

    def push(self, x: float) -> None:
        """Fold one observation into the running moments."""
        x = float(x)
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    def extend(self, xs) -> None:
        """Fold an iterable of observations."""
        for x in xs:
            self.push(x)

    @property
    def mean(self) -> float:
        return self._mean if self.count else float("nan")

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); NaN with fewer than two observations."""
        return self._m2 / (self.count - 1) if self.count > 1 else float("nan")

    @property
    def std(self) -> float:
        v = self.variance
        return float(np.sqrt(v)) if v == v else float("nan")

    @property
    def min(self) -> float:
        return self._min if self.count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self.count else float("nan")


def empirical_cdf(samples) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_probabilities)``.

    Probabilities are ``i/n`` for the i-th order statistic, i.e. the
    fraction of samples ≤ each value — exactly what Figure 2 of the paper
    plots for 200 random configurations.
    """
    xs = np.sort(np.asarray(samples, dtype=float))
    if xs.size == 0:
        return xs, xs
    ps = np.arange(1, xs.size + 1, dtype=float) / xs.size
    return xs, ps


def geometric_mean(values) -> float:
    """Geometric mean; the conventional aggregate for speedup ratios."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def lognormal_noise_factor(rng: np.random.Generator, sigma: float) -> float:
    """Multiplicative measurement-noise factor with unit median.

    Execution-time measurements on a real cluster fluctuate
    multiplicatively (JIT warmup, page cache, cron jobs...).  A lognormal
    with ``mu=0`` keeps the median at 1.0 so noise never biases the
    simulator's central tendency.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return 1.0
    return float(np.exp(rng.normal(0.0, sigma)))


def saturating(x: float, capacity: float) -> float:
    """Smooth saturating curve ``capacity * x / (x + capacity)``.

    Models throughput ceilings (disk, network, RPC handlers): linear for
    small ``x``, asymptoting to ``capacity``.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    if x < 0:
        raise ValueError(f"x must be non-negative, got {x}")
    return capacity * x / (x + capacity)
