"""Plain-text table rendering for benchmark/experiment reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Floats are shown with two decimals; everything else via ``str``.
    Used by the benchmark harness to print the same rows/series the paper's
    tables and figures report.
    """
    str_rows = [[_fmt(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
