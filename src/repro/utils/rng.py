"""Deterministic random-number management.

Every stochastic component in the library (simulator noise, exploration
noise, replay sampling, network initialization) draws from an explicitly
seeded :class:`numpy.random.Generator`.  This module centralizes the
conventions so that experiments are reproducible bit-for-bit given a seed.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["as_generator", "spawn_generators", "RngFactory"]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an integer seed, an existing generator (returned unchanged), or
    ``None`` (fresh OS-entropy generator).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | np.random.Generator | None, n: int
) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses :meth:`numpy.random.Generator.spawn`, so children never share
    streams with the parent or with each other.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return as_generator(seed).spawn(n)


class RngFactory:
    """Named, reproducible generator factory.

    Components ask for a generator by name; the same (seed, name) pair
    always yields an identically-seeded generator, regardless of the order
    in which components are constructed.  This keeps e.g. simulator noise
    independent of how many agents were created first.

    Example
    -------
    >>> f = RngFactory(123)
    >>> g1 = f.get("sim-noise")
    >>> g2 = RngFactory(123).get("sim-noise")
    >>> float(g1.random()) == float(g2.random())
    True
    """

    def __init__(self, seed: int):
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return a generator deterministically derived from (seed, name)."""
        digest = np.frombuffer(
            name.encode("utf-8").ljust(8, b"\0")[:8], dtype=np.uint64
        )[0]
        seq = np.random.SeedSequence([self._seed, int(digest)])
        return np.random.Generator(np.random.PCG64(seq))

    def get_many(self, names: Iterable[str]) -> dict[str, np.random.Generator]:
        """Return a dict of named generators (see :meth:`get`)."""
        return {name: self.get(name) for name in names}

    def child(self, name: str) -> "RngFactory":
        """Derive a child factory whose namespace is independent of ours."""
        rng = self.get(name)
        return RngFactory(int(rng.integers(0, 2**31 - 1)))
