"""Terminal plotting for figure-shaped artifacts.

The paper's artifacts are mostly *plots*; the benchmark harness renders
them as ASCII line/bar charts so the shape (trends, crossovers, U-curves)
is visible directly in terminal output and in the persisted
``benchmarks/results/*.txt`` files.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["line_plot", "bar_chart"]

_MARKERS = "*o+x#@"


def line_plot(
    series: Mapping[str, Sequence[float]],
    x: Sequence[float] | None = None,
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render one or more named series as an ASCII line chart.

    All series share the x grid (``x`` or indices) and the y scale.
    Each series gets a marker from ``*o+x#@``; a legend maps them back.
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have equal length")
    n = lengths.pop()
    if n < 2:
        raise ValueError("need at least two points")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    xs = np.asarray(x if x is not None else np.arange(n), dtype=float)
    if xs.shape != (n,):
        raise ValueError("x grid must match series length")

    ys = {k: np.asarray(v, dtype=float) for k, v in series.items()}
    y_all = np.concatenate(list(ys.values()))
    y_min, y_max = float(y_all.min()), float(y_all.max())
    if y_max - y_min < 1e-12:
        y_max = y_min + 1.0
    x_min, x_max = float(xs.min()), float(xs.max())
    if x_max - x_min < 1e-12:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, y), marker in zip(ys.items(), _MARKERS):
        cols = np.round(
            (xs - x_min) / (x_max - x_min) * (width - 1)
        ).astype(int)
        rows = np.round(
            (y - y_min) / (y_max - y_min) * (height - 1)
        ).astype(int)
        # connect consecutive points with interpolated cells
        for i in range(n - 1):
            c0, c1 = cols[i], cols[i + 1]
            r0, r1 = rows[i], rows[i + 1]
            steps = max(abs(int(c1) - int(c0)), abs(int(r1) - int(r0)), 1)
            for t in range(steps + 1):
                c = int(round(c0 + (c1 - c0) * t / steps))
                r = int(round(r0 + (r1 - r0) * t / steps))
                grid[height - 1 - r][c] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.4g}"
    bottom_label = f"{y_min:.4g}"
    pad = max(len(top_label), len(bottom_label), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            label = top_label
        elif i == height - 1:
            label = bottom_label
        elif i == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{pad}} |{''.join(row)}")
    lines.append(f"{'':>{pad}} +{'-' * width}")
    lines.append(
        f"{'':>{pad}}  {x_min:<.4g}{'':^{max(width - 12, 1)}}{x_max:>.4g}"
    )
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(ys.items(), _MARKERS)
    )
    lines.append(f"{'':>{pad}}  legend: {legend}")
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 48,
    title: str = "",
    unit: str = "",
) -> str:
    """Render named values as a horizontal bar chart."""
    if not values:
        raise ValueError("need at least one value")
    numeric = {k: float(v) for k, v in values.items()}
    if any(v < 0 for v in numeric.values()):
        raise ValueError("bar_chart expects non-negative values")
    v_max = max(numeric.values())
    if v_max <= 0:
        v_max = 1.0
    name_pad = max(len(k) for k in numeric)
    lines = [title] if title else []
    for name, v in numeric.items():
        bar = "#" * max(1, int(round(v / v_max * width))) if v > 0 else ""
        lines.append(f"{name:<{name_pad}} |{bar:<{width}} {v:.2f}{unit}")
    return "\n".join(lines)
