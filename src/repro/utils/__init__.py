"""Shared utilities: RNG management, statistics, tables, serialization."""

from repro.utils.rng import RngFactory, as_generator, spawn_generators
from repro.utils.stats import (
    RunningStats,
    empirical_cdf,
    geometric_mean,
    lognormal_noise_factor,
)
from repro.utils.tables import format_table

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "RunningStats",
    "empirical_cdf",
    "geometric_mean",
    "lognormal_noise_factor",
    "format_table",
]
