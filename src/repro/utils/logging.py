"""Structured progress logging for training and tuning runs.

A minimal observer interface: the trainer and tuner emit events; sinks
render them (console) or persist them (JSON lines).  The default
``NullLogger`` makes instrumentation free when unused.  For correlated
metrics/traces/provenance, wrap a logger in a
:class:`~repro.telemetry.context.RunContext`.
"""

from __future__ import annotations

import json
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, IO, Iterable

__all__ = [
    "TuningLogger",
    "NullLogger",
    "ConsoleLogger",
    "JsonlLogger",
    "TeeLogger",
    "HIGH_FREQUENCY_KINDS",
]

#: event kinds emitted once per inner-loop iteration — the ones a console
#: sink must throttle to stay readable (``sim-stage`` fires per simulated
#: Spark stage, several times per evaluation)
HIGH_FREQUENCY_KINDS: frozenset[str] = frozenset(
    {"offline-step", "sim-stage"}
)


class TuningLogger:
    """Observer interface; subclass and override what you need."""

    def event(self, kind: str, **fields: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered events to the sink (no-op by default)."""

    def close(self) -> None:
        """Release any resources (no-op by default)."""

    @contextmanager
    def deferred(self):
        """Suspend per-event durability flushes inside the block.

        Batch producers (the population's lockstep round) emit N events
        back to back; deferring turns N flush syscalls into one at block
        exit.  File *content and order* are unchanged — only the flush
        cadence is batched — so deferred and non-deferred runs leave
        byte-identical logs.  The base implementation is a no-op.
        """
        yield self


class NullLogger(TuningLogger):
    """Discards everything (the default)."""

    def event(self, kind: str, **fields: Any) -> None:
        pass


class ConsoleLogger(TuningLogger):
    """Human-readable progress lines.

    ``every`` throttles high-frequency events so a 3000-iteration run
    prints tens, not thousands, of lines.  ``throttled_kinds`` selects
    which kinds are throttled (default: ``offline-step`` and
    ``sim-stage``); every other kind always prints.
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        every: int = 100,
        throttled_kinds: Iterable[str] | None = None,
    ):
        if every < 1:
            raise ValueError("every must be >= 1")
        self._stream = stream if stream is not None else sys.stderr
        self._every = every
        self._throttled = (
            HIGH_FREQUENCY_KINDS
            if throttled_kinds is None
            else frozenset(throttled_kinds)
        )
        self._counts: dict[str, int] = {}

    def event(self, kind: str, **fields: Any) -> None:
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if kind in self._throttled and self._counts[kind] % self._every:
            return
        body = " ".join(
            f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in fields.items()
        )
        print(f"[{kind}] {body}", file=self._stream)

    def flush(self) -> None:
        self._stream.flush()


class JsonlLogger(TuningLogger):
    """Appends one JSON object per event to a file.

    Every event is flushed to the OS immediately so a crashed run still
    leaves a complete event log on disk (losing at most the event being
    written at the instant of the crash).
    """

    def __init__(self, path: str | Path):
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(path, "a", encoding="utf-8")
        self._defer = 0

    def event(self, kind: str, **fields: Any) -> None:
        record = {"kind": kind, "ts": time.time(), **fields}
        self._fh.write(json.dumps(record) + "\n")
        if not self._defer:
            self._fh.flush()

    def flush(self) -> None:
        if not self._fh.closed:
            self._fh.flush()

    def close(self) -> None:
        self._fh.close()

    @contextmanager
    def deferred(self):
        self._defer += 1
        try:
            yield self
        finally:
            self._defer -= 1
            if not self._defer:
                self.flush()

    def __enter__(self) -> "JsonlLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TeeLogger(TuningLogger):
    """Fans every event out to several sinks (e.g. JSONL + heartbeat).

    The trainer/tuner APIs take exactly one logger; this is how the CLI
    combines ``--events`` with ``--heartbeat`` without widening them.
    """

    def __init__(self, *loggers: TuningLogger):
        self._loggers = [lg for lg in loggers if lg is not None]

    def event(self, kind: str, **fields: Any) -> None:
        for lg in self._loggers:
            lg.event(kind, **fields)

    def flush(self) -> None:
        for lg in self._loggers:
            lg.flush()

    def close(self) -> None:
        for lg in self._loggers:
            lg.close()

    @contextmanager
    def deferred(self):
        from contextlib import ExitStack

        with ExitStack() as stack:
            for lg in self._loggers:
                stack.enter_context(lg.deferred())
            yield self
