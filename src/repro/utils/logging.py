"""Structured progress logging for training and tuning runs.

A minimal observer interface: the trainer and tuner emit events; sinks
render them (console) or persist them (JSON lines).  The default
``NullLogger`` makes instrumentation free when unused.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, IO

__all__ = ["TuningLogger", "NullLogger", "ConsoleLogger", "JsonlLogger"]


class TuningLogger:
    """Observer interface; subclass and override what you need."""

    def event(self, kind: str, **fields: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (no-op by default)."""


class NullLogger(TuningLogger):
    """Discards everything (the default)."""

    def event(self, kind: str, **fields: Any) -> None:
        pass


class ConsoleLogger(TuningLogger):
    """Human-readable progress lines.

    ``every`` throttles high-frequency events (offline iterations) so a
    3000-iteration run prints tens, not thousands, of lines.
    """

    def __init__(self, stream: IO[str] | None = None, every: int = 100):
        if every < 1:
            raise ValueError("every must be >= 1")
        self._stream = stream if stream is not None else sys.stderr
        self._every = every
        self._counts: dict[str, int] = {}

    def event(self, kind: str, **fields: Any) -> None:
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if kind == "offline-step" and self._counts[kind] % self._every:
            return
        body = " ".join(
            f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in fields.items()
        )
        print(f"[{kind}] {body}", file=self._stream)


class JsonlLogger(TuningLogger):
    """Appends one JSON object per event to a file."""

    def __init__(self, path: str | Path):
        self._fh = open(Path(path), "a")

    def event(self, kind: str, **fields: Any) -> None:
        record = {"kind": kind, "ts": time.time(), **fields}
        self._fh.write(json.dumps(record) + "\n")

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "JsonlLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
