"""JSON export/import for session records.

Experiment results outlive processes: the benchmark harness and the CLI
persist :class:`~repro.core.result.OnlineSession` objects so runs can be
compared across code versions.  Numpy arrays are stored as lists; the
round-trip is exact for the fields experiments consume.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.result import OnlineSession, TuningStepRecord

__all__ = ["session_to_dict", "session_from_dict", "save_session", "load_session"]


def session_to_dict(session: OnlineSession) -> dict:
    """Convert a session into a JSON-serializable dict."""
    return {
        "tuner": session.tuner,
        "workload": session.workload,
        "dataset": session.dataset,
        "default_duration_s": session.default_duration_s,
        "steps": [
            {
                "step": s.step,
                "duration_s": s.duration_s,
                "recommendation_s": s.recommendation_s,
                "reward": s.reward,
                "success": s.success,
                "config": s.config,
                "action": np.asarray(s.action).tolist(),
                "twinq_iterations": s.twinq_iterations,
                "twinq_accepted": s.twinq_accepted,
                "original_q": s.original_q,
                "final_q": s.final_q,
            }
            for s in session.steps
        ],
    }


def session_from_dict(data: dict) -> OnlineSession:
    """Rebuild a session from :func:`session_to_dict` output."""
    session = OnlineSession(
        tuner=data["tuner"],
        workload=data["workload"],
        dataset=data["dataset"],
        default_duration_s=data["default_duration_s"],
    )
    for s in data["steps"]:
        session.add(
            TuningStepRecord(
                step=s["step"],
                duration_s=s["duration_s"],
                recommendation_s=s["recommendation_s"],
                reward=s["reward"],
                success=s["success"],
                config=s["config"],
                action=np.asarray(s["action"], dtype=np.float64),
                twinq_iterations=s.get("twinq_iterations"),
                twinq_accepted=s.get("twinq_accepted"),
                original_q=s.get("original_q"),
                final_q=s.get("final_q"),
            )
        )
    return session


def save_session(session: OnlineSession, path: str | Path) -> None:
    """Write a session to a JSON file."""
    Path(path).write_text(json.dumps(session_to_dict(session), indent=2))


def load_session(path: str | Path) -> OnlineSession:
    """Read a session from a JSON file."""
    return session_from_dict(json.loads(Path(path).read_text()))
