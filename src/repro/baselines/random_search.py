"""Random search baseline.

The simplest search-based tuner: evaluate uniform random configurations
and keep the best.  The paper omits search-based methods from its plots
(they "need a large number of time-consuming configuration evaluation"),
but they are the natural sanity floor for any learned tuner.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.result import OnlineSession, TuningStepRecord
from repro.envs.tuning_env import TuningEnv

__all__ = ["RandomSearchTuner"]


class RandomSearchTuner:
    """Uniform random sampling of the configuration cube."""

    def __init__(self, seed: int | np.random.Generator = 0):
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )

    def tune_online(
        self,
        env: TuningEnv,
        steps: int = 5,
        time_budget_s: float | None = None,
    ) -> OnlineSession:
        if steps <= 0:
            raise ValueError("steps must be positive")
        session = OnlineSession(
            tuner="RandomSearch",
            workload=env.runner.workload.code,
            dataset=env.runner.dataset.label,
            default_duration_s=env.default_duration,
        )
        if time_budget_s is None:
            # Every action is independent of the outcomes, so draw them
            # all at once and run the simulator's batched fast path.
            # Bit-identical to the sequential loop: sample_vectors fills
            # row-major off the same stream as per-step sample_vector
            # calls, and step_batch reproduces step's RNG schedule.
            t0 = time.perf_counter()
            actions = env.space.sample_vectors(self._rng, steps)
            recommendation_s = (time.perf_counter() - t0) / steps
            for step, outcome in enumerate(env.step_batch(actions)):
                session.add(
                    TuningStepRecord(
                        step=step,
                        duration_s=outcome.duration_s,
                        recommendation_s=recommendation_s,
                        reward=outcome.reward,
                        success=outcome.success,
                        config=outcome.config,
                        action=outcome.action,
                    )
                )
            return session
        for step in range(steps):
            t0 = time.perf_counter()
            action = env.space.sample_vector(self._rng)
            recommendation_s = time.perf_counter() - t0
            outcome = env.step(action)
            session.add(
                TuningStepRecord(
                    step=step,
                    duration_s=outcome.duration_s,
                    recommendation_s=recommendation_s,
                    reward=outcome.reward,
                    success=outcome.success,
                    config=outcome.config,
                    action=outcome.action,
                )
            )
            if session.total_tuning_seconds >= time_budget_s:
                break
        return session
