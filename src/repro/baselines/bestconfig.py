"""BestConfig-style search baseline (Zhu et al., SoCC 2017).

Divide-and-diverge sampling plus recursive bound-and-search: the space is
covered with a Latin-hypercube sample; the best point found bounds a
shrinking hyper-rectangle that is re-sampled each round.  Restarts from
scratch for every tuning request — the paper's stated reason search-based
approaches are unsuited to online tuning.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.result import OnlineSession, TuningStepRecord
from repro.envs.tuning_env import TuningEnv

__all__ = ["BestConfigTuner"]


class BestConfigTuner:
    """Divide-and-diverge sampling + recursive bound-and-search."""

    def __init__(
        self,
        seed: int | np.random.Generator = 0,
        rounds_per_shrink: int = 5,
        shrink_factor: float = 0.5,
    ):
        if not 0.0 < shrink_factor < 1.0:
            raise ValueError("shrink_factor must be in (0,1)")
        if rounds_per_shrink <= 0:
            raise ValueError("rounds_per_shrink must be positive")
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self.rounds_per_shrink = rounds_per_shrink
        self.shrink_factor = shrink_factor

    def tune_online(
        self,
        env: TuningEnv,
        steps: int = 5,
        time_budget_s: float | None = None,
    ) -> OnlineSession:
        if steps <= 0:
            raise ValueError("steps must be positive")
        session = OnlineSession(
            tuner="BestConfig",
            workload=env.runner.workload.code,
            dataset=env.runner.dataset.label,
            default_duration_s=env.default_duration,
        )
        dim = env.action_dim
        lo = np.zeros(dim)
        hi = np.ones(dim)
        best_action: np.ndarray | None = None
        best_perf = float("inf")
        # Pre-draw a Latin hypercube covering the first search round.
        lhs = env.space.latin_hypercube(self._rng, self.rounds_per_shrink)
        lhs_used = 0

        if time_budget_s is None:
            # The search box only moves at round boundaries, so a whole
            # round of candidates is known upfront — evaluate each round
            # through the simulator's batched fast path.  Bit-identical
            # to the sequential loop: the units consume self._rng in the
            # same order, and step_batch reproduces step's RNG schedule.
            step = 0
            while step < steps:
                n_round = min(self.rounds_per_shrink, steps - step)
                t0 = time.perf_counter()
                units = np.empty((n_round, dim))
                for j in range(n_round):
                    if lhs_used < lhs.shape[0]:
                        units[j] = lhs[lhs_used]
                        lhs_used += 1
                    else:
                        units[j] = self._rng.uniform(0.0, 1.0, size=dim)
                actions = lo + units * (hi - lo)
                recommendation_s = (time.perf_counter() - t0) / n_round
                for j, outcome in enumerate(env.step_batch(actions)):
                    if outcome.success and outcome.duration_s < best_perf:
                        best_perf = outcome.duration_s
                        best_action = outcome.action
                    session.add(
                        TuningStepRecord(
                            step=step + j,
                            duration_s=outcome.duration_s,
                            recommendation_s=recommendation_s,
                            reward=outcome.reward,
                            success=outcome.success,
                            config=outcome.config,
                            action=outcome.action,
                        )
                    )
                step += n_round
                if (
                    step % self.rounds_per_shrink == 0
                    and best_action is not None
                ):
                    width = (hi - lo) * self.shrink_factor / 2.0
                    lo = np.clip(best_action - width, 0.0, 1.0)
                    hi = np.clip(best_action + width, 0.0, 1.0)
                    lhs = lo + env.space.latin_hypercube(
                        self._rng, self.rounds_per_shrink
                    ) * (hi - lo)
                    lhs_used = 0
            return session

        for step in range(steps):
            t0 = time.perf_counter()
            if lhs_used < lhs.shape[0]:
                unit = lhs[lhs_used]
                lhs_used += 1
            else:
                unit = self._rng.uniform(0.0, 1.0, size=dim)
            action = lo + unit * (hi - lo)
            recommendation_s = time.perf_counter() - t0

            outcome = env.step(action)
            if outcome.success and outcome.duration_s < best_perf:
                best_perf = outcome.duration_s
                best_action = outcome.action
            session.add(
                TuningStepRecord(
                    step=step,
                    duration_s=outcome.duration_s,
                    recommendation_s=recommendation_s,
                    reward=outcome.reward,
                    success=outcome.success,
                    config=outcome.config,
                    action=outcome.action,
                )
            )
            # Bound-and-search: after each sampling round, shrink the box
            # around the incumbent and re-diverge.
            if (step + 1) % self.rounds_per_shrink == 0 and best_action is not None:
                width = (hi - lo) * self.shrink_factor / 2.0
                lo = np.clip(best_action - width, 0.0, 1.0)
                hi = np.clip(best_action + width, 0.0, 1.0)
                lhs = lo + env.space.latin_hypercube(
                    self._rng, self.rounds_per_shrink
                ) * (hi - lo)
                lhs_used = 0
            if session.total_tuning_seconds >= time_budget_s:
                break
        return session
