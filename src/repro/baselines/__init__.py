"""Baseline tuners the paper compares against.

* :class:`CDBTune` — DDPG with TD-error prioritized replay (Zhang et al.
  2019), the state-of-the-art DRL database tuner.
* :class:`OtterTune` — GP regression + Expected Improvement with Lasso
  knob ranking and workload mapping (Van Aken et al. 2017).
* :class:`RandomSearchTuner` / :class:`BestConfigTuner` /
  :class:`BayesOptTuner` — search-based extension baselines from the
  paper's related-work families (the paper discusses but does not plot
  them).
"""

from repro.baselines.bestconfig import BestConfigTuner
from repro.baselines.bo import BayesOptTuner
from repro.baselines.cdbtune import CDBTune
from repro.baselines.ottertune.tuner import OtterTune
from repro.baselines.random_search import RandomSearchTuner

__all__ = [
    "CDBTune",
    "OtterTune",
    "RandomSearchTuner",
    "BestConfigTuner",
    "BayesOptTuner",
]
