"""The OtterTune online tuning loop.

Per online step (this is why OtterTune's recommendation time dominates
the DRL tuners' in Figure 7):

1. map the target workload to the most similar repository workload;
2. fit a fresh GP on the mapped workload's data plus all target
   observations so far (target data overrides mapped data at duplicate
   configurations);
3. rank knobs with Lasso and keep the top-k for candidate generation;
4. maximize Expected Improvement over a candidate pool (random samples
   plus perturbations of the incumbent, non-selected knobs pinned);
5. evaluate the winner on the target cluster.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.ottertune.ei import expected_improvement
from repro.baselines.ottertune.gp import GaussianProcessRegressor
from repro.baselines.ottertune.lasso import rank_knobs
from repro.baselines.ottertune.mapping import WorkloadRepository
from repro.core.result import OnlineSession, TuningStepRecord
from repro.envs.tuning_env import TuningEnv
from repro.sim.faults import FAILURE_PERF_FACTOR

__all__ = ["OtterTune"]


class OtterTune:
    """GP + EI tuner with Lasso knob selection and workload mapping."""

    def __init__(
        self,
        action_dim: int,
        seed: int | np.random.Generator = 0,
        n_candidates: int = 600,
        top_knobs: int = 16,
        max_train_points: int = 400,
        length_scale: float = 1.4,
        noise_variance: float = 2e-2,
    ):
        if action_dim <= 0:
            raise ValueError("action_dim must be positive")
        if n_candidates <= 0 or top_knobs <= 0 or max_train_points <= 0:
            raise ValueError("invalid OtterTune sizes")
        self.action_dim = action_dim
        self.n_candidates = n_candidates
        self.top_knobs = min(top_knobs, action_dim)
        self.max_train_points = max_train_points
        self.length_scale = length_scale
        self.noise_variance = noise_variance
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self.repository = WorkloadRepository()

    @classmethod
    def from_env(
        cls, env: TuningEnv, seed: int | np.random.Generator = 0, **kwargs
    ) -> "OtterTune":
        return cls(env.action_dim, seed=seed, **kwargs)

    # ------------------------------------------------------------ offline

    def observe_offline(
        self, workload_id: str, config: np.ndarray, metrics: np.ndarray,
        perf: float,
    ) -> None:
        """Add one offline sample to the repository."""
        self.repository.observe(workload_id, config, metrics, perf)

    def collect_offline(
        self, env: TuningEnv, workload_id: str, samples: int
    ) -> None:
        """Gather ``samples`` random evaluations of ``env`` into the
        repository (the paper feeds OtterTune thousands of these)."""
        if samples <= 0:
            raise ValueError("samples must be positive")
        for _ in range(samples):
            action = env.space.sample_vector(self._rng)
            outcome = env.step(action)
            perf = (
                outcome.duration_s
                if outcome.success
                else FAILURE_PERF_FACTOR * env.default_duration
            )
            self.observe_offline(
                workload_id, outcome.action, outcome.next_state, perf
            )

    # ------------------------------------------------------------- online

    def _training_data(
        self,
        target_x: list[np.ndarray],
        target_m: list[np.ndarray],
        target_y: list[float],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mapped-workload data + target data, capped for GP tractability."""
        mapped = self.repository.map_workload(
            np.vstack(target_x) if target_x else np.zeros((0, self.action_dim)),
            np.vstack(target_m) if target_m else np.zeros((0, 1)),
        )
        xs, ys = [], []
        if mapped is not None:
            x, _, y = self.repository.get(mapped).arrays()
            if x.shape[0] > self.max_train_points:
                # Keep the best-performing half and a random half: EI needs
                # both a good incumbent region and global coverage.
                k = self.max_train_points
                order = np.argsort(y)
                keep_best = order[: k // 2]
                rest = order[k // 2 :]
                keep_rand = self._rng.choice(
                    rest, size=k - k // 2, replace=False
                )
                keep = np.concatenate([keep_best, keep_rand])
                x, y = x[keep], y[keep]
            xs.append(x)
            ys.append(y)
        if target_x:
            xs.append(np.vstack(target_x))
            ys.append(np.asarray(target_y))
        if not xs:
            raise RuntimeError(
                "OtterTune has no data: load offline samples first"
            )
        return np.vstack(xs), np.concatenate(ys)

    def _candidates(
        self, incumbent: np.ndarray | None, knob_order: list[int]
    ) -> np.ndarray:
        """Candidate pool: random cube samples plus incumbent perturbations,
        with non-selected knobs pinned to the incumbent (or 0.5)."""
        base = (
            incumbent
            if incumbent is not None
            else np.full(self.action_dim, 0.5)
        )
        selected = np.zeros(self.action_dim, dtype=bool)
        selected[knob_order[: self.top_knobs]] = True

        n_rand = self.n_candidates // 2
        n_local = self.n_candidates - n_rand
        rand = np.tile(base, (n_rand, 1))
        rand[:, selected] = self._rng.uniform(
            0.0, 1.0, size=(n_rand, int(selected.sum()))
        )
        local = np.tile(base, (n_local, 1))
        local[:, selected] = np.clip(
            base[selected]
            + self._rng.normal(0.0, 0.12, size=(n_local, int(selected.sum()))),
            0.0,
            1.0,
        )
        return np.vstack([rand, local])

    def tune_online(
        self,
        env: TuningEnv,
        steps: int = 5,
        time_budget_s: float | None = None,
    ) -> OnlineSession:
        """Run the online tuning phase on ``env``."""
        if steps <= 0:
            raise ValueError("steps must be positive")
        session = OnlineSession(
            tuner="OtterTune",
            workload=env.runner.workload.code,
            dataset=env.runner.dataset.label,
            default_duration_s=env.default_duration,
        )
        target_x: list[np.ndarray] = []
        target_m: list[np.ndarray] = []
        target_y: list[float] = []

        for step in range(steps):
            t0 = time.perf_counter()
            x_train, y_train = self._training_data(target_x, target_m, target_y)
            knob_order = rank_knobs(x_train, y_train)
            gp = GaussianProcessRegressor(
                length_scale=self.length_scale,
                noise_variance=self.noise_variance,
            ).fit(x_train, y_train)
            best_idx = int(np.argmin(y_train))
            incumbent = x_train[best_idx]
            candidates = self._candidates(incumbent, knob_order)
            mean, std = gp.predict(candidates, return_std=True)
            ei = expected_improvement(mean, std, float(y_train[best_idx]))
            action = candidates[int(np.argmax(ei))]
            recommendation_s = time.perf_counter() - t0

            outcome = env.step(action)
            perf = (
                outcome.duration_s
                if outcome.success
                else FAILURE_PERF_FACTOR * env.default_duration
            )
            target_x.append(outcome.action)
            target_m.append(outcome.next_state)
            target_y.append(perf)

            session.add(
                TuningStepRecord(
                    step=step,
                    duration_s=outcome.duration_s,
                    recommendation_s=recommendation_s,
                    reward=outcome.reward,
                    success=outcome.success,
                    config=outcome.config,
                    action=outcome.action,
                )
            )
            if (
                time_budget_s is not None
                and session.total_tuning_seconds >= time_budget_s
            ):
                break
        return session
