"""Workload repository and workload mapping.

OtterTune keeps every workload it has ever tuned; when a new tuning
request arrives it *maps* the target to the most similar repository
workload by comparing metric signatures under comparable configurations,
then seeds the GP with that workload's data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["WorkloadObservations", "WorkloadRepository"]


@dataclass
class WorkloadObservations:
    """All observations for one workload: configs, metrics, performance."""

    workload_id: str
    configs: list[np.ndarray] = field(default_factory=list)
    metrics: list[np.ndarray] = field(default_factory=list)
    perfs: list[float] = field(default_factory=list)

    def add(self, config: np.ndarray, metrics: np.ndarray, perf: float) -> None:
        if perf <= 0:
            raise ValueError("performance must be positive")
        self.configs.append(np.asarray(config, dtype=np.float64))
        self.metrics.append(np.asarray(metrics, dtype=np.float64))
        self.perfs.append(float(perf))

    def __len__(self) -> int:
        return len(self.configs)

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(X, M, y) as stacked arrays."""
        return (
            np.vstack(self.configs),
            np.vstack(self.metrics),
            np.asarray(self.perfs),
        )


class WorkloadRepository:
    """Stores per-workload observation sets and performs mapping."""

    def __init__(self):
        self._workloads: dict[str, WorkloadObservations] = {}

    def observe(
        self, workload_id: str, config: np.ndarray, metrics: np.ndarray,
        perf: float,
    ) -> None:
        self._workloads.setdefault(
            workload_id, WorkloadObservations(workload_id)
        ).add(config, metrics, perf)

    def workloads(self) -> list[str]:
        return sorted(self._workloads)

    def get(self, workload_id: str) -> WorkloadObservations:
        try:
            return self._workloads[workload_id]
        except KeyError:
            raise KeyError(f"unknown workload {workload_id!r}") from None

    def __contains__(self, workload_id: str) -> bool:
        return workload_id in self._workloads

    def map_workload(
        self,
        target_configs: np.ndarray,
        target_metrics: np.ndarray,
        exclude: str | None = None,
    ) -> str | None:
        """Find the repository workload most similar to the target.

        For each candidate workload, each target observation is matched
        to the candidate observation with the nearest *configuration*,
        and the distance between their (standardized) metric vectors is
        accumulated; the lowest mean metric distance wins.  This is
        OtterTune's matching-under-comparable-configs scheme with
        nearest-config matching in place of per-metric GPs.
        """
        target_configs = np.atleast_2d(np.asarray(target_configs, dtype=float))
        target_metrics = np.atleast_2d(np.asarray(target_metrics, dtype=float))
        if target_configs.shape[0] != target_metrics.shape[0]:
            raise ValueError("configs and metrics must align")
        candidates = [w for w in self.workloads() if w != exclude]
        if not candidates:
            return None
        if target_configs.shape[0] == 0:
            # No target observations yet (first online step): fall back to
            # the workload with the richest observation set.
            return max(candidates, key=lambda w: len(self._workloads[w]))

        # Standardize metrics across the whole repository for fair distances.
        all_metrics = np.vstack(
            [np.vstack(self._workloads[w].metrics) for w in candidates]
        )
        mu = all_metrics.mean(axis=0)
        sd = all_metrics.std(axis=0)
        sd = np.where(sd > 1e-12, sd, 1.0)

        best_workload, best_score = None, float("inf")
        for w in candidates:
            x, m, _ = self._workloads[w].arrays()
            mz = (m - mu) / sd
            tz = (target_metrics - mu) / sd
            # nearest candidate config for each target config
            d_cfg = (
                np.sum(target_configs**2, axis=1)[:, None]
                + np.sum(x**2, axis=1)[None, :]
                - 2.0 * target_configs @ x.T
            )
            nearest = np.argmin(d_cfg, axis=1)
            score = float(
                np.mean(np.linalg.norm(tz - mz[nearest], axis=1))
            )
            if score < best_score:
                best_workload, best_score = w, score
        return best_workload
