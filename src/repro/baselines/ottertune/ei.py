"""Expected Improvement acquisition (minimization form).

OtterTune recommends the candidate maximizing the expected improvement of
execution time below the incumbent best:

    EI(x) = (y* − μ(x)) Φ(z) + σ(x) φ(z),   z = (y* − μ(x)) / σ(x)
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

__all__ = ["expected_improvement"]


def expected_improvement(
    mean: np.ndarray,
    std: np.ndarray,
    best_y: float,
    xi: float = 0.0,
) -> np.ndarray:
    """EI for minimization, vectorized over candidates.

    Parameters
    ----------
    mean, std:
        GP predictive mean and standard deviation, shape (m,).
    best_y:
        Incumbent best (lowest) observed target.
    xi:
        Exploration margin subtracted from the incumbent.
    """
    mean = np.asarray(mean, dtype=np.float64).ravel()
    std = np.asarray(std, dtype=np.float64).ravel()
    if mean.shape != std.shape:
        raise ValueError("mean and std must align")
    if np.any(std < 0):
        raise ValueError("std must be non-negative")
    improvement = best_y - xi - mean
    ei = np.zeros_like(mean)
    positive_std = std > 1e-12
    z = np.zeros_like(mean)
    z[positive_std] = improvement[positive_std] / std[positive_std]
    ei[positive_std] = improvement[positive_std] * norm.cdf(
        z[positive_std]
    ) + std[positive_std] * norm.pdf(z[positive_std])
    # Deterministic points: improvement only if strictly better.
    ei[~positive_std] = np.maximum(improvement[~positive_std], 0.0)
    return np.maximum(ei, 0.0)
