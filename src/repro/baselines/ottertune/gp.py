"""Gaussian-process regression with an RBF kernel.

The OtterTune surrogate: fit on (configuration vector, performance)
observations, predict mean and uncertainty for candidate configurations.
Implemented with a Cholesky factorization (numerically stable, O(n³) fit,
O(n) per-point predictive mean / O(n²) variance), fully vectorized.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve

__all__ = ["GaussianProcessRegressor", "rbf_kernel"]


def rbf_kernel(
    a: np.ndarray, b: np.ndarray, length_scale: float, variance: float
) -> np.ndarray:
    """Squared-exponential kernel matrix k(a, b), shapes (n,d) x (m,d)."""
    if length_scale <= 0 or variance <= 0:
        raise ValueError("kernel hyper-parameters must be positive")
    # ||a-b||^2 via the expansion trick (no (n,m,d) intermediate).
    sq = (
        np.sum(a**2, axis=1)[:, None]
        + np.sum(b**2, axis=1)[None, :]
        - 2.0 * a @ b.T
    )
    np.maximum(sq, 0.0, out=sq)
    return variance * np.exp(-0.5 * sq / length_scale**2)


class GaussianProcessRegressor:
    """Exact GP regression with fixed hyper-parameters.

    Parameters
    ----------
    length_scale, signal_variance:
        RBF kernel hyper-parameters.  Inputs are in the normalized
        [0,1]^d cube, so a length scale around sqrt(d)/4 is a sensible
        default for 32-dimensional configuration spaces.
    noise_variance:
        Observation noise (measurement noise of evaluations).
    y_normalize:
        Standardize targets before fitting (recommended — execution times
        have large means).
    """

    def __init__(
        self,
        length_scale: float = 1.4,
        signal_variance: float = 1.0,
        noise_variance: float = 1e-2,
        y_normalize: bool = True,
    ):
        if noise_variance <= 0:
            raise ValueError("noise_variance must be positive")
        self.length_scale = length_scale
        self.signal_variance = signal_variance
        self.noise_variance = noise_variance
        self.y_normalize = y_normalize
        self._x: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._cho = None
        self._y_mean = 0.0
        self._y_std = 1.0

    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Fit on inputs ``x`` (n, d) and targets ``y`` (n,)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("x must be (n, d) aligned with y (n,)")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on zero observations")
        if self.y_normalize:
            self._y_mean = float(y.mean())
            std = float(y.std())
            self._y_std = std if std > 1e-12 else 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        yn = (y - self._y_mean) / self._y_std

        k = rbf_kernel(x, x, self.length_scale, self.signal_variance)
        k[np.diag_indices_from(k)] += self.noise_variance
        self._cho = cho_factor(k, lower=True)
        self._alpha = cho_solve(self._cho, yn)
        self._x = x
        return self

    def predict(
        self, x_new: np.ndarray, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Predictive mean (and optionally std) at ``x_new`` (m, d)."""
        if not self.is_fitted:
            raise RuntimeError("predict before fit")
        x_new = np.asarray(x_new, dtype=np.float64)
        if x_new.ndim == 1:
            x_new = x_new[None, :]
        k_star = rbf_kernel(
            x_new, self._x, self.length_scale, self.signal_variance
        )
        mean = k_star @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = cho_solve(self._cho, k_star.T)
        var = self.signal_variance - np.sum(k_star * v.T, axis=1)
        var = np.maximum(var, 1e-12)
        return mean, np.sqrt(var) * self._y_std
