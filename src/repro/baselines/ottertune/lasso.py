"""Lasso-based knob ranking (OtterTune's knob-selection stage).

Coordinate-descent Lasso on standardized features; knobs are ranked by
the order in which their coefficients become non-zero as the L1 penalty
is relaxed (the Lasso path), which is OtterTune's importance ordering.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lasso_coordinate_descent", "rank_knobs"]


def lasso_coordinate_descent(
    x: np.ndarray,
    y: np.ndarray,
    alpha: float,
    max_iter: int = 500,
    tol: float = 1e-6,
) -> np.ndarray:
    """Solve min_w  (1/2n)||y − Xw||² + α||w||₁ by cyclic coordinate descent.

    ``x`` is assumed standardized (zero mean, unit variance per column);
    ``y`` centred.  Returns the coefficient vector (d,).
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    n, d = x.shape
    if y.shape[0] != n:
        raise ValueError("x and y must align")
    w = np.zeros(d)
    # Precompute column norms; residual maintained incrementally.
    col_sq = (x**2).sum(axis=0) / n
    residual = y.copy()
    for _ in range(max_iter):
        max_delta = 0.0
        for j in range(d):
            if col_sq[j] <= 1e-15:
                continue
            w_j_old = w[j]
            rho = (x[:, j] @ residual) / n + col_sq[j] * w_j_old
            # Soft thresholding.
            w_new = np.sign(rho) * max(abs(rho) - alpha, 0.0) / col_sq[j]
            if w_new != w_j_old:
                residual += x[:, j] * (w_j_old - w_new)
                w[j] = w_new
                max_delta = max(max_delta, abs(w_new - w_j_old))
        if max_delta < tol:
            break
    return w


def rank_knobs(
    x: np.ndarray, y: np.ndarray, n_alphas: int = 20
) -> list[int]:
    """Rank feature indices by Lasso-path entry order (important first).

    Features entering the active set at larger penalties matter more.
    Ties (features entering at the same alpha) are broken by coefficient
    magnitude; features that never enter rank last by correlation.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    n, d = x.shape
    mu, sd = x.mean(axis=0), x.std(axis=0)
    sd = np.where(sd > 1e-12, sd, 1.0)
    xs = (x - mu) / sd
    yc = y - y.mean()

    alpha_max = float(np.abs(xs.T @ yc).max() / n)
    if alpha_max <= 0:
        return list(range(d))
    alphas = np.geomspace(alpha_max, alpha_max * 1e-3, n_alphas)

    entry_alpha = np.full(d, -1.0)
    entry_coef = np.zeros(d)
    for a in alphas:
        w = lasso_coordinate_descent(xs, yc, a)
        newly = (np.abs(w) > 1e-10) & (entry_alpha < 0)
        entry_alpha[newly] = a
        entry_coef[newly] = np.abs(w[newly])

    corr = np.abs(xs.T @ yc) / n
    order = sorted(
        range(d),
        key=lambda j: (
            -entry_alpha[j] if entry_alpha[j] > 0 else 0.0,
            -entry_coef[j],
            -corr[j],
        ),
    )
    # Features that entered the path always rank before those that never did.
    entered = [j for j in order if entry_alpha[j] > 0]
    never = [j for j in order if entry_alpha[j] <= 0]
    never.sort(key=lambda j: -corr[j])
    return entered + never
