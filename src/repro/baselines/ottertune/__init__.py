"""OtterTune baseline (Van Aken et al., SIGMOD 2017).

Pipeline stages, each implemented from scratch on numpy/scipy:

* :mod:`lasso` — Lasso-path knob ranking (which knobs matter);
* :mod:`gp` — Gaussian-process regression surrogate;
* :mod:`ei` — Expected Improvement acquisition;
* :mod:`mapping` — workload mapping: match the target workload to the
  most similar workload in the repository by metric signatures;
* :mod:`tuner` — the online tuning loop tying them together.
"""

from repro.baselines.ottertune.ei import expected_improvement
from repro.baselines.ottertune.gp import GaussianProcessRegressor
from repro.baselines.ottertune.lasso import lasso_coordinate_descent, rank_knobs
from repro.baselines.ottertune.mapping import WorkloadRepository
from repro.baselines.ottertune.tuner import OtterTune

__all__ = [
    "GaussianProcessRegressor",
    "expected_improvement",
    "lasso_coordinate_descent",
    "rank_knobs",
    "WorkloadRepository",
    "OtterTune",
]
