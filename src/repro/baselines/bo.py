"""Cold-start Bayesian optimization baseline.

The paper's related work (§6) covers search-based BO tuners (CherryPick,
Lynceus, ResTune) that need no offline model: they fit a surrogate on
the target's own observations only, starting from scratch for every
request.  This baseline reuses OtterTune's GP/EI machinery without the
repository and workload mapping, bootstrapping from a small Latin-
hypercube design — the canonical "BO from nothing" the DRL approaches
are argued to beat at small online budgets.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.ottertune.ei import expected_improvement
from repro.baselines.ottertune.gp import GaussianProcessRegressor
from repro.core.result import OnlineSession, TuningStepRecord
from repro.envs.tuning_env import TuningEnv
from repro.sim.faults import FAILURE_PERF_FACTOR

__all__ = ["BayesOptTuner"]


class BayesOptTuner:
    """GP + Expected Improvement over the target's own observations."""

    def __init__(
        self,
        action_dim: int,
        seed: int | np.random.Generator = 0,
        init_design: int = 3,
        n_candidates: int = 500,
        length_scale: float = 1.4,
        noise_variance: float = 2e-2,
    ):
        if action_dim <= 0:
            raise ValueError("action_dim must be positive")
        if init_design < 1 or n_candidates < 1:
            raise ValueError("invalid BO sizes")
        self.action_dim = action_dim
        self.init_design = init_design
        self.n_candidates = n_candidates
        self.length_scale = length_scale
        self.noise_variance = noise_variance
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )

    @classmethod
    def from_env(cls, env: TuningEnv, seed=0, **kwargs) -> "BayesOptTuner":
        return cls(env.action_dim, seed=seed, **kwargs)

    def tune_online(
        self,
        env: TuningEnv,
        steps: int = 5,
        time_budget_s: float | None = None,
    ) -> OnlineSession:
        """Run BO for ``steps`` evaluations (design points included)."""
        if steps <= 0:
            raise ValueError("steps must be positive")
        session = OnlineSession(
            tuner="BayesOpt",
            workload=env.runner.workload.code,
            dataset=env.runner.dataset.label,
            default_duration_s=env.default_duration,
        )
        design = env.space.latin_hypercube(
            self._rng, min(self.init_design, steps)
        )
        xs: list[np.ndarray] = []
        ys: list[float] = []

        for step in range(steps):
            t0 = time.perf_counter()
            if step < design.shape[0]:
                action = design[step]
            else:
                gp = GaussianProcessRegressor(
                    length_scale=self.length_scale,
                    noise_variance=self.noise_variance,
                ).fit(np.vstack(xs), np.asarray(ys))
                best_idx = int(np.argmin(ys))
                incumbent = xs[best_idx]
                n_local = self.n_candidates // 2
                candidates = np.vstack(
                    [
                        self._rng.uniform(
                            0, 1,
                            (self.n_candidates - n_local, self.action_dim),
                        ),
                        np.clip(
                            incumbent
                            + self._rng.normal(
                                0.0, 0.1, (n_local, self.action_dim)
                            ),
                            0.0,
                            1.0,
                        ),
                    ]
                )
                mean, std = gp.predict(candidates, return_std=True)
                ei = expected_improvement(mean, std, float(ys[best_idx]))
                action = candidates[int(np.argmax(ei))]
            recommendation_s = time.perf_counter() - t0

            outcome = env.step(action)
            perf = (
                outcome.duration_s
                if outcome.success
                else FAILURE_PERF_FACTOR * env.default_duration
            )
            xs.append(outcome.action)
            ys.append(perf)
            session.add(
                TuningStepRecord(
                    step=step,
                    duration_s=outcome.duration_s,
                    recommendation_s=recommendation_s,
                    reward=outcome.reward,
                    success=outcome.success,
                    config=outcome.config,
                    action=outcome.action,
                )
            )
            if (
                time_budget_s is not None
                and session.total_tuning_seconds >= time_budget_s
            ):
                break
        return session
