"""CDBTune baseline (Zhang et al., SIGMOD 2019).

An end-to-end DRL tuner: DDPG recommends configurations from system
metrics; experience replay uses TD-error prioritization.  Shares the
offline/online machinery with DeepCAT but has neither twin critics (so it
overestimates Q), nor RDPER (so sparse high-reward transitions drown),
nor the Twin-Q Optimizer (so every online recommendation — good or bad —
is paid for with a real evaluation).
"""

from __future__ import annotations

import numpy as np

from repro.agents.base import AgentHyperParams
from repro.agents.ddpg import DDPGAgent
from repro.core.offline import OfflineTrainer, OfflineTrainingLog
from repro.core.online import OnlineTuner
from repro.core.result import OnlineSession
from repro.envs.tuning_env import TuningEnv
from repro.replay.per import PrioritizedReplayBuffer

__all__ = ["CDBTune"]


class CDBTune:
    """DDPG + TD-error PER tuner."""

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        seed: int | np.random.Generator = 0,
        hp: AgentHyperParams | None = None,
        buffer_capacity: int = 20_000,
    ):
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        agent_rng, buffer_rng, online_rng = rng.spawn(3)
        self.hp = hp if hp is not None else AgentHyperParams()
        self.agent = DDPGAgent(state_dim, action_dim, agent_rng, self.hp)
        self.buffer = PrioritizedReplayBuffer(
            buffer_capacity, state_dim, action_dim, buffer_rng
        )
        self._online_rng = online_rng
        self.offline_log: OfflineTrainingLog | None = None

    @classmethod
    def from_env(
        cls, env: TuningEnv, seed: int | np.random.Generator = 0, **kwargs
    ) -> "CDBTune":
        return cls(env.state_dim, env.action_dim, seed=seed, **kwargs)

    def train_offline(
        self, env: TuningEnv, iterations: int, updates_per_step: int = 1,
        callback=None, telemetry=None,
    ) -> OfflineTrainingLog:
        if telemetry is not None and telemetry.manifest is not None:
            telemetry.manifest.record_hyper_params(self.hp)
            telemetry.manifest.record_cluster(env.cluster)
        trainer = OfflineTrainer(
            self.agent, self.buffer, updates_per_step=updates_per_step,
            telemetry=telemetry,
        )
        self.offline_log = trainer.train(env, iterations, callback=callback)
        return self.offline_log

    def tune_online(
        self,
        env: TuningEnv,
        steps: int = 5,
        time_budget_s: float | None = None,
        fine_tune_updates: int = 2,
        exploration_sigma: float = 0.3,
        telemetry=None,
    ) -> OnlineSession:
        tuner = OnlineTuner(
            self.agent,
            self.buffer,
            name="CDBTune",
            use_twin_q=False,
            fine_tune_updates=fine_tune_updates,
            exploration_sigma=exploration_sigma,
            rng=self._online_rng,
            telemetry=telemetry,
        )
        return tuner.tune(env, steps=steps, time_budget_s=time_budget_s)
