"""Spark unified memory model: spill, garbage collection, and OOM.

Implements the Spark ≥1.6 unified memory manager arithmetic:

* usable heap = heap − 300 MB reserve,
* unified region = usable × ``spark.memory.fraction``,
* execution region = unified × (1 − ``spark.memory.storageFraction``)
  (execution may borrow from storage, so the borrowable share is modelled
  as partially available),
* per-*task* execution memory = execution region / concurrent tasks.

A task whose working set exceeds its execution share **spills** to disk
(extra I/O handled by the engine); one that exceeds the whole heap head-
room **fails with OOM**.  GC overhead grows super-linearly with heap
occupancy — the classic reason over-packed executors crawl.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["TaskMemoryVerdict", "MemoryModel", "HEAP_RESERVE_MB"]

HEAP_RESERVE_MB = 300  # Spark's RESERVED_SYSTEM_MEMORY_BYTES


@dataclass(frozen=True)
class TaskMemoryVerdict:
    """Memory outcome for one stage's tasks."""

    spill_fraction: float  # fraction of the working set that spills (>= 0)
    gc_multiplier: float  # >= 1; CPU-time inflation from GC pressure
    oom: bool
    exec_share_mb: float  # per-task execution memory actually available
    storage_deficit: float  # fraction of desired cache that does not fit


class MemoryModel:
    """Evaluates task memory behaviour for a given executor configuration."""

    def __init__(self, config: Mapping[str, Any], executor_heap_mb: int,
                 executor_cores: int):
        if executor_heap_mb <= 0 or executor_cores <= 0:
            raise ValueError("executor heap and cores must be positive")
        self.heap_mb = float(executor_heap_mb)
        self.cores = int(executor_cores)
        self.memory_fraction = float(config["spark.memory.fraction"])
        self.storage_fraction = float(config["spark.memory.storageFraction"])

        usable = max(self.heap_mb - HEAP_RESERVE_MB, 1.0)
        self.unified_mb = usable * self.memory_fraction
        # Execution can evict borrowed storage, so half of the storage
        # share is effectively reachable by execution under pressure.
        base_exec = self.unified_mb * (1.0 - self.storage_fraction)
        borrowable = self.unified_mb * self.storage_fraction * 0.5
        self.exec_region_mb = base_exec + borrowable
        self.storage_region_mb = self.unified_mb * self.storage_fraction
        # Everything outside the unified region: user data structures,
        # metadata, code caches.
        self.user_region_mb = usable * (1.0 - self.memory_fraction)

    def per_task_exec_mb(self) -> float:
        """Execution memory available to each of the concurrent tasks."""
        return self.exec_region_mb / self.cores

    def evaluate_task(
        self,
        working_set_mb: float,
        cache_demand_mb: float = 0.0,
        rigid_fraction: float = 0.35,
    ) -> TaskMemoryVerdict:
        """Judge a task with the given per-task working set.

        Parameters
        ----------
        working_set_mb:
            Execution-side memory the task wants (shuffle/sort/aggregation
            buffers, deserialized records in flight).
        cache_demand_mb:
            Per-executor storage demand for cached RDDs (iterative
            workloads).  What does not fit is recomputed/read back.
        rigid_fraction:
            Share of the working set that cannot spill (see
            :attr:`repro.workloads.base.StageSpec.rigid_memory_fraction`).
        """
        if working_set_mb < 0 or cache_demand_mb < 0:
            raise ValueError("memory demands cannot be negative")
        if not 0.0 < rigid_fraction <= 1.0:
            raise ValueError("rigid_fraction must be in (0, 1]")
        share = self.per_task_exec_mb()

        # --- OOM: the spillable part of the working set goes to disk, but
        # the rigid part (live object graphs, in-flight records) must be
        # resident; when it cannot fit even borrowing the user region's
        # slack, the JVM dies.
        hard_limit = self.exec_region_mb + 0.5 * self.user_region_mb
        oom = working_set_mb * rigid_fraction > hard_limit

        # --- spill: fraction of the working set beyond the per-task share.
        if working_set_mb <= share:
            spill_fraction = 0.0
        else:
            spill_fraction = (working_set_mb - share) / working_set_mb

        # --- cache misses for iterative workloads.
        if cache_demand_mb <= 0:
            storage_deficit = 0.0
        else:
            fits = min(cache_demand_mb, self.storage_region_mb)
            storage_deficit = 1.0 - fits / cache_demand_mb

        # --- GC pressure: occupancy of the heap by live data.
        live = min(working_set_mb, share) * self.cores + min(
            cache_demand_mb, self.storage_region_mb
        )
        occupancy = live / max(self.heap_mb - HEAP_RESERVE_MB, 1.0)
        occupancy = min(occupancy, 1.0)
        # Sub-linear below ~70% occupancy, steep above.
        gc_multiplier = 1.0 + 2.2 * occupancy**3.5
        # An over-grown unified region starves user data structures and
        # code caches, producing old-gen churn.
        if self.memory_fraction > 0.78:
            gc_multiplier += 2.0 * (self.memory_fraction - 0.78)

        return TaskMemoryVerdict(
            spill_fraction=float(spill_fraction),
            gc_multiplier=float(gc_multiplier),
            oom=bool(oom),
            exec_share_mb=float(share),
            storage_deficit=float(storage_deficit),
        )
