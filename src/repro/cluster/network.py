"""Network transfer model for shuffles and broadcasts.

An all-to-all shuffle on an ``n``-node cluster moves roughly
``(n-1)/n`` of the shuffled bytes across the wire; each node's NIC is the
bottleneck link.  ``spark.reducer.maxSizeInFlight`` bounds fetch
pipelining: too small and reducers stall on round-trips, large enough and
the link saturates.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.hardware import ClusterSpec

__all__ = ["shuffle_network_seconds", "broadcast_seconds"]


def shuffle_network_seconds(
    shuffle_mb: float,
    cluster: ClusterSpec,
    max_in_flight_mb: float,
    n_fetch_rounds_hint: int = 1,
) -> float:
    """Seconds of wire time to shuffle ``shuffle_mb`` across the cluster."""
    if shuffle_mb < 0:
        raise ValueError("shuffle bytes cannot be negative")
    if shuffle_mb == 0:
        return 0.0
    if max_in_flight_mb <= 0:
        raise ValueError("maxSizeInFlight must be positive")
    n = cluster.n_nodes
    cross_mb = shuffle_mb * (n - 1) / n if n > 1 else 0.0
    if cross_mb == 0.0:
        return 0.0
    per_node_mb = cross_mb / n
    # Pipelining efficiency: saturates once ~48 MB is in flight.
    efficiency = float(np.clip(max_in_flight_mb / 48.0, 0.15, 1.0)) ** 0.35
    bandwidth = cluster.network_mbps * efficiency
    latency_s = cluster.network_latency_ms / 1000.0
    rounds = max(1, int(np.ceil(per_node_mb / max_in_flight_mb)))
    rounds = max(rounds, n_fetch_rounds_hint)
    return per_node_mb / bandwidth + rounds * latency_s


def broadcast_seconds(
    broadcast_mb: float,
    cluster: ClusterSpec,
    block_size_mb: float,
) -> float:
    """Torrent-broadcast time: bandwidth-bound plus per-block latency."""
    if broadcast_mb < 0:
        raise ValueError("broadcast bytes cannot be negative")
    if broadcast_mb == 0:
        return 0.0
    if block_size_mb <= 0:
        raise ValueError("block size must be positive")
    blocks = max(1.0, broadcast_mb / block_size_mb)
    latency_s = cluster.network_latency_ms / 1000.0
    return broadcast_mb / cluster.network_mbps + blocks * latency_s
