"""Disk throughput model.

Concurrent task streams on a spinning disk degrade from sequential to
near-random throughput; larger stream buffers (``io.file.buffer.size``,
``spark.shuffle.file.buffer``) recover part of the sequential rate by
batching writes.  Throughput is per *node* and shared by that node's
concurrently running tasks.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.hardware import NodeSpec

__all__ = ["effective_disk_mbps", "disk_seconds"]


def effective_disk_mbps(
    node: NodeSpec,
    concurrent_streams: int,
    buffer_kb: float,
) -> float:
    """Aggregate node disk throughput under ``concurrent_streams`` streams.

    With one stream the disk delivers its sequential rate.  As streams are
    added the head thrashes and aggregate throughput decays toward the
    random floor; a bigger per-stream buffer moves the curve back toward
    sequential (batched I/O amortizes seeks).
    """
    if concurrent_streams < 1:
        raise ValueError("need at least one stream")
    if buffer_kb <= 0:
        raise ValueError("buffer must be positive")
    # Buffer quality: 0 (tiny buffer) .. 1 (>= ~512 KB buffer).
    quality = float(np.clip(np.log2(buffer_kb / 16.0) / np.log2(512.0 / 16.0),
                            0.0, 1.0))
    # Interference grows with streams; good buffering halves its slope.
    interference = (concurrent_streams - 1) * (0.30 - 0.22 * quality)
    floor = node.disk_rand_mbps / node.disk_seq_mbps
    share = max(floor, 1.0 / (1.0 + interference))
    return node.disk_seq_mbps * share


def disk_seconds(
    mb: float,
    node: NodeSpec,
    concurrent_streams: int,
    buffer_kb: float,
) -> float:
    """Seconds for a node to move ``mb`` megabytes at the effective rate."""
    if mb < 0:
        raise ValueError("bytes cannot be negative")
    if mb == 0:
        return 0.0
    return mb / effective_disk_mbps(node, concurrent_streams, buffer_kb)
