"""Cluster state metrics — the DRL observation.

The paper (§3.1) uses the ``uptime`` load averages of each server as the
state.  We synthesize the 1/5/15-minute load averages per node from the
utilization profile of the most recent evaluation: the 1-minute average
tracks current pressure, the 5- and 15-minute averages are exponential
blends of history, exactly how the kernel's decaying averages behave.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.hardware import ClusterSpec

__all__ = ["ClusterStateTracker"]


class ClusterStateTracker:
    """Maintains per-node load averages across successive evaluations."""

    #: state dimensionality per node (load1, load5, load15)
    PER_NODE = 3

    def __init__(self, cluster: ClusterSpec, rng: np.random.Generator):
        self.cluster = cluster
        self._rng = rng
        self._load5 = np.zeros(cluster.n_nodes)
        self._load15 = np.zeros(cluster.n_nodes)

    @property
    def dim(self) -> int:
        return self.cluster.n_nodes * self.PER_NODE

    def reset(self) -> np.ndarray:
        """Idle cluster: small background load from daemons."""
        idle = 0.05 * self.cluster.node.cores
        self._load5 = np.full(self.cluster.n_nodes, idle)
        self._load15 = np.full(self.cluster.n_nodes, idle)
        return self.observe(cpu_demand_per_node=np.full(self.cluster.n_nodes, idle))

    def observe(self, cpu_demand_per_node: np.ndarray) -> np.ndarray:
        """Fold the latest run's per-node runnable-task demand into the
        decaying averages and return the normalized state vector.

        ``cpu_demand_per_node`` is the average number of runnable threads
        per node during the evaluation (≈ busy cores, can exceed the core
        count when oversubscribed).
        """
        demand = np.asarray(cpu_demand_per_node, dtype=np.float64)
        if demand.shape != (self.cluster.n_nodes,):
            raise ValueError(
                f"expected shape ({self.cluster.n_nodes},), got {demand.shape}"
            )
        jitter = 1.0 + self._rng.normal(0.0, 0.03, size=demand.shape)
        load1 = np.maximum(demand * jitter, 0.0)
        # Kernel-style decaying blends (coarse: one sample per run).
        self._load5 = 0.6 * self._load5 + 0.4 * load1
        self._load15 = 0.85 * self._load15 + 0.15 * load1
        cores = self.cluster.node.cores
        state = np.concatenate([load1, self._load5, self._load15]) / cores
        return np.clip(state, 0.0, 4.0)
