"""Cluster hardware and resource-management substrate.

Models the parts of a Spark-on-YARN deployment that turn a configuration
dictionary into *physical resources*: node hardware, YARN's container
allocation arithmetic, Spark's unified memory model, and disk / network /
HDFS throughput curves.  The simulation engine (:mod:`repro.sim`) composes
these into execution times.
"""

from repro.cluster.hardware import CLUSTER_A, CLUSTER_B, ClusterSpec, NodeSpec
from repro.cluster.yarn import ExecutorPlacement, plan_executors
from repro.cluster.memory import MemoryModel, TaskMemoryVerdict
from repro.cluster.state import ClusterStateTracker

__all__ = [
    "NodeSpec",
    "ClusterSpec",
    "CLUSTER_A",
    "CLUSTER_B",
    "ExecutorPlacement",
    "plan_executors",
    "MemoryModel",
    "TaskMemoryVerdict",
    "ClusterStateTracker",
]
