"""HDFS read/write model.

HDFS knobs act through three channels:

* ``dfs.blocksize`` determines the number of input splits (= map tasks)
  and the metadata load per gigabyte;
* ``dfs.replication`` multiplies write traffic (pipeline replication puts
  ``r-1`` extra copies on the wire/disks);
* handler counts bound RPC throughput — with few handlers, many
  concurrent clients queue on the NameNode/DataNodes.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.cluster.disk import effective_disk_mbps
from repro.cluster.hardware import ClusterSpec
from repro.utils.stats import saturating

__all__ = ["HdfsModel"]


class HdfsModel:
    """HDFS behaviour under a given configuration on a given cluster."""

    def __init__(self, config: Mapping[str, Any], cluster: ClusterSpec):
        self.cluster = cluster
        self.blocksize_mb = int(config["dfs.blocksize"])
        self.replication = int(config["dfs.replication"])
        self.nn_handlers = int(config["dfs.namenode.handler.count"])
        self.dn_handlers = int(config["dfs.datanode.handler.count"])
        self.io_buffer_kb = int(config["io.file.buffer.size"])
        if self.blocksize_mb <= 0 or self.replication <= 0:
            raise ValueError("invalid HDFS configuration")

    def input_splits(self, input_mb: float) -> int:
        """Number of map-side input splits for ``input_mb`` of data."""
        if input_mb < 0:
            raise ValueError("input size cannot be negative")
        return max(1, int(np.ceil(input_mb / self.blocksize_mb)))

    def _rpc_slowdown(self, concurrent_clients: int) -> float:
        """>= 1 multiplier from RPC handler contention.

        Served capacity saturates with handler count; when concurrent
        clients outnumber effective handlers, requests queue.
        """
        nn_capacity = saturating(float(self.nn_handlers), 120.0)
        dn_capacity = saturating(float(self.dn_handlers), 60.0)
        capacity = min(nn_capacity * 4.0, dn_capacity * 6.0)
        if concurrent_clients <= capacity:
            return 1.0
        return 1.0 + 0.12 * (concurrent_clients / capacity - 1.0)

    def read_seconds(self, mb: float, concurrent_tasks_per_node: int) -> float:
        """Cluster-wide time to read ``mb`` spread over all nodes.

        Reads are data-local in the common case, so the cost is disk-bound
        with RPC overhead for block lookups.
        """
        if mb < 0:
            raise ValueError("bytes cannot be negative")
        if mb == 0:
            return 0.0
        per_node_mb = mb / self.cluster.n_nodes
        rate = effective_disk_mbps(
            self.cluster.node,
            max(1, concurrent_tasks_per_node),
            float(self.io_buffer_kb),
        )
        base = per_node_mb / rate
        total_clients = concurrent_tasks_per_node * self.cluster.n_nodes
        return base * self._rpc_slowdown(total_clients)

    def write_seconds(self, mb: float, concurrent_tasks_per_node: int) -> float:
        """Cluster-wide time to write ``mb`` with pipeline replication.

        Each byte is written ``replication`` times to disks; ``r-1`` copies
        also traverse the network.  The slower of the two pipelines binds.
        """
        if mb < 0:
            raise ValueError("bytes cannot be negative")
        if mb == 0:
            return 0.0
        disk_mb_per_node = mb * self.replication / self.cluster.n_nodes
        rate = effective_disk_mbps(
            self.cluster.node,
            max(1, concurrent_tasks_per_node),
            float(self.io_buffer_kb),
        )
        disk_time = disk_mb_per_node / rate
        net_mb_per_node = mb * max(self.replication - 1, 0) / self.cluster.n_nodes
        net_time = net_mb_per_node / self.cluster.network_mbps
        total_clients = concurrent_tasks_per_node * self.cluster.n_nodes
        return max(disk_time, net_time) * self._rpc_slowdown(total_clients)
