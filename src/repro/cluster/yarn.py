"""YARN container allocation arithmetic.

Given the tuned YARN parameters and Spark's executor resource request,
compute how many executor containers the cluster can actually host.  This
reproduces the real ``yarn-site.xml`` / ``spark-defaults.conf`` interplay:

* container memory = executor heap + memoryOverhead, rounded **up** to a
  multiple of ``yarn.scheduler.minimum-allocation-mb``;
* requests above ``yarn.scheduler.maximum-allocation-mb`` (or -vcores) are
  rejected — on a real cluster the application fails to launch;
* per-node capacity is ``yarn.nodemanager.resource.memory-mb`` (clipped to
  physical RAM minus OS/daemon reserve) and the vcore analogue scaled by
  the physical-cpu-limit percentage.

The number of granted executors is the binding constraint that makes many
configurations slow: the Spark default of tiny executors on an
under-provisioned NodeManager leaves most of the cluster idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.cluster.hardware import ClusterSpec

__all__ = ["ExecutorPlacement", "plan_executors", "OS_RESERVED_MB"]

# Memory kept back for the OS, DataNode and NodeManager daemons.
OS_RESERVED_MB = 1536


@dataclass(frozen=True)
class ExecutorPlacement:
    """Outcome of YARN container allocation for a Spark application."""

    n_executors: int
    executor_cores: int
    executor_heap_mb: int
    container_mb: int  # heap + overhead, rounded to allocation granularity
    feasible: bool
    reason: str = ""
    #: executor threads exceed the vcores YARN nominally offers
    cpu_oversubscribed: bool = False
    effective_vcores_per_node: int = 0
    #: True when the request is valid but unsatisfiable: the application
    #: hangs in ACCEPTED state instead of failing fast
    hangs: bool = False

    @property
    def total_cores(self) -> int:
        return self.n_executors * self.executor_cores

    @property
    def total_heap_mb(self) -> int:
        return self.n_executors * self.executor_heap_mb


def _round_up(value: int, granularity: int) -> int:
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    return ((value + granularity - 1) // granularity) * granularity


def plan_executors(
    config: Mapping[str, Any], cluster: ClusterSpec
) -> ExecutorPlacement:
    """Compute the executor placement for ``config`` on ``cluster``.

    Returns an infeasible placement (``n_executors == 0``) when the request
    cannot be scheduled at all, mirroring a real YARN rejection.
    """
    heap = int(config["spark.executor.memory"])
    overhead = int(config["spark.executor.memoryOverhead"])
    cores = int(config["spark.executor.cores"])
    requested = int(config["spark.executor.instances"])

    min_alloc = int(config["yarn.scheduler.minimum-allocation-mb"])
    max_alloc = int(config["yarn.scheduler.maximum-allocation-mb"])
    max_vcores = int(config["yarn.scheduler.maximum-allocation-vcores"])
    nm_mem = int(config["yarn.nodemanager.resource.memory-mb"])
    nm_vcores = int(config["yarn.nodemanager.resource.cpu-vcores"])
    cpu_pct = float(
        config["yarn.nodemanager.resource.percentage-physical-cpu-limit"]
    )

    container_mb = _round_up(heap + overhead, min_alloc)

    if container_mb > max_alloc:
        return ExecutorPlacement(
            0, cores, heap, container_mb, feasible=False,
            reason=(
                f"container {container_mb}MB exceeds "
                f"yarn.scheduler.maximum-allocation-mb={max_alloc}"
            ),
        )
    if cores > max_vcores:
        return ExecutorPlacement(
            0, cores, heap, container_mb, feasible=False,
            reason=(
                f"executor cores {cores} exceed "
                f"yarn.scheduler.maximum-allocation-vcores={max_vcores}"
            ),
        )

    # NodeManager offers at most the physical node minus the OS reserve.
    node_mem_budget = min(nm_mem, cluster.node.memory_mb - OS_RESERVED_MB)
    effective_vcores = min(
        int(nm_vcores * cpu_pct / 100.0), cluster.node.cores
    )
    if node_mem_budget < container_mb:
        # Valid request, but no NodeManager can ever satisfy it: YARN
        # leaves the application pending rather than rejecting it.
        return ExecutorPlacement(
            0, cores, heap, container_mb, feasible=False,
            reason="no NodeManager can host a single container (memory)",
            hangs=True,
        )

    per_node_mem = node_mem_budget // container_mb
    per_node_cpu = effective_vcores // cores
    if per_node_cpu >= 1:
        per_node = min(per_node_mem, per_node_cpu)
        oversubscribed = False
    else:
        # YARN's DefaultResourceCalculator schedules on memory only: the
        # container is granted and its JVM threads oversubscribe the CPU.
        per_node = min(per_node_mem, 1)
        oversubscribed = True

    capacity = int(per_node) * cluster.n_nodes
    granted = min(requested, capacity)
    return ExecutorPlacement(
        granted, cores, heap, container_mb, feasible=True,
        cpu_oversubscribed=oversubscribed,
        effective_vcores_per_node=effective_vcores,
    )
