"""YARN container allocation arithmetic.

Given the tuned YARN parameters and Spark's executor resource request,
compute how many executor containers the cluster can actually host.  This
reproduces the real ``yarn-site.xml`` / ``spark-defaults.conf`` interplay:

* container memory = executor heap + memoryOverhead, rounded **up** to a
  multiple of ``yarn.scheduler.minimum-allocation-mb``;
* requests above ``yarn.scheduler.maximum-allocation-mb`` (or -vcores) are
  rejected — on a real cluster the application fails to launch;
* per-node capacity is ``yarn.nodemanager.resource.memory-mb`` (clipped to
  physical RAM minus OS/daemon reserve) and the vcore analogue scaled by
  the physical-cpu-limit percentage.

The number of granted executors is the binding constraint that makes many
configurations slow: the Spark default of tiny executors on an
under-provisioned NodeManager leaves most of the cluster idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.cluster.hardware import ClusterSpec

__all__ = [
    "ExecutorPlacement",
    "BatchPlacement",
    "plan_executors",
    "plan_executors_batch",
    "OS_RESERVED_MB",
]

# Memory kept back for the OS, DataNode and NodeManager daemons.
OS_RESERVED_MB = 1536


@dataclass(frozen=True)
class ExecutorPlacement:
    """Outcome of YARN container allocation for a Spark application."""

    n_executors: int
    executor_cores: int
    executor_heap_mb: int
    container_mb: int  # heap + overhead, rounded to allocation granularity
    feasible: bool
    reason: str = ""
    #: executor threads exceed the vcores YARN nominally offers
    cpu_oversubscribed: bool = False
    effective_vcores_per_node: int = 0
    #: True when the request is valid but unsatisfiable: the application
    #: hangs in ACCEPTED state instead of failing fast
    hangs: bool = False

    @property
    def total_cores(self) -> int:
        return self.n_executors * self.executor_cores

    @property
    def total_heap_mb(self) -> int:
        return self.n_executors * self.executor_heap_mb


def _round_up(value: int, granularity: int) -> int:
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    return ((value + granularity - 1) // granularity) * granularity


def plan_executors(
    config: Mapping[str, Any], cluster: ClusterSpec
) -> ExecutorPlacement:
    """Compute the executor placement for ``config`` on ``cluster``.

    Returns an infeasible placement (``n_executors == 0``) when the request
    cannot be scheduled at all, mirroring a real YARN rejection.
    """
    heap = int(config["spark.executor.memory"])
    overhead = int(config["spark.executor.memoryOverhead"])
    cores = int(config["spark.executor.cores"])
    requested = int(config["spark.executor.instances"])

    min_alloc = int(config["yarn.scheduler.minimum-allocation-mb"])
    max_alloc = int(config["yarn.scheduler.maximum-allocation-mb"])
    max_vcores = int(config["yarn.scheduler.maximum-allocation-vcores"])
    nm_mem = int(config["yarn.nodemanager.resource.memory-mb"])
    nm_vcores = int(config["yarn.nodemanager.resource.cpu-vcores"])
    cpu_pct = float(
        config["yarn.nodemanager.resource.percentage-physical-cpu-limit"]
    )

    container_mb = _round_up(heap + overhead, min_alloc)

    if container_mb > max_alloc:
        return ExecutorPlacement(
            0, cores, heap, container_mb, feasible=False,
            reason=(
                f"container {container_mb}MB exceeds "
                f"yarn.scheduler.maximum-allocation-mb={max_alloc}"
            ),
        )
    if cores > max_vcores:
        return ExecutorPlacement(
            0, cores, heap, container_mb, feasible=False,
            reason=(
                f"executor cores {cores} exceed "
                f"yarn.scheduler.maximum-allocation-vcores={max_vcores}"
            ),
        )

    # NodeManager offers at most the physical node minus the OS reserve.
    node_mem_budget = min(nm_mem, cluster.node.memory_mb - OS_RESERVED_MB)
    effective_vcores = min(
        int(nm_vcores * cpu_pct / 100.0), cluster.node.cores
    )
    if node_mem_budget < container_mb:
        # Valid request, but no NodeManager can ever satisfy it: YARN
        # leaves the application pending rather than rejecting it.
        return ExecutorPlacement(
            0, cores, heap, container_mb, feasible=False,
            reason="no NodeManager can host a single container (memory)",
            hangs=True,
        )

    per_node_mem = node_mem_budget // container_mb
    per_node_cpu = effective_vcores // cores
    if per_node_cpu >= 1:
        per_node = min(per_node_mem, per_node_cpu)
        oversubscribed = False
    else:
        # YARN's DefaultResourceCalculator schedules on memory only: the
        # container is granted and its JVM threads oversubscribe the CPU.
        per_node = min(per_node_mem, 1)
        oversubscribed = True

    capacity = int(per_node) * cluster.n_nodes
    granted = min(requested, capacity)
    return ExecutorPlacement(
        granted, cores, heap, container_mb, feasible=True,
        cpu_oversubscribed=oversubscribed,
        effective_vcores_per_node=effective_vcores,
    )


@dataclass(frozen=True)
class BatchPlacement:
    """Columnar :class:`ExecutorPlacement` for ``n`` candidate configs.

    Row ``i`` holds exactly the fields :func:`plan_executors` would
    produce for candidate ``i``; :meth:`row` materializes the scalar
    dataclass on demand.
    """

    n_executors: np.ndarray
    executor_cores: np.ndarray
    executor_heap_mb: np.ndarray
    container_mb: np.ndarray
    feasible: np.ndarray
    reasons: tuple[str, ...]
    cpu_oversubscribed: np.ndarray
    effective_vcores_per_node: np.ndarray
    hangs: np.ndarray

    @property
    def total_cores(self) -> np.ndarray:
        return self.n_executors * self.executor_cores

    def __len__(self) -> int:
        return len(self.n_executors)

    def row(self, i: int) -> ExecutorPlacement:
        return ExecutorPlacement(
            n_executors=int(self.n_executors[i]),
            executor_cores=int(self.executor_cores[i]),
            executor_heap_mb=int(self.executor_heap_mb[i]),
            container_mb=int(self.container_mb[i]),
            feasible=bool(self.feasible[i]),
            reason=self.reasons[i],
            cpu_oversubscribed=bool(self.cpu_oversubscribed[i]),
            effective_vcores_per_node=int(self.effective_vcores_per_node[i]),
            hangs=bool(self.hangs[i]),
        )


def plan_executors_batch(
    columns: Mapping[str, np.ndarray], cluster: ClusterSpec
) -> BatchPlacement:
    """Vectorized :func:`plan_executors` over decoded config columns.

    ``columns`` is the output of
    :meth:`repro.config.space.ConfigurationSpace.decode_columns`.  Row
    ``i`` of the result matches ``plan_executors(configs[i], cluster)``
    exactly (integer arithmetic only — there is nothing to round).
    """
    heap = np.asarray(columns["spark.executor.memory"], dtype=np.int64)
    overhead = np.asarray(
        columns["spark.executor.memoryOverhead"], dtype=np.int64
    )
    cores = np.asarray(columns["spark.executor.cores"], dtype=np.int64)
    requested = np.asarray(
        columns["spark.executor.instances"], dtype=np.int64
    )
    min_alloc = np.asarray(
        columns["yarn.scheduler.minimum-allocation-mb"], dtype=np.int64
    )
    max_alloc = np.asarray(
        columns["yarn.scheduler.maximum-allocation-mb"], dtype=np.int64
    )
    max_vcores = np.asarray(
        columns["yarn.scheduler.maximum-allocation-vcores"], dtype=np.int64
    )
    nm_mem = np.asarray(
        columns["yarn.nodemanager.resource.memory-mb"], dtype=np.int64
    )
    nm_vcores = np.asarray(
        columns["yarn.nodemanager.resource.cpu-vcores"], dtype=np.int64
    )
    cpu_pct = np.asarray(
        columns["yarn.nodemanager.resource.percentage-physical-cpu-limit"],
        dtype=np.float64,
    )
    if np.any(min_alloc <= 0):
        raise ValueError("granularity must be positive")

    container = (heap + overhead + min_alloc - 1) // min_alloc * min_alloc
    rejected_mb = container > max_alloc
    rejected_vcores = ~rejected_mb & (cores > max_vcores)

    node_mem_budget = np.minimum(
        nm_mem, cluster.node.memory_mb - OS_RESERVED_MB
    )
    effective_vcores = np.minimum(
        (nm_vcores * cpu_pct / 100.0).astype(np.int64), cluster.node.cores
    )
    hangs = (
        ~rejected_mb & ~rejected_vcores & (node_mem_budget < container)
    )
    feasible = ~(rejected_mb | rejected_vcores | hangs)

    per_node_mem = node_mem_budget // container
    per_node_cpu = effective_vcores // np.maximum(cores, 1)
    oversubscribed = per_node_cpu < 1
    per_node = np.where(
        oversubscribed,
        np.minimum(per_node_mem, 1),
        np.minimum(per_node_mem, per_node_cpu),
    )
    capacity = per_node * cluster.n_nodes
    granted = np.where(feasible, np.minimum(requested, capacity), 0)
    oversubscribed = feasible & oversubscribed

    reasons = []
    for i in range(len(heap)):
        if rejected_mb[i]:
            reasons.append(
                f"container {int(container[i])}MB exceeds "
                f"yarn.scheduler.maximum-allocation-mb={int(max_alloc[i])}"
            )
        elif rejected_vcores[i]:
            reasons.append(
                f"executor cores {int(cores[i])} exceed "
                f"yarn.scheduler.maximum-allocation-vcores={int(max_vcores[i])}"
            )
        elif hangs[i]:
            reasons.append(
                "no NodeManager can host a single container (memory)"
            )
        else:
            reasons.append("")

    return BatchPlacement(
        n_executors=granted,
        executor_cores=cores,
        executor_heap_mb=heap,
        container_mb=container,
        feasible=feasible,
        reasons=tuple(reasons),
        cpu_oversubscribed=oversubscribed,
        effective_vcores_per_node=np.where(feasible, effective_vcores, 0),
        hangs=hangs,
    )
