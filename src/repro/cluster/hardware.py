"""Hardware specifications for the simulated clusters.

``CLUSTER_A`` mirrors the paper's physical testbed (§4.1): three nodes,
each one Intel i7-10700 (16 logical cores @ 2.9 GHz), 16 GB DDR4, 1 TB
HDD, linked by 1-Gigabit Ethernet.  ``CLUSTER_B`` mirrors the VM cluster
of §5.3.2: three VMs totalling 24 cores / 24 GB / 150 GB disk, with the
typical virtualization haircut on disk and network throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NodeSpec", "ClusterSpec", "CLUSTER_A", "CLUSTER_B"]


@dataclass(frozen=True)
class NodeSpec:
    """One worker node's physical resources."""

    cores: int
    memory_mb: int
    disk_seq_mbps: float  # sequential read/write throughput
    disk_rand_mbps: float  # random/concurrent-stream throughput floor
    cpu_ghz: float

    def __post_init__(self):
        if self.cores <= 0 or self.memory_mb <= 0:
            raise ValueError("node must have positive cores and memory")
        if self.disk_seq_mbps <= 0 or self.disk_rand_mbps <= 0:
            raise ValueError("disk throughput must be positive")
        if self.disk_rand_mbps > self.disk_seq_mbps:
            raise ValueError("random throughput cannot exceed sequential")
        if self.cpu_ghz <= 0:
            raise ValueError("cpu_ghz must be positive")


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of ``n_nodes`` identical workers."""

    name: str
    n_nodes: int
    node: NodeSpec
    network_mbps: float  # per-link bandwidth (MB/s)
    network_latency_ms: float = 0.5

    def __post_init__(self):
        if self.n_nodes <= 0:
            raise ValueError("cluster needs at least one node")
        if self.network_mbps <= 0:
            raise ValueError("network bandwidth must be positive")
        if self.network_latency_ms < 0:
            raise ValueError("latency cannot be negative")

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.node.cores

    @property
    def total_memory_mb(self) -> int:
        return self.n_nodes * self.node.memory_mb

    def scale_cpu(self) -> float:
        """Relative CPU speed versus a 2.9 GHz reference core."""
        return self.node.cpu_ghz / 2.9


# The paper's physical 3-node testbed: i7-10700, 16 GB, 1 TB HDD, 1 GbE.
CLUSTER_A = ClusterSpec(
    name="cluster-a",
    n_nodes=3,
    node=NodeSpec(
        cores=16,
        memory_mb=16384,
        disk_seq_mbps=140.0,  # 7200rpm HDD sequential
        disk_rand_mbps=35.0,
        cpu_ghz=2.9,
    ),
    network_mbps=117.0,  # 1 GbE practical goodput
)

# The paper's VM cluster: 3 nodes, 24 cores / 24 GB / 150 GB total.
CLUSTER_B = ClusterSpec(
    name="cluster-b",
    n_nodes=3,
    node=NodeSpec(
        cores=8,
        memory_mb=8192,
        disk_seq_mbps=110.0,  # virtio-backed disk
        disk_rand_mbps=30.0,
        cpu_ghz=2.6,
    ),
    network_mbps=100.0,
)
