"""Save/load trained tuner models and crash-recoverable tuning sessions.

The offline stage is trained once and reused for every tuning request
(Figure 1), so models must outlive the training process.  Network
parameters are stored in a single ``.npz`` archive together with the
metadata needed to rebuild the agent (dimensions, hyper-parameters,
DeepCAT thresholds).  Replay buffers are deliberately *not* persisted
in *model* archives: a fresh request starts fine-tuning from the
offline weights, and the paper's online stage only pushes new
transitions.

Session *checkpoints* are the opposite: they freeze an in-flight online
tuning session completely — agent weights, RDPER P_high/P_low pools,
every RNG state, the environment (cluster tracker + simulator + fault
injector), the resilience policy's streak state, and the step counter —
so a killed session resumed with ``repro tune --resume`` replays
bit-identically to one that was never interrupted.  Snapshots are
written atomically (tmp file + ``os.replace``), so a kill mid-write
never corrupts the previous checkpoint.
"""

from __future__ import annotations

import contextlib
import json
import os
import pickle
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.agents.base import AgentHyperParams
from repro.baselines.cdbtune import CDBTune
from repro.core.deepcat import DeepCAT

__all__ = [
    "save_tuner",
    "load_tuner",
    "SessionCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointManager",
]

_FORMAT_VERSION = 1
_CHECKPOINT_VERSION = 1

_TD3_NETS = (
    "actor", "actor_target",
    "critic1", "critic2", "critic1_target", "critic2_target",
)
_DDPG_NETS = ("actor", "actor_target", "critic", "critic_target")


def _collect_arrays(agent, nets: tuple[str, ...]) -> dict[str, np.ndarray]:
    arrays: dict[str, np.ndarray] = {}
    for net_name in nets:
        net = getattr(agent, net_name)
        for i, p in enumerate(net.parameters()):
            arrays[f"{net_name}/{i}"] = p.data
    return arrays


def _restore_arrays(agent, nets: tuple[str, ...], arrays) -> None:
    for net_name in nets:
        net = getattr(agent, net_name)
        for i, p in enumerate(net.parameters()):
            key = f"{net_name}/{i}"
            if key not in arrays:
                raise ValueError(f"archive missing tensor {key}")
            data = arrays[key]
            if data.shape != p.data.shape:
                raise ValueError(
                    f"{key}: shape {data.shape} != expected {p.data.shape}"
                )
            p.data[...] = data


def _meta_for(tuner) -> dict:
    if isinstance(tuner, DeepCAT):
        return {
            "kind": "deepcat",
            "state_dim": tuner.agent.state_dim,
            "action_dim": tuner.agent.action_dim,
            "hp": asdict(tuner.hp),
            "use_rdper": tuner.use_rdper,
            "use_twin_q": tuner.use_twin_q,
            "reward_threshold": tuner.reward_threshold,
            "beta": tuner.beta,
            "q_threshold": tuner.q_threshold,
            "twinq_noise_sigma": tuner.twinq_noise_sigma,
        }
    if isinstance(tuner, CDBTune):
        return {
            "kind": "cdbtune",
            "state_dim": tuner.agent.state_dim,
            "action_dim": tuner.agent.action_dim,
            "hp": asdict(tuner.hp),
        }
    raise TypeError(f"cannot persist {type(tuner).__name__}")


def save_tuner(tuner, path: str | Path) -> Path:
    """Serialize a trained DeepCAT or CDBTune model to ``path`` (.npz)."""
    path = Path(path)
    meta = _meta_for(tuner)  # validates the tuner type first
    if isinstance(tuner, DeepCAT):
        arrays = _collect_arrays(tuner.agent, _TD3_NETS)
    else:
        arrays = _collect_arrays(tuner.agent, _DDPG_NETS)
    meta["format_version"] = _FORMAT_VERSION
    np.savez_compressed(
        path, __meta__=np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        ), **arrays,
    )
    # numpy appends .npz when missing
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def load_tuner(path: str | Path, seed: int = 0):
    """Rebuild a tuner from :func:`save_tuner` output.

    ``seed`` re-seeds the *runtime* randomness (exploration noise, replay
    sampling); the learned weights are restored exactly.
    """
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported archive version {meta.get('format_version')}"
            )
        hp_dict = dict(meta["hp"])
        hp_dict["hidden"] = tuple(hp_dict["hidden"])
        hp = AgentHyperParams(**hp_dict)
        if meta["kind"] == "deepcat":
            tuner = DeepCAT(
                meta["state_dim"],
                meta["action_dim"],
                seed=seed,
                hp=hp,
                reward_threshold=meta["reward_threshold"],
                beta=meta["beta"],
                q_threshold=meta["q_threshold"],
                twinq_noise_sigma=meta["twinq_noise_sigma"],
                use_rdper=meta["use_rdper"],
                use_twin_q=meta["use_twin_q"],
            )
            _restore_arrays(tuner.agent, _TD3_NETS, archive)
        elif meta["kind"] == "cdbtune":
            tuner = CDBTune(
                meta["state_dim"], meta["action_dim"], seed=seed, hp=hp
            )
            _restore_arrays(tuner.agent, _DDPG_NETS, archive)
        else:
            raise ValueError(f"unknown tuner kind {meta['kind']!r}")
    return tuner


# ===================================================================== #
#  Session checkpointing                                                #
# ===================================================================== #


@dataclass
class SessionCheckpoint:
    """A frozen in-flight online tuning session.

    ``next_step`` is the index of the first step *not yet executed*
    (always ``len(session.steps)``); resuming means calling
    ``tuner.tune_online(env, steps=total, session=session,
    start_step=next_step, resilience=resilience)``.
    """

    tuner: Any
    env: Any
    session: Any
    next_step: int
    resilience: Any = None


def _telemetry_attachment_points(tuner, env):
    """Every ``(obj, attr)`` through which live telemetry (lock-bearing
    tracers/registries) can leak into the pickled object graph."""
    points = []
    agent = getattr(tuner, "agent", None)
    if agent is not None and hasattr(agent, "telemetry"):
        points.append((agent, "telemetry"))
    buffer = getattr(tuner, "buffer", None)
    if buffer is not None and hasattr(buffer, "_telemetry"):
        points.append((buffer, "_telemetry"))
    simulator = getattr(getattr(env, "runner", None), "simulator", None)
    if simulator is not None and hasattr(simulator, "telemetry"):
        points.append((simulator, "telemetry"))
    return points


@contextlib.contextmanager
def _telemetry_detached(tuner, env):
    """Temporarily swap live telemetry for the null context.

    Live tracers/registries hold ``threading.Lock`` (and
    ``threading.local``) and cannot be pickled; telemetry is shared
    infrastructure, not run state, so it is excluded from checkpoints
    and reattached by the caller after a restore.
    """
    from repro.telemetry.context import NULL_CONTEXT

    points = _telemetry_attachment_points(tuner, env)
    saved = [(obj, attr, getattr(obj, attr)) for obj, attr in points]
    for obj, attr in points:
        setattr(obj, attr, NULL_CONTEXT)
    try:
        yield
    finally:
        for obj, attr, value in saved:
            setattr(obj, attr, value)


def save_checkpoint(
    path: str | Path,
    *,
    tuner,
    env,
    session,
    next_step: int,
    resilience=None,
) -> Path:
    """Atomically snapshot an in-flight tuning session to ``path``.

    The tmp-file + ``os.replace`` dance guarantees the file at ``path``
    is always a complete checkpoint — a kill during the write leaves the
    previous snapshot intact.
    """
    path = Path(path)
    payload = {
        "checkpoint_version": _CHECKPOINT_VERSION,
        "tuner": tuner,
        "env": env,
        "session": session,
        "next_step": int(next_step),
        "resilience": resilience,
    }
    tmp = path.with_name(path.name + ".tmp")
    with _telemetry_detached(tuner, env):
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str | Path) -> SessionCheckpoint:
    """Restore a session snapshot written by :func:`save_checkpoint`.

    Telemetry comes back as the null context; reattach a live
    :class:`~repro.telemetry.context.RunContext` by passing it to
    ``tune_online`` as usual.
    """
    with open(Path(path), "rb") as fh:
        payload = pickle.load(fh)
    version = payload.get("checkpoint_version")
    if version != _CHECKPOINT_VERSION:
        raise ValueError(f"unsupported checkpoint version {version}")
    return SessionCheckpoint(
        tuner=payload["tuner"],
        env=payload["env"],
        session=payload["session"],
        next_step=payload["next_step"],
        resilience=payload["resilience"],
    )


class CheckpointManager:
    """Periodic checkpointer handed to ``OnlineTuner.tune``.

    ``every`` controls the snapshot cadence in steps (1 = after every
    step).  ``on_step`` is called by the tuning loop with the session
    and the next step index; ``save`` writes unconditionally (used for
    the final snapshot on interrupt).
    """

    def __init__(self, path: str | Path, tuner, env, resilience=None,
                 every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.path = Path(path)
        self.tuner = tuner
        self.env = env
        self.resilience = resilience
        self.every = every
        self.saves = 0

    def save(self, session, next_step: int) -> Path:
        self.saves += 1
        return save_checkpoint(
            self.path,
            tuner=self.tuner,
            env=self.env,
            session=session,
            next_step=next_step,
            resilience=self.resilience,
        )

    def on_step(self, session, next_step: int) -> Path | None:
        if next_step % self.every == 0:
            return self.save(session, next_step)
        return None
